"""ABL-ROTATE: cost of epoch-based clan rotation (extension feature).

Rotating the clan every E rounds re-spreads block-holding duty but changes
nothing about the consensus critical path — rounds, commits, and throughput
should be statistically indistinguishable from a static clan.  This bench
verifies that (and quantifies any drift), plus shows duty actually rotates.
"""

import pytest

from repro.committees import ClanSchedule
from repro.consensus import Deployment, ProtocolParams
from repro.net.latency import UniformLatencyModel
from repro.smr.mempool import SyntheticWorkload

from .conftest import emit, run_once

N = 15
CLAN = 8


def _run(schedule, label):
    workload = SyntheticWorkload(txns_per_proposal=50)
    deployment = Deployment(
        schedule.cfg_at(1),
        ProtocolParams(verify_signatures=False),
        latency=UniformLatencyModel(0.05),
        make_block=workload.make_block,
        clan_schedule=schedule,
        seed=6,
    )
    deployment.start()
    deployment.run(until=8.0, max_events=20_000_000)
    deployment.check_total_order_consistency()
    holders = sum(1 for node in deployment.nodes if node.blocks)
    return {
        "configuration": label,
        "rounds": min(node.round for node in deployment.nodes),
        "ordered": deployment.min_ordered(),
        "nodes_holding_blocks": holders,
        "MB_total": round(deployment.network.stats.total_bytes / 1e6, 1),
    }


def _sweep():
    static = ClanSchedule("single-clan", N, epoch_length=0, clan_size=CLAN, seed=6)
    rotating = ClanSchedule("single-clan", N, epoch_length=10, clan_size=CLAN, seed=6)
    return [_run(static, "static clan"), _run(rotating, "rotate every 10 rounds")]


def test_rotation_costs_nothing_on_the_critical_path(benchmark):
    rows = run_once(benchmark, _sweep)
    emit(rows, "ablation_rotation", "Clan rotation overhead (single-clan, n=15)")
    static, rotating = rows
    # Same protocol speed within 10%.
    assert rotating["rounds"] == pytest.approx(static["rounds"], rel=0.1)
    assert rotating["ordered"] == pytest.approx(static["ordered"], rel=0.15)
    # Duty spreads: more distinct nodes end up holding blocks when rotating.
    assert rotating["nodes_holding_blocks"] > static["nodes_holding_blocks"]
