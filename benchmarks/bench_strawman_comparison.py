"""ABL-POA: the straw-man PoA architecture vs the paper's pipelined design.

§1 dismisses the obvious design — a separate dissemination layer producing
proofs of availability, ordered by a leader-based SMR — because it is
sequential: ≥ 2δ PoA formation + ~1δ shipping + ~1δ queueing + 5δ Jolteon
commit ≈ 8δ+ (the paper's Arete accounting, §8).  The clan-based DAG
protocols pipeline dissemination with consensus and commit leader vertices in
3δ / non-leaders in 5δ.

This bench runs both architectures on identical networks and clans and
measures block commit latency in δ units.
"""


from repro.bench.parallel import run_tasks
from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.net.latency import UniformLatencyModel
from repro.smr.mempool import SyntheticWorkload
from repro.strawman import StrawmanSystem

from .conftest import emit, run_once

DELTA = 0.05
N = 10
CLAN = 5


def _strawman_latency() -> dict:
    workload = SyntheticWorkload(txns_per_proposal=10)
    cfg = ClanConfig.single_clan(N, CLAN, seed=1)
    system = StrawmanSystem(
        cfg,
        latency=UniformLatencyModel(DELTA),
        make_block=workload.make_block,
        seed=1,
    )
    system.start()
    for k in range(10):
        system.sim.schedule(0.5 + 0.3 * k, system.propose_blocks)
    system.run(until=15.0, max_events=5_000_000)
    committed = system.committed_everywhere()
    latencies = [
        when - workload.blocks[d][1] for d, when in committed.items()
    ]
    return {
        "architecture": "straw-man (PoA + Jolteon)",
        "blocks": len(committed),
        "avg_latency_delta": round(sum(latencies) / len(latencies) / DELTA, 2),
    }


def _clan_dag_latency() -> dict:
    workload = SyntheticWorkload(txns_per_proposal=10)
    cfg = ClanConfig.single_clan(N, CLAN, seed=1)
    deployment = Deployment(
        cfg,
        ProtocolParams(verify_signatures=False),
        latency=UniformLatencyModel(DELTA),
        make_block=workload.make_block,
        seed=1,
    )
    deployment.start()
    deployment.run(until=15.0, max_events=10_000_000)
    node = deployment.nodes[deployment.honest_ids[0]]
    latencies = [
        when - workload.blocks[v.block_digest][1]
        for v, when in node.ordered_log
        if v.block_digest is not None
    ]
    return {
        "architecture": "single-clan DAG (this paper)",
        "blocks": len(latencies),
        "avg_latency_delta": round(sum(latencies) / len(latencies) / DELTA, 2),
    }


def _compare(jobs=None):
    # Two independent simulations; fan out (REPRO_JOBS) with a grid-order merge.
    return run_tasks([(_clan_dag_latency, ()), (_strawman_latency, ())], jobs=jobs)


def test_strawman_vs_clan_dag_latency(benchmark):
    rows = run_once(benchmark, _compare)
    emit(rows, "strawman_comparison", "Straw-man PoA+SMR vs pipelined clan DAG (δ units)")
    dag, strawman = rows
    # Paper: straw-man >= 6δ (their §1 floor) and ~8δ with Jolteon (§8);
    # the DAG commits leaders at 3δ / non-leaders at 5δ (≈ 4-5δ average).
    assert strawman["avg_latency_delta"] >= 7.0
    assert dag["avg_latency_delta"] <= 5.5
    # The pipelined design saves at least ~2δ end to end.
    assert strawman["avg_latency_delta"] - dag["avg_latency_delta"] >= 2.0
