"""FIG6: throughput vs transactions-per-proposal at the largest scale.

Paper Fig. 6 (n = 150, loads 250..1500, all three protocols).  The claims it
supports:

* Below saturation Sailfish's raw throughput at a fixed load is the highest
  (it has the most proposers) — "Sailfish exhibited better throughput for
  the same number of input transactions".
* Multi-clan achieves roughly **twice** single-clan's throughput at every
  block size (comparable clan sizes, two clans in parallel).
* Sailfish's latency degrades far earlier (the paper omits its 1500-txn
  point entirely because of it).
"""


from repro.bench.experiments import SIM_LOADS, fig6_load_sweep
from repro.bench.plotting import plot_load_throughput

from .conftest import emit, run_once


def test_fig6_simulated(benchmark):
    rows = run_once(benchmark, fig6_load_sweep)
    for row in rows:
        row["figure"] = "fig6"
    emit(rows, "fig6_sim", "Fig. 6 — throughput vs txns/proposal (simulated)")
    print()
    print(plot_load_throughput(rows, title="fig6 (simulated)"))

    def series(protocol):
        return {
            r["txns/proposal"]: r for r in rows if r["protocol"] == protocol
        }

    sailfish = series("sailfish")
    single = series("single-clan")
    multi = series("multi-clan")
    loads = SIM_LOADS["fig6"]

    # Multi-clan ≈ 2x single-clan across block sizes (paper: "roughly twice
    # the throughput of single-clan Sailfish across all block sizes").  Near
    # the latency floor (lightest loads) the NIC is not yet binding and the
    # ratio dips toward the proposer ratio alone, so allow 1.35 per-point and
    # require ≥1.5 on average.
    ratios = []
    for load in loads:
        ratio = (
            multi[load]["throughput_ktps"] / single[load]["throughput_ktps"]
        )
        ratios.append(ratio)
        assert 1.35 <= ratio <= 2.6, f"multi/single ratio {ratio:.2f} at {load}"
    assert sum(ratios) / len(ratios) >= 1.5

    # Pre-saturation, Sailfish's fixed-load throughput is the highest of the
    # three (most proposers).
    first = loads[0]
    assert sailfish[first]["throughput_ktps"] >= single[first]["throughput_ktps"]

    # Sailfish pays more latency than single-clan at the heaviest common load.
    last = loads[-1]
    assert sailfish[last]["avg_latency_s"] > single[last]["avg_latency_s"]

    # Multi-clan carries the same per-proposal load at higher latency than
    # single-clan (paper: all parties process blocks in multi-clan).
    assert multi[last]["avg_latency_s"] >= 0.9 * single[last]["avg_latency_s"]
