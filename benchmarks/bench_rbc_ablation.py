"""ABL-RBC: three-round (Fig. 2) vs two-round (Fig. 3) tribe-assisted RBC.

The paper presents both constructions and deploys the two-round variant for
latency (§7 "To minimize latency, we use the round-optimal RBC...").  This
ablation measures, on identical networks:

* good-case delivery latency (clan and non-clan observers);
* messages and bytes on the wire (the signature-free variant trades a third
  round for smaller, unsigned messages);
* end-to-end consensus round rate under both modes.
"""

import pytest

from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.crypto.signatures import Pki
from repro.net.latency import UniformLatencyModel
from repro.net.network import Network
from repro.rbc.base import Membership
from repro.rbc.tribe_bracha import TribeBrachaRbc
from repro.rbc.tribe_two_round import TribeTwoRoundRbc
from repro.sim import Simulator
from repro.smr.mempool import SyntheticWorkload

from .conftest import emit, run_once

N = 16
CLAN = frozenset(range(10))
DELTA = 0.05


def _run_primitive(protocol_cls, needs_pki):
    sim = Simulator()
    net = Network(sim, N, latency=UniformLatencyModel(DELTA))
    membership = Membership(N, CLAN)
    pki = Pki(N, seed=3)
    deliveries = {}

    def on_deliver(node):
        def cb(d):
            deliveries.setdefault(node, sim.now)

        return cb

    modules = []
    for i in range(N):
        if needs_pki:
            modules.append(
                protocol_cls(i, membership, net, sim, pki, on_deliver(i))
            )
        else:
            modules.append(protocol_cls(i, membership, net, sim, on_deliver(i)))
    modules[0].broadcast(b"x" * 1024, 1)
    sim.run(max_events=1_000_000)
    clan_lat = [deliveries[i] for i in CLAN]
    tribe_lat = [deliveries[i] for i in range(N) if i not in CLAN]
    return {
        "avg_clan_delivery_s": round(sum(clan_lat) / len(clan_lat), 4),
        "avg_tribe_delivery_s": round(sum(tribe_lat) / len(tribe_lat), 4),
        "messages": net.stats.total_messages,
        "kbytes": round(net.stats.total_bytes / 1024.0, 1),
    }


def _primitive_rows():
    rows = []
    rows.append({"protocol": "tribe-bracha (Fig.2, 3 rounds)",
                 **_run_primitive(TribeBrachaRbc, needs_pki=False)})
    rows.append({"protocol": "tribe-two-round (Fig.3, 2 rounds)",
                 **_run_primitive(TribeTwoRoundRbc, needs_pki=True)})
    return rows


def test_rbc_primitive_latency_and_cost(benchmark):
    rows = run_once(benchmark, _primitive_rows)
    emit(rows, "ablation_rbc_primitive", "Tribe-assisted RBC: Fig.2 vs Fig.3")
    bracha, two_round = rows
    # Good case: the two-round protocol delivers one δ earlier everywhere.
    assert two_round["avg_clan_delivery_s"] < bracha["avg_clan_delivery_s"]
    assert two_round["avg_tribe_delivery_s"] < bracha["avg_tribe_delivery_s"]
    # 3δ vs 2δ up to loopback/self-delivery effects.
    assert bracha["avg_clan_delivery_s"] == pytest.approx(3 * DELTA, rel=0.15)
    assert two_round["avg_clan_delivery_s"] == pytest.approx(2 * DELTA, rel=0.15)
    # The signature-free variant moves fewer bytes (no signatures/certs).
    assert bracha["kbytes"] < two_round["kbytes"]


def _consensus_modes():
    rows = []
    for mode in ("two-round", "bracha"):
        workload = SyntheticWorkload(txns_per_proposal=100)
        dep = Deployment(
            ClanConfig.single_clan(N, 10, seed=1),
            ProtocolParams(rbc_mode=mode, verify_signatures=False),
            latency=UniformLatencyModel(DELTA),
            make_block=workload.make_block,
        )
        dep.start()
        dep.run(until=6.0, max_events=20_000_000)
        dep.check_total_order_consistency()
        rows.append(
            {
                "rbc_mode": mode,
                "rounds_in_6s": min(n.round for n in dep.nodes),
                "ordered_vertices": dep.min_ordered(),
                "messages": dep.network.stats.total_messages,
            }
        )
    return rows


def test_consensus_round_rate_by_rbc_mode(benchmark):
    rows = run_once(benchmark, _consensus_modes)
    emit(rows, "ablation_rbc_consensus", "Single-clan consensus: RBC mode ablation")
    two_round, bracha = rows
    # One fewer message delay per round => strictly more rounds per second.
    assert two_round["rounds_in_6s"] > bracha["rounds_in_6s"]
