"""ABL-CLANSZ: clan size vs security vs performance trade-off.

DESIGN.md calls out the central design choice: the clan must be large enough
for the statistical honest-majority bound but small enough to cut bandwidth.
This ablation sweeps the clan size at n = 150 (paper scale, analytical model
+ exact statistics) showing the two curves the operator trades between:
dishonest-majority probability and peak stable throughput.
"""


from repro.bench.model import AnalyticalModel, PAPER_LOADS
from repro.committees.hypergeometric import dishonest_majority_prob
from repro.types import max_faults

from .conftest import emit, run_once

N = 150


def _sweep():
    model = AnalyticalModel(n=N)
    rows = []
    for clan_size in (40, 60, 77, 80, 100, 120, 150):
        prob = dishonest_majority_prob(N, max_faults(N), clan_size)
        peak = model.peak_stable_throughput(
            "single-clan", PAPER_LOADS, clan_size=clan_size
        )
        rows.append(
            {
                "clan_size": clan_size,
                "failure_prob": f"{prob:.2e}",
                "peak_ktps": round(peak / 1000.0, 1),
                "meets_1e-6": prob <= 1e-6,
            }
        )
    return rows


def test_clan_size_tradeoff(benchmark):
    rows = run_once(benchmark, _sweep)
    emit(rows, "ablation_clan_size", f"Clan size trade-off at n={N} (model)")
    # Security improves monotonically with clan size...
    probs = [float(r["failure_prob"]) for r in rows]
    assert probs == sorted(probs, reverse=True)
    # ...while peak throughput degrades as the clan grows toward the tribe.
    peaks = [r["peak_ktps"] for r in rows]
    assert peaks[0] > peaks[-1]
    # The paper's clan of 80 is the smallest evaluated size meeting 1e-6
    # (exact minimum is 77).
    eligible = [r["clan_size"] for r in rows if r["meets_1e-6"]]
    assert min(eligible) == 77
