"""ABL-LATENCY: commit-latency decomposition (§5, §7 latency claims).

Measures, under uniform known δ:

* leader vertices commit in ≈ 3δ and non-leaders in ≈ 5δ (Sailfish's
  1 RBC + 1δ rule the paper preserves);
* the single-clan variant preserves those commit depths (the §5 claim that
  clan dissemination does not change commit latency in rounds);
* the no-vote path: rounds led by a crashed party cost one leader-timeout.
"""

import pytest

from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.net.latency import UniformLatencyModel
from repro.smr.mempool import SyntheticWorkload

from .conftest import emit, run_once

DELTA = 0.08
N = 13


def _latency_breakdown(cfg, crashed=None, leader_timeout=1.0):
    workload = SyntheticWorkload(txns_per_proposal=10)
    deployment = Deployment(
        cfg,
        ProtocolParams(verify_signatures=False, leader_timeout=leader_timeout),
        latency=UniformLatencyModel(DELTA),
        make_block=workload.make_block,
        crashed=crashed,
        seed=2,
    )
    deployment.start()
    deployment.run(until=12.0, max_events=20_000_000)
    deployment.check_total_order_consistency()
    node = deployment.nodes[deployment.honest_ids[0]]
    leader_lat, other_lat = [], []
    for vertex, when in node.ordered_log:
        if vertex.block_digest is None:
            continue
        created = workload.blocks[vertex.block_digest][1]
        latency = when - created
        if deployment.schedule.leader(vertex.round) == vertex.source:
            leader_lat.append(latency)
        else:
            other_lat.append(latency)
    return {
        "mode": cfg.mode,
        "crashed": len(crashed or ()),
        "leader_commit_delta": round(
            sum(leader_lat) / len(leader_lat) / DELTA, 2
        ),
        "nonleader_commit_delta": round(
            sum(other_lat) / len(other_lat) / DELTA, 2
        ),
        "ordered": len(node.ordered_log),
    }


def _sweep():
    rows = [
        _latency_breakdown(ClanConfig.baseline(N)),
        _latency_breakdown(ClanConfig.single_clan(N, 7, seed=2)),
        _latency_breakdown(ClanConfig.multi_clan(N, 2, seed=2)),
        _latency_breakdown(ClanConfig.baseline(N), crashed={5}),
    ]
    return rows


def test_commit_latency_in_delta_units(benchmark):
    rows = run_once(benchmark, _sweep)
    emit(rows, "commit_latency", "Commit latency in δ units (δ=80 ms)")
    baseline, single, multi, crashed = rows
    # Sailfish: leaders ≈ 3δ, non-leaders ≈ 5δ.
    assert baseline["leader_commit_delta"] == pytest.approx(3.0, rel=0.25)
    assert baseline["nonleader_commit_delta"] == pytest.approx(5.0, rel=0.25)
    # §5: the clan variants preserve the commit depths.
    for row in (single, multi):
        assert row["leader_commit_delta"] == pytest.approx(
            baseline["leader_commit_delta"], rel=0.3
        )
        assert row["nonleader_commit_delta"] == pytest.approx(
            baseline["nonleader_commit_delta"], rel=0.3
        )
    # A crashed party inflates average latency (timeout rounds) but the
    # protocol keeps committing.
    assert crashed["ordered"] > 50
    assert crashed["nonleader_commit_delta"] > baseline["nonleader_commit_delta"]
