"""TAB1: the Table 1 GCP latency matrix, configured and measured in-sim.

Table 1 is an *input* of the paper's evaluation (ping RTTs between the five
GCP regions).  This bench reproduces it twice: (a) the configured matrix the
simulator runs on, and (b) RTTs *measured inside the simulation* by sending
ping/pong messages between one node per region — confirming the network
substrate reproduces the matrix it was given.
"""

import pytest

from repro.bench.experiments import table1_latency_matrix
from repro.net.latency import GCP_REGIONS, GCP_RTT_MS, GeoLatencyModel
from repro.net.message import Message
from repro.net.network import Network
from repro.sim import Simulator

from .conftest import emit, run_once


def test_table1_configured_matrix(benchmark):
    rows = run_once(benchmark, table1_latency_matrix)
    emit(rows, "table1_configured", "Table 1 — configured GCP RTTs (ms)")
    assert len(rows) == 5
    assert rows[0]["source"] == "us-east1"


class _Ping(Message):
    __slots__ = ()


class _Pong(Message):
    __slots__ = ()


def _measure_rtts() -> list[dict]:
    """Ping/pong between one node per region over the simulated network."""
    sim = Simulator()
    model = GeoLatencyModel(list(GCP_REGIONS), jitter=0.0)
    net = Network(sim, 5, latency=model)
    arrived: dict[tuple[int, int], float] = {}
    sent: dict[tuple[int, int], float] = {}

    def handler(me):
        def on_message(src, msg):
            if isinstance(msg, _Ping):
                net.send(me, src, _Pong())
            else:
                arrived[(me, src)] = sim.now  # pong back at the pinger

        return on_message

    for i in range(5):
        net.register(i, handler(i))
    for i in range(5):
        for j in range(5):
            if i == j:
                continue

            def fire(i=i, j=j):
                sent[(i, j)] = sim.now
                net.send(i, j, _Ping())

            sim.schedule(1.0 * (5 * i + j), fire)
    sim.run()
    rows = []
    for i, src in enumerate(GCP_REGIONS):
        row = {"source": src}
        for j, dst in enumerate(GCP_REGIONS):
            if i == j:
                measured = GCP_RTT_MS[(src, dst)]
            else:
                measured = (arrived[(i, j)] - sent[(i, j)]) * 1000.0
            row[dst] = round(measured, 2)
        rows.append(row)
    return rows


def test_table1_measured_in_sim(benchmark):
    rows = run_once(benchmark, _measure_rtts)
    emit(rows, "table1_measured", "Table 1 — RTTs measured inside the simulator (ms)")
    # Measured RTT = forward one-way + reverse one-way; Table 1 is slightly
    # asymmetric, so compare against the sum of the two directions.
    for i, src in enumerate(GCP_REGIONS):
        for j, dst in enumerate(GCP_REGIONS):
            if i == j:
                continue
            expected = (GCP_RTT_MS[(src, dst)] + GCP_RTT_MS[(dst, src)]) / 2.0
            assert rows[i][dst] == pytest.approx(expected, rel=0.01)
