"""SEC62: the §6.2 concrete multi-clan failure probabilities.

Paper: n=150 into two clans → ≈ 4.015e-6; n=387 into three clans → ≈ 1.11e-6.
Also exercises the generalized q-clan counting the paper's analysis implies.
"""

import pytest

from repro.bench.experiments import sec62_numbers
from repro.committees.multiclan import equal_partition_prob, max_equal_clans

from .conftest import emit, run_once


def test_sec62_concrete_numbers(benchmark):
    rows = run_once(benchmark, sec62_numbers)
    emit(rows, "sec62_multiclan", "§6.2 — multi-clan dishonest-majority probabilities")
    assert float(rows[0]["prob"]) == pytest.approx(4.015e-6, rel=1e-2)
    assert float(rows[1]["prob"]) == pytest.approx(1.11e-6, rel=2e-2)


def test_sec62_generalized_counts(benchmark):
    """How many equal clans can various tribes support at 1e-5?"""

    def sweep():
        rows = []
        for n in (60, 120, 150, 240, 300, 387, 420):
            q = max_equal_clans(n, 1e-5)
            rows.append(
                {
                    "n": n,
                    "max_clans@1e-5": q,
                    "prob": f"{equal_partition_prob(n, q):.2e}" if q > 1 else "-",
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit(rows, "sec62_generalized", "Generalized max clan counts (failure ≤ 1e-5)")
    by_n = {r["n"]: r["max_clans@1e-5"] for r in rows}
    assert by_n[150] >= 2  # the paper's n=150 two-clan deployment is admissible
    assert by_n[420] >= by_n[60]  # larger tribes support at least as many clans
