"""VAL-MODEL: validate the analytical model against the simulator.

The paper-scale Fig. 5 curves come from the analytical model; this bench runs
both the model and the message-level simulator on identical small geometries
and checks they agree on round duration and throughput within a tolerance.
(Model flow-contention is 0 here: the simulator has no incast term.)
"""

import pytest

from repro.bench.experiments import FigureGeometry, run_point
from repro.bench.model import AnalyticalModel

from .conftest import emit, run_once

GEOMETRY = FigureGeometry(figure="val", n=16, clan_size=10, clans=2)
BANDWIDTH = 400e6


def _compare():
    rows = []
    model = AnalyticalModel(
        n=GEOMETRY.n, bandwidth_bps=BANDWIDTH, flow_contention=0.0, cpu_coeff=0.0
    )
    for protocol, load in (
        ("sailfish", 500),
        ("sailfish", 4000),
        ("single-clan", 500),
        ("single-clan", 4000),
        ("multi-clan", 4000),
    ):
        sim_row = run_point(
            "val", protocol, GEOMETRY, load, BANDWIDTH, cpu_per_message=0.0
        )
        predicted = model.evaluate(
            protocol, load, clan_size=GEOMETRY.clan_size, clans=GEOMETRY.clans
        )
        rows.append(
            {
                "protocol": protocol,
                "txns/proposal": load,
                "sim_ktps": sim_row["throughput_ktps"],
                "model_ktps": round(predicted.throughput_tps / 1000.0, 2),
                "sim_latency_s": sim_row["avg_latency_s"],
                "model_latency_s": round(predicted.latency_s, 3),
            }
        )
    return rows


def test_model_matches_simulator(benchmark):
    rows = run_once(benchmark, _compare)
    emit(rows, "model_validation", "Model vs simulator (γ=0, small geometry)")
    # Absolute agreement: the model is optimistic (it has no quorum-tail,
    # jitter, or round-stall effects), consistently by <~40% on throughput
    # and <~2.5x on latency.
    for row in rows:
        ratio = row["sim_ktps"] / row["model_ktps"]
        assert 0.5 <= ratio <= 1.5, f"throughput mismatch: {row}"
        lat_ratio = row["sim_latency_s"] / row["model_latency_s"]
        assert 0.4 <= lat_ratio <= 2.5, f"latency mismatch: {row}"
    # Relative agreement (what the figures rest on): the model's optimism is
    # uniform across protocols, so cross-protocol ratios must match tightly.
    by = {(r["protocol"], r["txns/proposal"]): r for r in rows}

    def ratios(metric, a, b, load):
        sim = by[(a, load)][f"sim_{metric}"] / by[(b, load)][f"sim_{metric}"]
        model = by[(a, load)][f"model_{metric}"] / by[(b, load)][f"model_{metric}"]
        return sim, model

    for a, b in (("multi-clan", "single-clan"), ("single-clan", "sailfish")):
        sim_ratio, model_ratio = ratios("ktps", a, b, 4000)
        assert sim_ratio == pytest.approx(model_ratio, rel=0.35), (a, b)
