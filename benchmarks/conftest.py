"""Shared benchmark utilities.

Every bench writes its rows to ``results/*.csv`` and prints a table (visible
with ``pytest -s``); pytest-benchmark timings measure the generation cost.
Simulation benches run each configuration exactly once (``pedantic``) —
re-running a multi-second discrete-event simulation for statistical timing
would measure nothing interesting about the protocols.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table, results_path, write_csv


def emit(rows: list[dict], name: str, title: str) -> None:
    """Persist rows to results/<name>.csv and print a table."""
    write_csv(rows, results_path(f"{name}.csv"))
    print()
    print(format_table(rows, title))


@pytest.fixture
def record_rows():
    return emit


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
