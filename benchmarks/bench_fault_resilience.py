"""ABL-FAULT: throughput/latency degradation under injected faults.

Sweeps link drop rate × crashed-node count over the reliable transport and
reports each cell's throughput and latency relative to the fault-free
baseline (measured with :func:`repro.bench.metrics.measure_run`, the same
methodology as every other bench).  Safety is asserted at every point, and
crash/recover cells additionally assert the recovered node caught up via
``repro.consensus.sync``.

Expected shape: loss costs retransmission delay, not safety — throughput
degrades gracefully with the drop rate; a transient crash costs roughly its
downtime fraction of the fault-free throughput.
"""

from repro.bench.metrics import measure_run
from repro.bench.parallel import run_tasks
from repro.committees.config import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.net.faults import ChurnSchedule, LossyLink
from repro.net.latency import UniformLatencyModel
from repro.smr.mempool import SyntheticWorkload

from .conftest import emit, run_once

N = 7
DURATION = 12.0
WARMUP = 2.0
DROP_RATES = (0.0, 0.02, 0.05, 0.10)
CRASH_COUNTS = (0, 1, 2)
#: Crashed nodes go down at t=3 and recover at t=6 (staggered by 0.5s).
DOWN_AT, UP_AT = 3.0, 6.0


def _run_cell(drop_rate: float, crashes: int, seed: int = 17):
    workload = SyntheticWorkload(txns_per_proposal=100)
    churn = (
        ChurnSchedule.outages(
            [
                (N - 1 - i, DOWN_AT + 0.5 * i, UP_AT + 0.5 * i)
                for i in range(crashes)
            ]
        )
        if crashes
        else None
    )
    deployment = Deployment(
        ClanConfig.baseline(N),
        ProtocolParams(leader_timeout=1.0, verify_signatures=False),
        latency=UniformLatencyModel(0.05),
        make_block=workload.make_block,
        seed=seed,
        faults=LossyLink(drop_rate, seed=seed) if drop_rate else None,
        reliable=True,
        churn=churn,
    )
    deployment.start()
    deployment.run(until=DURATION)
    deployment.check_total_order_consistency()
    metrics = measure_run(deployment, workload, WARMUP, DURATION)
    for i in range(crashes):
        node = deployment.nodes[N - 1 - i]
        assert node.sync.syncs_started >= 1, "crashed node never caught up"
    return deployment, metrics


def _cell_row(drop_rate: float, crashes: int) -> dict:
    """One grid cell as a picklable row (asserts run inside the worker)."""
    deployment, metrics = _run_cell(drop_rate, crashes)
    return {
        "drop_rate": drop_rate,
        "crashes": crashes,
        "throughput_tps": metrics.throughput_tps,
        "throughput_ktps": round(metrics.throughput_tps / 1000.0, 2),
        "avg_latency_s": round(metrics.avg_latency_s, 3),
        "p95_latency_s": round(metrics.p95_latency_s, 3),
        "rounds": metrics.rounds,
        "retransmissions": deployment.network.retransmissions,
        "dropped": deployment.base_network.stats.messages_dropped,
    }


def _sweep(jobs=None):
    """The drop × crash grid, fanned out via the parallel engine.

    Cells are independent seeded simulations; :func:`run_tasks` merges rows
    back in grid order, so ``vs_baseline`` (relative to the fault-free first
    cell) and the CSV are identical at any worker count.
    """
    cells = [
        (drop_rate, crashes)
        for crashes in CRASH_COUNTS
        for drop_rate in DROP_RATES
    ]
    rows = run_tasks([(_cell_row, cell) for cell in cells], jobs=jobs)
    baseline_tps = rows[0]["throughput_tps"]  # (0 drop, 0 crash) cell
    for row in rows:
        tps = row.pop("throughput_tps")
        row["vs_baseline"] = round(tps / baseline_tps, 3)
    return rows


def test_fault_resilience_degrades_gracefully(benchmark):
    rows = run_once(benchmark, _sweep)
    emit(
        rows,
        "ablation_fault_resilience",
        f"Fault resilience: drop rate x crash count (n={N}, reliable transport)",
    )
    by_cell = {(row["drop_rate"], row["crashes"]): row for row in rows}
    baseline = by_cell[(0.0, 0)]
    # Fault-free sanity: real throughput and sub-second average latency.
    assert baseline["throughput_ktps"] > 0
    assert baseline["avg_latency_s"] < 1.0
    # 5% loss over the reliable channel keeps >= 60% of baseline throughput.
    assert by_cell[(0.05, 0)]["vs_baseline"] >= 0.6
    # Loss hurts monotonically-ish: 10% loss is no faster than lossless.
    assert (
        by_cell[(0.10, 0)]["throughput_ktps"]
        <= baseline["throughput_ktps"] + 1e-9
    )
    # Transient crashes degrade but never halt: every cell kept committing.
    for row in rows:
        assert row["throughput_ktps"] > 0, f"no progress in cell {row}"
    # Retransmissions only happen when links are lossy.
    for row in rows:
        if row["drop_rate"] == 0.0:
            assert row["dropped"] == 0


def test_recovered_nodes_share_the_committed_prefix(benchmark):
    def scenario():
        deployment, metrics = _run_cell(0.05, 2)
        logs = deployment.ordered_logs()
        shortest = min(len(log) for log in logs.values())
        reference = logs[0][:shortest]
        assert all(log[:shortest] == reference for log in logs.values())
        return [
            {
                "committed_blocks": metrics.committed_blocks,
                "common_prefix": shortest,
                "recovered_pulls": sum(
                    deployment.nodes[N - 1 - i].sync.vertices_pulled
                    for i in range(2)
                ),
            }
        ]

    rows = run_once(benchmark, scenario)
    emit(rows, "fault_recovery_prefix", "Recovered nodes: identical prefix")
    (row,) = rows
    assert row["common_prefix"] > 0
    assert row["recovered_pulls"] > 0
