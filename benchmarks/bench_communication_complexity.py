"""ABL-COMM: measured communication complexity vs the §3/§5 analysis.

The paper's complexity claims, measured as actual bytes on the simulated
wire:

* Tribe-assisted RBC (honest sender): O(n_c·ℓ + κn²) — the payload term
  scales with the *clan*, the quadratic term with the tribe (Fig. 2 analysis).
* Standard RBC: O(n·ℓ + κn²).
* Single-clan DAG round: O(n_c²·ℓ + κn³) vs baseline O(n²·ℓ + κn³) (§5).

The bench sweeps n with a fixed clan fraction and fits the measured byte
counts against the predicted terms.
"""

import pytest

from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.net.latency import UniformLatencyModel
from repro.net.network import Network
from repro.rbc.base import Membership
from repro.rbc.tribe_bracha import TribeBrachaRbc
from repro.sim import Simulator
from repro.smr.mempool import SyntheticWorkload

from .conftest import emit, run_once

PAYLOAD = bytes(50_000)  # ℓ = 50 kB >> κ


def _rbc_bytes(n: int, clan_size: int) -> dict:
    sim = Simulator()
    net = Network(sim, n, latency=UniformLatencyModel(0.01))
    membership = Membership(n, frozenset(range(clan_size)))
    modules = [
        TribeBrachaRbc(i, membership, net, sim, lambda d: None) for i in range(n)
    ]
    modules[0].broadcast(PAYLOAD, 1)
    sim.run(max_events=1_000_000)
    sender_bytes = net.stats.bytes_sent[0]
    return {
        "n": n,
        "clan": clan_size,
        "sender_MB": round(sender_bytes / 1e6, 3),
        "total_MB": round(net.stats.total_bytes / 1e6, 3),
        "messages": net.stats.total_messages,
    }


def _rbc_sweep():
    rows = []
    for n in (12, 24, 48):
        rows.append(_rbc_bytes(n, clan_size=n // 2))  # tribe-assisted
        rows.append(_rbc_bytes(n, clan_size=n))  # standard Bracha
    return rows


def test_rbc_communication_scaling(benchmark):
    rows = run_once(benchmark, _rbc_sweep)
    emit(rows, "comm_rbc", "Tribe-assisted vs standard RBC bytes (honest sender)")
    by = {(r["n"], r["clan"]): r for r in rows}
    for n in (12, 24, 48):
        tribe_assisted = by[(n, n // 2)]
        standard = by[(n, n)]
        # Sender payload bytes scale with the clan: half the clan, roughly
        # half the sender traffic (the κn digest term is negligible vs 50 kB).
        ratio = tribe_assisted["sender_MB"] / standard["sender_MB"]
        assert 0.45 <= ratio <= 0.62, f"n={n}: sender ratio {ratio:.2f}"
        # Control traffic (message count) is tribe-quadratic and identical.
        assert tribe_assisted["messages"] == pytest.approx(standard["messages"], rel=0.05)
    # Doubling n with the same clan fraction doubles the payload term and
    # quadruples the control term; total stays well below the standard RBC's.
    assert by[(48, 24)]["total_MB"] < by[(48, 48)]["total_MB"]


def _dag_round_bytes(protocol: str, n: int) -> dict:
    workload = SyntheticWorkload(txns_per_proposal=100)
    cfg = (
        ClanConfig.baseline(n)
        if protocol == "sailfish"
        else ClanConfig.single_clan(n, n // 2, seed=1)
    )
    deployment = Deployment(
        cfg,
        ProtocolParams(verify_signatures=False),
        latency=UniformLatencyModel(0.02),
        make_block=workload.make_block,
        seed=1,
    )
    deployment.start()
    deployment.run(until=3.0, max_events=20_000_000)
    rounds = min(node.round for node in deployment.nodes)
    return {
        "protocol": protocol,
        "n": n,
        "MB_per_round": round(deployment.network.stats.total_bytes / 1e6 / rounds, 2),
        "rounds": rounds,
    }


def _dag_sweep():
    rows = []
    for n in (12, 24):
        rows.append(_dag_round_bytes("sailfish", n))
        rows.append(_dag_round_bytes("single-clan", n))
    return rows


def test_dag_round_communication(benchmark):
    rows = run_once(benchmark, _dag_sweep)
    emit(rows, "comm_dag", "Bytes per DAG round: baseline vs single-clan (§5)")
    by = {(r["protocol"], r["n"]): r["MB_per_round"] for r in rows}
    for n in (12, 24):
        # §5: payload replication drops from n² to n_c² streams; with a half
        # clan that is ~4x less block traffic (plus shared control traffic).
        assert by[("single-clan", n)] < 0.6 * by[("sailfish", n)]
