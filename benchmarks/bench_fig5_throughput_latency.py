"""FIG5a/b/c: throughput vs latency at n = 50/100/150 (paper Fig. 5).

Two reproductions per panel:

* **Simulation** — full message-level runs at ``REPRO_SCALE`` × the paper's
  geometry (default 0.3 → n = 15/30/45 with proportional clans; set
  ``REPRO_SCALE=1.0`` for paper-sized runs, hours of CPU).
* **Model** — the analytical bandwidth/latency model at exact paper scale
  (validated against the simulator in bench_model_validation.py).

Shape assertions encode the paper's headline claims:
  - single-clan sustains at least Sailfish's peak stable throughput;
  - single-clan commits at lower latency than Sailfish under equal load;
  - multi-clan (fig5c) beats both on peak throughput.
"""

import pytest

from repro.bench.experiments import SIM_LOADS, fig5_curve, fig5_model_curve
from repro.bench.plotting import plot_throughput_latency

from .conftest import emit, run_once


def _peak(rows, protocol):
    return max(
        r["throughput_ktps"] for r in rows if r["protocol"] == protocol
    )


def _latency_at(rows, protocol, load):
    for r in rows:
        if r["protocol"] == protocol and r["txns/proposal"] == load:
            return r["avg_latency_s"]
    raise AssertionError(f"missing point {protocol}@{load}")


@pytest.mark.parametrize("figure", ["fig5a", "fig5b", "fig5c"])
def test_fig5_simulated(benchmark, figure):
    rows = run_once(benchmark, fig5_curve, figure)
    emit(rows, f"{figure}_sim", f"Fig. 5 ({figure}) — simulated, scaled geometry")
    print()
    print(plot_throughput_latency(rows, title=f"{figure} (simulated)"))
    # Single-clan reaches at least ~Sailfish's throughput.  At the smallest
    # scaled geometry (n=15, clan 10) the proposer deficit (10 vs 15) is not
    # yet amortized within the load cap, so allow a wider margin there; the
    # larger panels must hold the tighter one.
    margin = 0.75 if figure == "fig5a" else 0.85
    assert _peak(rows, "single-clan") >= margin * _peak(rows, "sailfish")
    # ...at lower latency for the same (high) load.
    heavy = SIM_LOADS[figure][-1]
    assert _latency_at(rows, "single-clan", heavy) < _latency_at(
        rows, "sailfish", heavy
    )
    if figure == "fig5c":
        # Multi-clan wins on peak throughput (paper: ~2x single-clan).
        assert _peak(rows, "multi-clan") > 1.5 * _peak(rows, "single-clan")


@pytest.mark.parametrize("figure", ["fig5a", "fig5b", "fig5c"])
def test_fig5_model_paper_scale(benchmark, figure):
    rows = run_once(benchmark, fig5_model_curve, figure)
    emit(rows, f"{figure}_model", f"Fig. 5 ({figure}) — analytical model, paper scale")
    print()
    print(plot_throughput_latency(rows, title=f"{figure} (model, paper scale)"))
    stable = [r for r in rows if r["stable"]]
    def peak(proto):
        return max(
            (r["throughput_ktps"] for r in stable if r["protocol"] == proto), default=0
        )
    assert peak("single-clan") > peak("sailfish")
    if figure == "fig5c":
        assert peak("multi-clan") > 1.8 * peak("single-clan")
    # Latency floor grows with scale (§7: ~380 ms at n=50 → ~1392 ms at n=150).
    floor = min(r["latency_s"] for r in rows if r["protocol"] == "sailfish")
    if figure == "fig5a":
        assert floor == pytest.approx(0.38, rel=0.35)
    if figure == "fig5c":
        assert floor == pytest.approx(1.39, rel=0.25)
