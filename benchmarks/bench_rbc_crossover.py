"""RBC-XOVER: optimistic fast path vs pessimistic Bracha under degradation.

The optimistic protocol bets on the good case: when all n parties ECHO the
same digest it delivers in 2δ (VAL+ECHO), one message delay ahead of the
3δ READY path — but every bet it loses costs a fallback timeout.  This bench
measures where the bet stops paying: a loss-rate × Byzantine sweep of mean
honest delivery latency for :class:`~repro.rbc.optimistic.OptimisticRbc`
against :class:`~repro.rbc.tribe_bracha.TribeBrachaRbc` on identical
networks (reliable transport over seeded lossy links).

A second lane runs the ``slow-proposer-prefix`` chaos scenario end to end:
the certified-prefix commit rule must keep committing non-empty prefixes —
with zero safety anomalies — while a proposer drip-feeds its block tail.
"""

import pytest

from repro.net.faults import LossyLink
from repro.net.latency import UniformLatencyModel
from repro.net.network import Network
from repro.net.transport import ReliableTransport
from repro.rbc.base import Membership
from repro.rbc.optimistic import OptimisticRbc
from repro.rbc.tribe_bracha import TribeBrachaRbc
from repro.sim import Simulator

from .conftest import emit, run_once

N = 8
CLAN = frozenset(range(N))
DELTA = 0.05
FALLBACK_TIMEOUT = 0.4
INSTANCES = 30
GAP = 1.0  # seconds between broadcasts (instances never overlap timers)
LOSS_RATES = (0.0, 0.02, 0.05, 0.1, 0.2)


def _run_primitive(protocol: str, drop_prob: float, silent_byz: int, seed: int):
    """Mean honest delivery latency over rotating-sender instances."""
    sim = Simulator()
    faults = LossyLink(drop_prob, seed=seed) if drop_prob > 0 else None
    net = Network(sim, N, latency=UniformLatencyModel(DELTA), faults=faults)
    transport = ReliableTransport(net, ack_timeout=0.15)
    membership = Membership(N, CLAN)
    silent = frozenset(range(N - silent_byz, N))
    started: dict[tuple[int, int], float] = {}
    latencies: list[float] = []

    def on_deliver(node):
        def cb(delivery):
            if node in silent:
                return
            key = (delivery.origin, delivery.round)
            if key in started:
                latencies.append(sim.now - started[key])

        return cb

    modules = []
    for i in range(N):
        if protocol == "optimistic":
            modules.append(
                OptimisticRbc(
                    i, membership, transport, sim, on_deliver(i),
                    fallback_timeout=FALLBACK_TIMEOUT,
                )
            )
        else:
            modules.append(
                TribeBrachaRbc(i, membership, transport, sim, on_deliver(i))
            )
    # Silent parties receive but never echo/ready: in the optimistic mode a
    # single one forces *every* instance off the all-n fast path.
    for i in silent:
        modules[i].network = _NullSender(transport)

    def start(round_: int) -> None:
        sender = (round_ - 1) % (N - silent_byz)
        started[(sender, round_)] = sim.now
        modules[sender].broadcast(b"x" * 512, round_)

    for round_ in range(1, INSTANCES + 1):
        sim.schedule((round_ - 1) * GAP, start, round_)
    sim.run(until=INSTANCES * GAP + 10.0, max_events=10_000_000)

    honest = N - silent_byz
    expected = INSTANCES * honest
    fast = fallback = 0
    if protocol == "optimistic":
        fast = sum(modules[i].fast_deliveries for i in range(honest))
        fallback = sum(modules[i].fallback_deliveries for i in range(honest))
    return {
        "delivered": len(latencies),
        "expected": expected,
        "mean_latency_ms": round(1e3 * sum(latencies) / max(1, len(latencies)), 2),
        "fast": fast,
        "fallback": fallback,
    }


class _NullSender:
    """Network facade that swallows every send (a silent-but-listening node)."""

    def __init__(self, inner) -> None:
        self._inner = inner

    def broadcast(self, src, msg) -> None:
        pass

    def multicast(self, src, parties, msg) -> None:
        pass

    def send(self, src, dst, msg) -> None:
        pass

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _crossover_rows():
    rows = []
    for silent_byz in (0, 1):
        for drop in LOSS_RATES:
            opt = _run_primitive("optimistic", drop, silent_byz, seed=5)
            bra = _run_primitive("bracha", drop, silent_byz, seed=5)
            # Totality: every honest party delivers every instance, in both
            # protocols, in every cell of the sweep.
            assert opt["delivered"] == opt["expected"], (drop, silent_byz, opt)
            assert bra["delivered"] == bra["expected"], (drop, silent_byz, bra)
            rows.append({
                "loss": drop,
                "silent_byz": silent_byz,
                "optimistic_ms": opt["mean_latency_ms"],
                "bracha_ms": bra["mean_latency_ms"],
                "advantage_ms": round(
                    bra["mean_latency_ms"] - opt["mean_latency_ms"], 2
                ),
                "fast": opt["fast"],
                "fallback": opt["fallback"],
            })
    return rows


def test_rbc_crossover(benchmark):
    rows = run_once(benchmark, _crossover_rows)
    emit(rows, "rbc_crossover",
         "Optimistic vs Bracha RBC: loss-rate x Byzantine crossover")
    by_key = {(r["loss"], r["silent_byz"]): r for r in rows}
    # Good case (no loss, no Byzantine): the 2δ fast path beats 3δ Bracha,
    # and every instance delivers fast.
    good = by_key[(0.0, 0)]
    assert good["fallback"] == 0
    assert good["optimistic_ms"] < good["bracha_ms"]
    assert good["optimistic_ms"] == pytest.approx(2 * DELTA * 1e3, rel=0.2)
    # One silent party kills the all-n condition: everything falls back and
    # the optimistic protocol pays the timeout — the measured crossover.
    byz = by_key[(0.0, 1)]
    assert byz["fast"] == 0 and byz["fallback"] > 0
    assert byz["optimistic_ms"] > byz["bracha_ms"]
    # Loss degrades the advantage monotonically enough that the worst lossy
    # cell is strictly worse for optimistic than the lossless one.
    assert by_key[(0.2, 0)]["advantage_ms"] < good["advantage_ms"]


def _prefix_resilience():
    from repro.chaos import get_scenario, run_scenario

    result = run_scenario(get_scenario("slow-proposer-prefix"), monitors=True)
    return {
        "ok": result.ok,
        "prefix_commits": result.stats["prefix_commits"],
        "prefix_truncated": result.stats["prefix_truncated"],
        "chunks_committed": result.stats["prefix_chunks_committed"],
        "chunks_dropped": result.stats["prefix_chunks_dropped"],
        "min_ordered": result.stats["min_ordered"],
        "safety_anomalies": sum(
            1 for a in (result.stats.get("anomalies") or {}).items()
            if a[0] == "safety"
        ),
    }


def test_prefix_resilience(benchmark):
    row = run_once(benchmark, _prefix_resilience)
    emit([row], "rbc_prefix_resilience",
         "Certified-prefix commits under a slow proposer")
    assert row["ok"]
    # Non-empty prefixes commit even though the adversary forces truncation.
    assert row["prefix_commits"] > 0
    assert row["prefix_truncated"] > 0
    assert row["chunks_committed"] > row["chunks_dropped"]
    assert row["safety_anomalies"] == 0
