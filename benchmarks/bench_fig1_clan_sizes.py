"""FIG1 + SEC7-CLAN + SEC1-EX: clan-size statistics (paper Fig. 1, §1, §7).

Regenerates the Fig. 1 series (minimal clan size for failure < 1e-9 over
n = 100..1000), the §7 clan sizes at 1e-6, and checks the §1 intro example
(n=500, f=166, n_c=184 → ~1e-9).
"""


from repro.bench.experiments import fig1_clan_sizes, sec7_clan_sizes
from repro.committees.hypergeometric import dishonest_majority_prob

from .conftest import emit, run_once


def test_fig1_clan_size_curve(benchmark):
    rows = run_once(benchmark, fig1_clan_sizes)
    emit(rows, "fig1_clan_sizes", "Fig. 1 — minimal clan sizes (failure < 1e-9)")
    assert [r["n"] for r in rows] == list(range(100, 1001, 100))
    sizes = [r["clan_size"] for r in rows]
    # Fig. 1 shape: monotone growth, sublinear; the paper's curve tops out
    # around 225 at n=1000 (our exact minimum is 231 — within one threshold
    # convention of the figure), and n=500 lands at 183 vs the §1 example's
    # 184.
    assert sizes == sorted(sizes)
    assert sizes[-1] <= 235
    assert abs(dict(zip([r["n"] for r in rows], sizes))[500] - 184) <= 2
    fractions = [r["clan_fraction"] for r in rows]
    assert fractions[0] > fractions[-1]


def test_sec7_clan_sizes(benchmark):
    rows = run_once(benchmark, sec7_clan_sizes)
    emit(rows, "sec7_clan_sizes", "§7 — clan sizes at failure ≈ 1e-6")
    for row in rows:
        assert abs(row["exact_min_clan"] - row["paper_clan"]) <= 3


def test_sec1_intro_example(benchmark):
    prob = run_once(benchmark, dishonest_majority_prob, 500, 166, 184)
    emit(
        [{"n": 500, "f": 166, "clan": 184, "prob": f"{prob:.3e}", "paper": "~1e-9"}],
        "sec1_example",
        "§1 — intro committee example",
    )
    assert prob < 3e-9
