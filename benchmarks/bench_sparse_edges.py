"""SPARSE-EDGES: the Clownfish-style fan-out variant at tribe scale (n=150).

At n=150 a full-edge vertex carries ~2f+1 = 101 strong references (44 B
each, ~4.4 kB) and every vertex is replicated to all n nodes — per round
that is ~90 MB of pure edge metadata on the wire.  Sparse mode trims
non-leader vertices to ~log2 n references and compensates with the
any-edge indirect-commit rule (leaders keep full edges as the commit
backbone).  This bench runs the paper's largest sweep point once per
variant and asks the acceptance question directly:

* does sparse beat full on throughput **or** per-round message bytes?
* does a monitored sparse run at n=150 stay safety-anomaly-free?
* which latency segment does the thinner vertex actually buy back
  (forensics critical-path attribution, full vs sparse)?

Each n=150 point is ~15-20M simulator events (~5-7 min of wall clock per
variant on one core) — this file is for local/nightly runs, not CI; the CI
smoke point lives in ``scripts/bench_perf.py``.
"""

from repro.bench.runner import ExperimentConfig, _simulate
from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.forensics.monitors import MonitorSuite
from repro.forensics.provenance import attribution_rows, build_provenance
from repro.net.latency import gcp_latency_model
from repro.obs.tracer import Tracer
from repro.smr.mempool import SyntheticWorkload

from .conftest import emit, run_once

N = 150
LOAD = 32  # txns/proposal: header-bound regime, where edge metadata matters
BANDWIDTH = 400e6
# Measured round duration at this point is ~0.19 s; ~1.5 warmup rounds plus
# ~2 measured rounds keeps each variant to minutes, and per-round byte
# counts (the headline metric) are stable with few rounds.
WARMUP = 0.3
DURATION = 0.7

VARIANTS = (
    # (variant, protocol, edge_mode)
    ("sailfish-full", "sailfish", "full"),
    ("sailfish-sparse", "sailfish", "sparse"),
    ("single-clan", "single-clan", "full"),
    ("multi-clan", "multi-clan", "full"),
)


def _config(protocol: str, edge_mode: str, **overrides) -> ExperimentConfig:
    kwargs = dict(
        protocol=protocol,
        n=N,
        txns_per_proposal=LOAD,
        clan_size=N // 3,
        clans=3,
        bandwidth_bps=BANDWIDTH,
        duration=DURATION,
        warmup=WARMUP,
        edge_mode=edge_mode,
        track_kinds=True,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def _point(variant: str, protocol: str, edge_mode: str) -> dict:
    metrics = _simulate(_config(protocol, edge_mode))
    rounds = max(1, metrics.rounds)
    val_bytes = metrics.bytes_by_kind.get("VertexValMsg", 0)
    return {
        "variant": variant,
        "edge_mode": edge_mode,
        "rounds": rounds,
        "throughput_ktps": round(metrics.throughput_tps / 1000.0, 2),
        "p50_latency_s": round(metrics.p50_latency_s, 3),
        "MB_per_round": round(metrics.total_bytes / 1e6 / rounds, 1),
        "val_MB_per_round": round(val_bytes / 1e6 / rounds, 1),
        "msgs_per_round": metrics.total_messages // rounds,
    }


def _sweep() -> list[dict]:
    return [_point(*variant) for variant in VARIANTS]


def test_sparse_edge_sweep_n150(benchmark):
    rows = run_once(benchmark, _sweep)
    emit(rows, "sparse_edges_n150", f"Sparse vs full edges at n={N} (load {LOAD})")
    by = {r["variant"]: r for r in rows}
    full, sparse = by["sailfish-full"], by["sailfish-sparse"]
    # The acceptance bar: sparse beats full on throughput or per-round bytes.
    assert (
        sparse["throughput_ktps"] > full["throughput_ktps"]
        or sparse["MB_per_round"] < full["MB_per_round"]
    ), (sparse, full)
    # The mechanism, not just the outcome: the payload-bearing VAL traffic
    # (which carries the edge refs) must shrink, and message *counts* must
    # not change — sparse thins vertices, not the RBC message pattern.
    assert sparse["val_MB_per_round"] < full["val_MB_per_round"]
    assert abs(sparse["msgs_per_round"] - full["msgs_per_round"]) < (
        full["msgs_per_round"] * 0.1
    )


def _monitored_sparse() -> tuple[dict, list]:
    """One representative sparse point with the forensics monitors attached."""
    workload = SyntheticWorkload(txns_per_proposal=LOAD)
    deployment = Deployment(
        ClanConfig.baseline(N),
        ProtocolParams(verify_signatures=False, edge_mode="sparse"),
        latency=gcp_latency_model(N, jitter=0.05, seed=7),
        bandwidth_bps=BANDWIDTH,
        make_block=workload.make_block,
        seed=7,
    )
    suite = MonitorSuite().attach(deployment)
    deployment.start()
    deployment.run(until=0.55)
    suite.finish()
    deployment.check_total_order_consistency()
    # Realized fan-out from the DAG itself, rounds >= 2 (round 1 references
    # genesis fully, which would swamp a short run's average).
    store = deployment.nodes[0].store
    counts = [
        len(v.strong_edges)
        for r in range(2, deployment.nodes[0].round + 1)
        for v in store.round_vertices(r)
    ]
    row = {
        "n": N,
        "edge_mode": "sparse",
        "ordered": deployment.min_ordered(),
        "refs_per_vertex": round(sum(counts) / max(1, len(counts)), 2),
        "anomalies": len(suite.anomalies),
        "safety_anomalies": len(suite.safety_anomalies),
    }
    return row, suite.safety_anomalies


def test_sparse_monitored_safety(benchmark):
    row, safety = run_once(benchmark, _monitored_sparse)
    emit([row], "sparse_edges_monitored", f"Monitored sparse run at n={N}")
    assert safety == [], safety
    assert row["ordered"] > 0
    # Mean fan-out must sit near the auto fanout (log2 150 ~ 8), far below
    # the 101-ref quorum of full mode; leaders pull the mean up slightly.
    assert row["refs_per_vertex"] < 15


#: Record names build_provenance actually consumes.  An n=150 run emits tens
#: of millions of per-hop records; unfiltered they cycle the tracer's ring
#: buffer and evict the early proposal counters, leaving every commit with
#: ``proposed_at=None`` — i.e. an empty attribution.
_ATTRIBUTION_NAMES = frozenset(
    {
        "smr.block",
        "consensus.propose",
        "consensus.ordered",
        "smr.execute",
        "smr.submit",
        "smr.client_latency",
        "rbc.e2e",
        "rbc.block_e2e",
    }
)


class _AttributionTracer(Tracer):
    """A Tracer that buffers only the records provenance needs."""

    def _emit(self, record):
        if record.name in _ATTRIBUTION_NAMES:
            super()._emit(record)


def _attribution() -> list[dict]:
    """Critical-path attribution, full vs sparse: which segment moved."""
    rows = []
    for variant, edge_mode in (("sailfish-full", "full"), ("sailfish-sparse", "sparse")):
        tracer = _AttributionTracer()
        # Commit latency at this point is ~0.6 s — the run must outlive it
        # or the attribution window holds zero commit samples.
        _simulate(
            _config("sailfish", edge_mode, duration=0.8, warmup=0.2, track_kinds=False),
            tracer=tracer,
        )
        index = build_provenance(tracer.to_dicts())
        for row in attribution_rows(index):
            rows.append(
                {
                    "variant": variant,
                    "segment": row["segment"],
                    "samples": row["count"],
                    "mean_ms": round(row["mean"] * 1e3, 3),
                    "p50_ms": round(row["p50"] * 1e3, 3),
                    "p99_ms": round(row["p99"] * 1e3, 3),
                    "share": round(row["share"], 4),
                }
            )
    return rows


def test_sparse_attribution(benchmark):
    rows = run_once(benchmark, _attribution)
    emit(rows, "sparse_edges_attribution", f"Commit-latency attribution at n={N}")
    variants = {r["variant"] for r in rows}
    assert variants == {"sailfish-full", "sailfish-sparse"}
    # Hollow attribution (a run too short to commit) must fail, not pass.
    for variant in variants:
        assert sum(r["samples"] for r in rows if r["variant"] == variant) > 0, rows
