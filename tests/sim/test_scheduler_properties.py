"""Property tests for the scheduler: ordering, determinism, cancellation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


@settings(max_examples=60, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50
    )
)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    for now, delay in fired:
        assert now == delay


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=30
    ),
    cancel_indices=st.sets(st.integers(min_value=0, max_value=29)),
)
def test_cancelled_events_never_fire(delays, cancel_indices):
    sim = Simulator()
    fired = []
    handles = [
        sim.schedule(delay, fired.append, idx) for idx, delay in enumerate(delays)
    ]
    cancelled = {i for i in cancel_indices if i < len(handles)}
    for idx in cancelled:
        handles[idx].cancel()
    sim.run()
    assert set(fired) == set(range(len(delays))) - cancelled


@settings(max_examples=30, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30
    ),
    split=st.floats(min_value=0.0, max_value=10.0),
)
def test_run_until_is_a_clean_partition(delays, split):
    """run(until=t) then run() fires the same sequence as one run()."""
    def collect(two_phase):
        sim = Simulator()
        fired = []
        for idx, delay in enumerate(delays):
            sim.schedule(delay, fired.append, idx)
        if two_phase:
            sim.run(until=split)
            sim.run()
        else:
            sim.run()
        return fired

    assert collect(True) == collect(False)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_cascading_schedules_deterministic(seed):
    """Events that schedule further events replay identically."""
    import random

    def run():
        rng = random.Random(seed)
        sim = Simulator()
        trace = []

        def step(depth):
            trace.append((round(sim.now, 9), depth))
            if depth < 3:
                for _ in range(rng.randint(1, 3)):
                    sim.schedule(rng.random(), step, depth + 1)

        sim.schedule(0.0, step, 0)
        sim.run(max_events=10_000)
        return trace

    assert run() == run()
