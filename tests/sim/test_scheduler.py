"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in range(10):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == list(range(10))


def test_schedule_from_within_event():
    sim = Simulator()
    seen = []

    def first():
        seen.append(("first", sim.now))
        sim.schedule(0.5, second)

    def second():
        seen.append(("second", sim.now))

    sim.schedule(1.0, first)
    sim.run()
    assert seen == [("first", 1.0), ("second", 1.5)]


def test_zero_delay_event_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [1.0]


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_run_until_includes_boundary_events():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "x")
    sim.run(until=2.0)
    assert fired == ["x"]


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_stop_halts_run():
    sim = Simulator()
    fired = []

    def first():
        fired.append(1)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]
    # After stop, the second event is still pending and runs on the next run().
    assert sim.pending_events == 1
    sim.run()
    assert fired == [1, 2]


def test_max_events_guard():
    sim = Simulator()

    def loop():
        sim.schedule(0.1, loop)

    sim.schedule(0.1, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_processed_events_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.processed_events == 5


def test_advance_clock_with_no_events():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0
