"""Heap compaction: cancelled entries must not accumulate unboundedly.

Timer-heavy workloads (a leader timer per node per round, almost always
cancelled before firing) used to leave every dead entry in the heap until the
run loop popped it.  Compaction rebuilds the heap once cancelled entries pass
the threshold AND make up at least half the queue.
"""

from repro.sim import Simulator
from repro.sim.timers import Timer


def test_10k_cancelled_timers_are_compacted():
    sim = Simulator(compact_threshold=1024)
    handles = [sim.schedule(100.0 + i * 1e-6, lambda: None) for i in range(10_000)]
    assert sim.pending_events == 10_000
    for handle in handles:
        handle.cancel()
    # Compaction ran (several times) and emptied the heap of dead entries.
    assert sim.compactions >= 1
    assert sim.pending_events < 1024
    assert sim.cancelled_pending < 1024
    sim.run()
    assert sim.processed_events == 0


def test_compaction_respects_threshold():
    sim = Simulator(compact_threshold=1024)
    handles = [sim.schedule(1.0, lambda: None) for i in range(1000)]
    for handle in handles:
        handle.cancel()
    # Under the threshold: no compaction yet, dead entries still queued.
    assert sim.compactions == 0
    assert sim.pending_events == 1000


def test_compaction_preserves_live_events():
    sim = Simulator(compact_threshold=64)
    fired = []
    live = [sim.schedule(float(i + 1), fired.append, i) for i in range(50)]
    dead = [sim.schedule(1000.0, fired.append, "never") for _ in range(200)]
    for handle in dead:
        handle.cancel()
    assert sim.compactions >= 1
    sim.run()
    assert fired == list(range(50))
    assert all(not h.cancelled for h in live)


def test_compaction_mid_run_keeps_loop_consistent():
    """Cancellations from inside callbacks trigger compaction while the run
    loop holds its local alias to the heap; the rebuild must be in-place."""
    sim = Simulator(compact_threshold=128)
    fired = []
    pending = []

    def cancel_batch_and_schedule(i):
        fired.append(i)
        for handle in pending:
            handle.cancel()
        pending.clear()
        if i < 20:
            # Re-arm a fresh batch of soon-to-be-cancelled timers, like a
            # node resetting its leader timeout each round.
            for _ in range(100):
                pending.append(sim.schedule(500.0, fired.append, "never"))
            sim.schedule(0.1, cancel_batch_and_schedule, i + 1)

    sim.schedule(0.1, cancel_batch_and_schedule, 0)
    sim.run()
    assert fired == list(range(21))
    assert sim.compactions >= 1


def test_cancel_is_idempotent_in_accounting():
    sim = Simulator(compact_threshold=1024)
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    handle.cancel()
    assert sim.cancelled_pending == 1


def test_timers_feed_compaction():
    sim = Simulator(compact_threshold=256)
    timers = [Timer(sim, 100.0, lambda: None) for _ in range(2000)]
    for timer in timers:
        timer.start()
    for timer in timers:
        timer.cancel()
    assert sim.compactions >= 1
    sim.run()
    assert sim.processed_events == 0
