"""Tests for timers and named RNG streams."""

import pytest

from repro.sim import Simulator, Timer, make_rng, stream_seed


def test_timer_fires_after_duration():
    sim = Simulator()
    fired = []
    timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
    timer.start()
    sim.run()
    assert fired == [2.0]


def test_timer_cancel():
    sim = Simulator()
    fired = []
    timer = Timer(sim, 2.0, fired.append, "x")
    timer.start()
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.running


def test_timer_restart_resets_deadline():
    sim = Simulator()
    fired = []
    timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
    timer.start()
    sim.schedule(1.0, timer.start)  # restart at t=1 -> fires at t=3
    sim.run()
    assert fired == [3.0]


def test_timer_restart_with_new_duration():
    sim = Simulator()
    fired = []
    timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
    timer.start(duration=5.0)
    sim.run()
    assert fired == [5.0]


def test_timer_running_flag():
    sim = Simulator()
    timer = Timer(sim, 1.0, lambda: None)
    assert not timer.running
    timer.start()
    assert timer.running
    sim.run()
    assert not timer.running


def test_stream_seed_deterministic_and_distinct():
    assert stream_seed(1, "a") == stream_seed(1, "a")
    assert stream_seed(1, "a") != stream_seed(1, "b")
    assert stream_seed(1, "a") != stream_seed(2, "a")
    assert stream_seed(1, "a", "b") != stream_seed(1, "ab")


@pytest.mark.rederives_rng_streams
def test_make_rng_streams_independent():
    a1 = make_rng(7, "x").random()
    b1 = make_rng(7, "y").random()
    a2 = make_rng(7, "x").random()
    assert a1 == a2
    assert a1 != b1


def test_times_close_absorbs_float_accumulation():
    from repro.sim import times_close

    # Ten steps of 0.1 don't == 1.0 in floats; times_close says same instant.
    t = 0.0
    for _ in range(10):
        t += 0.1
    assert t != 1.0
    assert times_close(t, 1.0)
    assert not times_close(t, 1.1)
