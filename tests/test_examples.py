"""Smoke tests: every example script runs to completion and prints its story.

Run as subprocesses so the examples stay honest standalone programs.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

EXAMPLES = {
    "quickstart.py": ["replica states: consistent", "accepted=True"],
    "single_clan_scaling.py": ["of baseline", "outsiders order digests only"],
    "shared_sequencer.py": ["global order interleaves clans"],
    "byzantine_resilience.py": [
        "safety: honest total orders are consistent",
        "pull path",
    ],
    "committee_planner.py": ["projected peak stable throughput"],
    "sharded_blockchain.py": ["decision=commit", "consistent on both shards"],
}


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "examples", script)],
        capture_output=True,
        text=True,
        timeout=240,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in EXAMPLES[script]:
        assert marker in result.stdout, (
            f"{script}: expected {marker!r} in output:\n{result.stdout[-2000:]}"
        )


def test_committee_planner_accepts_arguments():
    result = subprocess.run(
        [
            sys.executable,
            os.path.join(REPO_ROOT, "examples", "committee_planner.py"),
            "300",
            "9",
        ],
        capture_output=True,
        text=True,
        timeout=120,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0
    assert "n=300" in result.stdout
