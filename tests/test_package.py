"""Package-level API surface tests."""

import repro


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_public_subpackages_importable():
    import importlib

    for name in repro.__all__:
        module = importlib.import_module(f"repro.{name}")
        assert module.__doc__, f"repro.{name} lacks a module docstring"


def test_membership_from_clan_config():
    from repro.committees import ClanConfig
    from repro.rbc.base import Membership

    cfg = ClanConfig.multi_clan(12, 2, seed=1)
    membership = Membership.from_clan_config(cfg, 1)
    assert membership.n == 12
    assert membership.clan == cfg.clan(1)
    assert membership.clan_quorum == cfg.clan_echo_quorum(1)


def test_every_public_module_has_docstrings():
    """Spot-check that core public classes carry documentation."""
    from repro.consensus import Deployment, SailfishNode
    from repro.rbc import TribeBrachaRbc, TribeTwoRoundRbc
    from repro.smr import Client, Executor, SmrRuntime

    for obj in (Deployment, SailfishNode, TribeBrachaRbc, TribeTwoRoundRbc,
                Client, Executor, SmrRuntime):
        assert obj.__doc__, obj
