"""Whole-stack determinism: identical seeds → bit-identical executions.

Reproducibility is a core deliverable of the harness: every figure must be
regenerable.  These tests run complete deployments twice and compare not
just outcomes but event counts and traffic bytes.
"""


from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.consensus.byzantine import CrashAt, EquivocatingProposer
from repro.net.latency import gcp_latency_model
from repro.smr.mempool import SyntheticWorkload


def run_once(seed, byzantine=False):
    workload = SyntheticWorkload(txns_per_proposal=20)
    byz = {3: EquivocatingProposer(), 5: CrashAt(2.0)} if byzantine else {}
    deployment = Deployment(
        ClanConfig.single_clan(10, 5, seed=seed),
        ProtocolParams(),
        latency=gcp_latency_model(10, seed=seed),
        bandwidth_bps=300e6,
        make_block=workload.make_block,
        byzantine=byz,
        seed=seed,
    )
    deployment.start()
    deployment.run(until=6.0, max_events=10_000_000)
    return deployment


def fingerprint(deployment):
    return (
        deployment.sim.processed_events,
        deployment.network.stats.total_bytes,
        deployment.network.stats.total_messages,
        tuple(deployment.nodes[0].ordered_keys()),
        tuple(node.round for node in deployment.nodes),
    )


def test_identical_seeds_identical_everything():
    assert fingerprint(run_once(11)) == fingerprint(run_once(11))


def test_identical_seeds_with_byzantine_nodes():
    a = fingerprint(run_once(11, byzantine=True))
    b = fingerprint(run_once(11, byzantine=True))
    assert a == b


def test_different_seeds_differ():
    assert fingerprint(run_once(11)) != fingerprint(run_once(12))


def test_seed_changes_clan_election_only_where_expected():
    cfg_a = ClanConfig.single_clan(20, 8, seed=1)
    cfg_b = ClanConfig.single_clan(20, 8, seed=1)
    cfg_c = ClanConfig.single_clan(20, 8, seed=2)
    assert cfg_a.clan(0) == cfg_b.clan(0)
    assert cfg_a.clan(0) != cfg_c.clan(0)
