"""Tests for the shared quorum arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.types import (
    clan_max_faults,
    clan_response_quorum,
    max_faults,
    quorum_size,
    validate_tribe,
)


def test_known_values():
    assert max_faults(4) == 1
    assert max_faults(7) == 2
    assert max_faults(150) == 49
    assert quorum_size(148) == 99  # 148 = 3*49+1
    assert quorum_size(150) == 100  # intersection-safe above 3f+1
    assert clan_max_faults(80) == 39
    assert clan_response_quorum(80) == 40


def test_minimum_sizes():
    assert max_faults(1) == 0
    assert quorum_size(1) == 1
    assert clan_max_faults(1) == 0
    assert clan_response_quorum(1) == 1


def test_validation_errors():
    with pytest.raises(ConfigError):
        max_faults(0)
    with pytest.raises(ConfigError):
        clan_max_faults(0)
    with pytest.raises(ConfigError):
        validate_tribe(10, f=4)  # f must be < n/3
    with pytest.raises(ConfigError):
        validate_tribe(10, f=-1)


def test_validate_tribe_defaults_to_max():
    assert validate_tribe(100) == 33
    assert validate_tribe(100, 10) == 10


@given(n=st.integers(min_value=1, max_value=10_000))
def test_tribe_quorum_intersection_property(n):
    """Two quorums always intersect in at least f+1 parties."""
    f = max_faults(n)
    quorum = quorum_size(n)
    assert 3 * f < n
    assert 2 * quorum - n >= f + 1


@given(n_c=st.integers(min_value=1, max_value=10_000))
def test_clan_honest_majority_property(n_c):
    """f_c faults still leave a strict honest majority."""
    f_c = clan_max_faults(n_c)
    honest = n_c - f_c
    assert honest > f_c
    assert clan_response_quorum(n_c) == f_c + 1
    assert honest >= clan_response_quorum(n_c)
