"""Tests for the Jolteon-style leader SMR and the full straw-man system."""

import pytest

from repro.committees import ClanConfig
from repro.crypto.signatures import Pki
from repro.net.latency import UniformLatencyModel
from repro.net.network import Network
from repro.sim import Simulator
from repro.smr.mempool import SyntheticWorkload
from repro.strawman import JolteonNode, JolteonParams, StrawmanSystem

N = 7
DELTA = 0.05


def build(n=N, timeout=2.0):
    sim = Simulator()
    net = Network(sim, n, latency=UniformLatencyModel(DELTA))
    pki = Pki(n, seed=1)
    commits = {i: [] for i in range(n)}
    nodes = []
    for i in range(n):
        node = JolteonNode(
            i, n, net, sim, pki, JolteonParams(view_timeout=timeout),
            on_commit=lambda p, t, i=i: commits[i].append((p.view, t)),
        )
        net.register(i, lambda src, msg, node=node: node.on_message(src, msg))
        nodes.append(node)
    return sim, net, nodes, commits


def test_chain_grows_and_commits():
    sim, net, nodes, commits = build()
    for node in nodes:
        node.start()
    sim.run(until=3.0, max_events=2_000_000)
    assert nodes[0].view > 20
    assert len(commits[0]) > 15
    # Every replica commits the same view sequence.
    shared = min(len(commits[i]) for i in range(N))
    prefixes = {tuple(v for v, _ in commits[i][:shared]) for i in range(N)}
    assert len(prefixes) == 1


def test_views_are_consecutive_in_good_case():
    sim, net, nodes, commits = build()
    for node in nodes:
        node.start()
    sim.run(until=2.0, max_events=2_000_000)
    views = [v for v, _ in commits[0]]
    assert views == list(range(views[0], views[0] + len(views)))


def test_commit_latency_five_delta():
    """Two-chain commit: a view's proposal commits ~5δ later at replicas."""
    sim, net, nodes, commits = build()
    for node in nodes:
        node.start()
    sim.run(until=3.0, max_events=2_000_000)
    # View v proposed at (v-1)*2δ in the steady state; committed at +5δ.
    samples = [(v, t) for v, t in commits[0] if 5 <= v <= 15]
    for view, committed_at in samples:
        proposed_at = (view - 1) * 2 * DELTA
        assert committed_at - proposed_at == pytest.approx(5 * DELTA, rel=0.2)


def test_crashed_leader_rotated_past():
    sim, net, nodes, commits = build(timeout=0.5)
    for node in nodes:
        node.start()
    net.crash(1)  # leader of views 2, 9, 16, ...
    sim.run(until=12.0, max_events=4_000_000)
    assert len(commits[0]) > 10
    shared = min(len(commits[i]) for i in range(N) if i != 1)
    prefixes = {
        tuple(v for v, _ in commits[i][:shared]) for i in range(N) if i != 1
    }
    assert len(prefixes) == 1


def test_strawman_end_to_end_commits_blocks():
    workload = SyntheticWorkload(txns_per_proposal=10)
    cfg = ClanConfig.single_clan(10, 5, seed=1)
    system = StrawmanSystem(
        cfg, latency=UniformLatencyModel(DELTA), make_block=workload.make_block, seed=1
    )
    system.start()
    for k in range(5):
        system.sim.schedule(0.5 + 0.3 * k, system.propose_blocks)
    system.run(until=12.0, max_events=5_000_000)
    committed = system.committed_everywhere()
    assert len(committed) == 5 * len(cfg.block_proposers)


def test_strawman_latency_at_least_eight_delta():
    """The paper's §1/§8 argument: the sequential PoA pipeline costs ≥ 8δ."""
    workload = SyntheticWorkload(txns_per_proposal=10)
    cfg = ClanConfig.single_clan(10, 5, seed=1)
    system = StrawmanSystem(
        cfg, latency=UniformLatencyModel(DELTA), make_block=workload.make_block, seed=1
    )
    system.start()
    for k in range(8):
        system.sim.schedule(0.5 + 0.3 * k, system.propose_blocks)
    system.run(until=15.0, max_events=5_000_000)
    committed = system.committed_everywhere()
    latencies = [
        when - workload.blocks[digest][1] for digest, when in committed.items()
    ]
    avg = sum(latencies) / len(latencies)
    assert avg >= 7.5 * DELTA
    assert avg <= 14 * DELTA
