"""Additional straw-man coverage: wire sizes, PoA verification, view math."""

import pytest

from repro.committees import ClanConfig
from repro.crypto.signatures import Pki
from repro.dag.block import Block
from repro.net import sizes
from repro.strawman.jolteon import (
    JolteonParams,
    Proposal,
    ProposalMsg,
    new_view_statement,
    proposal_statement,
    vote_statement,
)
from repro.strawman.poa import PoA, PoaAckMsg, PoaBlockMsg, ack_statement
from repro.crypto.certificates import build_certificate
from repro.errors import ConsensusError

PKI = Pki(10, seed=2)
CFG = ClanConfig.single_clan(10, 5, seed=1)


def make_poa(proposer=None, txns=100):
    proposer = proposer if proposer is not None else sorted(CFG.clan(0))[0]
    block = Block.synthetic(proposer, 1, txn_count=txns, created_at=0.0)
    digest = block.payload_digest()
    quorum = CFG.clan_client_quorum(0)
    signers = sorted(CFG.clan(0))[:quorum]
    cert = build_certificate(
        [PKI.key(i).sign(ack_statement(digest)) for i in signers]
    )
    return PoA(digest, proposer, 0, cert, txns, 0.0)


def test_poa_block_msg_size_is_payload_dominated():
    block = Block.synthetic(0, 1, txn_count=2000, created_at=0.0)
    msg = PoaBlockMsg(block)
    assert msg.wire_size() == block.wire_size() + sizes.HEADER_SIZE
    assert msg.wire_size() > 1_000_000


def test_poa_ack_msg_size():
    sig = PKI.key(1).sign(ack_statement(b"\x00" * 32))
    assert PoaAckMsg(b"\x00" * 32, sig).wire_size() == 40 + 32 + 64


def test_poa_verifies_against_config():
    poa = make_poa()
    assert poa.verify(PKI, CFG)
    assert len(poa.signers) == CFG.clan_client_quorum(0)


def test_poa_wire_size_constant_in_payload():
    small, large = make_poa(txns=1), make_poa(txns=5000)
    assert small.wire_size() == large.wire_size()  # PoAs carry digests only


def test_proposal_digest_binds_batch_and_parent():
    poa = make_poa()
    p1 = Proposal(2, 0, (poa,), b"\x01" * 32, None)
    p2 = Proposal(2, 0, (), b"\x01" * 32, None)
    p3 = Proposal(2, 0, (poa,), b"\x02" * 32, None)
    assert len({p1.digest(), p2.digest(), p3.digest()}) == 3


def test_proposal_msg_size_scales_with_batch():
    poas = tuple(make_poa(proposer=p) for p in sorted(CFG.clan(0))[:3])
    sig = PKI.key(0).sign(proposal_statement(2, b"\x00" * 32))
    small = ProposalMsg(Proposal(2, 0, poas[:1], None, None), sig)
    large = ProposalMsg(Proposal(2, 0, poas, None, None), sig)
    assert large.wire_size() - small.wire_size() == 2 * poas[0].wire_size()


def test_jolteon_statements_domain_separated():
    d = b"\x03" * 32
    assert proposal_statement(1, d) != vote_statement(1, d)
    assert new_view_statement(1) != new_view_statement(2)


def test_jolteon_params_validation():
    with pytest.raises(ConsensusError):
        JolteonParams(view_timeout=0)
    with pytest.raises(ConsensusError):
        JolteonParams(max_batch=0)
