"""Tests for the PoA dissemination layer."""

import pytest

from repro.committees import ClanConfig
from repro.crypto.signatures import Pki, Signature
from repro.dag.block import Block
from repro.net.latency import UniformLatencyModel
from repro.net.network import Network
from repro.errors import ConsensusError
from repro.sim import Simulator
from repro.strawman.poa import PoaAckMsg, PoaDisseminator, ack_statement


def build(cfg=None):
    cfg = cfg or ClanConfig.single_clan(10, 5, seed=1)
    sim = Simulator()
    net = Network(sim, cfg.n, latency=UniformLatencyModel(0.05))
    pki = Pki(cfg.n, seed=1)
    poas = {i: [] for i in range(cfg.n)}
    modules = []
    for i in range(cfg.n):
        module = PoaDisseminator(i, cfg, net, pki, lambda p, i=i: poas[i].append(p))
        net.register(i, lambda src, msg, m=module: m.on_message(src, msg))
        modules.append(module)
    return cfg, sim, net, pki, poas, modules


def make_block(proposer, txns=5):
    return Block.synthetic(proposer, 1, txn_count=txns, created_at=0.0)


def test_poa_forms_after_fc_plus_1_acks():
    cfg, sim, net, pki, poas, modules = build()
    proposer = sorted(cfg.clan(0))[0]
    block = make_block(proposer)
    modules[proposer].disseminate(block)
    sim.run(until=5.0)
    assert len(poas[proposer]) == 1
    poa = poas[proposer][0]
    assert poa.block_digest == block.payload_digest()
    assert len(poa.signers) == cfg.clan_client_quorum(0)
    assert poa.verify(pki, cfg)
    # PoA formed at 2δ (push + ack round trip).
    assert sim.now >= 0.1


def test_clan_members_store_the_block():
    cfg, sim, net, pki, poas, modules = build()
    proposer = sorted(cfg.clan(0))[0]
    block = make_block(proposer)
    modules[proposer].disseminate(block)
    sim.run(until=5.0)
    for member in cfg.clan(0):
        assert block.payload_digest() in modules[member].stored
    for outsider in set(range(cfg.n)) - cfg.clan(0):
        assert block.payload_digest() not in modules[outsider].stored


def test_non_proposer_cannot_disseminate():
    cfg, sim, net, pki, poas, modules = build()
    outsider = next(i for i in range(cfg.n) if i not in cfg.clan(0))
    with pytest.raises(ConsensusError):
        modules[outsider].disseminate(make_block(outsider))


def test_poa_with_insufficient_acks_never_forms():
    cfg, sim, net, pki, poas, modules = build()
    proposer = sorted(cfg.clan(0))[0]
    # Crash all other clan members: only the proposer's self-ack remains.
    for member in cfg.clan(0):
        if member != proposer:
            net.crash(member)
    modules[proposer].disseminate(make_block(proposer))
    sim.run(until=5.0)
    assert poas[proposer] == []


def test_forged_ack_rejected():
    cfg, sim, net, pki, poas, modules = build()
    proposer = sorted(cfg.clan(0))[0]
    members = sorted(cfg.clan(0))
    block = make_block(proposer)
    digest = block.payload_digest()
    # Crash everyone else so only forged acks could complete the PoA.
    for member in members:
        if member != proposer:
            net.crash(member)
    modules[proposer].disseminate(block)
    forged = Signature(members[1], ack_statement(digest), b"\x00" * 16)
    modules[proposer]._on_ack(members[1], PoaAckMsg(digest, forged))
    sim.run(until=2.0)
    assert poas[proposer] == []


def test_poa_verify_rejects_wrong_clan_signers():
    cfg, sim, net, pki, poas, modules = build()
    proposer = sorted(cfg.clan(0))[0]
    modules[proposer].disseminate(make_block(proposer))
    sim.run(until=5.0)
    poa = poas[proposer][0]
    # Re-target the PoA at a config where those signers are no clan.
    other_cfg = ClanConfig.single_clan(10, 5, seed=99)
    if other_cfg.clan(0) != cfg.clan(0):
        assert not poa.verify(pki, other_cfg)


def test_multi_clan_dissemination_stays_local():
    cfg = ClanConfig.multi_clan(12, 3, seed=2)
    cfg, sim, net, pki, poas, modules = build(cfg)
    for clan_idx in range(3):
        proposer = sorted(cfg.clan(clan_idx))[0]
        modules[proposer].disseminate(make_block(proposer, txns=3))
    sim.run(until=5.0)
    for clan_idx in range(3):
        proposer = sorted(cfg.clan(clan_idx))[0]
        assert len(poas[proposer]) == 1
        assert poas[proposer][0].clan_idx == clan_idx
