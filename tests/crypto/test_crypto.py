"""Tests for hashing, signatures, BLS aggregation, quorum certificates."""

import pytest

from repro.crypto import (
    KeyPair,
    MultiSignature,
    Pki,
    Signature,
    aggregate,
    digest,
    digest_hex,
)
from repro.crypto.bls import find_invalid_signers, verify_aggregate
from repro.crypto.certificates import (
    build_certificate,
    require_valid_certificate,
    verify_certificate,
)
from repro.errors import CryptoError


def test_digest_deterministic():
    assert digest("a", 1) == digest("a", 1)
    assert len(digest("a")) == 32


def test_digest_injective_encoding():
    assert digest("ab", "c") != digest("a", "bc")
    assert digest(b"ab") != digest("ab")  # bytes vs repr of str differ


def test_digest_hex_matches():
    assert digest_hex("x") == digest("x").hex()


def test_sign_and_verify():
    pki = Pki(4, seed=1)
    d = digest("hello")
    sig = pki.key(2).sign(d)
    assert sig.signer == 2
    assert pki.verify(sig)


def test_forged_signer_rejected():
    pki = Pki(4, seed=1)
    d = digest("hello")
    sig = pki.key(2).sign(d)
    forged = Signature(signer=3, message_digest=d, tag=sig.tag)
    assert not pki.verify(forged)


def test_wrong_digest_rejected():
    pki = Pki(4, seed=1)
    sig = pki.key(0).sign(digest("a"))
    tampered = Signature(sig.signer, digest("b"), sig.tag)
    assert not pki.verify(tampered)


def test_unknown_signer_rejected():
    pki = Pki(4, seed=1)
    sig = Signature(99, digest("a"), b"\x00" * 16)
    assert not pki.verify(sig)


def test_sign_requires_bytes():
    key = KeyPair(0, b"s" * 32)
    with pytest.raises(CryptoError):
        key.sign("not-bytes")


def test_different_seeds_different_keys():
    d = digest("m")
    assert Pki(4, seed=1).key(0).sign(d).tag != Pki(4, seed=2).key(0).sign(d).tag


def test_aggregate_and_verify():
    pki = Pki(7, seed=1)
    d = digest("block")
    sigs = [pki.key(i).sign(d) for i in range(5)]
    multi = aggregate(sigs)
    assert multi.signers == frozenset(range(5))
    assert verify_aggregate(pki, multi)


def test_aggregate_order_independent():
    pki = Pki(4, seed=1)
    d = digest("m")
    sigs = [pki.key(i).sign(d) for i in range(3)]
    assert aggregate(sigs).tag == aggregate(list(reversed(sigs))).tag


def test_aggregate_with_bad_signature_fails_verification():
    pki = Pki(4, seed=1)
    d = digest("m")
    good = [pki.key(i).sign(d) for i in range(2)]
    bad = Signature(3, d, b"\xff" * 16)
    multi = aggregate(good + [bad])
    assert not verify_aggregate(pki, multi)
    assert find_invalid_signers(pki, good + [bad]) == [3]


def test_aggregate_rejects_mixed_digests():
    pki = Pki(4, seed=1)
    with pytest.raises(CryptoError):
        aggregate([pki.key(0).sign(digest("a")), pki.key(1).sign(digest("b"))])


def test_aggregate_rejects_duplicates_and_empty():
    pki = Pki(4, seed=1)
    sig = pki.key(0).sign(digest("a"))
    with pytest.raises(CryptoError):
        aggregate([sig, sig])
    with pytest.raises(CryptoError):
        aggregate([])


def test_multisig_wire_size_uses_bitmap():
    multi = MultiSignature(digest("m"), frozenset({0, 1}), b"t" * 16)
    assert multi.wire_size(8) == 48 + 1
    assert multi.wire_size(9) == 48 + 2


def test_certificate_thresholds():
    pki = Pki(10, seed=1)
    d = digest("v")
    sigs = [pki.key(i).sign(d) for i in range(7)]
    cert = build_certificate(sigs)
    assert verify_certificate(pki, cert, quorum=7)
    assert not verify_certificate(pki, cert, quorum=8)


def test_certificate_clan_threshold():
    pki = Pki(10, seed=1)
    d = digest("v")
    clan = frozenset({0, 1, 2})
    sigs = [pki.key(i).sign(d) for i in (0, 1, 5, 6, 7)]
    cert = build_certificate(sigs)
    assert verify_certificate(pki, cert, quorum=5, clan=clan, clan_quorum=2)
    assert not verify_certificate(pki, cert, quorum=5, clan=clan, clan_quorum=3)


def test_require_valid_certificate_raises():
    pki = Pki(4, seed=1)
    cert = build_certificate([pki.key(0).sign(digest("v"))])
    with pytest.raises(CryptoError):
        require_valid_certificate(pki, cert, quorum=3)
