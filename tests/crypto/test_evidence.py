"""Tests for equivocation evidence (fraud proofs) and its consensus wiring."""

import pytest

from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.consensus.byzantine import EquivocatingProposer
from repro.consensus.messages import vertex_val_statement
from repro.crypto.evidence import EquivocationEvidence, EvidencePool
from repro.crypto.hashing import digest
from repro.crypto.signatures import Pki, Signature
from repro.errors import CryptoError
from repro.smr.mempool import SyntheticWorkload

PKI = Pki(8, seed=2)


def signed(origin, round_, d):
    return PKI.key(origin).sign(vertex_val_statement(origin, round_, d))


def test_pool_emits_proof_on_second_digest():
    pool = EvidencePool()
    d1, d2 = digest(b"a"), digest(b"b")
    assert pool.record(3, 1, d1, signed(3, 1, d1)) is None
    proof = pool.record(3, 1, d2, signed(3, 1, d2))
    assert proof is not None
    assert proof.verify(PKI, vertex_val_statement)
    assert pool.convicted() == {3}


def test_pool_deduplicates_same_digest():
    pool = EvidencePool()
    d1 = digest(b"a")
    pool.record(3, 1, d1, signed(3, 1, d1))
    assert pool.record(3, 1, d1, signed(3, 1, d1)) is None
    assert pool.proofs == []


def test_pool_one_conviction_per_instance():
    pool = EvidencePool()
    for tag in (b"a", b"b", b"c"):
        d = digest(tag)
        pool.record(3, 1, d, signed(3, 1, d))
    assert len(pool.proofs) == 1


def test_pool_rejects_mismatched_signer():
    pool = EvidencePool()
    d = digest(b"a")
    with pytest.raises(CryptoError):
        pool.record(3, 1, d, signed(4, 1, d))


def test_evidence_rejects_equal_digests():
    d = digest(b"a")
    proof = EquivocationEvidence(3, 1, d, d, signed(3, 1, d), signed(3, 1, d))
    assert not proof.verify(PKI, vertex_val_statement)


def test_evidence_rejects_forged_signature():
    d1, d2 = digest(b"a"), digest(b"b")
    forged = Signature(3, vertex_val_statement(3, 1, d2), b"\x00" * 16)
    proof = EquivocationEvidence(3, 1, d1, d2, signed(3, 1, d1), forged)
    assert not proof.verify(PKI, vertex_val_statement)


def test_evidence_rejects_wrong_round_binding():
    d1, d2 = digest(b"a"), digest(b"b")
    # Signatures are over round 2, but the evidence claims round 1.
    proof = EquivocationEvidence(3, 1, d1, d2, signed(3, 2, d1), signed(3, 2, d2))
    assert not proof.verify(PKI, vertex_val_statement)


def test_equivocating_proposer_convicted_in_consensus():
    """End to end: the Byzantine proposer's split VALs produce verifiable
    fraud proofs on honest nodes (via the vertex pull path that reveals the
    second signed version)."""
    workload = SyntheticWorkload(txns_per_proposal=3)
    deployment = Deployment(
        ClanConfig.baseline(7),
        ProtocolParams(),
        make_block=workload.make_block,
        byzantine={3: EquivocatingProposer()},
        seed=4,
    )
    deployment.start()
    deployment.run(until=8.0, max_events=10_000_000)
    convicted = set()
    for i in deployment.honest_ids:
        for proof in deployment.nodes[i].rbc.evidence.proofs:
            assert proof.verify(deployment.pki, vertex_val_statement)
            convicted.add(proof.origin)
    assert convicted <= {3}  # never a false conviction of an honest node
    # Note: a conviction requires one node to SEE both signed versions, which
    # the split dissemination avoids; conviction is opportunistic.  Honest
    # runs must produce zero proofs:
    clean = Deployment(ClanConfig.baseline(4), make_block=workload.make_block)
    clean.start()
    clean.run(until=3.0, max_events=5_000_000)
    for node in clean.nodes:
        assert node.rbc.evidence.proofs == []
