"""Tests for multi-clan partition statistics (§6.2, Eqs. 3–7)."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.committees.multiclan import (
    equal_partition_prob,
    max_equal_clans,
    multi_clan_dishonest_prob,
)
from repro.errors import CommitteeError
from repro.types import clan_max_faults, max_faults


def test_paper_concrete_two_clans_n150():
    # §6.2: n=150 split into two clans -> ~4.015e-6.
    p = equal_partition_prob(150, 2)
    assert p == pytest.approx(4.015e-6, rel=1e-3)


def test_paper_concrete_three_clans_n387():
    # §6.2: n=387 split into three clans -> ~1.11e-6.
    p = equal_partition_prob(387, 3)
    assert p == pytest.approx(1.11e-6, rel=1e-2)


def test_single_clan_partition_never_fails():
    # The whole tribe as one clan: f < n/3 < n/2.
    assert multi_clan_dishonest_prob(100, 33, [100]) == 0.0


def test_zero_faults_never_fails():
    assert multi_clan_dishonest_prob(60, 0, [30, 30]) == 0.0


def test_too_many_faults_always_fails():
    # 2 clans of 4, f=7: some clan must get >= 4 > f_c=1 ... brute bound:
    # any split (w1, w2), w1+w2=7, max >= 4 > f_c(4)=1 -> probability 1.
    assert multi_clan_dishonest_prob(8, 7, [4, 4]) == 1.0


def test_brute_force_small_partition():
    """Exhaustively enumerate partitions of a small tribe and compare."""
    n, f, sizes = 6, 2, [3, 3]
    byz = set(range(f))
    parties = list(range(n))
    total = 0
    good = 0
    for clan1 in itertools.combinations(parties, sizes[0]):
        clan2 = [p for p in parties if p not in clan1]
        total += 1
        ok = True
        for clan in (clan1, clan2):
            faults = sum(1 for p in clan if p in byz)
            if faults > clan_max_faults(len(clan)):
                ok = False
        if ok:
            good += 1
    expected = 1 - good / total
    assert multi_clan_dishonest_prob(n, f, sizes) == pytest.approx(expected)


def test_brute_force_three_uneven_clans():
    n, f, sizes = 9, 2, [4, 3, 2]
    byz = set(range(f))
    parties = list(range(n))
    total = 0
    good = 0
    for clan1 in itertools.combinations(parties, sizes[0]):
        rest1 = [p for p in parties if p not in clan1]
        for clan2 in itertools.combinations(rest1, sizes[1]):
            clan3 = [p for p in rest1 if p not in clan2]
            total += 1
            if all(
                sum(1 for p in clan if p in byz) <= clan_max_faults(len(clan))
                for clan in (clan1, clan2, clan3)
            ):
                good += 1
    expected = 1 - good / total
    assert multi_clan_dishonest_prob(n, f, sizes) == pytest.approx(expected)


def test_matches_paper_closed_form_two_clans():
    """Cross-check the DP against Eq. 4 implemented directly."""
    n, q = 30, 2
    f = max_faults(n)
    n_c = n // q
    f_c = clan_max_faults(n_c)
    n_h = n - f
    s = sum(
        math.comb(f, w1) * math.comb(n_h, n_c - w1)
        for w1 in range(max(0, f - f_c), min(f_c, f) + 1)
    )
    expected = 1 - s / math.comb(n, n_c)
    assert equal_partition_prob(n, q) == pytest.approx(expected, rel=1e-12)


def test_more_clans_riskier():
    # With f fixed, finer partitions are (weakly) more likely to fail.
    p2 = equal_partition_prob(120, 2)
    p3 = equal_partition_prob(120, 3)
    p4 = equal_partition_prob(120, 4)
    assert p2 <= p3 <= p4


def test_max_equal_clans_respects_bound():
    q = max_equal_clans(150, 1e-5)
    assert q >= 2
    assert equal_partition_prob(150, q) <= 1e-5


def test_max_equal_clans_returns_one_when_too_strict():
    assert max_equal_clans(12, 1e-12) == 1


def test_invalid_inputs_rejected():
    with pytest.raises(CommitteeError):
        multi_clan_dishonest_prob(10, 3, [5, 4])  # doesn't partition
    with pytest.raises(CommitteeError):
        multi_clan_dishonest_prob(10, 3, [])
    with pytest.raises(CommitteeError):
        multi_clan_dishonest_prob(10, 11, [5, 5])
    with pytest.raises(CommitteeError):
        equal_partition_prob(10, 3)  # 3 does not divide 10
    with pytest.raises(CommitteeError):
        max_equal_clans(10, 2.0)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=60),
    q=st.integers(min_value=1, max_value=4),
)
def test_probability_in_unit_interval(n, q):
    sizes = []
    base, extra = divmod(n, q)
    if base == 0:
        return
    for i in range(q):
        sizes.append(base + (1 if i < extra else 0))
    p = multi_clan_dishonest_prob(n, max_faults(n), sizes)
    assert 0.0 <= p <= 1.0


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=8, max_value=40))
def test_partition_at_least_as_risky_as_single_sample(n):
    """A 2-partition fails at least as often as sampling one clan of n//2."""
    from repro.committees.hypergeometric import dishonest_majority_prob

    if n % 2:
        n += 1
    f = max_faults(n)
    single = dishonest_majority_prob(n, f, n // 2)
    double = multi_clan_dishonest_prob(n, f, [n // 2, n // 2])
    assert double >= single - 1e-12
