"""Tests for single-clan committee statistics (Eq. 1–2, Fig. 1, §1 example)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import hypergeom

from repro.committees.hypergeometric import (
    clan_size_curve,
    dishonest_majority_prob,
    min_clan_size,
)
from repro.errors import CommitteeError
from repro.types import max_faults


def test_paper_intro_example_n500():
    # §1: n=500, f=166, n_c=184 gives a failure probability around 1e-9.
    p = dishonest_majority_prob(500, 166, 184)
    assert p < 3e-9
    assert p > 1e-10


def test_paper_section7_clan_sizes():
    # §7 uses clans of 32/60/80 for n=50/100/150 at failure prob ~1e-6 (2^-20).
    # Our exact minimal sizes land within 3 members of the paper's choices.
    for n, paper_nc in ((50, 32), (100, 60), (150, 80)):
        ours = min_clan_size(n, failure_prob=1e-6)
        assert abs(ours - paper_nc) <= 3
        # The paper's chosen 80 for n=150 must itself satisfy the bound.
    assert dishonest_majority_prob(150, max_faults(150), 80) <= 1e-6


def test_whole_tribe_clan_never_fails():
    # f < n/3 implies the whole tribe always has an honest majority.
    assert dishonest_majority_prob(100, 33, 100) == 0.0


def test_all_byzantine_tribe_always_fails():
    assert dishonest_majority_prob(10, 10, 5) == 1.0


def test_zero_faults_never_fails():
    assert dishonest_majority_prob(100, 0, 10) == 0.0


def test_single_member_clan():
    # A clan of one is dishonest-majority iff the sampled member is Byzantine.
    p = dishonest_majority_prob(100, 25, 1)
    assert p == pytest.approx(0.25)


def test_matches_scipy_hypergeometric_tail():
    n, f, n_c = 200, 66, 60
    ours = dishonest_majority_prob(n, f, n_c)
    threshold = (n_c + 1) // 2
    scipy_tail = float(hypergeom(n, f, n_c).sf(threshold - 1))
    assert ours == pytest.approx(scipy_tail, rel=1e-9)


def test_monotone_in_faults():
    probs = [dishonest_majority_prob(100, f, 30) for f in range(0, 34, 3)]
    assert all(a <= b + 1e-15 for a, b in zip(probs, probs[1:]))


def test_min_clan_size_meets_target():
    n_c = min_clan_size(300, failure_prob=1e-9)
    assert dishonest_majority_prob(300, max_faults(300), n_c) <= 1e-9


def test_min_clan_size_is_minimal_locally():
    n_c = min_clan_size(300, failure_prob=1e-9)
    smaller = [
        dishonest_majority_prob(300, max_faults(300), c) for c in range(1, n_c)
    ]
    assert all(p > 1e-9 for p in smaller)


def test_clan_size_curve_shape():
    curve = clan_size_curve([100, 300, 500, 1000], failure_prob=1e-9)
    sizes = [n_c for _, n_c in curve]
    # Fig. 1: clan size grows with n but sublinearly; at n=1000 it stays < 250.
    assert sizes == sorted(sizes)
    assert sizes[-1] < 250
    # The clan fraction shrinks as the tribe grows.
    fractions = [n_c / n for n, n_c in curve]
    assert fractions[0] > fractions[-1]


def test_invalid_parameters_rejected():
    with pytest.raises(CommitteeError):
        dishonest_majority_prob(10, 11, 5)
    with pytest.raises(CommitteeError):
        dishonest_majority_prob(10, 3, 0)
    with pytest.raises(CommitteeError):
        dishonest_majority_prob(10, 3, 11)
    with pytest.raises(CommitteeError):
        min_clan_size(10, failure_prob=0.0)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=120),
    n_c=st.integers(min_value=1, max_value=120),
)
def test_probability_in_unit_interval(n, n_c):
    n_c = min(n_c, n)
    p = dishonest_majority_prob(n, max_faults(n), n_c)
    assert 0.0 <= p <= 1.0


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=10, max_value=100))
def test_matches_scipy_randomized(n):
    f = max_faults(n)
    n_c = max(1, n // 2)
    threshold = (n_c + 1) // 2
    ours = dishonest_majority_prob(n, f, n_c)
    scipy_tail = float(hypergeom(n, f, n_c).sf(threshold - 1))
    assert ours == pytest.approx(scipy_tail, rel=1e-9, abs=1e-12)
