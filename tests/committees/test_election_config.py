"""Tests for clan election, partitioning, and ClanConfig."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.committees import ClanConfig, elect_clan, partition_clans
from repro.errors import CommitteeError


def test_elect_clan_size_and_range():
    clan = elect_clan(50, 20, seed=3)
    assert len(clan) == 20
    assert all(0 <= p < 50 for p in clan)


def test_elect_clan_deterministic_per_seed():
    assert elect_clan(50, 20, seed=3) == elect_clan(50, 20, seed=3)
    assert elect_clan(50, 20, seed=3) != elect_clan(50, 20, seed=4)


def test_elect_clan_bad_size():
    with pytest.raises(CommitteeError):
        elect_clan(10, 0)
    with pytest.raises(CommitteeError):
        elect_clan(10, 11)


def test_partition_covers_tribe_disjointly():
    clans = partition_clans(10, 3, seed=1)
    assert sorted(len(c) for c in clans) == [3, 3, 4]
    union = set()
    for clan in clans:
        assert not (union & clan)
        union |= clan
    assert union == set(range(10))


def test_partition_deterministic():
    assert partition_clans(12, 4, seed=5) == partition_clans(12, 4, seed=5)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    q=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_partition_properties(n, q, seed):
    if q > n:
        return
    clans = partition_clans(n, q, seed)
    assert len(clans) == q
    assert sum(len(c) for c in clans) == n
    assert max(len(c) for c in clans) - min(len(c) for c in clans) <= 1


def test_baseline_config():
    cfg = ClanConfig.baseline(7)
    assert cfg.mode == "baseline"
    assert cfg.num_clans == 1
    assert cfg.clan(0) == frozenset(range(7))
    assert cfg.block_proposers == frozenset(range(7))
    assert cfg.f == 2 and cfg.quorum == 5
    assert all(cfg.executes(p) for p in range(7))


def test_single_clan_config():
    cfg = ClanConfig.single_clan(20, 8, seed=2)
    assert cfg.mode == "single-clan"
    assert len(cfg.clan(0)) == 8
    assert cfg.block_proposers == cfg.clan(0)
    outside = next(p for p in range(20) if p not in cfg.clan(0))
    assert cfg.clan_index_of(outside) is None
    assert not cfg.executes(outside)
    member = next(iter(cfg.clan(0)))
    assert cfg.block_clan_of(member) == 0


def test_multi_clan_config():
    cfg = ClanConfig.multi_clan(12, 3, seed=2)
    assert cfg.mode == "multi-clan"
    assert cfg.num_clans == 3
    assert cfg.block_proposers == frozenset(range(12))
    for p in range(12):
        idx = cfg.clan_index_of(p)
        assert idx is not None
        assert p in cfg.clan(idx)
        assert cfg.block_clan_of(p) == idx


def test_clan_quorums():
    cfg = ClanConfig.single_clan(20, 9, seed=0)
    assert cfg.clan_faults(0) == 4
    assert cfg.clan_echo_quorum(0) == 5
    assert cfg.clan_client_quorum(0) == 5


def test_config_rejects_overlapping_clans():
    with pytest.raises(CommitteeError):
        ClanConfig(
            n=6,
            mode="multi-clan",
            clans=(frozenset({0, 1, 2}), frozenset({2, 3, 4})),
            block_proposers=frozenset({0}),
        )


def test_config_rejects_proposer_outside_clans():
    with pytest.raises(CommitteeError):
        ClanConfig(
            n=6,
            mode="single-clan",
            clans=(frozenset({0, 1, 2}),),
            block_proposers=frozenset({5}),
        )


def test_config_rejects_out_of_range_member():
    with pytest.raises(CommitteeError):
        ClanConfig(
            n=4,
            mode="baseline",
            clans=(frozenset({0, 7}),),
            block_proposers=frozenset({0}),
        )


def test_block_clan_of_outside_party_raises():
    cfg = ClanConfig.single_clan(10, 4, seed=1)
    outsider = next(p for p in range(10) if p not in cfg.clan(0))
    with pytest.raises(CommitteeError):
        cfg.block_clan_of(outsider)
