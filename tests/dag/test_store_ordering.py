"""Tests for DagStore (orphan buffering, paths) and OrderingEngine."""

import pytest

from repro.dag import DagStore, OrderingEngine, Vertex, genesis_vertex
from repro.errors import DagError

N = 4


def build_round(store_or_refs, round_, sources, prev_refs, block=None):
    """Create one vertex per source with strong edges to prev_refs."""
    vertices = []
    for s in sources:
        vertices.append(
            Vertex(round=round_, source=s, block_digest=block,
                   strong_edges=tuple(prev_refs))
        )
    return vertices


def genesis_refs(n=N):
    return [genesis_vertex(i).ref() for i in range(n)]


def test_store_starts_with_genesis():
    store = DagStore(N)
    assert store.num_in_round(0) == N
    assert store.size == N


def test_add_and_get():
    store = DagStore(N)
    [v] = build_round(store, 1, [0], genesis_refs())
    attached = store.add(v)
    assert attached == [v]
    assert store.get(1, 0) is v
    assert store.contains(v.ref())


def test_duplicate_add_is_noop():
    store = DagStore(N)
    [v] = build_round(store, 1, [0], genesis_refs())
    store.add(v)
    assert store.add(v) == []
    assert store.size == N + 1


def test_conflicting_vertex_rejected():
    store = DagStore(N)
    refs = genesis_refs()
    v1 = Vertex(1, 0, None, tuple(refs))
    v2 = Vertex(1, 0, b"\x01" * 32, tuple(refs))
    store.add(v1)
    with pytest.raises(DagError):
        store.add(v2)


def test_orphan_buffered_until_parents_arrive():
    store = DagStore(N)
    r1 = build_round(store, 1, range(N), genesis_refs())
    r1_refs = [v.ref() for v in r1]
    [child] = build_round(store, 2, [0], r1_refs)
    assert store.add(child) == []
    assert store.pending_count == 1
    assert not store.contains_key(2, 0)
    attached = []
    for v in r1:
        attached += store.add(v)
    assert child in attached
    assert store.contains_key(2, 0)
    assert store.pending_count == 0


def test_deep_orphan_chain_unblocks_recursively():
    store = DagStore(N)
    r1 = build_round(store, 1, range(N), genesis_refs())
    r2 = build_round(store, 2, range(N), [v.ref() for v in r1])
    r3 = build_round(store, 3, [0], [v.ref() for v in r2])
    for v in r3 + r2:
        assert store.add(v) == []
    attached = []
    for v in r1:
        attached += store.add(v)
    keys = {v.key for v in attached}
    assert (3, 0) in keys and (2, 1) in keys


def test_strong_path_direct_and_transitive():
    store = DagStore(N)
    r1 = build_round(store, 1, range(N), genesis_refs())
    for v in r1:
        store.add(v)
    r2 = build_round(store, 2, range(N), [v.ref() for v in r1])
    for v in r2:
        store.add(v)
    assert store.strong_path_exists(r2[0], r1[3])
    assert store.strong_path_exists(r2[0], r2[0])
    assert not store.strong_path_exists(r1[0], r2[0])  # wrong direction


def test_strong_path_ignores_weak_edges():
    store = DagStore(N)
    r1 = build_round(store, 1, range(N), genesis_refs())
    for v in r1:
        store.add(v)
    # Round 2 references only sources 0..2 strongly.
    r2_refs = [r1[i].ref() for i in range(3)]
    r2 = build_round(store, 2, range(N), r2_refs)
    for v in r2:
        store.add(v)
    # Round 3 strongly references r2, weakly references the orphan r1[3].
    v3 = Vertex(3, 0, None, tuple(v.ref() for v in r2), weak_edges=(r1[3].ref(),))
    store.add(v3)
    assert not store.strong_path_exists(v3, r1[3])
    history = {v.key for v in store.causal_history(v3)}
    assert (1, 3) in history  # weak edges do count for causal history


def test_uncovered_tracks_unreferenced_tips():
    store = DagStore(N)
    r1 = build_round(store, 1, range(N), genesis_refs())
    for v in r1:
        store.add(v)
    assert {v.key for v in store.uncovered_before(2)} == {(1, i) for i in range(N)}
    r2 = build_round(store, 2, [0], [v.ref() for v in r1[:3]])
    store.add(r2[0])
    # r1[3] remains uncovered; r1[0..2] are now covered by r2[0].
    assert {v.key for v in store.uncovered_before(3)} == {(1, 3), (2, 0)}


def test_causal_history_excludes_genesis_includes_self():
    store = DagStore(N)
    r1 = build_round(store, 1, range(N), genesis_refs())
    for v in r1:
        store.add(v)
    r2 = build_round(store, 2, [1], [v.ref() for v in r1])
    store.add(r2[0])
    history = store.causal_history(r2[0])
    keys = {v.key for v in history}
    assert (2, 1) in keys
    assert all(r > 0 for r, _ in keys)
    assert len(keys) == 5


def test_ordering_deterministic_and_disjoint():
    """Two stores fed the same DAG in different orders produce one sequence."""
    def build_dag():
        store = DagStore(N)
        r1 = build_round(store, 1, range(N), genesis_refs())
        r2 = build_round(store, 2, range(N), [v.ref() for v in r1])
        r3 = build_round(store, 3, range(N), [v.ref() for v in r2])
        return store, r1, r2, r3

    store_a, a1, a2, a3 = build_dag()
    for v in a1 + a2 + a3:
        store_a.add(v)
    store_b, b1, b2, b3 = build_dag()
    for v in reversed(b1 + b2 + b3):
        store_b.add(v)

    eng_a, eng_b = OrderingEngine(store_a), OrderingEngine(store_b)
    seq_a = [v.key for v in eng_a.order_leader(a2[0])] + [
        v.key for v in eng_a.order_leader(a3[1])
    ]
    seq_b = [v.key for v in eng_b.order_leader(b2[0])] + [
        v.key for v in eng_b.order_leader(b3[1])
    ]
    assert seq_a == seq_b
    assert len(seq_a) == len(set(seq_a))  # no vertex ordered twice


def test_ordering_rejects_stale_leader():
    store = DagStore(N)
    r1 = build_round(store, 1, range(N), genesis_refs())
    for v in r1:
        store.add(v)
    r2 = build_round(store, 2, range(N), [v.ref() for v in r1])
    for v in r2:
        store.add(v)
    engine = OrderingEngine(store)
    engine.order_leader(r2[0])
    with pytest.raises(DagError):
        engine.order_leader(r1[0])


def test_ordering_counts():
    store = DagStore(N)
    r1 = build_round(store, 1, range(N), genesis_refs())
    for v in r1:
        store.add(v)
    engine = OrderingEngine(store)
    newly = engine.order_leader(r1[2])
    assert engine.count == len(newly) == 1
    assert engine.is_ordered(r1[2])
    assert not engine.is_ordered(r1[0])
