"""Property-based tests for the DAG store and ordering engine.

Hypothesis builds random layered DAGs (random edge subsets, random weak
edges), inserts them in random order at two stores, and checks structural
invariants and cross-store agreement.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import DagStore, OrderingEngine, Vertex, genesis_vertex
from repro.types import max_faults


@st.composite
def layered_dag(draw):
    """A random DAG: `rounds` layers over `n` sources with valid edges."""
    n = draw(st.integers(min_value=4, max_value=8))
    rounds = draw(st.integers(min_value=1, max_value=5))
    rng = draw(st.randoms(use_true_random=False))
    quorum = 2 * max_faults(n) + 1
    layers = [[genesis_vertex(i) for i in range(n)]]
    all_vertices = []
    for r in range(1, rounds + 1):
        prev = layers[-1]
        layer = []
        # Some sources may skip a round (crashed); keep >= quorum proposers.
        proposers = rng.sample(range(n), rng.randint(quorum, n))
        for source in proposers:
            strong_count = rng.randint(quorum, len(prev))
            strong = tuple(
                v.ref() for v in rng.sample(prev, min(strong_count, len(prev)))
            )
            weak = ()
            if r >= 2 and rng.random() < 0.5:
                older_layer = layers[rng.randint(0, r - 2)]
                candidates = [v for v in older_layer if v.round > 0]
                if candidates:
                    weak = (rng.choice(candidates).ref(),)
            vertex = Vertex(r, source, None, strong, weak)
            layer.append(vertex)
            all_vertices.append(vertex)
        layers.append(layer)
    return n, all_vertices, rng


@settings(max_examples=40, deadline=None)
@given(data=layered_dag())
def test_insertion_order_irrelevant(data):
    n, vertices, rng = data
    store_a = DagStore(n)
    for v in vertices:
        store_a.add(v)
    store_b = DagStore(n)
    shuffled = list(vertices)
    rng.shuffle(shuffled)
    pending = list(shuffled)
    # Out-of-order insertion: orphans buffer and attach later.
    for v in pending:
        store_b.add(v)
    assert store_a.size == store_b.size
    assert store_b.pending_count == 0
    for v in vertices:
        assert store_b.contains(v.ref())


@settings(max_examples=40, deadline=None)
@given(data=layered_dag())
def test_causal_history_closed_under_parents(data):
    n, vertices, rng = data
    store = DagStore(n)
    for v in vertices:
        store.add(v)
    probe = rng.choice(vertices)
    history = store.causal_history(probe)
    keys = {v.key for v in history}
    for vertex in history:
        for ref in vertex.parents():
            if ref.round > 0:
                assert ref.key in keys


@settings(max_examples=40, deadline=None)
@given(data=layered_dag())
def test_strong_path_implies_causal_membership(data):
    n, vertices, rng = data
    store = DagStore(n)
    for v in vertices:
        store.add(v)
    later = [v for v in vertices if v.round >= 2]
    if not later:
        return
    frm = rng.choice(later)
    history_keys = {v.key for v in store.causal_history(frm)}
    for candidate in vertices:
        if candidate.round >= frm.round:
            continue
        if store.strong_path_exists(frm, candidate):
            assert candidate.key in history_keys


@settings(max_examples=30, deadline=None)
@given(data=layered_dag())
def test_ordering_agreement_across_insertion_orders(data):
    n, vertices, rng = data
    rounds = max((v.round for v in vertices), default=0)
    if rounds < 2:
        return
    # Pick a leader chain: one vertex per round, where present.
    leaders = []
    for r in range(1, rounds + 1):
        layer = sorted([v for v in vertices if v.round == r], key=lambda v: v.source)
        if layer:
            leaders.append(layer[0])

    def build(order):
        store = DagStore(n)
        for v in order:
            store.add(v)
        engine = OrderingEngine(store)
        out = []
        for leader in leaders:
            out += [v.key for v in engine.order_leader(leader)]
        return out

    forward = build(vertices)
    shuffled = list(vertices)
    rng.shuffle(shuffled)
    backward = build(shuffled)
    assert forward == backward
    assert len(forward) == len(set(forward))
