"""Bitmap store vs. reference adjacency store: randomized equivalence.

The bitmap-backed :class:`repro.dag.store.DagStore` must be observationally
identical to :class:`repro.dag.reference.ReferenceDagStore` — the retained
copy of the original set/BFS/DFS algorithms — across random layered DAGs
with round gaps, weak edges, out-of-order insertion, pruned (stop-set)
history walks, and GC-frontier pruning of the reachability cache.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import DagStore, OrderingEngine, Vertex, genesis_vertex
from repro.dag.reference import ReferenceDagStore
from repro.types import max_faults


@st.composite
def layered_dag(draw):
    """A random DAG: layers over ``n`` sources, gaps, sparse-ish fan-out,
    and multi-target weak edges (heavier orphan traffic than the store's
    own property suite, to stress the mask paths)."""
    n = draw(st.integers(min_value=4, max_value=9))
    rounds = draw(st.integers(min_value=2, max_value=6))
    rng = draw(st.randoms(use_true_random=False))
    quorum = 2 * max_faults(n) + 1
    layers = [[genesis_vertex(i) for i in range(n)]]
    all_vertices = []
    for r in range(1, rounds + 1):
        prev = layers[-1]
        layer = []
        proposers = rng.sample(range(n), rng.randint(quorum, n))
        for source in proposers:
            # Fan-out anywhere between sparse (2 edges) and full — the
            # stores must agree regardless of protocol-level edge policy.
            strong_count = rng.randint(min(2, len(prev)), len(prev))
            strong = tuple(v.ref() for v in rng.sample(prev, strong_count))
            weak = ()
            if r >= 2 and rng.random() < 0.6:
                older = [
                    v
                    for layer_ in layers[: r - 1]
                    for v in layer_
                    if v.round > 0
                ]
                if older:
                    weak = tuple(
                        v.ref()
                        for v in rng.sample(older, rng.randint(1, min(3, len(older))))
                    )
            vertex = Vertex(r, source, None, strong, weak)
            layer.append(vertex)
            all_vertices.append(vertex)
        layers.append(layer)
    return n, all_vertices, rng


def _fill(n, vertices):
    bitmap, reference = DagStore(n), ReferenceDagStore(n)
    for v in vertices:
        a = [x.key for x in bitmap.add(v)]
        b = [x.key for x in reference.add(v)]
        assert a == b  # same attach *order*, not just the same set
    return bitmap, reference


@settings(max_examples=40, deadline=None)
@given(data=layered_dag())
def test_insertion_and_orphan_tracking_agree(data):
    n, vertices, rng = data
    shuffled = list(vertices)
    rng.shuffle(shuffled)
    bitmap, reference = _fill(n, shuffled)
    assert bitmap.size == reference.size
    assert bitmap.pending_count == reference.pending_count
    max_round = max(v.round for v in vertices)
    for r in range(max_round + 2):
        assert [v.key for v in bitmap.round_vertices(r)] == [
            v.key for v in reference.round_vertices(r)
        ]
        assert sorted(v.key for v in bitmap.uncovered_before(r)) == sorted(
            v.key for v in reference.uncovered_before(r)
        )


@settings(max_examples=40, deadline=None)
@given(data=layered_dag())
def test_path_queries_agree(data):
    n, vertices, rng = data
    bitmap, reference = _fill(n, vertices)
    probes = rng.sample(vertices, min(6, len(vertices)))
    for frm in probes:
        for to in vertices:
            assert bitmap.strong_path_exists(frm, to) == reference.strong_path_exists(
                frm, to
            ), (frm.key, to.key)
            assert bitmap.path_exists(frm, to) == reference.path_exists(frm, to), (
                frm.key,
                to.key,
            )


@settings(max_examples=40, deadline=None)
@given(data=layered_dag())
def test_causal_history_agrees_with_and_without_stop(data):
    n, vertices, rng = data
    bitmap, reference = _fill(n, vertices)
    probe = rng.choice(vertices)
    plain_a = sorted(v.key for v in bitmap.causal_history(probe))
    plain_b = sorted(v.key for v in reference.causal_history(probe))
    assert plain_a == plain_b
    # A random ancestry-closed stop set (what the ordering engine passes).
    stopped = rng.choice(vertices)
    stop = {v.key for v in reference.causal_history(stopped) if v.key != probe.key}
    with_stop_a = sorted(v.key for v in bitmap.causal_history(probe, stop=stop))
    with_stop_b = sorted(v.key for v in reference.causal_history(probe, stop=stop))
    assert with_stop_a == with_stop_b
    # The mask fast path is the same prune expressed differently.
    masks = {}
    for r, s in stop:
        masks[r] = masks.get(r, 0) | (1 << s)
    via_masks = sorted(v.key for v in bitmap.causal_history(probe, stop_masks=masks))
    assert via_masks == with_stop_a


@settings(max_examples=30, deadline=None)
@given(data=layered_dag())
def test_ordering_engine_agrees(data):
    n, vertices, rng = data
    rounds = max(v.round for v in vertices)
    leaders = []
    for r in range(1, rounds + 1):
        layer = sorted((v for v in vertices if v.round == r), key=lambda v: v.source)
        if layer:
            leaders.append(layer[0])
    bitmap, reference = _fill(n, vertices)
    engine_a = OrderingEngine(bitmap)
    out_a = []
    out_b = []
    ordered_b: set = set()
    for leader in leaders:
        out_a += [v.key for v in engine_a.order_leader(leader)]
        # Reference ordering: the engine's contract, spelled out by hand.
        history = reference.causal_history(leader, stop=ordered_b)
        history.sort(key=lambda v: (v.round, v.source))
        ordered_b.update(v.key for v in history)
        out_b += [v.key for v in history]
    assert out_a == out_b


@settings(max_examples=30, deadline=None)
@given(data=layered_dag(), frontier=st.integers(min_value=0, max_value=4))
def test_gc_frontier_pruning_preserves_answers(data, frontier):
    """prune_reach_below only drops cache entries, never answers."""
    n, vertices, rng = data
    bitmap, reference = _fill(n, vertices)
    probes = rng.sample(vertices, min(4, len(vertices)))
    # Warm the reachability cache, prune at the frontier, re-query: the walk
    # may rebuild closures for anchors above the frontier but answers for
    # *all* pairs must be unchanged.
    for frm in probes:
        for to in vertices:
            bitmap.strong_path_exists(frm, to)
    bitmap.prune_reach_below(frontier)
    for frm in probes:
        for to in vertices:
            assert bitmap.strong_path_exists(frm, to) == reference.strong_path_exists(
                frm, to
            )


@settings(max_examples=25, deadline=None)
@given(data=layered_dag())
def test_pending_probe_queries_agree(data):
    """Queries on a still-buffered vertex (missing parents) also agree."""
    n, vertices, rng = data
    hold_out = rng.choice([v for v in vertices if v.round >= 1])
    bitmap, reference = DagStore(n), ReferenceDagStore(n)
    for v in vertices:
        if v.key != hold_out.key:
            bitmap.add(v)
            reference.add(v)
    # Probe a vertex that references the held-out one (if any): its ancestry
    # is incomplete, exercising the attached-only expansion path.
    dependents = [
        v
        for v in vertices
        if any(ref.key == hold_out.key for ref in v.parents())
    ]
    for frm in dependents or [hold_out]:
        for to in vertices:
            assert bitmap.strong_path_exists(frm, to) == reference.strong_path_exists(
                frm, to
            )
            assert bitmap.path_exists(frm, to) == reference.path_exists(frm, to)
