"""Tests for Transaction, Block, Vertex structures (Fig. 4)."""

import pytest

from repro.dag import Block, Transaction, Vertex, genesis_vertex
from repro.errors import DagError
from repro.net import sizes


def make_txns(k, size=512):
    return [Transaction(txn_id=f"t{i}", op=("noop",), size=size) for i in range(k)]


def test_transaction_digest_unique():
    a = Transaction("t1", ("set", "x", 1))
    b = Transaction("t2", ("set", "x", 1))
    assert a.txn_digest() != b.txn_digest()


def test_concrete_block_roundtrip():
    txns = make_txns(3)
    block = Block.concrete(proposer=1, round_=2, txns=txns, created_at=1.5)
    assert block.txn_count == 3
    assert not block.is_synthetic
    assert list(block.iter_txns()) == txns
    assert block.wire_size() == sizes.HEADER_SIZE + 3 * 512


def test_synthetic_block_same_wire_size_as_concrete():
    concrete = Block.concrete(0, 1, make_txns(10), 0.0)
    synthetic = Block.synthetic(0, 1, txn_count=10, created_at=0.0)
    assert concrete.wire_size() == synthetic.wire_size()
    assert synthetic.is_synthetic
    assert list(synthetic.iter_txns()) == []


def test_block_digest_depends_on_content():
    b1 = Block.concrete(0, 1, make_txns(2), 0.0)
    b2 = Block.concrete(0, 1, make_txns(3), 0.0)
    assert b1.payload_digest() != b2.payload_digest()
    assert b1.payload_digest() == Block.concrete(0, 1, make_txns(2), 0.0).payload_digest()


def test_block_count_mismatch_rejected():
    with pytest.raises(DagError):
        Block(proposer=0, round=1, txns=tuple(make_txns(2)), txn_count=3,
              txn_size=512, created_at=0.0)


def test_genesis_vertex_shape():
    g = genesis_vertex(3)
    assert g.round == 0 and g.source == 3
    assert g.strong_edges == () and g.weak_edges == ()
    assert g.block_digest is None


def test_vertex_ref_and_digest_stable():
    g = genesis_vertex(0)
    v = Vertex(round=1, source=2, block_digest=b"\x01" * 32,
               strong_edges=(g.ref(),))
    assert v.ref().key == (1, 2)
    assert v.ref().digest == v.vertex_digest()
    same = Vertex(round=1, source=2, block_digest=b"\x01" * 32,
                  strong_edges=(g.ref(),))
    assert v.vertex_digest() == same.vertex_digest()


def test_vertex_digest_changes_with_edges():
    g0, g1 = genesis_vertex(0), genesis_vertex(1)
    v1 = Vertex(1, 0, None, (g0.ref(),))
    v2 = Vertex(1, 0, None, (g0.ref(), g1.ref()))
    assert v1.vertex_digest() != v2.vertex_digest()


def test_strong_edge_round_validation():
    g = genesis_vertex(0)
    with pytest.raises(DagError):
        Vertex(round=2, source=0, block_digest=None, strong_edges=(g.ref(),))


def test_weak_edge_round_validation():
    g = genesis_vertex(0)
    v1 = Vertex(1, 0, None, (g.ref(),))
    with pytest.raises(DagError):
        # Weak edge must target rounds < round-1.
        Vertex(round=2, source=1, block_digest=None,
               strong_edges=(v1.ref(),), weak_edges=(v1.ref(),))


def test_vertex_wire_size_scales_with_edges():
    g_refs = tuple(genesis_vertex(i).ref() for i in range(4))
    small = Vertex(1, 0, None, g_refs[:2])
    large = Vertex(1, 0, None, g_refs)
    assert large.wire_size() - small.wire_size() == 2 * sizes.VERTEX_REF_SIZE


def test_vertex_parents_concatenates_edges():
    g0, g1 = genesis_vertex(0), genesis_vertex(1)
    v1 = Vertex(1, 0, None, (g0.ref(),))
    v2 = Vertex(2, 0, None, (v1.ref(),))
    v3 = Vertex(3, 1, None, (v2.ref(),), weak_edges=(v1.ref(),))
    assert v3.parents() == (v2.ref(), v1.ref())
