"""Extra ordering-engine edge cases."""

import pytest

from repro.dag import DagStore, OrderingEngine, Vertex, genesis_vertex
from repro.errors import DagError

N = 4


def refs(vertices):
    return tuple(v.ref() for v in vertices)


def build_rounds(store, rounds):
    layers = [[genesis_vertex(i) for i in range(N)]]
    for r in range(1, rounds + 1):
        layer = [Vertex(r, s, None, refs(layers[-1])) for s in range(N)]
        for v in layer:
            store.add(v)
        layers.append(layer)
    return layers


def test_leader_with_full_history_orders_everything_below():
    store = DagStore(N)
    layers = build_rounds(store, 3)
    engine = OrderingEngine(store)
    newly = engine.order_leader(layers[3][0])
    # All of rounds 1..2 plus the leader itself: 4 + 4 + 1.
    assert len(newly) == 9
    assert engine.count == 9


def test_consecutive_leaders_order_disjoint_suffixes():
    store = DagStore(N)
    layers = build_rounds(store, 4)
    engine = OrderingEngine(store)
    first = engine.order_leader(layers[2][1])
    second = engine.order_leader(layers[3][2])
    third = engine.order_leader(layers[4][3])
    all_keys = [v.key for batch in (first, second, third) for v in batch]
    assert len(all_keys) == len(set(all_keys))
    # Ordering is by (round, source) within each batch.
    for batch in (first, second, third):
        keys = [v.key for v in batch]
        assert keys == sorted(keys)


def test_same_round_leader_rejected():
    store = DagStore(N)
    layers = build_rounds(store, 2)
    engine = OrderingEngine(store)
    engine.order_leader(layers[2][0])
    with pytest.raises(DagError):
        engine.order_leader(layers[2][1])


def test_weak_edges_pull_orphans_into_order():
    store = DagStore(N)
    g = [genesis_vertex(i) for i in range(N)]
    r1 = [Vertex(1, s, None, refs(g)) for s in range(N)]
    for v in r1:
        store.add(v)
    # Round 2 strongly references only sources 0..2; r1[3] is orphaned.
    r2 = [Vertex(2, s, None, refs(r1[:3])) for s in range(N)]
    for v in r2:
        store.add(v)
    # Round 3 leader weakly references the orphan.
    v3 = Vertex(3, 0, None, refs(r2), weak_edges=(r1[3].ref(),))
    store.add(v3)
    engine = OrderingEngine(store)
    engine.order_leader(r2[0])
    assert not engine.is_ordered(r1[3])
    engine.order_leader(v3)
    assert engine.is_ordered(r1[3])  # recovered via the weak edge


def test_ordered_sequence_never_mutates():
    store = DagStore(N)
    layers = build_rounds(store, 3)
    engine = OrderingEngine(store)
    engine.order_leader(layers[2][0])
    snapshot = [v.key for v in engine.ordered]
    engine.order_leader(layers[3][0])
    assert [v.key for v in engine.ordered][: len(snapshot)] == snapshot
