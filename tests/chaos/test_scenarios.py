"""Tests for the chaos scenario harness: schema, runner, invariants, CLI."""

from dataclasses import replace

import pytest

from repro.chaos import (
    ALL_SCENARIOS,
    SCENARIOS,
    SMOKE_SCENARIOS,
    CrashSpec,
    PartitionSpec,
    Scenario,
    build_deployment,
    build_faults,
    dump_scenarios,
    get_scenario,
    load_scenarios,
    run_scenario,
)
from repro.cli import main
from repro.errors import ConfigError
from repro.net.faults import CompositeFault, LossyLink, PartitionAdversary


class TestScenarioSchema:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Scenario(name="tiny", n=3)
        with pytest.raises(ConfigError):
            Scenario(name="bad-byz", byzantine=((0, "sleeper"),))
        with pytest.raises(ConfigError):
            Scenario(name="oob", crashes=(CrashSpec(node=9, down_at=1.0),))
        with pytest.raises(ConfigError):
            # Settles at t=25 with a 5s margin but only 26s of runtime.
            Scenario(
                name="no-room",
                duration=26.0,
                crashes=(CrashSpec(node=0, down_at=5.0, up_at=25.0),),
            )

    def test_settle_time_and_recovered_nodes(self):
        scenario = Scenario(
            name="mix",
            duration=40.0,
            partitions=(PartitionSpec(start=2.0, end=6.0, groups=((0, 1),)),),
            crashes=(
                CrashSpec(node=2, down_at=3.0, up_at=12.0),
                CrashSpec(node=3, down_at=8.0),
            ),
        )
        assert scenario.settle_time == 12.0
        assert scenario.recovered_nodes == (2,)
        assert scenario.permanently_down == frozenset({3})

    def test_reliable_defaults_on_for_lossy_links(self):
        assert Scenario(name="a", drop_prob=0.01).use_reliable
        assert Scenario(name="b", duplicate_prob=0.01).use_reliable
        assert not Scenario(name="c").use_reliable
        assert Scenario(name="d", reliable=True).use_reliable

    def test_json_round_trip(self):
        for scenario in ALL_SCENARIOS:
            assert Scenario.from_json(scenario.to_json()) == scenario

    def test_rbc_mode_round_trips_and_validates(self):
        scenario = Scenario(name="opt", rbc_mode="optimistic")
        assert Scenario.from_json(scenario.to_json()) == scenario
        assert scenario.to_dict()["rbc_mode"] == "optimistic"
        with pytest.raises(ConfigError):
            Scenario(name="bad-mode", rbc_mode="telepathy")

    def test_library_scenarios_cover_new_modes(self):
        modes = {s.rbc_mode for s in ALL_SCENARIOS}
        assert {"optimistic", "prefix"} <= modes
        kinds = {kind for s in ALL_SCENARIOS for _, kind in s.byzantine}
        assert {"slow-proposer", "tail-withholder"} <= kinds

    def test_load_scenarios_accepts_object_or_list(self):
        one = SMOKE_SCENARIOS[0]
        assert load_scenarios(one.to_json()) == [one]
        assert load_scenarios(dump_scenarios(SMOKE_SCENARIOS)) == list(
            SMOKE_SCENARIOS
        )
        with pytest.raises(ConfigError):
            load_scenarios('{"name": "x", "warp_factor": 9}')

    def test_get_scenario(self):
        assert get_scenario("drop05").name == "drop05"
        with pytest.raises(ConfigError):
            get_scenario("nope")


class TestFaultComposition:
    def test_build_faults_shapes(self):
        assert build_faults(Scenario(name="clean")) is None
        assert isinstance(
            build_faults(Scenario(name="lossy", drop_prob=0.1)), LossyLink
        )
        part = Scenario(
            name="split",
            duration=20.0,
            partitions=(PartitionSpec(start=1.0, end=4.0, groups=((0,),)),),
        )
        assert isinstance(build_faults(part), PartitionAdversary)
        both = replace(part, name="both", drop_prob=0.1)
        assert isinstance(build_faults(both), CompositeFault)

    def test_fault_budget_enforced(self):
        over = Scenario(
            name="over",
            byzantine=((0, "silent"),),
            crashes=(CrashSpec(node=1, down_at=1.0),),
            settle_margin=1.0,
        )
        with pytest.raises(ConfigError):
            build_deployment(over)


class TestRunner:
    def test_smoke_scenarios_pass(self):
        # The exact CI gate: every smoke scenario must satisfy its invariants.
        for scenario in SMOKE_SCENARIOS:
            result = run_scenario(scenario)
            assert result.ok, [
                (c.name, c.detail) for c in result.failures
            ]
            assert result.stats["min_ordered"] >= scenario.min_commits

    def test_scenario_runs_are_deterministic(self):
        scenario = replace(get_scenario("drop05"), duration=8.0, min_commits=10)
        a = run_scenario(scenario)
        b = run_scenario(scenario)
        assert a.stats == b.stats
        assert [c.detail for c in a.checks] == [c.detail for c in b.checks]

    def test_seed_changes_the_run(self):
        scenario = replace(get_scenario("drop05"), duration=8.0, min_commits=10)
        a = run_scenario(scenario)
        b = run_scenario(replace(scenario, seed=scenario.seed + 1))
        assert a.stats != b.stats

    def test_impossible_bound_reports_failure(self):
        scenario = replace(
            get_scenario("drop05"), duration=6.0, min_commits=10**6
        )
        result = run_scenario(scenario)
        assert not result.ok
        assert any(c.name == "liveness.commits" for c in result.failures)

    def test_rbc_mode_scenarios_pass_with_monitors(self):
        # The three RBC-variant scenarios are part of the CI chaos-smoke
        # gate: fast-path crossover under loss, certified-prefix commits
        # under a slow proposer and a tail withholder — all with zero
        # online safety anomalies.
        for name in (
            "optimistic-crossover",
            "slow-proposer-prefix",
            "tail-withholder",
        ):
            result = run_scenario(get_scenario(name), monitors=True)
            assert result.ok, [(c.name, c.detail) for c in result.failures]
        # Shortened spot-checks of the mode-specific stats.
        opt = run_scenario(
            replace(get_scenario("optimistic-crossover"), duration=8.0,
                    min_commits=10)
        )
        assert opt.ok
        assert opt.stats["fast_deliveries"] > 0
        pre = run_scenario(
            replace(get_scenario("slow-proposer-prefix"), duration=8.0,
                    min_commits=10)
        )
        assert pre.ok
        assert pre.stats["prefix_commits"] > 0
        assert pre.stats["prefix_truncated"] > 0

    def test_monitors_observe_without_perturbing(self):
        scenario = replace(get_scenario("drop05"), duration=8.0, min_commits=10)
        plain = run_scenario(scenario)
        monitored = run_scenario(scenario, monitors=True)
        assert monitored.ok
        check = {c.name: c for c in monitored.checks}["monitors.safety"]
        assert check.ok, check.detail
        # Monitor-only stats aside, the run itself is identical.
        extras = {"anomalies", "flight_bundles"}
        core = {k: v for k, v in monitored.stats.items() if k not in extras}
        assert core == plain.stats
        assert monitored.stats["anomalies"].get("safety", 0) == 0


class TestChaosCli:
    def test_list(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out
        # Grouped listing: the smoke set (the CI gate) is visually separate
        # from the extended set, and non-default RBC modes are tagged.
        assert "SMOKE" in out
        assert "EXTENDED" in out
        assert out.index("SMOKE") < out.index("drop05") < out.index("EXTENDED")
        assert "[optimistic]" in out
        assert "[prefix]" in out

    def test_unknown_scenario(self, capsys):
        assert main(["chaos", "not-a-scenario"]) == 2

    def test_named_run_and_exit_codes(self, capsys):
        assert main(["chaos", "partition_heal"]) == 0
        out = capsys.readouterr().out
        assert "[PASS] partition_heal" in out
        assert "1/1 scenarios passed" in out

    def test_file_input(self, tmp_path, capsys):
        scenario = replace(
            get_scenario("drop05"), name="from-file", duration=6.0, min_commits=5
        )
        path = tmp_path / "scenarios.json"
        path.write_text(dump_scenarios([scenario]))
        assert main(["chaos", "--file", str(path)]) == 0
        assert "[PASS] from-file" in capsys.readouterr().out

    def test_monitors_flag(self, tmp_path, capsys):
        scenario = replace(
            get_scenario("drop05"), name="watched", duration=6.0, min_commits=5
        )
        path = tmp_path / "scenarios.json"
        path.write_text(dump_scenarios([scenario]))
        assert main(["chaos", "--file", str(path), "--monitors"]) == 0
        out = capsys.readouterr().out
        assert "monitors.safety: 0 safety anomalies online" in out

    def test_failure_exit_code(self, tmp_path, capsys):
        scenario = replace(
            get_scenario("drop05"),
            name="doomed",
            duration=6.0,
            min_commits=10**6,
        )
        path = tmp_path / "scenarios.json"
        path.write_text(dump_scenarios([scenario]))
        assert main(["chaos", "--file", str(path)]) == 1
        assert "[FAIL] doomed" in capsys.readouterr().out
