"""Unit tests for mempools and the synthetic workload oracle."""

import pytest

from repro.dag.transaction import Transaction
from repro.errors import ConfigError
from repro.smr.mempool import Mempool, SyntheticWorkload


def txn(i):
    return Transaction(f"t{i}", ("noop",))


def test_mempool_fifo_drain():
    pool = Mempool(max_txns_per_block=10)
    for i in range(5):
        pool.submit(txn(i))
    block = pool.make_block(0, 1, 1.0)
    assert [t.txn_id for t in block.iter_txns()] == [f"t{i}" for i in range(5)]
    assert len(pool) == 0
    assert block.created_at == 1.0


def test_mempool_respects_block_cap():
    pool = Mempool(max_txns_per_block=3)
    for i in range(8):
        pool.submit(txn(i))
    first = pool.make_block(0, 1, 0.0)
    second = pool.make_block(0, 2, 0.0)
    third = pool.make_block(0, 3, 0.0)
    assert first.txn_count == 3 and second.txn_count == 3 and third.txn_count == 2


def test_empty_mempool_returns_none():
    pool = Mempool()
    assert pool.make_block(0, 1, 0.0) is None


def test_mempool_validation():
    with pytest.raises(ConfigError):
        Mempool(max_txns_per_block=0)


def test_synthetic_workload_records_oracle():
    workload = SyntheticWorkload(txns_per_proposal=50)
    block = workload.make_block(3, 7, 2.5)
    assert block.txn_count == 50
    assert block.is_synthetic
    assert workload.blocks[block.payload_digest()] == (50, 2.5)


def test_synthetic_workload_zero_load_is_metadata_only():
    workload = SyntheticWorkload(txns_per_proposal=0)
    assert workload.make_block(0, 1, 0.0) is None


def test_synthetic_workload_distinct_digests_per_round_and_proposer():
    workload = SyntheticWorkload(txns_per_proposal=5)
    digests = {
        workload.make_block(p, r, float(r)).payload_digest()
        for p in range(3)
        for r in range(1, 4)
    }
    assert len(digests) == 9


def test_synthetic_workload_validation():
    with pytest.raises(ConfigError):
        SyntheticWorkload(txns_per_proposal=-1)
    with pytest.raises(ConfigError):
        SyntheticWorkload(txns_per_proposal=1, txn_size=0)


def test_custom_txn_size_changes_wire_size():
    small = SyntheticWorkload(txns_per_proposal=100, txn_size=128)
    large = SyntheticWorkload(txns_per_proposal=100, txn_size=1024)
    assert (
        large.make_block(0, 1, 0.0).wire_size()
        - small.make_block(0, 1, 0.0).wire_size()
        == 100 * (1024 - 128)
    )
