"""Tests for cross-clan 2PC over the multi-clan protocol (§6.1 sharding)."""

import pytest

from repro.committees import ClanConfig
from repro.smr import SmrRuntime
from repro.smr.cross_clan import (
    ABORT,
    COMMIT,
    PREPARE,
    CrossClanCoordinator,
    ShardedStateMachine,
)


# -- state machine unit tests ---------------------------------------------------


def test_prepare_locks_and_commit_applies():
    sm = ShardedStateMachine()
    assert sm.apply("t1", (PREPARE, "x1", {"a": 1, "b": 2})) == "prepared"
    assert sm.is_locked("a") and sm.is_locked("b")
    assert sm.get("a") is None  # staged, not applied
    assert sm.apply("t2", (COMMIT, "x1")) == "committed"
    assert sm.get("a") == 1 and sm.get("b") == 2
    assert not sm.is_locked("a")


def test_abort_discards_staged_writes():
    sm = ShardedStateMachine()
    sm.apply("t1", (PREPARE, "x1", {"a": 1}))
    assert sm.apply("t2", (ABORT, "x1")) == "aborted"
    assert sm.get("a") is None
    assert not sm.is_locked("a")


def test_conflicting_prepare_aborts_deterministically():
    sm = ShardedStateMachine()
    assert sm.apply("t1", (PREPARE, "x1", {"a": 1})) == "prepared"
    assert sm.apply("t2", (PREPARE, "x2", {"a": 9, "c": 3})) == "aborted"
    # The loser took no locks.
    assert not sm.is_locked("c")
    sm.apply("t3", (COMMIT, "x1"))
    assert sm.get("a") == 1


def test_local_write_to_locked_key_raises():
    from repro.errors import ExecutionError

    sm = ShardedStateMachine()
    sm.apply("t1", (PREPARE, "x1", {"a": 1}))
    with pytest.raises(ExecutionError):
        sm.apply("t2", ("set", "a", 99))


def test_commit_unknown_xid():
    sm = ShardedStateMachine()
    assert sm.apply("t1", (COMMIT, "nope")) == "unknown"
    assert sm.apply("t2", (ABORT, "nope")) == "unknown"


def test_replay_protection():
    sm = ShardedStateMachine()
    sm.apply("t1", ("incr", "c", 1))
    sm.apply("t1", ("incr", "c", 1))
    assert sm.get("c") == 1


def test_state_digest_covers_locks():
    a, b = ShardedStateMachine(), ShardedStateMachine()
    a.apply("t1", (PREPARE, "x1", {"k": 1}))
    assert a.state_digest() != b.state_digest()
    b.apply("t1", (PREPARE, "x1", {"k": 1}))
    assert a.state_digest() == b.state_digest()


# -- end-to-end 2PC over multi-clan consensus -------------------------------------


def build_runtime():
    cfg = ClanConfig.multi_clan(12, 2, seed=3)
    runtime = SmrRuntime(cfg, seed=3, sharded=True)
    clients = {
        0: runtime.new_client("shard0", clan_idx=0),
        1: runtime.new_client("shard1", clan_idx=1),
    }
    coordinator = CrossClanCoordinator(runtime, clients)
    return cfg, runtime, clients, coordinator


def drive(runtime, xct, deadline=30.0, step=0.5):
    """Run the simulation, pumping the 2PC coordinator."""
    now = runtime.sim.now
    while runtime.sim.now < deadline:
        now += step
        runtime.run(until=now, max_events=20_000_000)
        xct.try_decide()
        if xct.is_finished():
            return
    raise AssertionError("cross-clan transaction did not finish")


def test_cross_clan_commit_end_to_end():
    cfg, runtime, clients, coordinator = build_runtime()
    runtime.start()
    xct = coordinator.begin({0: {"alpha": "A"}, 1: {"beta": "B"}})
    drive(runtime, xct)
    assert xct.decision == "commit"
    runtime.check_execution_consistency(0)
    runtime.check_execution_consistency(1)
    member0 = next(iter(cfg.clan(0)))
    member1 = next(iter(cfg.clan(1)))
    assert runtime.executors[member0].machine.get("alpha") == "A"
    assert runtime.executors[member1].machine.get("beta") == "B"
    # Each shard holds only its own keys.
    assert runtime.executors[member0].machine.get("beta") is None
    assert runtime.executors[member1].machine.get("alpha") is None


def test_cross_clan_conflict_aborts_exactly_one():
    """Two cross-clan transactions with overlapping keys: the global order
    decides a winner; the loser aborts on every replica identically."""
    cfg, runtime, clients, coordinator = build_runtime()
    runtime.start()
    x1 = coordinator.begin({0: {"k": "first"}, 1: {"m": 1}})
    x2 = coordinator.begin({0: {"k": "second"}, 1: {"q": 2}})
    now = 0.0
    while runtime.sim.now < 40.0:
        now += 0.5
        runtime.run(until=now, max_events=30_000_000)
        x1.try_decide()
        x2.try_decide()
        if x1.is_finished() and x2.is_finished():
            break
    assert x1.is_finished() and x2.is_finished()
    decisions = sorted([x1.decision, x2.decision])
    assert decisions == ["abort", "commit"]
    runtime.check_execution_consistency(0)
    runtime.check_execution_consistency(1)
    member0 = next(iter(cfg.clan(0)))
    winner_value = runtime.executors[member0].machine.get("k")
    assert winner_value in ("first", "second")
    # No stale locks remain.
    assert not runtime.executors[member0].machine.is_locked("k")
