"""Tests for the Executor (clan-scoped execution) and Client (f_c+1 rule)."""

import pytest

from repro.committees import ClanConfig
from repro.dag.block import Block
from repro.dag.transaction import Transaction
from repro.dag.vertex import Vertex, genesis_vertex
from repro.errors import ExecutionError
from repro.smr.client import Client
from repro.smr.executor import Executor


def make_vertex_with_block(proposer, round_, txns, n=6):
    block = Block.concrete(proposer, round_, txns, created_at=0.0)
    refs = tuple(genesis_vertex(i).ref() for i in range(n))
    vertex = Vertex(
        round=round_, source=proposer,
        block_digest=block.payload_digest(),
        strong_edges=refs if round_ == 1 else (),
    )
    return vertex, block


_counter = iter(range(1, 10_000))


def txns(*ops):
    return [Transaction(f"c:{next(_counter)}", op) for op in ops]


def test_executor_runs_own_clan_blocks():
    cfg = ClanConfig.multi_clan(6, 2, seed=0)
    member = next(iter(cfg.clan(0)))
    ex = Executor(member, cfg)
    proposer = next(iter(cfg.clan(0)))
    vertex, block = make_vertex_with_block(proposer, 1, txns(("set", "k", 7)))
    ex.on_ordered(vertex, 1.0)
    assert ex.pending_blocks == 1  # waiting for the body
    ex.on_block(block, 1.1)
    assert ex.executed_blocks == 1
    assert ex.machine.get("k") == 7


def test_executor_skips_other_clans():
    cfg = ClanConfig.multi_clan(6, 2, seed=0)
    member = next(iter(cfg.clan(0)))
    other_proposer = next(iter(cfg.clan(1)))
    ex = Executor(member, cfg)
    vertex, block = make_vertex_with_block(other_proposer, 1, txns(("set", "k", 7)))
    ex.on_ordered(vertex, 1.0)
    ex.on_block(block, 1.1)
    assert ex.executed_blocks == 0
    assert ex.skipped_vertices == 1


def test_executor_respects_total_order_on_block_gaps():
    """Block 2 arrives before block 1: execution must wait and stay ordered."""
    cfg = ClanConfig.baseline(6)
    ex = Executor(0, cfg)
    v1, b1 = make_vertex_with_block(1, 1, txns(("set", "k", "first")))
    v2, b2 = make_vertex_with_block(2, 1, txns(("set", "k", "second")))
    ex.on_ordered(v1, 1.0)
    ex.on_ordered(v2, 1.0)
    ex.on_block(b2, 1.1)  # out of order
    assert ex.executed_blocks == 0
    ex.on_block(b1, 1.2)
    assert ex.executed_blocks == 2
    assert ex.machine.get("k") == "second"


def test_executor_counts_synthetic_blocks():
    cfg = ClanConfig.baseline(6)
    ex = Executor(0, cfg)
    block = Block.synthetic(1, 1, txn_count=250, created_at=0.0)
    refs = tuple(genesis_vertex(i).ref() for i in range(6))
    vertex = Vertex(1, 1, block.payload_digest(), refs)
    ex.on_ordered(vertex, 1.0)
    ex.on_block(block, 1.0)
    assert ex.executed_txns == 250


def test_executor_metadata_vertices_skipped():
    cfg = ClanConfig.baseline(6)
    ex = Executor(0, cfg)
    refs = tuple(genesis_vertex(i).ref() for i in range(6))
    ex.on_ordered(Vertex(1, 1, None, refs), 1.0)
    assert ex.skipped_vertices == 1


def test_client_accepts_on_fc_plus_1_matching():
    cfg = ClanConfig.single_clan(10, 5, seed=1)  # f_c = 2 -> quorum 3
    client = Client("alice", cfg)
    txn = client.create_txn(("set", "x", 1), now=0.0)
    members = sorted(cfg.clan(0))
    client.on_response(members[0], txn.txn_id, 1, 1.0)
    client.on_response(members[1], txn.txn_id, 1, 1.1)
    assert not client.is_accepted(txn.txn_id)
    client.on_response(members[2], txn.txn_id, 1, 1.2)
    assert client.is_accepted(txn.txn_id)
    assert client.result_of(txn.txn_id) == 1


def test_client_outvotes_byzantine_minority():
    cfg = ClanConfig.single_clan(10, 5, seed=1)
    client = Client("alice", cfg)
    txn = client.create_txn(("get", "x"), now=0.0)
    members = sorted(cfg.clan(0))
    client.on_response(members[0], txn.txn_id, "WRONG", 1.0)
    client.on_response(members[1], txn.txn_id, "WRONG", 1.0)
    for m in members[2:5]:
        client.on_response(m, txn.txn_id, "right", 1.0)
    assert client.is_accepted(txn.txn_id)
    assert client.result_of(txn.txn_id) == "right"


def test_client_rejects_non_clan_responders():
    cfg = ClanConfig.single_clan(10, 5, seed=1)
    client = Client("alice", cfg)
    txn = client.create_txn(("noop",), now=0.0)
    outsiders = [i for i in range(10) if i not in cfg.clan(0)]
    for outsider in outsiders[:5]:
        client.on_response(outsider, txn.txn_id, 1, 1.0)
    assert not client.is_accepted(txn.txn_id)


def test_client_duplicate_responses_not_double_counted():
    cfg = ClanConfig.single_clan(10, 5, seed=1)
    client = Client("alice", cfg)
    txn = client.create_txn(("noop",), now=0.0)
    member = sorted(cfg.clan(0))[0]
    for _ in range(5):
        client.on_response(member, txn.txn_id, 1, 1.0)
    assert not client.is_accepted(txn.txn_id)


def test_client_result_before_acceptance_raises():
    cfg = ClanConfig.baseline(4)
    client = Client("alice", cfg)
    txn = client.create_txn(("noop",))
    with pytest.raises(ExecutionError):
        client.result_of(txn.txn_id)


def test_client_bad_clan_index():
    cfg = ClanConfig.baseline(4)
    with pytest.raises(ExecutionError):
        Client("alice", cfg, clan_idx=2)
