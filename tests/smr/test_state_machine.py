"""Tests for the deterministic KV state machine."""

import pytest

from repro.dag.transaction import Transaction
from repro.errors import ExecutionError
from repro.smr.state_machine import KvStateMachine


def txn(i, op):
    return Transaction(txn_id=f"t{i}", op=op)


def test_set_get_del():
    sm = KvStateMachine()
    assert sm.apply(txn(1, ("set", "a", 1))) == 1
    assert sm.apply(txn(2, ("get", "a"))) == 1
    assert sm.apply(txn(3, ("del", "a"))) is True
    assert sm.apply(txn(4, ("get", "a"))) is None
    assert sm.apply(txn(5, ("del", "a"))) is False


def test_incr_counter():
    sm = KvStateMachine()
    assert sm.apply(txn(1, ("incr", "c", 5))) == 5
    assert sm.apply(txn(2, ("incr", "c", -2))) == 3


def test_noop_and_none_op():
    sm = KvStateMachine()
    assert sm.apply(txn(1, ("noop",))) is None
    assert sm.apply(Transaction("t2", None)) is None
    assert sm.applied_count == 2


def test_duplicate_txn_id_is_replay_protected():
    sm = KvStateMachine()
    sm.apply(txn(1, ("incr", "c", 1)))
    sm.apply(txn(1, ("incr", "c", 1)))  # same id: ignored
    assert sm.get("c") == 1
    assert sm.applied_count == 1


def test_unknown_op_raises():
    sm = KvStateMachine()
    with pytest.raises(ExecutionError):
        sm.apply(txn(1, ("explode",)))


def test_state_digest_deterministic_and_order_sensitive():
    a, b = KvStateMachine(), KvStateMachine()
    ops = [("set", "x", 1), ("set", "y", 2), ("incr", "x", 1)]
    for i, op in enumerate(ops):
        a.apply(txn(i, op))
        b.apply(txn(i, op))
    assert a.state_digest() == b.state_digest()
    c = KvStateMachine()
    c.apply(txn(0, ("set", "x", 99)))
    assert c.state_digest() != a.state_digest()


def test_len_counts_keys():
    sm = KvStateMachine()
    sm.apply(txn(1, ("set", "a", 1)))
    sm.apply(txn(2, ("set", "b", 2)))
    assert len(sm) == 2
