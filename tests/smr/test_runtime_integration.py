"""End-to-end SMR integration tests across all three protocol variants."""

import pytest

from repro.committees import ClanConfig
from repro.consensus.byzantine import WithholdingProposer
from repro.smr import SmrRuntime


@pytest.mark.parametrize(
    "cfg",
    [
        ClanConfig.baseline(7),
        ClanConfig.single_clan(10, 5, seed=1),
        ClanConfig.multi_clan(12, 3, seed=1),
    ],
    ids=["baseline", "single-clan", "multi-clan"],
)
def test_end_to_end_submit_execute_accept(cfg):
    rt = SmrRuntime(cfg)
    client = rt.new_client("alice")
    rt.start()
    txn_set = rt.submit(client, ("set", "x", 42))
    txn_incr = rt.submit(client, ("incr", "ctr", 3))
    rt.run(until=6.0, max_events=10_000_000)
    rt.check_execution_consistency(0)
    assert client.is_accepted(txn_set.txn_id)
    assert client.result_of(txn_set.txn_id) == 42
    assert client.result_of(txn_incr.txn_id) == 3


def test_multi_clan_clients_per_clan_isolated_state():
    """§6.1 shared-sequencer model: each clan serves its own application."""
    cfg = ClanConfig.multi_clan(12, 2, seed=1)
    rt = SmrRuntime(cfg)
    app_a = rt.new_client("app-a", clan_idx=0)
    app_b = rt.new_client("app-b", clan_idx=1)
    rt.start()
    ta = rt.submit(app_a, ("set", "who", "a"))
    tb = rt.submit(app_b, ("set", "who", "b"))
    rt.run(until=6.0, max_events=10_000_000)
    rt.check_execution_consistency(0)
    rt.check_execution_consistency(1)
    assert app_a.result_of(ta.txn_id) == "a"
    assert app_b.result_of(tb.txn_id) == "b"
    # The applications' states are clan-local and disjoint.
    member_a = next(iter(cfg.clan(0)))
    member_b = next(iter(cfg.clan(1)))
    assert rt.executors[member_a].machine.get("who") == "a"
    assert rt.executors[member_b].machine.get("who") == "b"


def test_sequential_dependent_transactions():
    cfg = ClanConfig.baseline(7)
    rt = SmrRuntime(cfg)
    client = rt.new_client("c")
    rt.start()
    for _ in range(5):
        rt.submit(client, ("incr", "ctr", 1))
    rt.run(until=6.0, max_events=10_000_000)
    rt.check_execution_consistency(0)
    # All five incr transactions executed exactly once, in order.
    member = next(iter(cfg.clan(0)))
    assert rt.executors[member].machine.get("ctr") == 5
    assert client.accepted_count() == 5


def test_submission_while_running():
    cfg = ClanConfig.single_clan(10, 5, seed=2)
    rt = SmrRuntime(cfg)
    client = rt.new_client("late")
    rt.start()
    rt.run(until=2.0, max_events=10_000_000)
    txn = rt.submit(client, ("set", "late-key", "v"))
    rt.run(until=6.0, max_events=10_000_000)
    assert client.is_accepted(txn.txn_id)


def test_execution_survives_withholding_proposer():
    """A proposer that withholds blocks from part of its clan cannot break
    replica consistency; pulled blocks execute identically."""
    cfg = ClanConfig.single_clan(10, 5, seed=1)
    proposer = sorted(cfg.clan(0))[0]
    rt = SmrRuntime(
        cfg, byzantine={proposer: WithholdingProposer(receive_full=3)}
    )
    client = rt.new_client("alice")
    rt.start()
    submitted = [rt.submit(client, ("incr", "ctr", 1)) for _ in range(4)]
    rt.run(until=12.0, max_events=10_000_000)
    # Honest replicas agree (the Byzantine proposer's executor may diverge).
    digests = {
        rt.executors[m].state_digest()
        for m in cfg.clan(0)
        if m != proposer
    }
    assert len(digests) == 1
    assert client.accepted_count() == len(submitted)


def test_duplicate_client_id_rejected():
    from repro.errors import ExecutionError

    rt = SmrRuntime(ClanConfig.baseline(4))
    rt.new_client("x")
    with pytest.raises(ExecutionError):
        rt.new_client("x")
