"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_stats_command(capsys):
    code, out = run_cli(capsys, "stats", "150")
    assert code == 0
    assert "n=150, f=49, quorum=100" in out
    assert "77" in out  # exact minimal clan at 1e-6


def test_stats_with_exponent(capsys):
    code, out = run_cli(capsys, "stats", "500", "--exponent", "9")
    assert code == 0
    assert "183" in out


def test_run_command_small(capsys):
    code, out = run_cli(
        capsys, "run", "--protocol", "sailfish", "--n", "7",
        "--load", "50", "--duration", "3",
    )
    assert code == 0
    assert "kTPS" in out and "avg latency" in out


def test_run_single_clan_defaults_clan_size(capsys):
    code, out = run_cli(
        capsys, "run", "--n", "8", "--load", "20", "--duration", "3"
    )
    assert code == 0
    assert "single-clan" in out


def test_sweep_command(capsys):
    code, out = run_cli(
        capsys, "sweep", "--protocol", "multi-clan", "--n", "8",
        "--loads", "10,50", "--duration", "3",
    )
    assert code == 0
    assert out.count("\n") >= 4  # title + header + rule + 2 rows


def test_model_command(capsys):
    code, out = run_cli(capsys, "model", "--n", "150")
    assert code == 0
    assert "sailfish" in out and "multi-clan" in out


def test_figures_fast_targets(capsys):
    for figure in ("table1", "sec62", "sec7", "fig5a-model"):
        code, out = run_cli(capsys, "figures", figure)
        assert code == 0, figure
        assert "Reproduction data" in out


def test_trace_command_writes_jsonl_and_reports(capsys, tmp_path):
    import json

    out_path = tmp_path / "trace.jsonl"
    code, out = run_cli(capsys, "trace", "fig5_smoke", "--out", str(out_path))
    assert code == 0
    # The report decomposes hop latency into the network model's stages.
    for stage in ("nic_wait", "tx", "prop", "cpu_wait"):
        assert stage in out
    assert "Per-hop latency decomposition" in out
    assert "trace written to" in out
    # Every line of the export is valid standalone JSON.
    lines = out_path.read_text().strip().splitlines()
    assert lines
    kinds = {json.loads(line)["type"] for line in lines}
    assert {"span", "counter"} <= kinds


def test_trace_smr_experiment_reports_client_latency(capsys, tmp_path):
    code, out = run_cli(capsys, "trace", "smr_smoke")
    assert code == 0
    assert "Client-observed latency" in out
    assert "accepted by the client" in out


def test_trace_capacity_bounds_records(capsys):
    code, out = run_cli(capsys, "trace", "fig5_smoke", "--capacity", "1000")
    assert code == 0
    assert "1000 kept" in out


def test_forensics_command_on_smr_trace(capsys, tmp_path):
    import json

    out_path = tmp_path / "trace.jsonl"
    code, _ = run_cli(capsys, "trace", "smr_smoke", "--out", str(out_path))
    assert code == 0
    code, out = run_cli(capsys, "forensics", str(out_path))
    assert code == 0
    assert "Reconciliation: OK" in out
    assert "Critical-path attribution" in out
    code, out = run_cli(capsys, "forensics", str(out_path), "--json")
    assert code == 0
    payload = json.loads(out)
    assert payload["reconciliation"]["ok"] is True
    commit = payload["slowest_commits"][0]["commit"]
    code, out = run_cli(capsys, "forensics", str(out_path), "--commit", commit)
    assert code == 0
    assert "critical replica" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figures", "fig99"])
