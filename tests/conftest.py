"""Suite-wide fixtures."""

import pytest

from repro.analysis import sanitizers


@pytest.fixture(autouse=True)
def _sanitizer_run_boundary(request, monkeypatch):
    """Each test is its own sanitizer run.

    The RNG stream-collision registry (REPRO_SANITIZE=1) is normally reset
    when a Simulator is created — one simulator, one run.  Tests that build
    seeded components without ever creating a Simulator would otherwise
    accumulate registrations across test cases and trip false collisions.

    Tests whose very purpose is re-deriving identical streams (determinism
    checks constructing same-seed components back to back, where every
    construction models a fresh run) carry the ``rederives_rng_streams``
    marker, which switches the sanitizers off for that test only.
    """
    if request.node.get_closest_marker("rederives_rng_streams"):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    sanitizers.begin_run()
    yield
