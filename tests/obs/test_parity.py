"""NullTracer/Tracer API parity, checked by introspection.

Instrumented code is written against one surface and handed either
implementation; a method added to ``Tracer`` without its ``NullTracer``
no-op crashes every un-traced run at that call site.  This test makes the
contract executable: every emission/context method must exist on both
classes with an identical signature, and the only divergences allowed are
the collection-side APIs that make no sense on a tracer that collects
nothing.
"""

import inspect

from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.obs.metrics import MetricsRegistry, NullMetrics

#: Tracer-only collection/persistence API: reading back records, ring-buffer
#: accounting, and JSONL files.  Call sites only touch these behind an
#: ``if tracer.enabled:`` guard, so NullTracer legitimately lacks them.
TRACER_ONLY = {
    "clear",
    "export_jsonl",
    "iter_jsonl",
    "meta",
    "read_jsonl",
    "read_jsonl_dicts",
    "to_dicts",
    "write_jsonl",
    "emitted",
    "dropped",
}


def _public_methods(cls) -> dict[str, object]:
    return {
        name: fn
        for name, fn in inspect.getmembers(cls, inspect.isfunction)
        if not name.startswith("_")
    }


def test_every_emission_method_exists_on_both():
    tracer_api = set(_public_methods(Tracer))
    null_api = set(_public_methods(NullTracer))
    assert null_api <= tracer_api, (
        f"NullTracer has methods Tracer lacks: {sorted(null_api - tracer_api)}"
    )
    divergent = tracer_api - null_api
    assert divergent <= TRACER_ONLY, (
        f"Tracer methods missing their NullTracer no-op: "
        f"{sorted(divergent - TRACER_ONLY)}"
    )
    # The allowlist must not rot: every entry still exists on Tracer.
    members = dict(inspect.getmembers(Tracer))
    assert TRACER_ONLY <= set(members), (
        f"stale TRACER_ONLY entries: {sorted(TRACER_ONLY - set(members))}"
    )


def test_shared_methods_have_identical_signatures():
    tracer_api = _public_methods(Tracer)
    for name, null_fn in _public_methods(NullTracer).items():
        assert inspect.signature(null_fn) == inspect.signature(tracer_api[name]), (
            f"signature drift on {name}"
        )


def test_shared_class_attributes():
    # The flags hot paths branch on must exist on both, as plain attributes.
    assert Tracer.enabled is True and NullTracer.enabled is False
    assert NullTracer.sample == 0.0 and NullTracer.verbose is False
    t = Tracer(sample=0.5)
    assert t.sample == 0.5 and t.verbose is False
    assert Tracer(sample=1.0).verbose is True


def test_null_methods_return_the_disabled_values():
    assert NULL_TRACER.now() == 0.0
    assert NULL_TRACER.trace_id("k") == 0
    assert NULL_TRACER.sampled("k") is False
    assert NULL_TRACER.next_span_id() == 0
    assert NULL_TRACER.root_ctx("k") is None
    assert NULL_TRACER.ctx("k") is None
    assert NULL_TRACER.records() == []
    assert len(NULL_TRACER) == 0


def test_metrics_registry_parity():
    # Same contract for the metrics twin: NullMetrics mirrors the emission
    # API (counter/observe/gauge); registry-only read-back may diverge.
    reg_api = set(_public_methods(MetricsRegistry))
    null_api = set(_public_methods(NullMetrics))
    assert null_api <= reg_api
    assert {"counter", "observe", "gauge"} <= null_api
    reg = _public_methods(MetricsRegistry)
    for name, null_fn in _public_methods(NullMetrics).items():
        assert inspect.signature(null_fn) == inspect.signature(reg[name])
