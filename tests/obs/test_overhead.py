"""Disabled-tracer overhead: the instrumented scheduler must match bare code.

The contract (docs/OBSERVABILITY.md): with no tracer attached, every
instrumented component pays at most one attribute check per *call site*, and
the scheduler's run loop pays nothing per event.  This test replicates the
scheduler's calendar-queue hot path inline — stripped of the tracer wrapper
and the sanitizer audit check — and times both on the same 10k-event
microbench; the instrumented one must stay within 5%.
"""

import heapq
import time

from repro.sim.scheduler import Simulator


class _SeedSimulator:
    """The scheduler's hot path (``post`` + ``run``) with no instrumentation:
    no tracer wrapper around the run loop, no tie-audit check in ``post``."""

    def __init__(self):
        self._now = 0.0
        self._times = []
        self._buckets = {}
        self._stopped = False
        self._processed = 0
        self._cancelled = 0

    def post(self, when, fn, args):
        if when < self._now:
            raise ValueError(f"cannot schedule at t={when} before t={self._now}")
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [(fn, args)]
            heapq.heappush(self._times, when)
        else:
            bucket.append((fn, args))

    def run(self, until=None, max_events=None):
        self._stopped = False
        times = self._times
        buckets = self._buckets
        pop = heapq.heappop
        executed = 0
        try:
            while times:
                when = pop(times)
                bucket = buckets.pop(when)
                self._now = when
                if len(bucket) == 1:
                    entry = bucket[0]
                    fn = entry[0]
                    if fn is None:
                        continue
                    fn(*entry[1])
                    executed += 1
                    if self._stopped:
                        return
                    continue
                for entry in bucket:
                    fn = entry[0]
                    if fn is None:
                        continue
                    fn(*entry[1])
                    executed += 1
                    if self._stopped:
                        return
        finally:
            self._processed += executed


def _microbench(sim, events=10_000):
    """Chain of `events` self-rescheduling callbacks; returns wall seconds."""
    count = [0]

    def tick(step):
        count[0] += 1
        if count[0] < events:
            sim.post(sim._now + step, tick, (step,))

    sim.post(0.0, tick, (0.001,))
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert count[0] == events
    return elapsed


def _best_of(factory, repeats=9):
    return min(_microbench(factory()) for _ in range(repeats))


def test_disabled_tracer_overhead_under_5_percent():
    # Warm both paths first so neither pays one-time setup costs.
    _microbench(_SeedSimulator(), events=1_000)
    _microbench(Simulator(), events=1_000)
    # Timing comparisons are noisy; take best-of-N and allow a few retries
    # before declaring a real regression.
    for attempt in range(4):
        seed = _best_of(_SeedSimulator)
        instrumented = _best_of(Simulator)
        if instrumented <= seed * 1.05:
            return
    raise AssertionError(
        f"disabled-tracer scheduler {instrumented:.6f}s vs seed {seed:.6f}s "
        f"({instrumented / seed - 1.0:+.1%} > +5%)"
    )


def test_traced_run_does_not_change_event_order():
    from repro.obs import Tracer

    def record(log, label):
        log.append(label)

    logs = ([], [])
    for log, tracer in ((logs[0], None), (logs[1], Tracer())):
        sim = Simulator(tracer=tracer)
        sim.post(0.2, record, (log, "b"))
        sim.post(0.1, record, (log, "a"))
        sim.post(0.2, record, (log, "c"))  # same instant: seq breaks the tie
        sim.run()
    assert logs[0] == logs[1] == ["a", "b", "c"]
