"""Trace context: deterministic ids, head sampling, and the ctx registry."""

from repro.obs import (
    TraceCtx,
    Tracer,
    block_trace_key,
    derive_trace_id,
    sample_hit,
    txn_trace_key,
)


def test_derive_trace_id_is_deterministic_and_64bit():
    a = derive_trace_id("txn:c1:7")
    assert a == derive_trace_id("txn:c1:7")
    assert 0 <= a < 2**64
    assert a != derive_trace_id("txn:c1:8")


def test_trace_keys_are_distinct_namespaces():
    # A txn id that happens to equal a digest hex must not collide.
    assert txn_trace_key("deadbeef") != block_trace_key(bytes.fromhex("deadbeef"))
    assert txn_trace_key("c1:7") == "txn:c1:7"
    assert block_trace_key(b"\x00\xff") == "blk:00ff"


def test_sample_hit_edge_rates():
    assert sample_hit("anything", 1.0)
    assert sample_hit("anything", 2.0)
    assert not sample_hit("anything", 0.0)
    assert not sample_hit("anything", -1.0)


def test_sample_hit_is_pure_and_roughly_proportional():
    keys = [f"txn:c{i % 4}:{i}" for i in range(4000)]
    rate = 1 / 16
    hits = [k for k in keys if sample_hit(k, rate)]
    # Pure function of identity: the same keys hit on a second pass.
    assert hits == [k for k in keys if sample_hit(k, rate)]
    # BLAKE2b is uniform: 4000 draws at 1/16 land near 250.
    assert 150 <= len(hits) <= 400
    # Monotone in rate: a 1/4 sample is a superset of the 1/16 sample.
    wider = {k for k in keys if sample_hit(k, 1 / 4)}
    assert set(hits) <= wider


def test_tracectx_equality_and_hashing():
    a = TraceCtx(7, 1)
    assert a == TraceCtx(7, 1)
    assert a != TraceCtx(7, 2)
    assert a != TraceCtx(8, 1)
    assert a != (7, 1)
    assert len({a, TraceCtx(7, 1), TraceCtx(7, 2)}) == 2


def test_root_ctx_respects_sampling():
    traced = Tracer(sample=1.0)
    ctx = traced.root_ctx("txn:c1:0")
    assert ctx is not None
    assert ctx.trace_id == derive_trace_id("txn:c1:0")
    assert ctx.span_id == 1  # first id from a fresh tracer

    off = Tracer(sample=0.0)
    assert off.root_ctx("txn:c1:0") is None
    # Un-sampled roots must not burn span ids (determinism across rates).
    assert off.next_span_id() == 1


def test_ctx_span_chains_parent_child_links():
    t = Tracer(sample=1.0)
    root = t.root_ctx("txn:c1:0")
    child = t.ctx_span("stage.one", 0.0, root, end=1.0, node=2)
    grandchild = t.ctx_span("stage.two", 1.0, child, end=2.0)
    assert child.trace_id == root.trace_id == grandchild.trace_id
    one, two = t.to_dicts()
    assert one["attrs"]["parent"] == root.span_id
    assert one["attrs"]["span"] == child.span_id
    assert two["attrs"]["parent"] == child.span_id
    assert one["node"] == 2


def test_ctx_registry_bind_lookup_unbind():
    t = Tracer()
    ctx = TraceCtx(1, 2)
    t.bind(("vertex", 3, 0), ctx)
    assert t.ctx(("vertex", 3, 0)) is ctx
    assert t.ctx(("vertex", 3, 1)) is None
    t.unbind(("vertex", 3, 0))
    assert t.ctx(("vertex", 3, 0)) is None
    t.unbind(("vertex", 3, 0))  # absent: no-op
