"""Tracing must be a pure observer: RunMetrics are bit-identical.

``Network._transmit`` routes a message through ``_transmit_traced`` exactly
when tracing is on for that message (always at sample=1.0, per-message at
1/k).  Both paths draw the same RNG values and produce the same arrival
times, so turning tracing on — at any sample rate — may never perturb what
the simulation computes.
"""

from __future__ import annotations

from repro.bench.metrics import measure_run
from repro.committees.config import ClanConfig
from repro.consensus.deployment import Deployment
from repro.obs import Tracer
from repro.smr.mempool import SyntheticWorkload
from repro.smr.runtime import SmrRuntime


def _deployment_metrics(tracer) -> dict:
    cfg = ClanConfig.single_clan(12, 6, seed=3)
    workload = SyntheticWorkload(txns_per_proposal=8)
    dep = Deployment(cfg, make_block=workload.make_block, seed=7, tracer=tracer)
    dep.start()
    dep.run(until=4.0)
    return measure_run(dep, workload, warmup=0.5, end=4.0).__dict__


def test_sampled_tracing_preserves_run_metrics():
    base = _deployment_metrics(None)
    for sample in (1.0, 1 / 16, 0.0):
        traced = _deployment_metrics(Tracer(sample=sample))
        assert traced == base, f"tracing at sample={sample} perturbed the run"


def _smr_digests(tracer) -> tuple:
    runtime = SmrRuntime(ClanConfig.single_clan(10, 5, seed=1), tracer=tracer)
    clients = [runtime.new_client(f"c{i}") for i in range(3)]
    runtime.start()
    for i in range(30):
        runtime.submit(clients[i % 3], ("set", f"k{i}", i))
    runtime.run(until=6.0)
    accepted = tuple(c.accepted_count() for c in clients)
    digests = tuple(
        sorted(ex.state_digest() for ex in runtime.executors.values())
    )
    return accepted, digests


def test_sampled_tracing_preserves_smr_outcome():
    base = _smr_digests(None)
    for sample in (1.0, 1 / 16):
        assert _smr_digests(Tracer(sample=sample)) == base
