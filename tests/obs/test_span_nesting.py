"""Property test: RBC phase spans form a well-nested, contiguous chain.

For every delivered (node, origin, round) instance of classic Bracha RBC the
trace must contain at most one span per phase, the phases must tile the
end-to-end span without gaps or overlaps (VAL→ECHO→READY→deliver), and every
phase span must lie inside ``rbc.e2e``.
"""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.latency import UniformLatencyModel
from repro.net.network import Network
from repro.obs import Tracer
from repro.obs.tracer import iter_spans
from repro.rbc.bracha import BrachaRbc
from repro.sim import Simulator

PHASES = ("rbc.val_to_echo", "rbc.echo_to_ready", "rbc.ready_to_deliver")


def run_bracha(n, seed, senders):
    sim = Simulator()
    tracer = Tracer(clock=lambda: sim.now)
    net = Network(
        sim, n, latency=UniformLatencyModel(0.03, jitter=0.02, seed=seed), tracer=tracer
    )
    deliveries = {i: [] for i in range(n)}
    modules = []
    for i in range(n):
        def cb(d, i=i):
            deliveries[i].append(d)
        modules.append(BrachaRbc(i, n, net, sim, cb))
    for round_, sender in enumerate(senders, start=1):
        modules[sender % n].broadcast(f"payload-{round_}".encode(), round_)
    sim.run(max_events=2_000_000)
    return tracer, deliveries


world = st.fixed_dictionaries(
    {
        "n": st.integers(min_value=4, max_value=10),
        "seed": st.integers(min_value=0, max_value=10_000),
        "senders": st.lists(
            st.integers(min_value=0, max_value=100), min_size=1, max_size=3
        ),
    }
)


@settings(max_examples=25, deadline=None)
@given(world=world)
def test_rbc_span_nesting_is_well_formed(world):
    tracer, deliveries = run_bracha(world["n"], world["seed"], world["senders"])

    by_instance = defaultdict(dict)
    for span in iter_spans(tracer.records()):
        if not span.name.startswith("rbc."):
            continue
        key = (span.node, span.attrs["origin"], span.attrs["round"])
        # Integrity: at most one span of each name per instance per node.
        assert span.name not in by_instance[key], (span.name, key)
        by_instance[key][span.name] = span

    # Every delivery produced an e2e span, and vice versa.
    delivered_keys = {
        (node, d.origin, d.round)
        for node, ds in deliveries.items()
        for d in ds
    }
    e2e_keys = {k for k, spans in by_instance.items() if "rbc.e2e" in spans}
    assert e2e_keys == delivered_keys

    for key, spans in by_instance.items():
        for span in spans.values():
            assert span.start <= span.end, (key, span)
        e2e = spans.get("rbc.e2e")
        if e2e is None:
            continue  # phase spans of an undelivered instance (none expected)
        # Phase spans nest inside the end-to-end span.
        for name in PHASES:
            phase = spans.get(name)
            if phase is not None:
                assert e2e.start <= phase.start and phase.end <= e2e.end, (key, name)
        # The chain is contiguous: each phase starts where the previous ended.
        chain = [spans[name] for name in PHASES if name in spans]
        assert chain, f"delivered instance {key} has no phase spans"
        assert chain[0].start == e2e.start
        assert chain[-1].end == e2e.end
        for left, right in zip(chain, chain[1:]):
            assert left.end == right.start, (key, left.name, right.name)
