"""Span-tree reconstruction and root-to-commit completeness (acceptance)."""

import pytest

from repro.committees.config import ClanConfig
from repro.obs import Tracer, span_trees, txn_completeness, txn_trace_key
from repro.obs.spantree import COMMIT_STAGES
from repro.smr.runtime import SmrRuntime


def _traced_smr(sample: float) -> tuple[Tracer, int]:
    """Run the deterministic SMR smoke under tracing; returns (tracer, txns)."""
    tracer = Tracer(sample=sample)
    runtime = SmrRuntime(ClanConfig.single_clan(10, 5, seed=1), tracer=tracer)
    clients = [runtime.new_client(f"c{i}") for i in range(3)]
    runtime.start()
    for i in range(30):
        runtime.submit(clients[i % 3], ("set", f"k{i}", i))
    runtime.run(until=6.0, max_events=10_000_000)
    accepted = sum(c.accepted_count() for c in clients)
    assert accepted == 30, "smoke run must commit everything before gating"
    return tracer, accepted


def test_span_trees_builds_parent_child_structure():
    t = Tracer(sample=1.0)
    root = t.root_ctx("txn:c1:0")
    t.span("smr.txn", 0.0, end=3.0, trace=root.trace_id, span=root.span_id)
    child = t.ctx_span("rbc.e2e", 0.5, root, end=1.5, node=2)
    t.ctx_span("smr.execute", 1.5, child, end=2.0, node=2)
    # A span whose parent is not in the trace becomes a root, not an error.
    t.span("orphan", 0.0, end=1.0, trace=root.trace_id,
           span=t.next_span_id(), parent=999_999)
    t.span("sim.run", 0.0, end=3.0)  # context-free: not in any tree

    trees = span_trees(t)
    assert set(trees) == {root.trace_id}
    roots = trees[root.trace_id]
    assert sorted(r["span"]["name"] for r in roots) == ["orphan", "smr.txn"]
    txn = next(r for r in roots if r["span"]["name"] == "smr.txn")
    (e2e,) = txn["children"]
    assert e2e["span"]["name"] == "rbc.e2e"
    (execute,) = e2e["children"]
    assert execute["span"]["name"] == "smr.execute"
    assert execute["children"] == []


def test_commit_stages_cover_the_pipeline():
    assert COMMIT_STAGES == ("rbc.e2e", "dag.attach", "consensus.order",
                             "smr.execute")


def test_full_sampling_yields_complete_commit_trees():
    # The PR's acceptance bar: >= 95% of committed txns have a complete
    # root-to-commit span tree at sample=1.  The seeded smoke hits 100%.
    tracer, accepted = _traced_smr(sample=1.0)
    report = txn_completeness(tracer)
    assert report["committed"] == accepted
    assert report["ratio"] >= 0.95
    assert report["complete"] == report["committed"]
    assert report["missing"] == {}
    # Every committed txn also has a reconstructable tree with a commit stage.
    trees = span_trees(tracer)
    assert len(trees) >= accepted  # one per txn plus one per block


def test_head_sampling_traces_exactly_the_sampled_txns():
    rate = 1 / 16
    tracer, _ = _traced_smr(sample=rate)
    trees = span_trees(tracer)
    # Client seq numbers start at 1: txn i round-robins to client i%3 as
    # that client's (i//3 + 1)-th submission.
    ids = [f"c{i % 3}:{i // 3 + 1}" for i in range(30)]
    expected = {
        tracer.trace_id(txn_trace_key(txn))
        for txn in ids
        if tracer.sampled(txn_trace_key(txn))
    }
    # Deterministic head sampling: the sampled txn traces (and only txn
    # traces from that set, plus block traces they ride in) appear.
    txn_traces = {t for t in trees if t in expected}
    assert txn_traces == expected
    assert expected, "1/16 of 30 txns should sample at least one"
    # Sampled txns still get complete trees: completeness over the sampled
    # subset stays at 1.0 even though most txns are untraced.
    report = txn_completeness(tracer)
    sampled_missing = [t for t in report["missing"]
                       if tracer.sampled(txn_trace_key(t))]
    assert sampled_missing == []


def test_txn_completeness_reports_gaps():
    t = Tracer(sample=1.0)
    root = t.root_ctx("blk:aa")
    # Manifest + execute, but no rbc.e2e/dag.attach/consensus.order spans.
    t.counter("smr.block", digest="aa", txns=["c1:0", "c1:1"])
    t.ctx_span("smr.execute", 1.0, root, end=1.2, digest="aa")
    t.span("smr.txn", 0.0, end=2.0, txn="c1:0",
           trace=t.trace_id(txn_trace_key("c1:0")), span=t.next_span_id())
    report = txn_completeness(t)
    assert report["committed"] == 2
    assert report["complete"] == 0
    assert report["ratio"] == 0.0
    # c1:0 has its root but misses the block stages; c1:1 misses its root too.
    assert report["missing"]["c1:0"] == [
        "rbc.e2e", "dag.attach", "consensus.order"]
    assert report["missing"]["c1:1"][0] == "smr.txn"


def test_txn_completeness_empty_trace():
    report = txn_completeness(Tracer())
    assert report == {"committed": 0, "complete": 0, "ratio": 0.0,
                      "missing": {}}


@pytest.mark.parametrize("max_examples", [1])
def test_txn_completeness_bounds_examples(max_examples):
    t = Tracer(sample=1.0)
    t.counter("smr.block", digest="aa", txns=[f"c1:{i}" for i in range(5)])
    t.counter("smr.execute", digest="aa")
    report = txn_completeness(t, max_examples=max_examples)
    assert report["committed"] == 5 and report["complete"] == 0
    assert len(report["missing"]) == max_examples
