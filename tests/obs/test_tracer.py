"""Unit tests for the tracer event bus, its records, and JSONL round-trips."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    CounterRecord,
    GaugeRecord,
    NullTracer,
    SpanRecord,
    Tracer,
    ensure_tracer,
    record_from_dict,
)
from repro.obs.tracer import iter_spans


def test_counter_gauge_span_records():
    t = Tracer()
    t.counter("msgs", value=3.0, node=1, time=0.5, kind="VAL")
    t.gauge("queue_depth", value=17.0, node=2, time=1.0)
    t.span("phase", start=0.0, end=2.5, node=0, round=4)
    records = t.records()
    assert len(records) == 3
    counter, gauge, span = records
    assert isinstance(counter, CounterRecord)
    assert counter.value == 3.0 and counter.attrs == {"kind": "VAL"}
    assert isinstance(gauge, GaugeRecord)
    assert gauge.value == 17.0 and gauge.node == 2
    assert isinstance(span, SpanRecord)
    assert span.duration == 2.5 and span.attrs == {"round": 4}


def test_clock_binding():
    t = Tracer()
    assert t.now() == 0.0  # unbound clock defaults to zero
    t.set_clock(lambda: 42.5)
    assert t.now() == 42.5
    t.counter("x")  # time defaults to the bound clock
    assert t.records()[0].time == 42.5


def test_begin_end_keyed_spans():
    clock = [0.0]
    t = Tracer(clock=lambda: clock[0])
    t.begin("round", key=1, node=3)
    clock[0] = 2.0
    t.begin("round", key=1, node=3)  # idempotent: keeps the first start
    clock[0] = 5.0
    t.end("round", key=1, node=3, depth=2)
    (span,) = t.records()
    assert span.start == 0.0 and span.end == 5.0
    assert span.attrs == {"depth": 2}
    # Ending a span that was never begun is silently ignored.
    t.end("round", key=99)
    assert len(t) == 1


def test_ring_buffer_eviction_and_dropped():
    t = Tracer(capacity=10)
    for i in range(25):
        t.counter("c", value=float(i))
    assert len(t) == 10
    assert t.emitted == 25
    assert t.dropped == 15
    # The survivors are the newest records.
    assert [r.value for r in t.records()] == [float(i) for i in range(15, 25)]
    t.clear()
    assert len(t) == 0 and t.emitted == 0 and t.dropped == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_null_tracer_is_inert():
    n = NullTracer()
    assert n.enabled is False
    n.set_clock(lambda: 1.0)
    n.counter("x")
    n.gauge("y", 1.0)
    n.span("z", 0.0, 1.0)
    n.begin("a")
    n.end("a")
    assert n.records() == []
    assert len(n) == 0
    assert n.now() == 0.0


def test_ensure_tracer():
    assert ensure_tracer(None) is NULL_TRACER
    t = Tracer()
    assert ensure_tracer(t) is t


def test_jsonl_round_trip(tmp_path):
    t = Tracer()
    t.counter("msgs", value=2.0, node=1, time=0.25, kind="ECHO")
    t.gauge("depth", value=3.5, time=0.5)
    t.span("rbc.e2e", start=0.0, end=1.5, node=4, origin=2)
    path = tmp_path / "trace.jsonl"
    written = t.export_jsonl(str(path))
    assert written == 3
    # Every line is standalone valid JSON; the first is the meta header.
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 4
    for line in lines:
        json.loads(line)
    assert json.loads(lines[0]) == {
        "type": "meta", "emitted": 3, "dropped": 0, "capacity": 1_000_000
    }
    # Typed round-trip reproduces the original records exactly.
    loaded = Tracer.read_jsonl(str(path))
    assert loaded == t.records()
    # Streaming reader yields the same records, lazily.
    assert list(Tracer.iter_jsonl(str(path))) == t.records()
    # Raw-dict load matches to_dicts().
    assert Tracer.read_jsonl_dicts(str(path)) == t.to_dicts()


def test_record_from_dict_rejects_unknown_type():
    with pytest.raises(ValueError):
        record_from_dict({"type": "histogram", "name": "x"})


def test_iter_spans_filter():
    t = Tracer()
    t.span("a", 0.0, 1.0)
    t.counter("a")
    t.span("b", 1.0, 2.0)
    assert [s.name for s in iter_spans(t.records())] == ["a", "b"]
    assert [s.name for s in iter_spans(t.records(), "b")] == ["b"]


def test_anomaly_record_round_trip(tmp_path):
    from repro.obs import ANOMALY_CLASSES, AnomalyRecord

    assert ANOMALY_CLASSES == ("safety", "byzantine", "liveness", "info")
    t = Tracer()
    t.anomaly(
        "commit.prefix_divergence", kind="safety", node=3, time=1.5, position=7
    )
    t.anomaly("round.stall", kind="liveness", node=0, time=2.0)
    (first, second) = t.records()
    assert isinstance(first, AnomalyRecord)
    assert first.kind == "safety" and first.attrs == {"position": 7}
    path = tmp_path / "trace.jsonl"
    t.export_jsonl(str(path))
    assert Tracer.read_jsonl(str(path)) == [first, second]
    # NullTracer accepts the same call as a no-op.
    NULL_TRACER.anomaly("x", kind="safety")
    assert NULL_TRACER.records() == []


def test_tracefile_streams_and_exposes_meta(tmp_path):
    from repro.obs import TraceFile

    t = Tracer(capacity=2)
    for i in range(5):
        t.counter("tick", time=float(i))
    path = tmp_path / "trace.jsonl"
    t.export_jsonl(str(path))
    trace = TraceFile(str(path))
    assert trace.meta["emitted"] == 5
    assert trace.dropped == 3
    # Re-iterable: two passes see the same record dicts, meta excluded.
    assert [r["time"] for r in trace] == [3.0, 4.0]
    assert [r["time"] for r in trace] == [3.0, 4.0]


def test_tracefile_handles_headerless_traces(tmp_path):
    path = tmp_path / "old.jsonl"
    path.write_text(
        '{"type":"counter","name":"x","time":0.5,"value":1.0,'
        '"node":null,"attrs":{}}\n'
    )
    from repro.obs import TraceFile

    trace = TraceFile(str(path))
    assert trace.meta is None
    assert trace.dropped == 0
    assert [r["name"] for r in trace] == ["x"]
    # The typed and dict readers accept the same pre-header file.
    records = Tracer.read_jsonl(str(path))
    assert [r.name for r in records] == ["x"]
    assert [r["name"] for r in Tracer.read_jsonl_dicts(str(path))] == ["x"]
