"""Perfetto/Chrome-trace export: event shapes, tracks, and file output."""

import json

import pytest

from repro.obs import Tracer, TraceFile, export_perfetto, perfetto_trace
from repro.obs.export import perfetto_events


def _sample_tracer() -> Tracer:
    t = Tracer(sample=1.0)
    ctx = t.root_ctx("txn:c1:0")
    t.span("smr.txn", 0.0, end=2.0, node=None,
           trace=ctx.trace_id, span=ctx.span_id, txn="c1:0")
    t.ctx_span("rbc.e2e", 0.5, ctx, end=1.5, node=3)
    t.span("sim.run", 0.0, end=2.0)  # context-free span
    t.anomaly("commit.prefix_divergence", kind="safety", node=1, time=1.0)
    t.counter("consensus.commit", time=1.2, node=2)
    t.gauge("dag.frontier", 5.0, time=1.4, node=0)
    return t


def test_span_events_are_complete_durations():
    events = perfetto_events(_sample_tracer())
    spans = [e for e in events if e["ph"] == "X"]
    assert {s["name"] for s in spans} == {"smr.txn", "rbc.e2e", "sim.run"}
    e2e = next(s for s in spans if s["name"] == "rbc.e2e")
    # Microsecond timestamps; pid = node + 1 (pid 0 is the global process).
    assert e2e["ts"] == 500_000 and e2e["dur"] == 1_000_000
    assert e2e["pid"] == 4
    assert e2e["cat"] == "span"
    # Context attrs survive into args for click-through inspection.
    txn = next(s for s in spans if s["name"] == "smr.txn")
    assert e2e["args"]["trace"] == txn["args"]["trace"]
    assert e2e["args"]["parent"] == txn["args"]["span"]


def test_causal_spans_share_a_trace_lane():
    events = perfetto_events(_sample_tracer())
    spans = {e["name"]: e for e in events if e["ph"] == "X"}
    # Same trace -> same tid lane, even across nodes (pids differ).
    txn, e2e = spans["smr.txn"], spans["rbc.e2e"]
    assert txn["tid"] == e2e["tid"]
    assert txn["pid"] != e2e["pid"]
    # Context-free spans get a per-name lane instead.
    assert spans["sim.run"]["tid"] != txn["tid"]


def test_zero_length_spans_get_min_duration():
    t = Tracer()
    t.span("instant", 1.0, end=1.0)
    (event,) = [e for e in perfetto_events(t) if e["ph"] == "X"]
    assert event["dur"] == 1  # Perfetto drops dur=0 slices


def test_anomaly_counter_and_metadata_events():
    events = perfetto_events(_sample_tracer())
    (anomaly,) = [e for e in events if e["ph"] == "i"]
    assert anomaly["s"] == "g"
    assert anomaly["cat"] == "safety"
    assert anomaly["ts"] == 1_000_000
    counters = [e for e in events if e["ph"] == "C"]
    assert {c["name"] for c in counters} == {"consensus.commit", "dag.frontier"}
    gauge = next(c for c in counters if c["name"] == "dag.frontier")
    assert gauge["args"] == {"value": 5.0}
    meta = [e for e in events if e["ph"] == "M"]
    process_names = {e["pid"]: e["args"]["name"]
                     for e in meta if e["name"] == "process_name"}
    assert process_names[0] == "global"
    assert process_names[4] == "node 3"
    assert any(e["name"] == "thread_name" for e in meta)


def test_perfetto_trace_shape_and_file_roundtrip(tmp_path):
    trace = perfetto_trace(_sample_tracer())
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    assert trace["displayTimeUnit"] == "ms"

    path = tmp_path / "trace.perfetto.json"
    count = export_perfetto(_sample_tracer(), str(path))
    loaded = json.loads(path.read_text())
    assert len(loaded["traceEvents"]) == count
    assert loaded == json.loads(json.dumps(trace))  # deterministic export


def test_export_accepts_tracefile_and_dict_lists(tmp_path):
    t = _sample_tracer()
    jsonl = tmp_path / "trace.jsonl"
    t.export_jsonl(str(jsonl))
    from_tracer = perfetto_events(t)
    # TraceFile (meta header skipped) and raw dict lists export identically.
    assert perfetto_events(TraceFile(str(jsonl))) == from_tracer
    assert perfetto_events(t.to_dicts()) == from_tracer
    assert perfetto_events(t.records()) == from_tracer
    with pytest.raises(TypeError):
        perfetto_events([object()])
