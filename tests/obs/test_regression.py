"""The regression observatory: summarize, diff, and the gate predicate."""

import copy
import json

import pytest

from repro.obs import (
    Tracer,
    diff_summaries,
    load_summary,
    save_summary,
    summarize_trace,
)
from repro.obs.regression import format_findings, has_regressions


def _traced() -> Tracer:
    t = Tracer()
    for i in range(25):
        t.span("rbc.e2e", i * 0.1, end=i * 0.1 + 0.05, node=i % 4)
        t.counter("consensus.commit", time=i * 0.1)
        t.counter("smr.client_latency", value=0.2 + 0.01 * i, time=i * 0.1)
    t.gauge("dag.frontier", 3.0, time=1.0)
    t.anomaly("round.stall", kind="liveness", time=2.0)
    return t


def test_summarize_trace_folds_all_record_types():
    summary = summarize_trace(_traced())
    assert summary["counters"]["consensus.commit"] == {
        "events": 25, "total": 25.0}
    assert summary["counters"]["anomaly.liveness"]["events"] == 1
    assert summary["histograms"]["rbc.e2e"]["count"] == 25
    assert summary["histograms"]["rbc.e2e"]["mean"] == pytest.approx(0.05)
    # Value-bearing latency counters feed a histogram of their own.
    assert summary["histograms"]["smr.client_latency"]["count"] == 25
    assert summary["gauges"]["dag.frontier"] == {"points": 1, "last": 3.0}


def test_summarize_trace_accepts_dicts_and_records():
    t = _traced()
    assert summarize_trace(t.to_dicts()) == summarize_trace(t)
    assert summarize_trace(t.records()) == summarize_trace(t)


def test_diff_identical_summaries_is_clean():
    summary = summarize_trace(_traced())
    findings = diff_summaries(summary, copy.deepcopy(summary))
    assert findings == []
    assert not has_regressions(findings)
    assert format_findings(findings) == "no drift beyond thresholds"


def test_diff_flags_counter_drift_beyond_tolerance():
    base = summarize_trace(_traced())
    cur = copy.deepcopy(base)
    cur["counters"]["consensus.commit"]["total"] = 10.0  # -60%
    findings = diff_summaries(base, cur, rel_tol=0.10)
    (f,) = [x for x in findings if x["field"] == "total"]
    assert f["metric"] == "consensus.commit"
    assert f["severity"] == "regression"
    assert f["delta_pct"] == -60.0
    assert has_regressions(findings)
    assert "consensus.commit.total" in format_findings(findings)


def test_diff_tolerates_drift_within_tolerance():
    base = summarize_trace(_traced())
    cur = copy.deepcopy(base)
    cur["counters"]["consensus.commit"]["total"] *= 1.05  # +5% < 10%
    cur["histograms"]["rbc.e2e"]["p50"] *= 1.3  # 30% < 50% quantile tol
    assert diff_summaries(base, cur) == []


def test_diff_missing_fails_new_is_informational():
    base = summarize_trace(_traced())
    cur = copy.deepcopy(base)
    del cur["counters"]["consensus.commit"]
    cur["counters"]["consensus.extra"] = {"events": 1, "total": 1.0}
    del cur["histograms"]["rbc.e2e"]
    cur["histograms"]["rbc.extra"] = dict(base["histograms"]["rbc.e2e"])
    findings = diff_summaries(base, cur)
    severities = {(f["metric"], f["severity"]) for f in findings}
    assert ("consensus.commit", "missing") in severities
    assert ("rbc.e2e", "missing") in severities
    assert ("consensus.extra", "info") in severities
    assert ("rbc.extra", "info") in severities
    assert has_regressions(findings)
    # Info-only findings must not trip the gate.
    assert not has_regressions([f for f in findings if f["severity"] == "info"])


def test_diff_skips_low_count_histograms():
    base = summarize_trace(_traced())
    cur = copy.deepcopy(base)
    for side in (base, cur):
        side["histograms"]["rbc.rare"] = {
            "count": 2, "sum": 1.0, "min": 0.1, "max": 0.9, "mean": 0.5,
            "p50": 0.5, "p90": 0.9, "p99": 0.9, "p999": 0.9}
    cur["histograms"]["rbc.rare"]["mean"] = 50.0  # huge, but n=2 < min_count
    assert diff_summaries(base, cur) == []
    assert diff_summaries(base, cur, min_count=1) != []


def test_diff_zero_baseline_flags_any_growth():
    base = {"counters": {"x": {"events": 0, "total": 0.0}}, "histograms": {}}
    cur = {"counters": {"x": {"events": 3, "total": 3.0}}, "histograms": {}}
    findings = diff_summaries(base, cur)
    assert all(f["delta_pct"] is None for f in findings)  # inf encodes as None
    assert has_regressions(findings)


def test_load_summary_sniffs_json_vs_jsonl(tmp_path):
    summary = summarize_trace(_traced())
    archived = tmp_path / "summary.json"
    save_summary(summary, str(archived))
    # Archived summaries load verbatim (and are stable-sorted on disk).
    assert load_summary(str(archived)) == summary
    assert json.loads(archived.read_text()) == summary

    trace = tmp_path / "trace.jsonl"
    _traced().export_jsonl(str(trace))
    # Raw JSONL traces are summarized on the fly to the same result.
    assert load_summary(str(trace)) == summary
