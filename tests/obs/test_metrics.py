"""Log-bucketed histograms, the metrics registry, and the Prometheus dump."""

import math
import random

import pytest

from repro.obs import Histogram, MetricsRegistry, NullMetrics, NULL_METRICS
from repro.obs.metrics import BUCKET_COUNT, prometheus_text


def test_histogram_exact_aggregates():
    h = Histogram()
    for v in (0.001, 0.002, 0.004, 0.1):
        h.record(v)
    assert h.count == 4
    assert h.sum == pytest.approx(0.107)
    assert h.min == 0.001
    assert h.max == 0.1
    assert h.mean == pytest.approx(0.107 / 4)


def test_histogram_quantiles_bounded_relative_error():
    # 64 log buckets over [1e-6, 1e3] have edges ~1.4x apart, so any
    # quantile estimate is within one bucket ratio of the true value.
    rng = random.Random(42)
    values = sorted(rng.uniform(0.001, 1.0) for _ in range(5000))
    h = Histogram()
    h.record_many(values)
    ratio = (h.hi / h.lo) ** (1 / BUCKET_COUNT)
    for q in (0.50, 0.90, 0.99):
        true = values[int(q * len(values))]
        assert true / ratio <= h.quantile(q) <= true * ratio
    # Clamped into the observed range at the extremes.
    assert h.quantile(0.0) == h.min
    assert h.quantile(1.0) == h.max
    assert h.min <= h.quantile(0.999) <= h.max


def test_histogram_empty_and_out_of_range_values():
    h = Histogram()
    assert h.quantile(0.5) == 0.0
    assert h.mean == 0.0
    assert h.summary()["count"] == 0
    # Below lo and above hi land in the edge buckets but keep exact extremes.
    h.record(0.0)
    h.record(1e9)
    assert h.counts[0] == 1 and h.counts[-1] == 1
    assert h.min == 0.0 and h.max == 1e9
    assert h.quantile(0.999) <= h.max


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(lo=0.0, hi=1.0)
    with pytest.raises(ValueError):
        Histogram(lo=2.0, hi=1.0)


def test_histogram_merge_matches_combined_recording():
    a, b, combined = Histogram(), Histogram(), Histogram()
    for i in range(1, 50):
        a.record(i * 0.001)
        combined.record(i * 0.001)
    for i in range(1, 30):
        b.record(i * 0.01)
        combined.record(i * 0.01)
    a.merge(b)
    assert a.counts == combined.counts
    assert a.count == combined.count
    assert a.sum == pytest.approx(combined.sum)
    assert (a.min, a.max) == (combined.min, combined.max)
    # Merging an empty histogram leaves the extremes untouched.
    a.merge(Histogram())
    assert a.max == combined.max and math.isfinite(a.min)
    with pytest.raises(ValueError):
        a.merge(Histogram(lo=1e-3, hi=1.0))


def test_histogram_dict_roundtrip():
    h = Histogram(lo=1e-4, hi=10.0)
    h.record_many([0.001, 0.01, 0.5, 3.0])
    data = h.to_dict()
    assert set(data) == {"lo", "hi", "count", "sum", "min", "max", "buckets"}
    back = Histogram.from_dict(data)
    assert back.counts == h.counts
    assert (back.count, back.sum, back.min, back.max) == (
        h.count, h.sum, h.min, h.max)
    assert back.summary() == h.summary()
    # Empty roundtrip: min/max encode as None and decode to the sentinels.
    empty = Histogram.from_dict(Histogram().to_dict())
    assert empty.count == 0 and empty.min == math.inf


def test_registry_counters_histograms_gauges():
    reg = MetricsRegistry()
    reg.counter("consensus.commit")
    reg.counter("consensus.commit", 3.0)
    reg.observe("rbc.e2e", 0.25)
    reg.observe("rbc.e2e", 0.75)
    reg.gauge("dag.frontier", 1.0, 4.0)
    reg.gauge("dag.frontier", 2.0, 6.0)
    assert reg.counters["consensus.commit"] == {"events": 2, "total": 4.0}
    assert reg.histogram("rbc.e2e").count == 2
    assert reg.histogram("missing") is None
    out = reg.to_dict()
    assert out["counters"]["consensus.commit"]["total"] == 4.0
    assert out["histograms"]["rbc.e2e"]["count"] == 2
    assert out["histograms"]["rbc.e2e"]["mean"] == pytest.approx(0.5)
    assert out["gauges"]["dag.frontier"] == {"points": 2, "last": 6.0}


def test_null_metrics_is_inert():
    assert NullMetrics.enabled is False
    assert NULL_METRICS.counter("x") is None
    assert NULL_METRICS.observe("x", 1.0) is None
    assert NULL_METRICS.gauge("x", 0.0, 1.0) is None


def test_prometheus_text_rendering():
    reg = MetricsRegistry()
    reg.counter("consensus.commit", 2.0)
    reg.observe("rbc.e2e", 0.5)
    reg.gauge("dag.frontier", 1.0, 7.0)
    text = prometheus_text(reg.to_dict())
    assert text.endswith("\n")
    assert "# TYPE repro_consensus_commit_total counter" in text
    assert "repro_consensus_commit_total 2" in text
    assert "repro_consensus_commit_events 1" in text
    assert '# TYPE repro_rbc_e2e summary' in text
    assert 'repro_rbc_e2e{quantile="0.99"}' in text
    assert "repro_rbc_e2e_count 1" in text
    assert "# TYPE repro_dag_frontier gauge" in text
    assert "repro_dag_frontier 7" in text
    # Dotted names are mapped into the Prometheus character set.
    assert "consensus.commit" not in text
