"""Tests for the reliable-channel transport over lossy links."""

import pytest

from repro.errors import NetworkError
from repro.net.faults import LossyLink, PartitionAdversary, partition
from repro.net.latency import UniformLatencyModel
from repro.net.message import Message
from repro.net.network import Network
from repro.net.transport import AckMsg, DataMsg, ReliableTransport, _RecvState
from repro.sim import Simulator


class Blob(Message):
    __slots__ = ("tag", "size", "signed")

    def __init__(self, tag=0, size=100, signed=False):
        self.tag = tag
        self.size = size
        self.signed = signed

    def wire_size(self):
        return self.size


def make_transport(n=4, faults=None, latency=0.05, **kwargs):
    sim = Simulator()
    net = Network(sim, n, latency=UniformLatencyModel(latency), faults=faults)
    transport = ReliableTransport(net, **kwargs)
    inbox = [[] for _ in range(n)]
    for i in range(n):
        transport.register(
            i, lambda src, msg, i=i: inbox[i].append((sim.now, src, msg))
        )
    return sim, net, transport, inbox


class TestWrapping:
    def test_data_msg_reports_inner_kind_and_signature(self):
        data = DataMsg(3, Blob(signed=True))
        assert data.kind() == "Blob"
        assert data.signed
        assert data.wire_size() == 108

    def test_validates_parameters(self):
        net = Network(Simulator(), 2, latency=UniformLatencyModel(0.01))
        with pytest.raises(NetworkError):
            ReliableTransport(net, ack_timeout=0.0)
        with pytest.raises(NetworkError):
            ReliableTransport(net, backoff=0.5)
        with pytest.raises(NetworkError):
            ReliableTransport(net, ack_timeout=1.0, max_timeout=0.5)

    def test_recv_state_window_is_bounded(self):
        recv = _RecvState()
        for seq in range(1, 101):
            assert recv.accept(seq)
        assert recv.contiguous == 100
        assert recv.sparse == set()
        assert not recv.accept(50)  # below the watermark: duplicate


class TestReliability:
    def test_perfect_link_passes_through(self):
        sim, net, transport, inbox = make_transport()
        transport.send(0, 1, Blob(tag=7))
        sim.run()
        assert [msg.tag for _, _, msg in inbox[1]] == [7]
        assert transport.retransmissions == 0
        assert transport.unacked_count() == 0

    def test_every_message_delivered_exactly_once_despite_loss(self):
        sim, net, transport, inbox = make_transport(
            faults=LossyLink(0.3, 0.1, seed=4)
        )
        for tag in range(200):
            transport.send(0, 1, Blob(tag=tag))
        sim.run()
        tags = [msg.tag for _, _, msg in inbox[1]]
        assert sorted(tags) == list(range(200))
        assert len(tags) == len(set(tags)), "duplicate delivered to handler"
        assert transport.retransmissions > 0
        assert transport.duplicates_suppressed > 0
        assert transport.unacked_count() == 0  # everything eventually acked

    def test_message_sent_into_partition_delivers_after_heal(self):
        adv = PartitionAdversary([partition(0.0, 5.0, {0})])
        sim, net, transport, inbox = make_transport(faults=adv)
        transport.send(0, 1, Blob(tag=1))
        sim.run(until=4.9)
        assert inbox[1] == []
        sim.run()
        assert [msg.tag for _, _, msg in inbox[1]] == [1]
        # Retransmission intervals are capped, so delivery lands soon after
        # heal rather than after one giant doubled timeout.
        assert inbox[1][0][0] < 5.0 + 8.0 + 1.0

    def test_backoff_caps_retransmission_rate(self):
        # Unreachable peer: retransmissions follow 0.25 * 2^k capped at 2.0.
        adv = PartitionAdversary([partition(0.0, 100.0, {0})])
        sim, net, transport, _ = make_transport(
            faults=adv, ack_timeout=0.25, backoff=2.0, max_timeout=2.0
        )
        transport.send(0, 1, Blob())
        sim.run(until=20.0)
        # Schedule: 0.25+0.5+1+2+2+... → roughly (20-1.75)/2 + 4 tries.
        assert 10 <= transport.retransmissions <= 14

    def test_retransmission_across_heal_no_duplicates(self):
        # A burst sent into a partition must survive the heal exactly once —
        # even with a duplicating link — with the backoff cap bounding the
        # retransmission rate while the peer is unreachable, and the
        # receiver's watermark suppressing every late wire copy afterwards.
        from repro.net.faults import CompositeFault

        faults = CompositeFault([
            PartitionAdversary([partition(0.0, 6.0, {0})]),
            LossyLink(0.0, duplicate_prob=0.3, seed=9),
        ])
        sim, net, transport, inbox = make_transport(
            faults=faults, ack_timeout=0.25, backoff=2.0, max_timeout=1.0
        )
        for tag in range(5):
            transport.send(0, 1, Blob(tag=tag))
        sim.run(until=5.9)
        assert inbox[1] == []
        # Cap respected: per message, retries at 0.25, 0.75, 1.75 then every
        # 1.0 s — 7 each by t=5.9, never the uncapped exponential silence
        # (4) nor an uncapped flood.
        assert transport.retransmissions == 5 * 7
        sim.run(until=8.0)
        tags = [m.tag for _, _, m in inbox[1]]
        assert sorted(tags) == list(range(5))
        assert len(tags) == len(set(tags)), "duplicate delivered after heal"
        # New traffic after the watermark advanced: still exactly-once, and
        # the duplicating link's extra copies are all suppressed.
        for tag in range(5, 10):
            transport.send(0, 1, Blob(tag=tag))
        sim.run()
        tags = [m.tag for _, _, m in inbox[1]]
        assert sorted(tags) == list(range(10))
        assert len(tags) == len(set(tags))
        assert transport.duplicates_suppressed > 0
        assert transport.unacked_count() == 0

    def test_loopback_bypasses_wrapping(self):
        sim, net, transport, inbox = make_transport(faults=LossyLink(0.9, seed=1))
        transport.send(2, 2, Blob(tag=9))
        sim.run()
        assert [msg.tag for _, _, msg in inbox[2]] == [9]
        assert transport.unacked_count() == 0

    def test_multicast_and_broadcast(self):
        sim, net, transport, inbox = make_transport()
        transport.multicast(0, [1, 2], Blob(tag=1))
        transport.broadcast(3, Blob(tag=2))
        sim.run()
        assert [m.tag for _, _, m in inbox[1]] == [1, 2]
        assert [m.tag for _, _, m in inbox[2]] == [1, 2]
        assert [m.tag for _, _, m in inbox[0]] == [2]


class TestCrashSemantics:
    def test_crashed_sender_stops_retransmitting(self):
        adv = PartitionAdversary([partition(0.0, 100.0, {0})])
        sim, net, transport, _ = make_transport(faults=adv)
        transport.send(0, 1, Blob())
        sim.run(until=1.0)
        before = transport.retransmissions
        net.crash(0)
        assert transport.unacked_count(0) == 0  # buffer dropped with the node
        sim.run(until=50.0)
        assert transport.retransmissions == before

    def test_send_from_crashed_node_is_dropped(self):
        sim, net, transport, inbox = make_transport()
        net.crash(0)
        transport.send(0, 1, Blob())
        sim.run()
        assert inbox[1] == []
        assert transport.unacked_count() == 0

    def test_channel_resumes_after_recovery(self):
        sim, net, transport, inbox = make_transport()
        transport.send(0, 1, Blob(tag=1))
        sim.run()
        net.crash(0)
        net.recover(0)
        transport.send(0, 1, Blob(tag=2))
        sim.run()
        # Seq counters and receive windows survive the crash: the second
        # message is not mistaken for a replay of the first.
        assert [m.tag for _, _, m in inbox[1]] == [1, 2]

    def test_receiver_down_then_up_gets_the_message(self):
        sim, net, transport, inbox = make_transport()
        net.crash(1)
        transport.send(0, 1, Blob(tag=5))
        sim.run(until=3.0)
        assert inbox[1] == []
        net.recover(1)
        sim.run()
        # Sender kept retransmitting across the receiver's outage.
        assert [m.tag for _, _, m in inbox[1]] == [5]


class TestAckPath:
    def test_lost_ack_triggers_reack_not_redelivery(self):
        class AckEater(LossyLink):
            """Drops only acks, and only the first few."""

            def __init__(self):
                self.eaten = 0

            def copies(self, src, dst, msg, now):
                if isinstance(msg, AckMsg) and self.eaten < 3:
                    self.eaten += 1
                    return 0
                return 1

        sim, net, transport, inbox = make_transport(faults=AckEater())
        transport.send(0, 1, Blob(tag=1))
        sim.run()
        assert [m.tag for _, _, m in inbox[1]] == [1]
        assert transport.retransmissions >= 1
        assert transport.duplicates_suppressed >= 1
        assert transport.unacked_count() == 0
