"""Property tests for the partial-synchrony adversary model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.net.adversary import PartialSynchronyAdversary, TargetedDelayAdversary
from repro.net.message import Message


class Probe(Message):
    __slots__ = ()


@pytest.mark.rederives_rng_streams
@settings(max_examples=60, deadline=None)
@given(
    gst=st.floats(min_value=0.0, max_value=100.0),
    max_extra=st.floats(min_value=0.0, max_value=50.0),
    delta=st.floats(min_value=0.01, max_value=5.0),
    now=st.floats(min_value=0.0, max_value=200.0),
    seed=st.integers(min_value=0, max_value=100),
)
def test_partial_synchrony_delay_bounds(gst, max_extra, delta, now, seed):
    """The model's contract: zero extra delay after GST; before GST, the
    extra never pushes arrival past GST + Δ."""
    adversary = PartialSynchronyAdversary(gst, max_extra, delta, seed=seed)
    extra = adversary.extra_delay(0, 1, Probe(), now)
    assert extra >= 0.0
    if now >= gst:
        assert extra == 0.0
    else:
        assert now + extra <= gst + delta + 1e-9
        assert extra <= max_extra + 1e-9


def test_partial_synchrony_validation():
    with pytest.raises(ConfigError):
        PartialSynchronyAdversary(gst=-1, max_extra=1, delta=1)
    with pytest.raises(ConfigError):
        PartialSynchronyAdversary(gst=1, max_extra=1, delta=0)


@settings(max_examples=40, deadline=None)
@given(
    victims=st.sets(st.integers(min_value=0, max_value=9), max_size=4),
    src=st.integers(min_value=0, max_value=9),
    dst=st.integers(min_value=0, max_value=9),
    now=st.floats(min_value=0.0, max_value=20.0),
)
def test_targeted_adversary_hits_exactly_victims(victims, src, dst, now):
    adversary = TargetedDelayAdversary(victims, extra=3.0, until=10.0)
    extra = adversary.extra_delay(src, dst, Probe(), now)
    involved = src in victims or dst in victims
    if now >= 10.0 or not involved:
        assert extra == 0.0
    else:
        assert extra == 3.0


def test_targeted_adversary_validation():
    with pytest.raises(ConfigError):
        TargetedDelayAdversary({1}, extra=-1.0)
