"""Tests for link fault models and their composition with the network."""

import pytest

from repro.errors import ConfigError
from repro.net.adversary import TargetedDelayAdversary
from repro.net.faults import (
    ChurnEvent,
    ChurnSchedule,
    CompositeFault,
    LinkFault,
    LossyLink,
    Partition,
    PartitionAdversary,
    partition,
)
from repro.net.latency import UniformLatencyModel
from repro.net.message import Message
from repro.net.network import Network
from repro.sim import Simulator


class Blob(Message):
    __slots__ = ("size", "signed")

    def __init__(self, size=100, signed=False):
        self.size = size
        self.signed = signed

    def wire_size(self):
        return self.size


def make_net(n=4, faults=None, adversary=None, latency=0.05):
    sim = Simulator()
    net = Network(
        sim,
        n,
        latency=UniformLatencyModel(latency),
        faults=faults,
        adversary=adversary,
    )
    inbox = [[] for _ in range(n)]
    for i in range(n):
        net.register(i, lambda src, msg, i=i: inbox[i].append((sim.now, src, msg)))
    return sim, net, inbox


class TestLossyLink:
    def test_validates_probabilities(self):
        with pytest.raises(ConfigError):
            LossyLink(1.0)
        with pytest.raises(ConfigError):
            LossyLink(-0.1)
        with pytest.raises(ConfigError):
            LossyLink(0.6, duplicate_prob=0.5)

    def test_zero_probabilities_are_a_perfect_link(self):
        link = LossyLink(0.0)
        assert all(link.copies(0, 1, None, 0.0) == 1 for _ in range(50))

    def test_drop_rate_approximates_probability(self):
        link = LossyLink(0.3, seed=5)
        outcomes = [link.copies(0, 1, None, 0.0) for _ in range(2000)]
        drop_rate = outcomes.count(0) / len(outcomes)
        assert 0.25 < drop_rate < 0.35

    @pytest.mark.rederives_rng_streams
    def test_deterministic_per_seed_and_link(self):
        a = [LossyLink(0.3, 0.1, seed=9).copies(0, 1, None, 0.0) for _ in range(100)]
        b = [LossyLink(0.3, 0.1, seed=9).copies(0, 1, None, 0.0) for _ in range(100)]
        c = [LossyLink(0.3, 0.1, seed=10).copies(0, 1, None, 0.0) for _ in range(100)]
        assert a == b
        assert a != c

    @pytest.mark.rederives_rng_streams
    def test_links_use_independent_streams(self):
        link = LossyLink(0.5, seed=3)
        ab = [link.copies(0, 1, None, 0.0) for _ in range(100)]
        link2 = LossyLink(0.5, seed=3)
        # Interleaving traffic on another link must not perturb (0, 1).
        ab_interleaved = []
        for _ in range(100):
            link2.copies(2, 3, None, 0.0)
            ab_interleaved.append(link2.copies(0, 1, None, 0.0))
        assert ab == ab_interleaved

    def test_network_drops_and_duplicates(self):
        sim, net, inbox = make_net(faults=LossyLink(0.3, 0.1, seed=1))
        for _ in range(300):
            net.send(0, 1, Blob())
        sim.run()
        delivered = len(inbox[1])
        assert net.stats.messages_dropped > 50
        assert net.stats.messages_duplicated > 10
        assert (
            delivered
            == 300 - net.stats.messages_dropped + net.stats.messages_duplicated
        )

    def test_loopback_is_exempt(self):
        sim, net, inbox = make_net(faults=LossyLink(0.9, seed=1))
        for _ in range(50):
            net.send(0, 0, Blob())
        sim.run()
        assert len(inbox[0]) == 50
        assert net.stats.messages_dropped == 0


class TestPartition:
    def test_window_and_group_validation(self):
        with pytest.raises(ConfigError):
            Partition(5.0, 5.0, (frozenset({0}),))
        with pytest.raises(ConfigError):
            Partition(0.0, 1.0, (frozenset({0, 1}), frozenset({1, 2})))

    def test_severs_across_groups_only(self):
        split = partition(0.0, 10.0, {0, 1}, {2, 3})
        assert split.severs(0, 2)
        assert split.severs(3, 1)
        assert not split.severs(0, 1)
        assert not split.severs(2, 3)

    def test_implicit_rest_group(self):
        split = partition(0.0, 10.0, {0, 1})
        assert split.severs(0, 2)
        assert not split.severs(2, 3)  # both in the implicit remainder

    def test_adversary_cuts_only_inside_window(self):
        adv = PartitionAdversary([partition(2.0, 4.0, {0})])
        assert adv.copies(0, 1, None, 1.0) == 1
        assert adv.copies(0, 1, None, 2.0) == 0
        assert adv.copies(0, 1, None, 3.999) == 0
        assert adv.copies(0, 1, None, 4.0) == 1
        assert adv.heal_time == 4.0

    def test_network_heals_after_window(self):
        adv = PartitionAdversary([partition(0.0, 5.0, {0, 1})])
        sim, net, inbox = make_net(faults=adv)
        net.send(0, 2, Blob())  # cut at send time
        sim.run()
        assert inbox[2] == []
        sim.schedule_at(6.0, lambda: net.send(0, 2, Blob()))
        sim.run()
        assert len(inbox[2]) == 1


class TestCompositeFault:
    def test_any_drop_wins_and_duplicates_multiply(self):
        class Fixed(LinkFault):
            def __init__(self, n):
                self.n = n

            def copies(self, src, dst, msg, now):
                return self.n

        assert CompositeFault([Fixed(2), Fixed(3)]).copies(0, 1, None, 0.0) == 6
        assert CompositeFault([Fixed(0), Fixed(3)]).copies(0, 1, None, 0.0) == 0
        assert CompositeFault([]).copies(0, 1, None, 0.0) == 1

    def test_composes_with_targeted_delay_adversary(self):
        # Faults decide copy counts; the delay adversary shifts each copy.
        adv = TargetedDelayAdversary(victims={1}, extra=2.0)
        sim, net, inbox = make_net(
            faults=LossyLink(0.0, duplicate_prob=0.5, seed=2), adversary=adv
        )
        for _ in range(40):
            net.send(0, 1, Blob())
        sim.run()
        assert net.stats.messages_duplicated > 5
        assert len(inbox[1]) == 40 + net.stats.messages_duplicated
        # Every copy toward the targeted node carries the extra delay.
        assert min(when for when, _, _ in inbox[1]) >= 2.0


class TestChurnSchedule:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ChurnEvent(-1.0, 0, "crash")
        with pytest.raises(ConfigError):
            ChurnEvent(1.0, 0, "reboot")
        with pytest.raises(ConfigError):
            ChurnSchedule.outages([(0, 5.0, 4.0)])

    def test_outages_and_downtime(self):
        churn = ChurnSchedule.outages([(1, 2.0, 6.0), (2, 3.0, None)])
        assert churn.downtime_of(1) == [(2.0, 6.0)]
        assert churn.downtime_of(2) == [(3.0, None)]
        assert churn.downtime_of(0) == []
        assert churn.settle_time == 6.0

    def test_install_crashes_and_recovers(self):
        churn = ChurnSchedule.outages([(1, 1.0, 3.0)])
        sim, net, inbox = make_net()
        churn.install(sim, net)
        sim.run(until=2.0)
        assert net.is_crashed(1)
        net.send(0, 1, Blob())
        sim.run(until=2.9)
        assert inbox[1] == []  # dropped while down
        sim.run(until=4.0)
        assert not net.is_crashed(1)
        net.send(0, 1, Blob())
        sim.run()
        assert len(inbox[1]) == 1


class TestNetworkRecover:
    def test_recover_restores_delivery(self):
        sim, net, inbox = make_net()
        net.crash(2)
        net.send(0, 2, Blob())
        sim.run()
        assert inbox[2] == []
        net.recover(2)
        net.send(0, 2, Blob())
        sim.run()
        assert len(inbox[2]) == 1

    def test_crash_and_recover_are_idempotent(self):
        sim, net, _ = make_net()
        fired = []
        net.on_lifecycle(1, on_crash=lambda: fired.append("crash"),
                         on_recover=lambda: fired.append("recover"))
        net.crash(1)
        net.crash(1)
        net.recover(1)
        net.recover(1)
        assert fired == ["crash", "recover"]

    def test_lifecycle_callbacks_fire_in_registration_order(self):
        sim, net, _ = make_net()
        fired = []
        net.on_lifecycle(0, on_crash=lambda: fired.append("a"))
        net.on_lifecycle(0, on_crash=lambda: fired.append("b"))
        net.crash(0)
        assert fired == ["a", "b"]
