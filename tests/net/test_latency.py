"""Tests for the latency models and the Table 1 GCP matrix."""

import pytest

from repro.errors import ConfigError
from repro.net.latency import (
    GCP_REGIONS,
    GCP_RTT_MS,
    GeoLatencyModel,
    UniformLatencyModel,
    gcp_latency_model,
    round_robin_regions,
)


def test_gcp_matrix_complete_and_positive():
    assert len(GCP_REGIONS) == 5
    for src in GCP_REGIONS:
        for dst in GCP_REGIONS:
            assert GCP_RTT_MS[(src, dst)] > 0


def test_gcp_matrix_paper_values():
    # Spot-check Table 1 entries.
    assert GCP_RTT_MS[("us-east1", "us-west1")] == 66.14
    assert GCP_RTT_MS[("europe-north1", "australia-southeast1")] == 295.13
    assert GCP_RTT_MS[("australia-southeast1", "australia-southeast1")] == 0.58


def test_gcp_matrix_roughly_symmetric():
    # Ping RTTs in Table 1 are near-symmetric; the largest measured asymmetry
    # in the paper's matrix is 2.68 ms (asia <-> australia).
    for src in GCP_REGIONS:
        for dst in GCP_REGIONS:
            assert abs(GCP_RTT_MS[(src, dst)] - GCP_RTT_MS[(dst, src)]) < 3.0


def test_round_robin_assignment_even():
    regions = round_robin_regions(10)
    assert len(regions) == 10
    assert regions.count("us-east1") == 2
    assert regions[0] == "us-east1" and regions[5] == "us-east1"


def test_uniform_latency_constant():
    model = UniformLatencyModel(base=0.05)
    assert model.delay(0, 1) == 0.05
    assert model.mean_delay(10) == 0.05


def test_uniform_latency_jitter_bounds():
    model = UniformLatencyModel(base=0.05, jitter=0.01, seed=3)
    for _ in range(100):
        d = model.delay(0, 1)
        assert 0.05 <= d < 0.06


def test_uniform_latency_rejects_negative():
    with pytest.raises(ConfigError):
        UniformLatencyModel(base=-1.0)


def test_geo_latency_one_way_is_half_rtt():
    model = GeoLatencyModel(["us-east1", "us-west1"], jitter=0.0)
    assert model.delay(0, 1) == pytest.approx(66.14 / 2 / 1000)
    assert model.delay(1, 0) == pytest.approx(66.15 / 2 / 1000)


def test_geo_latency_unknown_region_rejected():
    with pytest.raises(ConfigError):
        GeoLatencyModel(["mars-north1"])


def test_geo_latency_jitter_multiplicative():
    model = GeoLatencyModel(["us-east1", "asia-northeast1"], jitter=0.1, seed=5)
    base = 160.28 / 2 / 1000
    for _ in range(50):
        d = model.delay(0, 1)
        assert base <= d <= base * 1.1 + 1e-12


def test_gcp_model_mean_delay_reasonable():
    model = gcp_latency_model(10, jitter=0.0)
    mean = model.mean_delay(10)
    # Table 1 one-way averages fall well inside (20 ms, 120 ms).
    assert 0.020 < mean < 0.120
