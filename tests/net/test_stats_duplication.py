"""NetworkStats accounting under fault-model loss/duplication.

The wire-size memo (``Message.wire_size_cached``) means every copy of a
message reuses one computed size — these tests pin the exact byte/message
counts so a future change to the memo or the fault loop can't silently
double- or under-count duplicated traffic.

Accounting contract (see ``Network._transmit``):

* ``bytes_sent``/``messages_sent`` count one unit per *addressed destination*
  (the NIC serializes the copy whether or not the wire drops it).
* ``bytes_received`` counts one unit per *delivered copy* — duplicates
  inflate it, drops deflate it.
* ``messages_dropped`` counts fully dropped (src, dst) sends;
  ``messages_duplicated`` counts extra copies beyond the first.
"""

from __future__ import annotations

from repro.net.faults import LinkFault
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.scheduler import Simulator


class _FixedCopies(LinkFault):
    """Deterministic fault model: every remote copy count is ``copies``."""

    def __init__(self, copies: int) -> None:
        self._copies = copies

    def copies(self, src, dst, msg, now):
        return self._copies


class _Probe(Message):
    def __init__(self, size: int) -> None:
        self._size = size

    def wire_size(self) -> int:
        return self._size

    def kind(self) -> str:
        return "probe"


def _build(n: int, faults: LinkFault | None):
    sim = Simulator()
    net = Network(sim, n, faults=faults)
    delivered: list[tuple[int, Message]] = []
    for node in range(n):
        net.register(node, lambda src, msg, _node=node: delivered.append((_node, msg)))
    return sim, net, delivered


def test_duplicated_copies_counted_once_sent_twice_received():
    sim, net, delivered = _build(3, _FixedCopies(2))
    msg = _Probe(1000)
    net.multicast(0, (1, 2), msg)
    sim.run(until=10.0)
    stats = net.stats
    # Sender serialized one copy per destination — duplication happens on the
    # wire, not at the NIC.
    assert stats.bytes_sent[0] == 2 * 1000
    assert stats.messages_sent[0] == 2
    assert stats.messages_duplicated == 2  # one extra copy per destination
    assert stats.messages_dropped == 0
    # Receivers saw two copies each, every copy at the memoized size.
    assert len(delivered) == 4
    assert stats.bytes_received[1] == 2 * 1000
    assert stats.bytes_received[2] == 2 * 1000


def test_dropped_copies_are_sent_but_never_received():
    sim, net, delivered = _build(3, _FixedCopies(0))
    net.multicast(0, (1, 2), _Probe(500))
    sim.run(until=10.0)
    stats = net.stats
    assert stats.bytes_sent[0] == 2 * 500
    assert stats.messages_sent[0] == 2
    assert stats.messages_dropped == 2
    assert stats.messages_duplicated == 0
    assert delivered == []
    assert stats.bytes_received[1] == 0
    assert stats.bytes_received[2] == 0


def test_loopback_is_exempt_from_faults():
    sim, net, delivered = _build(2, _FixedCopies(0))
    net.broadcast(0, _Probe(100))
    sim.run(until=10.0)
    # The remote copy dropped; the self-delivery did not.
    assert [node for node, _ in delivered] == [0]
    assert net.stats.messages_dropped == 1
    assert net.stats.bytes_received[0] == 100


def test_wire_size_memo_consistent_across_copies_and_kind_tracking():
    sim = Simulator()
    net = Network(sim, 3, faults=_FixedCopies(3), track_kinds=True)
    for node in range(3):
        net.register(node, lambda src, msg: None)
    msg = _Probe(256)
    net.multicast(0, (1, 2), msg)
    net.multicast(0, (1, 2), msg)  # same instance again: memo must not drift
    sim.run(until=10.0)
    stats = net.stats
    assert stats.bytes_sent[0] == 4 * 256
    assert stats.bytes_by_kind["probe"] == 4 * 256
    assert stats.messages_by_kind["probe"] == 4
    assert stats.messages_duplicated == 4 * 2
    # Every delivered copy credited at the same memoized size.
    assert stats.bytes_received[1] == 6 * 256
    assert stats.bytes_received[2] == 6 * 256
    assert msg.wire_size_cached() == 256
