"""Tests for the simulated network: delivery, NIC serialization, crashes."""

import pytest

from repro.errors import NetworkError
from repro.net.adversary import PartialSynchronyAdversary, TargetedDelayAdversary
from repro.net.cpu import CpuModel
from repro.net.message import Message
from repro.net.network import Network
from repro.net.latency import UniformLatencyModel
from repro.sim import Simulator


class Blob(Message):
    """Test message with an explicit wire size."""

    __slots__ = ("size", "signed")

    def __init__(self, size=100, signed=False):
        self.size = size
        self.signed = signed

    def wire_size(self):
        return self.size


def make_net(n=4, latency=0.05, bandwidth_bps=None, adversary=None, cpu=None):
    sim = Simulator()
    net = Network(
        sim,
        n,
        latency=UniformLatencyModel(latency),
        bandwidth_bps=bandwidth_bps,
        adversary=adversary,
        cpu=cpu,
    )
    inbox = [[] for _ in range(n)]
    for i in range(n):
        net.register(i, lambda src, msg, i=i: inbox[i].append((sim.now, src, msg)))
    return sim, net, inbox


def test_send_delivers_after_latency():
    sim, net, inbox = make_net()
    net.send(0, 1, Blob())
    sim.run()
    assert len(inbox[1]) == 1
    t, src, _ = inbox[1][0]
    assert src == 0 and t == pytest.approx(0.05)


def test_multicast_reaches_all_destinations():
    sim, net, inbox = make_net()
    net.multicast(0, [1, 2, 3], Blob())
    sim.run()
    for i in (1, 2, 3):
        assert len(inbox[i]) == 1
    assert inbox[0] == []


def test_broadcast_includes_self_with_loopback():
    sim, net, inbox = make_net()
    net.broadcast(0, Blob())
    sim.run()
    assert len(inbox[0]) == 1
    # Loopback delivery happens at send time (no NIC or propagation cost).
    assert inbox[0][0][0] == 0.0


def test_infinite_bandwidth_parallel_delivery():
    sim, net, inbox = make_net(bandwidth_bps=None)
    net.multicast(0, [1, 2, 3], Blob(size=10**6))
    sim.run()
    times = [inbox[i][0][0] for i in (1, 2, 3)]
    assert all(t == pytest.approx(0.05) for t in times)


def test_nic_serializes_multicast_copies():
    # 1 MB at 8 Mbit/s = 1 s per copy; successive copies queue behind.
    sim, net, inbox = make_net(bandwidth_bps=8e6)
    net.multicast(0, [1, 2, 3], Blob(size=10**6))
    sim.run()
    times = sorted(inbox[i][0][0] for i in (1, 2, 3))
    assert times[0] == pytest.approx(1.05)
    assert times[1] == pytest.approx(2.05)
    assert times[2] == pytest.approx(3.05)


def test_nic_queues_across_sends():
    sim, net, inbox = make_net(bandwidth_bps=8e6)
    net.send(0, 1, Blob(size=10**6))
    net.send(0, 2, Blob(size=10**6))
    sim.run()
    assert inbox[1][0][0] == pytest.approx(1.05)
    assert inbox[2][0][0] == pytest.approx(2.05)


def test_nic_idles_then_recovers():
    sim, net, inbox = make_net(bandwidth_bps=8e6)
    net.send(0, 1, Blob(size=10**6))  # occupies NIC until t=1
    sim.schedule(5.0, net.send, 0, 2, Blob(size=10**6))  # NIC idle again
    sim.run()
    assert inbox[2][0][0] == pytest.approx(6.05)


def test_crashed_sender_sends_nothing():
    sim, net, inbox = make_net()
    net.crash(0)
    net.send(0, 1, Blob())
    sim.run()
    assert inbox[1] == []


def test_crashed_receiver_gets_nothing():
    sim, net, inbox = make_net()
    net.send(0, 1, Blob())
    net.crash(1)
    sim.run()
    assert inbox[1] == []


def test_crash_mid_flight_drops_message():
    sim, net, inbox = make_net()
    net.send(0, 1, Blob())
    sim.schedule(0.01, net.crash, 1)
    sim.run()
    assert inbox[1] == []


def test_recover_after_crash():
    sim, net, inbox = make_net()
    net.crash(1)
    net.recover(1)
    net.send(0, 1, Blob())
    sim.run()
    assert len(inbox[1]) == 1


def test_stats_count_bytes_and_messages():
    sim, net, inbox = make_net()
    net.multicast(0, [1, 2], Blob(size=500))
    sim.run()
    assert net.stats.bytes_sent[0] == 1000
    assert net.stats.messages_sent[0] == 2
    assert net.stats.bytes_received[1] == 500
    assert net.stats.total_bytes == 1000
    assert net.stats.total_messages == 2


def test_unknown_destination_rejected():
    sim, net, _ = make_net(n=2)
    with pytest.raises(NetworkError):
        net.send(0, 5, Blob())


def test_bad_bandwidth_rejected():
    sim = Simulator()
    with pytest.raises(NetworkError):
        Network(sim, 2, bandwidth_bps=0)


def test_partial_synchrony_delays_before_gst_only():
    adversary = PartialSynchronyAdversary(gst=10.0, max_extra=5.0, delta=1.0, seed=9)
    sim, net, inbox = make_net(adversary=adversary)
    net.send(0, 1, Blob())
    sim.schedule(20.0, net.send, 0, 2, Blob())
    sim.run()
    pre_gst_arrival = inbox[1][0][0]
    post_gst_arrival = inbox[2][0][0]
    assert pre_gst_arrival <= 10.0 + 1.0 + 0.05
    assert post_gst_arrival == pytest.approx(20.05)


def test_targeted_adversary_hits_only_victims():
    adversary = TargetedDelayAdversary({1}, extra=2.0)
    sim, net, inbox = make_net(adversary=adversary)
    net.send(0, 1, Blob())
    net.send(0, 2, Blob())
    sim.run()
    assert inbox[1][0][0] == pytest.approx(2.05)
    assert inbox[2][0][0] == pytest.approx(0.05)


def test_cpu_model_serializes_processing():
    cpu = CpuModel(per_message=0.5)
    sim, net, inbox = make_net(cpu=cpu)
    net.send(0, 1, Blob())
    net.send(2, 1, Blob())
    sim.run()
    times = sorted(t for t, _, _ in inbox[1])
    assert times[0] == pytest.approx(0.55)
    assert times[1] == pytest.approx(1.05)


def test_cpu_model_signature_cost():
    cpu = CpuModel(per_signature_verify=1.0)
    assert cpu.cost(Blob(signed=True)) == 1.0
    assert cpu.cost(Blob(signed=False)) == 0.0


def test_cpu_model_per_byte_cost():
    cpu = CpuModel(per_byte=0.001)
    assert cpu.cost(Blob(size=100)) == pytest.approx(0.1)
