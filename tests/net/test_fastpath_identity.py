"""The network/scheduler fast paths must be pure optimizations.

The hot delivery pipeline has four layered shortcuts — fused delivery
(``_deliver_fast``), per-class dispatch tables, inline calendar-bucket
insertion, and the message arena — each gated by eligibility flags computed
in ``Network.__init__``.  These tests force every shortcut OFF and assert the
resulting :class:`RunMetrics` are **bit-identical** to the default run: the
fast paths may change how events are scheduled and objects allocated, never
what the simulation computes.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

import repro.net.network as netmod
from repro.bench.runner import ExperimentConfig, _simulate

#: Jittered geo latency (RNG draw per delivery), plus a lossy/duplicating
#: point so the fault-copies branch is exercised on both paths.
CONFIGS = [
    ExperimentConfig(
        protocol="sailfish", n=7, txns_per_proposal=50, duration=1.5,
        warmup=0.5, seed=11,
    ),
    ExperimentConfig(
        protocol="single-clan", n=8, clan_size=4, txns_per_proposal=50,
        duration=1.5, warmup=0.5, seed=12, drop_rate=0.05,
        duplicate_rate=0.02, reliable=True,
    ),
]


def test_fast_vs_slow_metrics_identical():
    """Explicit A/B: default (fast) run vs all-shortcuts-off run."""
    for config in CONFIGS:
        fast = asdict(_simulate(config))
        real_init = netmod.Network.__init__

        def no_fastpath_init(self, *args, _real=real_init, **kwargs):
            _real(self, *args, **kwargs)
            self._plain = False
            self._inline = False
            self.arena = None
            self._retire = None

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(netmod.Network, "__init__", no_fastpath_init)
            slow = asdict(_simulate(config))
        assert fast == slow, f"fast-path divergence for {config.protocol}"


def test_arena_disabled_under_sanitizers(monkeypatch):
    """REPRO_SANITIZE installs the freeze guard, which keys on message
    identity — pooling must switch off."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    from repro.sim.scheduler import Simulator

    sim = Simulator()
    net = netmod.Network(sim, 4)
    assert net.freeze_guard is not None
    assert net.arena is None


def test_arena_active_on_plain_runs():
    from repro.sim.scheduler import Simulator

    sim = Simulator()
    net = netmod.Network(sim, 4)
    if net.freeze_guard is not None:  # suite running under REPRO_SANITIZE=1
        assert net.arena is None
        return
    assert net.arena is not None
    assert net._max_delay is not None and len(net._max_delay) == 4
