"""Traced-network tests: the per-hop decomposition must account for the
delivery time exactly, and tracing must not perturb delivery semantics."""

import pytest

from repro.net.cpu import CpuModel
from repro.net.message import Message
from repro.net.network import Network
from repro.net.latency import UniformLatencyModel
from repro.obs import Tracer
from repro.obs.tracer import iter_spans
from repro.sim import Simulator


class Blob(Message):
    __slots__ = ("size", "signed")

    def __init__(self, size=1000, signed=False):
        self.size = size
        self.signed = signed

    def wire_size(self):
        return self.size


def make_traced_net(n=4, latency=0.05, bandwidth_bps=None, cpu=None):
    sim = Simulator()
    tracer = Tracer(clock=lambda: sim.now)
    net = Network(
        sim,
        n,
        latency=UniformLatencyModel(latency),
        bandwidth_bps=bandwidth_bps,
        cpu=cpu,
        tracer=tracer,
    )
    inbox = [[] for _ in range(n)]
    for i in range(n):
        net.register(i, lambda src, msg, i=i: inbox[i].append((sim.now, src, msg)))
    return sim, net, tracer, inbox


def hops(tracer):
    return list(iter_spans(tracer.records(), "net.hop"))


def test_hop_components_sum_to_delivery_time():
    sim, net, tracer, inbox = make_traced_net(
        bandwidth_bps=8e6, cpu=CpuModel(per_message=0.001)
    )
    net.send(0, 1, Blob(size=10_000))
    net.send(0, 2, Blob(size=10_000))  # queues behind the first on node 0's NIC
    sim.run()
    spans = hops(tracer)
    assert len(spans) == 2
    for span in spans:
        a = span.attrs
        total = a["nic_wait"] + a["tx"] + a["prop"] + a["cpu_wait"] + a["cpu"]
        assert span.end - span.start == pytest.approx(total)
    # The second message waited a full serialization slot behind the first.
    second = next(s for s in spans if s.node == 2)
    assert second.attrs["nic_wait"] == pytest.approx(10_000 / 1e6)
    assert second.attrs["tx"] == pytest.approx(10_000 / 1e6)
    assert second.attrs["cpu"] == pytest.approx(0.001)


def test_hop_span_matches_handler_time_without_cpu():
    sim, net, tracer, inbox = make_traced_net(bandwidth_bps=8e6)
    net.send(0, 3, Blob(size=5000))
    sim.run()
    (span,) = hops(tracer)
    (arrival,) = inbox[3]
    # Without a CPU model the span closes exactly at handler-invocation time.
    assert span.end == pytest.approx(arrival[0])
    assert span.attrs["cpu_wait"] == 0.0 and span.attrs["cpu"] == 0.0
    assert span.attrs["kind"] == "Blob" and span.attrs["size"] == 5000


def test_loopback_hop_has_zero_network_components():
    sim, net, tracer, inbox = make_traced_net(bandwidth_bps=8e6)
    net.broadcast(0, Blob(size=2000))
    sim.run()
    self_hop = next(s for s in hops(tracer) if s.node == 0)
    a = self_hop.attrs
    assert a["nic_wait"] == a["tx"] == a["prop"] == 0.0
    assert self_hop.start == self_hop.end == 0.0


def test_tracing_does_not_change_delivery_schedule():
    def deliveries(tracer):
        sim = Simulator()
        net = Network(
            sim,
            4,
            latency=UniformLatencyModel(0.05),
            bandwidth_bps=8e6,
            cpu=CpuModel(per_message=0.0005),
            tracer=tracer,
        )
        log = []
        for i in range(4):
            net.register(i, lambda src, msg, i=i: log.append((round(sim.now, 9), src, i)))
        net.broadcast(0, Blob(size=3000))
        net.send(1, 2, Blob(size=500))
        sim.run()
        return log

    assert deliveries(None) == deliveries(Tracer())


def test_crashed_destination_emits_no_hop_span():
    sim, net, tracer, inbox = make_traced_net()
    net.crash(2)
    net.send(0, 2, Blob())
    sim.run()
    assert hops(tracer) == []
    assert inbox[2] == []
