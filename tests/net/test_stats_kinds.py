"""Tests for per-kind traffic accounting (used by the complexity benches)."""

from repro.net.latency import UniformLatencyModel
from repro.net.message import Message
from repro.net.network import Network
from repro.sim import Simulator


class Ping(Message):
    __slots__ = ()

    def wire_size(self):
        return 100


class Blob(Message):
    __slots__ = ()

    def wire_size(self):
        return 5000


def test_kind_tracking_disabled_by_default():
    sim = Simulator()
    net = Network(sim, 2, latency=UniformLatencyModel(0.01))
    net.register(1, lambda s, m: None)
    net.send(0, 1, Ping())
    sim.run()
    assert net.stats.bytes_by_kind == {}


def test_kind_tracking_counts_by_class():
    sim = Simulator()
    net = Network(sim, 3, latency=UniformLatencyModel(0.01), track_kinds=True)
    for i in range(3):
        net.register(i, lambda s, m: None)
    net.multicast(0, [1, 2], Ping())
    net.send(0, 1, Blob())
    sim.run()
    assert net.stats.messages_by_kind == {"Ping": 2, "Blob": 1}
    assert net.stats.bytes_by_kind == {"Ping": 200, "Blob": 5000}


def test_message_kind_defaults_to_class_name():
    assert Ping().kind() == "Ping"
    assert Message().wire_size() > 0
