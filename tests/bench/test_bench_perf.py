"""`scripts/bench_perf.py` --compare must handle skipped sections explicitly.

A 1-CPU runner skips the parallel-vs-serial grid (measuring a ~1.0x ratio on
one core says nothing), and `--skip-sparse-smoke` omits the tribe-scale
point.  Comparing such a run against a committed baseline — or comparing
against a baseline that itself skipped a section — must neither crash nor
silently pass: each skipped gate is announced and the remaining gates still
apply.
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "scripts", "bench_perf.py"
)


@pytest.fixture(scope="module")
def bench_perf():
    spec = importlib.util.spec_from_file_location("bench_perf_under_test", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def fast_measures(bench_perf, monkeypatch):
    """Stub the expensive measurements; the CLI/compare logic is under test."""
    monkeypatch.setattr(
        bench_perf, "measure_core_speed",
        lambda trials: {"sim_events": 1000, "trials": [100.0], "best": 100.0},
    )
    monkeypatch.setattr(
        bench_perf, "measure_grid",
        lambda jobs, cpus: {"skipped": "parallel-vs-serial comparison needs >= 2 CPUs (machine has 1)"},
    )
    monkeypatch.setattr(
        bench_perf, "measure_sparse_smoke",
        lambda max_events=0: {
            "n": 150, "edge_mode": "sparse", "events": 1000,
            "wall_s": 0.1, "events_per_sec": 10000.0,
        },
    )
    return bench_perf


def test_skipped_grid_is_recorded_in_output(fast_measures, tmp_path):
    out = tmp_path / "perf.json"
    assert fast_measures.main(["--out", str(out)]) == 0
    result = json.loads(out.read_text())
    assert "skipped" in result["grid"]
    assert result["sparse_smoke"]["events_per_sec"] == 10000.0


def test_skip_sparse_smoke_records_reason(fast_measures, tmp_path):
    out = tmp_path / "perf.json"
    assert fast_measures.main(["--out", str(out), "--skip-sparse-smoke"]) == 0
    result = json.loads(out.read_text())
    assert result["sparse_smoke"] == {"skipped": "--skip-sparse-smoke"}


def test_compare_tolerates_skipped_grid_on_both_sides(
    fast_measures, tmp_path, capsys
):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "cpus": 1,
        "core_speed": {"best": 100.0},
        "grid": {"skipped": "needs >= 2 CPUs"},
        "sparse_smoke": {"skipped": "--skip-sparse-smoke"},
    }))
    out = tmp_path / "perf.json"
    rc = fast_measures.main(
        ["--out", str(out), "--check", "--compare", str(baseline)]
    )
    captured = capsys.readouterr().out
    assert rc == 0
    assert "parallel-grid gate skipped" in captured
    assert "sparse-smoke gate skipped" in captured
    assert "OK: perf checks passed" in captured


def test_compare_still_gates_core_speed_when_grid_skipped(
    fast_measures, tmp_path, capsys
):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "cpus": 8,
        "core_speed": {"best": 1_000_000.0},
        "grid": {"points": 6, "speedup": 3.0, "identical_results": True},
        "sparse_smoke": {"events_per_sec": 10000.0},
    }))
    out = tmp_path / "perf.json"
    rc = fast_measures.main(["--out", str(out), "--compare", str(baseline)])
    captured = capsys.readouterr()
    assert rc == 1  # stubbed 100 events/sec is far below the committed figure
    assert "core speed" in captured.err
