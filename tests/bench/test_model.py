"""Unit tests for the analytical performance model."""

import pytest

from repro.bench.model import AnalyticalModel, PAPER_LOADS
from repro.errors import ConfigError


def model(n=150, **kwargs):
    return AnalyticalModel(n=n, **kwargs)


def test_throughput_grows_then_saturates():
    m = model()
    points = m.curve("sailfish", PAPER_LOADS)
    tputs = [p.throughput_tps for p in points]
    # Non-decreasing up to the knee, then flat.
    assert tputs == sorted(tputs)
    assert tputs[-1] == pytest.approx(tputs[-2], rel=0.05)


def test_latency_monotone_in_load():
    m = model()
    lats = [p.latency_s for p in m.curve("single-clan", PAPER_LOADS, clan_size=80)]
    assert lats == sorted(lats)


def test_latency_floor_grows_with_n():
    floors = [model(n).evaluate("sailfish", 1).latency_s for n in (50, 100, 150)]
    assert floors == sorted(floors)
    assert floors[0] == pytest.approx(0.38, rel=0.35)   # paper §7 at n=50
    assert floors[2] == pytest.approx(1.392, rel=0.25)  # paper §7 at n=150


def test_single_clan_beats_sailfish_peak_at_every_scale():
    for n, clan in ((50, 32), (100, 60), (150, 80)):
        m = model(n)
        sailfish = m.peak_stable_throughput("sailfish", PAPER_LOADS)
        single = m.peak_stable_throughput("single-clan", PAPER_LOADS, clan_size=clan)
        assert single > sailfish


def test_multi_clan_roughly_doubles_single_clan():
    m = model(150)
    single = m.peak_stable_throughput("single-clan", PAPER_LOADS, clan_size=80)
    multi = m.peak_stable_throughput("multi-clan", PAPER_LOADS, clans=2)
    assert 1.7 <= multi / single <= 2.4


def test_sailfish_goes_unstable_before_single_clan():
    """Find the first unstable load for each protocol; Sailfish's is lower."""
    m = model(150, stability_budget=1.2)
    first_unstable = {}
    for proto, kwargs in (("sailfish", {}), ("single-clan", {"clan_size": 80})):
        for p in m.curve(proto, PAPER_LOADS, **kwargs):
            if not p.stable:
                first_unstable[proto] = p.txns_per_proposal
                break
    assert first_unstable["sailfish"] < first_unstable["single-clan"]


def test_round_duration_floor_is_one_rbc():
    m = model(50)
    p = m.evaluate("sailfish", 1)
    assert p.round_duration_s == pytest.approx(2 * m.delta_s)


def test_zero_contention_equalizes_saturation():
    """With γ=0 closed-loop saturation ≈ B/txn_size for committee == proposers
    (the structural invariance EXPERIMENTS.md discusses)."""
    m = model(150, flow_contention=0.0)
    sailfish = m.peak_stable_throughput("sailfish", PAPER_LOADS)
    single = m.peak_stable_throughput("single-clan", PAPER_LOADS, clan_size=80)
    assert single == pytest.approx(sailfish, rel=0.05)


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigError):
        AnalyticalModel(n=2)
    with pytest.raises(ConfigError):
        AnalyticalModel(n=10, bandwidth_bps=0)
    with pytest.raises(ConfigError):
        model().evaluate("unknown", 100)
    with pytest.raises(ConfigError):
        model().evaluate("single-clan", 100)  # missing clan size
