"""Tests for the ASCII plot rendering."""

import pytest

from repro.bench.plotting import ascii_plot, plot_load_throughput, plot_throughput_latency
from repro.errors import ConfigError


def test_basic_plot_contains_glyphs_and_axes():
    out = ascii_plot(
        {"sailfish": [(0, 1), (5, 2)], "single-clan": [(2, 1.5)]},
        width=20, height=6, title="T",
    )
    assert out.startswith("T")
    assert "s" in out and "c" in out
    assert "s=sailfish" in out and "c=single-clan" in out
    assert "+--" in out  # x axis


def test_plot_scales_extremes_to_corners():
    # Non-protocol series use numeric glyphs ("1" for the first series).
    out = ascii_plot({"a": [(0, 0), (100, 10)]}, width=10, height=5)
    lines = out.splitlines()
    # Max-y point at top row; min-y at bottom row.
    assert "1" in lines[0]
    assert "1" in lines[4]
    assert lines[0].strip().startswith("10")


def test_plot_handles_single_point():
    out = ascii_plot({"a": [(3, 3)]}, width=10, height=4)
    assert "1" in out and "1=a" in out


def test_plot_empty_series():
    assert "(no data)" in ascii_plot({}, title="E")


def test_plot_rejects_tiny_canvas():
    with pytest.raises(ConfigError):
        ascii_plot({"a": [(0, 0)]}, width=2, height=2)


def test_throughput_latency_plot_from_rows():
    rows = [
        {"protocol": "sailfish", "throughput_ktps": 10, "avg_latency_s": 0.5},
        {"protocol": "sailfish", "throughput_ktps": 50, "avg_latency_s": 1.5},
        {"protocol": "single-clan", "throughput_ktps": 60, "avg_latency_s": 1.0},
    ]
    out = plot_throughput_latency(rows, title="fig5")
    assert "fig5" in out and "throughput (kTPS)" in out


def test_throughput_latency_plot_accepts_model_rows():
    rows = [{"protocol": "multi-clan", "throughput_ktps": 200, "latency_s": 2.0}]
    out = plot_throughput_latency(rows)
    assert "m" in out


def test_load_throughput_plot_from_rows():
    rows = [
        {"protocol": "multi-clan", "txns/proposal": 250, "throughput_ktps": 50},
        {"protocol": "multi-clan", "txns/proposal": 1000, "throughput_ktps": 120},
    ]
    out = plot_load_throughput(rows, title="fig6")
    assert "fig6" in out and "txns/proposal" in out
