"""Parallel experiment engine: determinism, ordering, and the result cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.bench import parallel
from repro.bench.parallel import (
    GridPointError,
    ParallelGridError,
    ResultCache,
    clear_memory_cache,
    get_pool,
    metrics_from_dict,
    metrics_to_dict,
    resolve_jobs,
    run_grid,
    run_tasks,
    shutdown_pool,
)
from repro.errors import ConfigError
from repro.bench.reporting import write_csv
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.chaos import SCENARIOS, run_scenario

#: A small mixed grid: a fault-free point, a different seed, and a
#: chaos-flavoured point (wire loss over the reliable transport).
GRID = [
    ExperimentConfig(
        protocol="sailfish", n=7, txns_per_proposal=50, duration=2.0,
        warmup=0.5, seed=1,
    ),
    ExperimentConfig(
        protocol="sailfish", n=7, txns_per_proposal=50, duration=2.0,
        warmup=0.5, seed=2,
    ),
    ExperimentConfig(
        protocol="single-clan", n=8, clan_size=4, txns_per_proposal=50,
        duration=2.0, warmup=0.5, seed=3, drop_rate=0.05, reliable=True,
    ),
]


@pytest.fixture(autouse=True)
def _fresh_memory():
    clear_memory_cache()
    yield
    clear_memory_cache()


@pytest.fixture
def fresh_pool():
    """Force the next fan-out to fork a new pool, and clean it up after.

    Needed when a test monkeypatches module state the workers must inherit —
    a pool forked before the patch would still run the original code.
    """
    shutdown_pool()
    yield
    shutdown_pool()


def _rows(metrics_list):
    return [m.row() for m in metrics_list]


class TestParallelDeterminism:
    def test_parallel_rows_byte_identical_to_serial(self, tmp_path):
        """jobs=4 must produce the same CSV bytes as jobs=1 (grid-order merge)."""
        serial = run_grid(GRID, jobs=1, cache=False)
        clear_memory_cache()
        parallel_run = run_grid(GRID, jobs=4, cache=False)
        assert serial == parallel_run
        serial_csv = write_csv(_rows(serial), str(tmp_path / "serial.csv"))
        parallel_csv = write_csv(_rows(parallel_run), str(tmp_path / "parallel.csv"))
        with open(serial_csv, "rb") as a, open(parallel_csv, "rb") as b:
            assert a.read() == b.read()

    def test_chaos_point_simulates_real_faults(self):
        """The lossy grid point actually dropped copies (not a no-op knob)."""
        metrics = run_grid([GRID[2]], jobs=1, cache=False)[0]
        assert metrics.committed_txns > 0
        assert metrics.sim_events > 0

    def test_duplicate_configs_simulate_once_and_share_results(self, monkeypatch):
        calls = []
        real = parallel._simulate

        def counting(config, max_events=None, tracer=None):
            calls.append(config)
            return real(config, max_events=max_events, tracer=tracer)

        monkeypatch.setattr(parallel, "_simulate", counting)
        results = run_grid([GRID[0], GRID[1], GRID[0]], jobs=1, cache=False)
        assert len(calls) == 2  # the duplicate never re-simulated
        assert results[0] == results[2]

    def test_run_tasks_merges_by_index(self):
        tasks = [(_task_value, (i,)) for i in range(6)]
        assert run_tasks(tasks, jobs=1) == list(range(6))
        assert run_tasks(tasks, jobs=3) == list(range(6))

    def test_chaos_scenarios_identical_serial_vs_parallel(self):
        """Seeded fault-injection scenarios survive the fan-out unchanged."""
        names = ["drop05", "crash_recover"]
        tasks = [(_scenario_outcome, (name,)) for name in names]
        serial = run_tasks(tasks, jobs=1)
        fanned = run_tasks(tasks, jobs=2)
        assert serial == fanned
        assert all(ok for _name, ok, _stats in serial)

    def test_csv_bytes_identical_serial_vs_jobs2_vs_jobs8(self, tmp_path, capsys):
        """The full determinism contract: serial, --jobs 2, and --jobs 8 runs
        of a grid that includes a chaos point must write identical CSV bytes.

        jobs=8 may clamp on small machines (with a warning) — the output
        contract holds at any effective pool size.
        """
        blobs = []
        for jobs in (1, 2, 8):
            clear_memory_cache()
            metrics = run_grid(GRID, jobs=jobs, cache=False)
            path = write_csv(_rows(metrics), str(tmp_path / f"jobs{jobs}.csv"))
            with open(path, "rb") as fh:
                blobs.append(fh.read())
        assert blobs[0] == blobs[1] == blobs[2]


class TestWorkerPool:
    def test_pool_persists_across_grids(self, fresh_pool):
        grid_a = [GRID[0], GRID[1]]
        grid_b = [GRID[1], GRID[2]]
        clear_memory_cache()
        first = run_grid(grid_a, jobs=2, cache=False)
        pool = get_pool(2)
        clear_memory_cache()
        second = run_grid(grid_b, jobs=2, cache=False)
        assert get_pool(2) is pool  # same forked workers, reused
        clear_memory_cache()
        assert run_grid(grid_a, jobs=1, cache=False) == first
        clear_memory_cache()
        assert run_grid(grid_b, jobs=1, cache=False) == second

    def test_worker_crash_records_per_point_error(self, fresh_pool, monkeypatch):
        """A point that kills its worker twice gets an error record; the rest
        of the grid completes with correct results."""
        real = parallel._simulate

        def lethal(config, max_events=None, tracer=None):
            if config.seed == 99:
                os._exit(17)  # hard worker death, not an exception
            return real(config, max_events=max_events, tracer=tracer)

        monkeypatch.setattr(parallel, "_simulate", lethal)
        poison = ExperimentConfig(
            protocol="sailfish", n=7, txns_per_proposal=50, duration=2.0,
            warmup=0.5, seed=99,
        )
        grid = [GRID[0], poison, GRID[1]]
        results = run_grid(grid, jobs=2, cache=False, on_error="record")
        assert isinstance(results[1], GridPointError)
        assert results[1].index == 1
        assert "died" in results[1].error and "17" in results[1].error
        monkeypatch.setattr(parallel, "_simulate", real)
        shutdown_pool()
        clear_memory_cache()
        clean = run_grid([GRID[0], GRID[1]], jobs=1, cache=False)
        assert [results[0], results[2]] == clean

    def test_worker_crash_raises_after_completion_by_default(
        self, fresh_pool, monkeypatch
    ):
        real = parallel._simulate

        def lethal(config, max_events=None, tracer=None):
            if config.seed == 99:
                os._exit(17)
            return real(config, max_events=max_events, tracer=tracer)

        monkeypatch.setattr(parallel, "_simulate", lethal)
        poison = ExperimentConfig(
            protocol="sailfish", n=7, txns_per_proposal=50, duration=2.0,
            warmup=0.5, seed=99,
        )
        with pytest.raises(ParallelGridError) as excinfo:
            run_grid([GRID[0], poison], jobs=2, cache=False)
        err = excinfo.value
        assert len(err.records) == 1 and err.records[0].index == 1
        assert err.results[0] is not None  # the healthy point still completed

    def test_task_exception_reported_not_retried(self, fresh_pool):
        with pytest.raises(ParallelGridError) as excinfo:
            run_tasks([(_task_value, (1,)), (_task_raises, ())], jobs=2)
        assert "ValueError" in excinfo.value.records[0].error
        assert excinfo.value.results[0] == 1


class TestJobsResolution:
    def test_rejects_zero_and_negative(self):
        for bad in (0, -1, "-4", "0"):
            with pytest.raises(ConfigError):
                resolve_jobs(bad)

    def test_rejects_garbage_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigError, match="REPRO_JOBS"):
            resolve_jobs(None)

    def test_env_zero_is_rejected_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ConfigError, match="REPRO_JOBS"):
            resolve_jobs(None)

    def test_unset_and_empty_mean_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "")
        assert resolve_jobs(None) == 1

    def test_auto_is_cpu_count(self, monkeypatch):
        assert resolve_jobs("auto") == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_oversized_clamps_with_warning(self, capsys):
        ceiling = (os.cpu_count() or 1) * parallel.JOBS_CEILING_FACTOR
        assert resolve_jobs(ceiling + 100) == ceiling
        assert "clamping" in capsys.readouterr().err

    def test_plain_integers_pass_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs("2") == 2


def _task_value(i: int) -> int:
    return i


def _task_raises() -> None:
    raise ValueError("deliberate task failure")


def _scenario_outcome(name: str):
    result = run_scenario(SCENARIOS[name])
    stats = {
        key: value
        for key, value in sorted(result.stats.items())
        if isinstance(value, (int, float, str))
    }
    return name, result.ok, stats


class TestResultCache:
    def test_unchanged_config_served_with_zero_simulation(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        first = run_grid([GRID[0]], jobs=1, cache=True, cache_dir=cache_dir)
        clear_memory_cache()

        def boom(*_args, **_kwargs):  # pragma: no cover - must never run
            raise AssertionError("cache hit expected; simulator was invoked")

        monkeypatch.setattr(parallel, "_simulate", boom)
        second = run_grid([GRID[0]], jobs=1, cache=True, cache_dir=cache_dir)
        assert second == first

    def test_config_mutation_invalidates(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_grid([GRID[0]], jobs=1, cache=True, cache_dir=cache_dir)
        clear_memory_cache()
        mutated = ExperimentConfig(
            protocol=GRID[0].protocol, n=GRID[0].n,
            txns_per_proposal=GRID[0].txns_per_proposal,
            duration=GRID[0].duration, warmup=GRID[0].warmup,
            seed=GRID[0].seed + 100,
        )
        cache = ResultCache(root=cache_dir)
        assert cache.load(cache.key_for(GRID[0])) is not None
        assert cache.load(cache.key_for(mutated)) is None

    def test_source_digest_bump_invalidates(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        run_grid([GRID[0]], jobs=1, cache=True, cache_dir=cache_dir)
        clear_memory_cache()
        cache = ResultCache(root=cache_dir)
        assert cache.load(cache.key_for(GRID[0])) is not None
        monkeypatch.setattr(parallel, "_SOURCE_DIGEST", "0" * 64)
        stale = ResultCache(root=cache_dir)
        assert stale.load(stale.key_for(GRID[0])) is None

    def test_salt_invalidates(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_grid([GRID[0]], jobs=1, cache=True, cache_dir=cache_dir)
        clear_memory_cache()
        salted = ResultCache(root=cache_dir, salt="force-rerun")
        assert salted.load(salted.key_for(GRID[0])) is None

    def test_max_events_is_part_of_the_key(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        assert cache.key_for(GRID[0]) != cache.key_for(GRID[0], max_events=10_000)

    def test_metrics_round_trip_through_json(self):
        metrics = run_grid([GRID[0]], jobs=1, cache=False)[0]
        restored = metrics_from_dict(json.loads(json.dumps(metrics_to_dict(metrics))))
        assert restored == metrics

    def test_corrupt_cache_file_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cache = ResultCache(root=cache_dir)
        key = cache.key_for(GRID[0])
        os.makedirs(cache_dir, exist_ok=True)
        with open(os.path.join(cache_dir, f"{key}.json"), "w") as fh:
            fh.write("{truncated")
        assert cache.load(key) is None
        assert cache.misses == 1

    def test_run_experiment_honors_repro_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        first = run_experiment(GRID[0])
        clear_memory_cache()

        def boom(*_args, **_kwargs):  # pragma: no cover - must never run
            raise AssertionError("cache hit expected; simulator was invoked")

        monkeypatch.setattr(parallel, "_simulate", boom)
        assert run_experiment(GRID[0]) == first
