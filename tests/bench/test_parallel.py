"""Parallel experiment engine: determinism, ordering, and the result cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.bench import parallel
from repro.bench.parallel import (
    ResultCache,
    clear_memory_cache,
    metrics_from_dict,
    metrics_to_dict,
    run_grid,
    run_tasks,
)
from repro.bench.reporting import write_csv
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.chaos import SCENARIOS, run_scenario

#: A small mixed grid: a fault-free point, a different seed, and a
#: chaos-flavoured point (wire loss over the reliable transport).
GRID = [
    ExperimentConfig(
        protocol="sailfish", n=7, txns_per_proposal=50, duration=2.0,
        warmup=0.5, seed=1,
    ),
    ExperimentConfig(
        protocol="sailfish", n=7, txns_per_proposal=50, duration=2.0,
        warmup=0.5, seed=2,
    ),
    ExperimentConfig(
        protocol="single-clan", n=8, clan_size=4, txns_per_proposal=50,
        duration=2.0, warmup=0.5, seed=3, drop_rate=0.05, reliable=True,
    ),
]


@pytest.fixture(autouse=True)
def _fresh_memory():
    clear_memory_cache()
    yield
    clear_memory_cache()


def _rows(metrics_list):
    return [m.row() for m in metrics_list]


class TestParallelDeterminism:
    def test_parallel_rows_byte_identical_to_serial(self, tmp_path):
        """jobs=4 must produce the same CSV bytes as jobs=1 (grid-order merge)."""
        serial = run_grid(GRID, jobs=1, cache=False)
        clear_memory_cache()
        parallel_run = run_grid(GRID, jobs=4, cache=False)
        assert serial == parallel_run
        serial_csv = write_csv(_rows(serial), str(tmp_path / "serial.csv"))
        parallel_csv = write_csv(_rows(parallel_run), str(tmp_path / "parallel.csv"))
        with open(serial_csv, "rb") as a, open(parallel_csv, "rb") as b:
            assert a.read() == b.read()

    def test_chaos_point_simulates_real_faults(self):
        """The lossy grid point actually dropped copies (not a no-op knob)."""
        metrics = run_grid([GRID[2]], jobs=1, cache=False)[0]
        assert metrics.committed_txns > 0
        assert metrics.sim_events > 0

    def test_duplicate_configs_simulate_once_and_share_results(self, monkeypatch):
        calls = []
        real = parallel._simulate

        def counting(config, max_events=None, tracer=None):
            calls.append(config)
            return real(config, max_events=max_events, tracer=tracer)

        monkeypatch.setattr(parallel, "_simulate", counting)
        results = run_grid([GRID[0], GRID[1], GRID[0]], jobs=1, cache=False)
        assert len(calls) == 2  # the duplicate never re-simulated
        assert results[0] == results[2]

    def test_run_tasks_merges_by_index(self):
        tasks = [(_task_value, (i,)) for i in range(6)]
        assert run_tasks(tasks, jobs=1) == list(range(6))
        assert run_tasks(tasks, jobs=3) == list(range(6))

    def test_chaos_scenarios_identical_serial_vs_parallel(self):
        """Seeded fault-injection scenarios survive the fan-out unchanged."""
        names = ["drop05", "crash_recover"]
        tasks = [(_scenario_outcome, (name,)) for name in names]
        serial = run_tasks(tasks, jobs=1)
        fanned = run_tasks(tasks, jobs=2)
        assert serial == fanned
        assert all(ok for _name, ok, _stats in serial)


def _task_value(i: int) -> int:
    return i


def _scenario_outcome(name: str):
    result = run_scenario(SCENARIOS[name])
    stats = {
        key: value
        for key, value in sorted(result.stats.items())
        if isinstance(value, (int, float, str))
    }
    return name, result.ok, stats


class TestResultCache:
    def test_unchanged_config_served_with_zero_simulation(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        first = run_grid([GRID[0]], jobs=1, cache=True, cache_dir=cache_dir)
        clear_memory_cache()

        def boom(*_args, **_kwargs):  # pragma: no cover - must never run
            raise AssertionError("cache hit expected; simulator was invoked")

        monkeypatch.setattr(parallel, "_simulate", boom)
        second = run_grid([GRID[0]], jobs=1, cache=True, cache_dir=cache_dir)
        assert second == first

    def test_config_mutation_invalidates(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_grid([GRID[0]], jobs=1, cache=True, cache_dir=cache_dir)
        clear_memory_cache()
        mutated = ExperimentConfig(
            protocol=GRID[0].protocol, n=GRID[0].n,
            txns_per_proposal=GRID[0].txns_per_proposal,
            duration=GRID[0].duration, warmup=GRID[0].warmup,
            seed=GRID[0].seed + 100,
        )
        cache = ResultCache(root=cache_dir)
        assert cache.load(cache.key_for(GRID[0])) is not None
        assert cache.load(cache.key_for(mutated)) is None

    def test_source_digest_bump_invalidates(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        run_grid([GRID[0]], jobs=1, cache=True, cache_dir=cache_dir)
        clear_memory_cache()
        cache = ResultCache(root=cache_dir)
        assert cache.load(cache.key_for(GRID[0])) is not None
        monkeypatch.setattr(parallel, "_SOURCE_DIGEST", "0" * 64)
        stale = ResultCache(root=cache_dir)
        assert stale.load(stale.key_for(GRID[0])) is None

    def test_salt_invalidates(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_grid([GRID[0]], jobs=1, cache=True, cache_dir=cache_dir)
        clear_memory_cache()
        salted = ResultCache(root=cache_dir, salt="force-rerun")
        assert salted.load(salted.key_for(GRID[0])) is None

    def test_max_events_is_part_of_the_key(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        assert cache.key_for(GRID[0]) != cache.key_for(GRID[0], max_events=10_000)

    def test_metrics_round_trip_through_json(self):
        metrics = run_grid([GRID[0]], jobs=1, cache=False)[0]
        restored = metrics_from_dict(json.loads(json.dumps(metrics_to_dict(metrics))))
        assert restored == metrics

    def test_corrupt_cache_file_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cache = ResultCache(root=cache_dir)
        key = cache.key_for(GRID[0])
        os.makedirs(cache_dir, exist_ok=True)
        with open(os.path.join(cache_dir, f"{key}.json"), "w") as fh:
            fh.write("{truncated")
        assert cache.load(key) is None
        assert cache.misses == 1

    def test_run_experiment_honors_repro_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        first = run_experiment(GRID[0])
        clear_memory_cache()

        def boom(*_args, **_kwargs):  # pragma: no cover - must never run
            raise AssertionError("cache hit expected; simulator was invoked")

        monkeypatch.setattr(parallel, "_simulate", boom)
        assert run_experiment(GRID[0]) == first
