"""Tests for run metrics, the experiment runner, and reporting helpers."""


import pytest

from repro.bench.metrics import measure_run
from repro.bench.reporting import format_table, write_csv
from repro.bench.runner import ExperimentConfig, run_experiment, scaled
from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.errors import ConfigError
from repro.smr.mempool import SyntheticWorkload


def small_run(protocol="sailfish", **overrides):
    config = ExperimentConfig(
        protocol=protocol,
        n=7,
        txns_per_proposal=20,
        clan_size=4,
        duration=4.0,
        warmup=1.0,
        bandwidth_bps=1e9,
        **overrides,
    )
    return config, run_experiment(config)


def test_runner_produces_metrics():
    config, metrics = small_run()
    assert metrics.committed_txns > 0
    assert metrics.throughput_tps == pytest.approx(
        metrics.committed_txns / metrics.window_s
    )
    assert 0 < metrics.avg_latency_s < 2.0
    assert metrics.p50_latency_s <= metrics.p95_latency_s
    assert metrics.rounds > 5
    assert metrics.total_bytes > 0


def test_runner_protocol_variants():
    for protocol in ("sailfish", "single-clan", "multi-clan"):
        _, metrics = small_run(protocol=protocol)
        assert metrics.committed_txns > 0, protocol


def test_runner_unknown_protocol():
    with pytest.raises(ConfigError):
        ExperimentConfig(protocol="hotstuff", n=7, txns_per_proposal=1).clan_config()


def test_runner_single_clan_requires_size():
    cfg = ExperimentConfig(
        protocol="single-clan", n=7, txns_per_proposal=1, clan_size=None
    )
    with pytest.raises(ConfigError):
        cfg.clan_config()


def test_by_kind_stats_empty_without_tracking():
    _, metrics = small_run()
    assert metrics.bytes_by_kind == {}
    assert metrics.messages_by_kind == {}


def test_by_kind_stats_populated_with_tracking():
    _, metrics = small_run(track_kinds=True)
    assert metrics.messages_by_kind, "tracked run must report per-kind counts"
    assert sum(metrics.bytes_by_kind.values()) == metrics.total_bytes
    assert sum(metrics.messages_by_kind.values()) == metrics.total_messages


def test_runner_accepts_tracer():
    from repro.obs import Tracer
    from repro.obs.tracer import iter_spans

    tracer = Tracer()
    config = ExperimentConfig(
        protocol="sailfish", n=7, txns_per_proposal=20, duration=3.0, warmup=1.0
    )
    metrics = run_experiment(config, tracer=tracer)
    assert metrics.committed_txns > 0
    names = {s.name for s in iter_spans(tracer.records())}
    assert "net.hop" in names and "consensus.round" in names and "sim.run" in names


def test_measure_run_latency_accounts_creation_time():
    """Latency must be measured from block creation, not from round start."""
    workload = SyntheticWorkload(txns_per_proposal=10)
    deployment = Deployment(
        ClanConfig.baseline(4),
        ProtocolParams(verify_signatures=False),
        make_block=workload.make_block,
    )
    deployment.start()
    deployment.run(until=3.0)
    metrics = measure_run(deployment, workload, warmup=0.5, end=3.0)
    # With 0.05s uniform latency, block commit latency sits in (0.1, 0.6).
    assert 0.1 < metrics.avg_latency_s < 0.6


def test_measure_run_rejects_empty_window():
    workload = SyntheticWorkload(txns_per_proposal=1)
    deployment = Deployment(ClanConfig.baseline(4), make_block=workload.make_block)
    with pytest.raises(ConfigError):
        measure_run(deployment, workload, warmup=2.0, end=2.0)


def test_scaled_respects_minimum(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.1")
    assert scaled(50, minimum=7) == 7
    monkeypatch.setenv("REPRO_SCALE", "1.0")
    assert scaled(50, minimum=7) == 50


def test_format_table_alignment():
    table = format_table(
        [{"a": 1, "bb": "xy"}, {"a": 222, "bb": "z"}], title="T"
    )
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_table_empty():
    assert "(no rows)" in format_table([], title="T")


def test_write_csv_roundtrip(tmp_path):
    path = str(tmp_path / "sub" / "rows.csv")
    write_csv([{"x": 1, "y": "a"}, {"x": 2, "y": "b"}], path)
    with open(path) as fh:
        content = fh.read().splitlines()
    assert content[0] == "x,y"
    assert content[1] == "1,a"


def test_write_csv_empty_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_csv([], str(tmp_path / "x.csv"))


def test_sweep_attribution_rows():
    from repro.bench.experiments import sweep_attribution

    rows = sweep_attribution("fig5a")
    protocols = {r["protocol"] for r in rows}
    assert protocols == {"sailfish", "single-clan"}
    for protocol in protocols:
        segs = [r for r in rows if r["protocol"] == protocol]
        assert [r["segment"] for r in segs] == ["dissemination", "ordering"]
        assert all(r["samples"] > 0 for r in segs)
        assert sum(r["share"] for r in segs) == pytest.approx(1.0, abs=0.01)
        assert all(r["p99_ms"] >= r["p50_ms"] >= 0.0 for r in segs)
