"""The CI perf-smoke script: result format, gating, and baseline handling."""

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SCRIPT = os.path.join(REPO_ROOT, "scripts", "bench_smoke.py")
BASELINE = os.path.join(REPO_ROOT, "benchmarks", "baselines", "smoke.json")


def run_script(*argv):
    return subprocess.run(
        [sys.executable, SCRIPT, *argv], capture_output=True, text=True, timeout=120
    )


@pytest.fixture(scope="module")
def smoke_result(tmp_path_factory):
    out = tmp_path_factory.mktemp("smoke") / "BENCH_smoke.json"
    proc = run_script("--out", str(out), "--check")
    return proc, out


def test_smoke_passes_against_committed_baseline(smoke_result):
    proc, _ = smoke_result
    assert proc.returncode == 0, proc.stderr
    assert "OK: throughput" in proc.stdout


def test_smoke_result_schema(smoke_result):
    _, out = smoke_result
    result = json.loads(out.read_text())
    for key in ("throughput_tps", "avg_latency_s", "committed_txns", "wall_s", "config"):
        assert key in result
    assert result["throughput_tps"] > 0
    assert result["committed_txns"] > 0


def test_smoke_is_deterministic_vs_baseline(smoke_result):
    """Simulated throughput must match the committed baseline bit-for-bit —
    the gate's tolerance exists for intentional changes, not for noise."""
    _, out = smoke_result
    result = json.loads(out.read_text())
    baseline = json.loads(open(BASELINE).read())
    assert result["throughput_tps"] == baseline["throughput_tps"]
    assert result["committed_txns"] == baseline["committed_txns"]


def test_smoke_check_fails_on_regression(tmp_path, smoke_result):
    _, out = smoke_result
    result = json.loads(out.read_text())
    inflated = dict(result)
    inflated["throughput_tps"] = result["throughput_tps"] * 2  # unreachable bar
    fake_baseline = tmp_path / "baseline.json"
    fake_baseline.write_text(json.dumps(inflated))
    proc = run_script(
        "--out", str(tmp_path / "r.json"), "--check", "--baseline", str(fake_baseline)
    )
    assert proc.returncode == 1
    assert "FAIL" in proc.stderr


def test_smoke_check_fails_without_baseline(tmp_path):
    proc = run_script(
        "--out", str(tmp_path / "r.json"), "--check",
        "--baseline", str(tmp_path / "missing.json"),
    )
    assert proc.returncode == 1
    assert "missing" in proc.stderr
