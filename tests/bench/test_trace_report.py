"""Unit tests for the trace summarizer over synthetic traces."""

import pytest

from repro.bench.trace_report import (
    client_latency_table,
    counter_table,
    format_trace_report,
    hop_kind_table,
    hop_stage_table,
    load_trace,
    main,
    span_summary_table,
)
from repro.obs import Tracer


def make_trace():
    t = Tracer()
    # Two hops with a known decomposition.
    t.span("net.hop", start=0.0, end=0.10, node=1, src=0, kind="ValMsg",
           size=1000, nic_wait=0.01, tx=0.02, prop=0.05, cpu_wait=0.01, cpu=0.01)
    t.span("net.hop", start=0.1, end=0.16, node=2, src=0, kind="EchoMsg",
           size=100, nic_wait=0.0, tx=0.01, prop=0.05, cpu_wait=0.0, cpu=0.0)
    # One RBC phase span and matching counters.
    t.span("rbc.e2e", start=0.0, end=0.2, node=1, origin=0, round=1)
    t.counter("rbc.propose", node=0, time=0.0, round=1)
    t.counter("smr.client_latency", value=0.4, time=0.5, client="c1")
    t.counter("smr.client_latency", value=0.6, time=0.7, client="c1")
    return t


def test_hop_stage_table_decomposition():
    rows = hop_stage_table(make_trace().records())
    by_stage = {r["stage"]: r for r in rows}
    assert list(by_stage) == ["nic_wait", "tx", "prop", "cpu_wait", "cpu"]
    assert by_stage["prop"]["hops"] == 2
    assert by_stage["prop"]["mean_ms"] == pytest.approx(50.0)
    assert by_stage["nic_wait"]["mean_ms"] == pytest.approx(5.0)
    # Shares cover the full decomposition.
    assert sum(r["share_%"] for r in rows) == pytest.approx(100.0, abs=0.5)


def test_hop_kind_table_sorted_by_time():
    rows = hop_kind_table(make_trace().records())
    assert [r["kind"] for r in rows] == ["ValMsg", "EchoMsg"]
    assert rows[0]["hops"] == 1


def test_span_summary_excludes_hops():
    rows = span_summary_table(make_trace().records())
    assert [r["span"] for r in rows] == ["rbc.e2e"]
    assert rows[0]["mean_ms"] == pytest.approx(200.0)


def test_counter_and_client_latency_tables():
    records = make_trace().records()
    counters = {r["counter"]: r for r in counter_table(records)}
    assert counters["rbc.propose"]["events"] == 1
    (latency,) = client_latency_table(records)
    assert latency["accepted_txns"] == 2
    assert latency["mean_s"] == pytest.approx(0.5)


def test_format_trace_report_sections():
    report = format_trace_report(make_trace())
    assert "Per-hop latency decomposition" in report
    assert "Client-observed latency" in report
    assert format_trace_report([]) == "(empty trace: no records)"


def test_report_main_round_trip(tmp_path, capsys):
    t = make_trace()
    path = tmp_path / "trace.jsonl"
    t.export_jsonl(str(path))
    assert load_trace(str(path)) == t.to_dicts()
    assert main([str(path)]) == 0
    assert "Per-hop latency decomposition" in capsys.readouterr().out
    assert main([str(path), "--json"]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {
        "meta", "hop_stages", "hop_kinds", "spans", "counters",
        "client_latency", "sim",
    }
    assert payload["meta"]["dropped"] == 0


def test_report_main_fails_loudly_on_evictions(tmp_path, capsys):
    t = Tracer(capacity=3)
    for i in range(8):
        t.counter("rbc.propose", node=0, time=float(i), round=i)
    path = tmp_path / "trace.jsonl"
    t.export_jsonl(str(path))
    assert main([str(path)]) == 1
    captured = capsys.readouterr()
    assert "WARNING" in captured.out
    assert "--capacity" in captured.err


def test_tables_stream_from_tracefile(tmp_path):
    from repro.obs import TraceFile

    t = make_trace()
    path = tmp_path / "trace.jsonl"
    t.export_jsonl(str(path))
    trace = TraceFile(str(path))
    # Two independent aggregation passes over the same streaming handle.
    assert hop_stage_table(trace) == hop_stage_table(t.records())
    assert counter_table(trace) == counter_table(t.records())
