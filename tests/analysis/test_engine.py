"""Engine mechanics: suppressions, baseline round-trip, CLI surface."""

import json
import textwrap

import pytest

from repro.analysis.engine import (
    Analyzer,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.cli import main
from repro.errors import ConfigError

BAD_SOURCE = textwrap.dedent(
    """\
    import time

    def stamp():
        return time.time()
    """
)


def test_suppression_comment_silences_matching_rule():
    analyzer = Analyzer()
    findings = analyzer.analyze_source(
        "import time\nt = time.time()  # repro: allow[DET002]\n"
    )
    assert findings == []
    assert analyzer.suppressed == 1


def test_suppression_wildcard():
    analyzer = Analyzer()
    assert analyzer.analyze_source("import time\nt = time.time()  # repro: allow[*]\n") == []
    assert analyzer.suppressed == 1


def test_suppression_of_other_rule_does_not_apply():
    analyzer = Analyzer()
    findings = analyzer.analyze_source(
        "import time\nt = time.time()  # repro: allow[DET001]\n"
    )
    assert [f.rule for f in findings] == ["DET002"]
    assert analyzer.suppressed == 0


def test_parse_error_is_recorded_not_raised():
    analyzer = Analyzer()
    assert analyzer.analyze_source("def broken(:\n") == []
    assert len(analyzer.parse_errors) == 1


def test_baseline_round_trip(tmp_path):
    findings = Analyzer().analyze_source(BAD_SOURCE, path="pkg/mod.py")
    assert findings, "fixture must produce findings"
    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings, str(baseline_file))

    baseline = load_baseline(str(baseline_file))
    split = apply_baseline(findings, baseline)
    assert split.new == ()
    assert len(split.baselined) == len(findings)
    assert split.stale == ()


def test_baseline_survives_line_shift(tmp_path):
    findings = Analyzer().analyze_source(BAD_SOURCE, path="pkg/mod.py")
    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings, str(baseline_file))

    # Same offending line, shifted down by a new leading comment: the key is
    # (rule, path, snippet), so the entry still matches.
    shifted = "# a new comment\n" + BAD_SOURCE
    shifted_findings = Analyzer().analyze_source(shifted, path="pkg/mod.py")
    split = apply_baseline(shifted_findings, load_baseline(str(baseline_file)))
    assert split.new == ()
    assert split.stale == ()


def test_baseline_reports_stale_entries(tmp_path):
    findings = Analyzer().analyze_source(BAD_SOURCE, path="pkg/mod.py")
    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings, str(baseline_file))

    split = apply_baseline([], load_baseline(str(baseline_file)))
    assert len(split.stale) == len(findings)


def test_load_baseline_rejects_foreign_json(tmp_path):
    bad = tmp_path / "not_a_baseline.json"
    bad.write_text("[1, 2, 3]\n")
    with pytest.raises(ConfigError):
        load_baseline(str(bad))


def test_analyzer_skips_pycache_dirs(tmp_path):
    pkg = tmp_path / "pkg"
    cache = pkg / "__pycache__"
    cache.mkdir(parents=True)
    (pkg / "ok.py").write_text("x = 1\n")
    (cache / "stale.py").write_text("import time\nt = time.time()\n")

    analyzer = Analyzer()
    findings = analyzer.run(["pkg"], root=str(tmp_path))
    assert findings == []
    assert analyzer.files_analyzed == 1


def test_cli_json_shape(tmp_path, capsys, monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text(BAD_SOURCE)
    monkeypatch.chdir(tmp_path)

    rc = main(["analyze", "mod.py", "--json"])
    payload = json.loads(capsys.readouterr().out)

    assert rc == 1
    assert payload["version"] == 1
    assert payload["files"] == 1
    assert payload["new_count"] == 1
    assert payload["baselined_count"] == 0
    assert payload["stale_baseline"] == []
    assert payload["parse_errors"] == []
    finding = payload["findings"][0]
    assert finding["rule"] == "DET002"
    assert finding["baselined"] is False
    assert set(finding) >= {"rule", "severity", "path", "line", "col", "message", "snippet"}


def test_cli_write_baseline_then_clean_exit(tmp_path, capsys, monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text(BAD_SOURCE)
    monkeypatch.chdir(tmp_path)

    assert main(["analyze", "mod.py", "--baseline", "baseline.json", "--write-baseline"]) == 0
    capsys.readouterr()
    # With the baseline in place the same findings are grandfathered.
    assert main(["analyze", "mod.py", "--baseline", "baseline.json"]) == 0
    out = capsys.readouterr().out
    assert "0 new finding(s)" in out
    assert "1 baselined" in out


def test_cli_exit_code_on_new_findings(tmp_path, capsys, monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text(BAD_SOURCE)
    monkeypatch.chdir(tmp_path)
    assert main(["analyze", "mod.py"]) == 1
    assert "DET002" in capsys.readouterr().out
