"""Engine mechanics: suppressions, baseline round-trip, CLI surface."""

import json
import textwrap

import pytest

from repro.analysis.engine import (
    Analyzer,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.cli import main
from repro.errors import ConfigError

BAD_SOURCE = textwrap.dedent(
    """\
    import time

    def stamp():
        return time.time()
    """
)


def test_suppression_comment_silences_matching_rule():
    analyzer = Analyzer()
    findings = analyzer.analyze_source(
        "import time\nt = time.time()  # repro: allow[DET002]\n"
    )
    assert findings == []
    assert analyzer.suppressed == 1


def test_suppression_wildcard():
    analyzer = Analyzer()
    assert analyzer.analyze_source("import time\nt = time.time()  # repro: allow[*]\n") == []
    assert analyzer.suppressed == 1


def test_suppression_of_other_rule_does_not_apply():
    analyzer = Analyzer()
    findings = analyzer.analyze_source(
        "import time\nt = time.time()  # repro: allow[DET001]\n"
    )
    assert [f.rule for f in findings] == ["DET002"]
    assert analyzer.suppressed == 0


def test_parse_error_is_recorded_not_raised():
    analyzer = Analyzer()
    assert analyzer.analyze_source("def broken(:\n") == []
    assert len(analyzer.parse_errors) == 1


def test_baseline_round_trip(tmp_path):
    findings = Analyzer().analyze_source(BAD_SOURCE, path="pkg/mod.py")
    assert findings, "fixture must produce findings"
    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings, str(baseline_file))

    baseline = load_baseline(str(baseline_file))
    split = apply_baseline(findings, baseline)
    assert split.new == ()
    assert len(split.baselined) == len(findings)
    assert split.stale == ()


def test_baseline_survives_line_shift(tmp_path):
    findings = Analyzer().analyze_source(BAD_SOURCE, path="pkg/mod.py")
    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings, str(baseline_file))

    # Same offending line, shifted down by a new leading comment: the key is
    # (rule, path, snippet), so the entry still matches.
    shifted = "# a new comment\n" + BAD_SOURCE
    shifted_findings = Analyzer().analyze_source(shifted, path="pkg/mod.py")
    split = apply_baseline(shifted_findings, load_baseline(str(baseline_file)))
    assert split.new == ()
    assert split.stale == ()


def test_baseline_reports_stale_entries(tmp_path):
    findings = Analyzer().analyze_source(BAD_SOURCE, path="pkg/mod.py")
    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings, str(baseline_file))

    split = apply_baseline([], load_baseline(str(baseline_file)))
    assert len(split.stale) == len(findings)


def test_load_baseline_rejects_foreign_json(tmp_path):
    bad = tmp_path / "not_a_baseline.json"
    bad.write_text("[1, 2, 3]\n")
    with pytest.raises(ConfigError):
        load_baseline(str(bad))


def test_analyzer_skips_pycache_dirs(tmp_path):
    pkg = tmp_path / "pkg"
    cache = pkg / "__pycache__"
    cache.mkdir(parents=True)
    (pkg / "ok.py").write_text("x = 1\n")
    (cache / "stale.py").write_text("import time\nt = time.time()\n")

    analyzer = Analyzer()
    findings = analyzer.run(["pkg"], root=str(tmp_path))
    assert findings == []
    assert analyzer.files_analyzed == 1


def test_cli_json_shape(tmp_path, capsys, monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text(BAD_SOURCE)
    monkeypatch.chdir(tmp_path)

    rc = main(["analyze", "mod.py", "--json"])
    payload = json.loads(capsys.readouterr().out)

    assert rc == 1
    assert payload["version"] == 1
    assert payload["files"] == 1
    assert payload["new_count"] == 1
    assert payload["baselined_count"] == 0
    assert payload["stale_baseline"] == []
    assert payload["parse_errors"] == []
    finding = payload["findings"][0]
    assert finding["rule"] == "DET002"
    assert finding["baselined"] is False
    assert set(finding) >= {"rule", "severity", "path", "line", "col", "message", "snippet"}


def test_cli_write_baseline_then_clean_exit(tmp_path, capsys, monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text(BAD_SOURCE)
    monkeypatch.chdir(tmp_path)

    assert main(["analyze", "mod.py", "--baseline", "baseline.json", "--write-baseline"]) == 0
    capsys.readouterr()
    # With the baseline in place the same findings are grandfathered.
    assert main(["analyze", "mod.py", "--baseline", "baseline.json"]) == 0
    out = capsys.readouterr().out
    assert "0 new finding(s)" in out
    assert "1 baselined" in out


def test_cli_exit_code_on_new_findings(tmp_path, capsys, monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text(BAD_SOURCE)
    monkeypatch.chdir(tmp_path)
    assert main(["analyze", "mod.py"]) == 1
    assert "DET002" in capsys.readouterr().out


# -- baseline edge cases -------------------------------------------------------


def test_baseline_stale_after_flagged_line_is_edited(tmp_path):
    """Editing the flagged line changes its snippet key: the finding comes
    back as *new* and the old entry is reported stale — grandfathering
    never survives a rewrite of the offending code."""
    findings = Analyzer().analyze_source(BAD_SOURCE, path="pkg/mod.py")
    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings, str(baseline_file))

    edited = BAD_SOURCE.replace("return time.time()", "return 1 + time.time()")
    edited_findings = Analyzer().analyze_source(edited, path="pkg/mod.py")
    assert edited_findings, "edited source still violates DET002"

    split = apply_baseline(edited_findings, load_baseline(str(baseline_file)))
    assert len(split.new) == 1
    assert split.baselined == ()
    assert len(split.stale) == 1
    assert split.stale[0][0] == "DET002"


def test_suppression_on_multiline_statement_any_line(tmp_path):
    # The allow comment sits on the closing line; the finding anchors on an
    # inner line of the same (simple) statement.
    source = textwrap.dedent(
        """\
        def same(a, b):
            return (
                id(a) ==
                id(b)
            )  # repro: allow[DET004]
        """
    )
    analyzer = Analyzer()
    assert analyzer.analyze_source(source) == []
    assert analyzer.suppressed == 2  # one per id() call, both on inner lines


def test_suppression_wildcard_on_multiline_compound_header():
    # allow[*] on the last header line of a multi-line `for` covers the
    # finding anchored on the iterable, but not the loop body.
    source = textwrap.dedent(
        """\
        def gossip(net, peers):
            members = set(peers)
            for p in (
                members
            ):  # repro: allow[*]
                net.send(0, p, None)
        """
    )
    analyzer = Analyzer()
    assert analyzer.analyze_source(source) == []
    assert analyzer.suppressed == 1


def test_suppression_inside_body_does_not_blanket_function():
    # An allow comment on a body line must not cover sibling statements.
    source = textwrap.dedent(
        """\
        import time

        def stamps():
            a = time.time()  # repro: allow[DET002]
            b = time.time()
            return a, b
        """
    )
    analyzer = Analyzer()
    findings = analyzer.analyze_source(source)
    assert [f.line for f in findings] == [5]
    assert analyzer.suppressed == 1


def test_cli_json_reports_suppression_count(tmp_path, capsys, monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text(
        "import time\n"
        "t = time.time()  # repro: allow[DET002]\n"
        "u = time.time()\n"
    )
    monkeypatch.chdir(tmp_path)
    rc = main(["analyze", "mod.py", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["suppressed"] == 1
    assert payload["new_count"] == 1


# -- SARIF export --------------------------------------------------------------


def test_cli_sarif_export(tmp_path, capsys, monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text(BAD_SOURCE)
    monkeypatch.chdir(tmp_path)

    rc = main(["analyze", "mod.py", "--sarif", "out.sarif"])
    capsys.readouterr()
    assert rc == 1
    doc = json.loads((tmp_path / "out.sarif").read_text())
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-analyze"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"DET002", "QRM001", "RNG001", "MSG003", "DET005"} <= rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "DET002"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "mod.py"
    assert location["region"]["startLine"] == 4
    assert result["partialFingerprints"]["reproAnalyzeKey/v1"]


def test_cli_sarif_baselined_findings_not_exported(tmp_path, capsys, monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text(BAD_SOURCE)
    monkeypatch.chdir(tmp_path)
    assert main(["analyze", "mod.py", "--baseline", "b.json", "--write-baseline"]) == 0
    assert main(["analyze", "mod.py", "--baseline", "b.json", "--sarif", "out.sarif"]) == 0
    capsys.readouterr()
    doc = json.loads((tmp_path / "out.sarif").read_text())
    assert doc["runs"][0]["results"] == []


# -- --changed lane ------------------------------------------------------------


def _git(tmp_path, *cmd):
    import subprocess

    subprocess.run(
        ["git", *cmd],
        cwd=tmp_path,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(tmp_path),
            "PATH": __import__("os").environ["PATH"],
        },
    )


def test_cli_changed_reports_only_diffed_files(tmp_path, capsys, monkeypatch):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    # A committed violation --changed must NOT report on...
    (pkg / "old.py").write_text(BAD_SOURCE)
    _git(tmp_path, "init", "-q", "-b", "main")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    # ...and an uncommitted one it must.
    (pkg / "fresh.py").write_text("import time\nstamp = time.time()\n")
    monkeypatch.chdir(tmp_path)

    rc = main(["analyze", "--changed", "pkg"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "fresh.py" in out
    assert "old.py" not in out
    assert "1 files" in out


def test_cli_changed_with_no_changes_exits_clean(tmp_path, capsys, monkeypatch):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "old.py").write_text(BAD_SOURCE)
    _git(tmp_path, "init", "-q", "-b", "main")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(tmp_path)

    rc = main(["analyze", "--changed", "pkg"])
    assert rc == 0
    assert "no changed python files" in capsys.readouterr().out
