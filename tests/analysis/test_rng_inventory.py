"""RNG001's static stream inventory vs the runtime sanitizer registry.

The acceptance contract for the whole-program pass: a chaos smoke run under
``REPRO_SANITIZE=1`` must not derive any stream the static inventory missed.
If this fails, either a ``make_rng`` call site escaped ``ProjectContext``
(rule bug) or a new stream was added with a dynamic first label (code bug —
RNG001 would flag it as escaping static resolution).
"""

from pathlib import Path

import repro
from repro.analysis import sanitizers
from repro.analysis.project import ORDER_SINKS, ProjectContext
from repro.analysis.rules import _ORDER_SINKS
from repro.chaos import SMOKE_SCENARIOS, run_scenario

#: The real source tree, located from the imported package so the test works
#: regardless of the pytest invocation directory.
SRC_ROOT = str(Path(repro.__file__).resolve().parents[1])


def test_static_inventory_fully_resolves_real_tree():
    project = ProjectContext.build(["repro"], root=SRC_ROOT)
    assert project.rng_sites, "no make_rng sites found — wrong root?"
    for site in project.rng_sites:
        assert site.labels, f"unlabelled make_rng at {site.path}:{site.line}"
        assert site.first_label is not None, (
            f"dynamic first label at {site.path}:{site.line} — the "
            "runtime cross-check below would be unsound"
        )


def test_runtime_streams_covered_by_static_inventory(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    run_scenario(SMOKE_SCENARIOS[0])
    observed = sanitizers.observed_streams()
    assert observed, "smoke run derived no RNG streams; cross-check is vacuous"

    project = ProjectContext.build(["repro"], root=SRC_ROOT)
    static = {(site.first_label, site.shared) for site in project.rng_sites}

    for labels, shared in observed:
        assert labels, f"runtime stream with empty labels: {labels!r}"
        assert (labels[0], shared) in static, (
            f"runtime stream {labels!r} (shared={shared}) has no static "
            "make_rng site with that first label and sharing mode — the "
            "static pass missed it"
        )


def test_order_sink_sets_stay_in_sync():
    # DET003 (per-file) and DET005 (interprocedural) must agree on what
    # counts as an order-sensitive sink, or escalation becomes lopsided.
    assert ORDER_SINKS == _ORDER_SINKS
