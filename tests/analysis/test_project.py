"""ProjectContext: symbol tables, call graph, message/RNG inventories, cache."""

import textwrap

import pytest

from repro.analysis.project import (
    ProjectContext,
    load_project,
    rng_sites_in,
)


def build(**sources):
    """Build a project from ``{dotted_file_name: source}`` kwargs
    (``consensus_node`` → ``src/repro/consensus/node.py``)."""
    files = {
        "src/repro/" + name.replace("_", "/", 1) + ".py": textwrap.dedent(src)
        for name, src in sources.items()
    }
    return ProjectContext.from_sources(files)


# -- symbol tables -------------------------------------------------------------


def test_modules_classes_functions_indexed():
    project = build(
        net_message="""\
        class Message:
            pass
        """,
        consensus_node="""\
        from repro.net.message import Message

        class VoteMsg(Message):
            round: int

        def tally(votes):
            return len(votes)

        class Node:
            def commit(self):
                self.height = 1
        """,
    )
    assert project.modules["repro.consensus.node"] == "src/repro/consensus/node.py"
    assert "VoteMsg" in project.classes
    assert "tally" in project.functions
    commit = project.functions["commit"][0]
    assert commit.cls == "Node"
    assert commit.qualname == "repro.consensus.node.Node.commit"
    # self.height assignment in a method registers as a class field.
    assert "height" in project.classes["Node"][0].fields


def test_message_closure_is_transitive():
    project = build(
        net_message="""\
        class Message:
            pass
        """,
        rbc_messages="""\
        from repro.net.message import Message

        class BaseMsg(Message):
            origin: int

        class EchoMsg(BaseMsg):
            digest: bytes
        """,
    )
    assert project.message_classes == {"BaseMsg", "EchoMsg"}
    # Inherited fields and the Message base API are visible on the subclass.
    fields = project.message_fields["EchoMsg"]
    assert {"digest", "origin", "wire_size", "kind"} <= fields


def test_handled_via_dispatch_dict_and_subscript():
    project = build(
        consensus_node="""\
        from repro.net.message import Message

        class EchoMsg(Message):
            pass

        class NoVoteMsg(Message):
            pass

        class DropMsg(Message):
            pass

        class Node:
            def dispatch_table(self):
                return {EchoMsg: self._on_echo}

            def wire(self, network, table):
                table[NoVoteMsg] = self._on_no_vote
                network.set_dispatch(0, table)
        """,
    )
    assert "EchoMsg" in project.handled_messages
    assert "NoVoteMsg" in project.handled_messages
    assert "DropMsg" not in project.handled_messages


def test_handled_via_isinstance_reachable_from_register_root():
    project = build(
        net_transport="""\
        from repro.net.message import Message

        class DataMsg(Message):
            seq: int

        class AckMsg(Message):
            seq: int

        class OrphanMsg(Message):
            pass

        class Transport:
            def attach(self, net, node_id):
                net.register(node_id, lambda src, msg: self._on_raw(node_id, src, msg))

            def _on_raw(self, dst, src, msg):
                if isinstance(msg, AckMsg):
                    return self._ack(msg)
                if isinstance(msg, DataMsg):
                    return self._data(msg)

        def dead_code(msg):
            # isinstance in a function nothing registers: not a handler.
            return isinstance(msg, OrphanMsg)
        """,
    )
    assert {"DataMsg", "AckMsg"} <= project.handled_messages
    assert "OrphanMsg" not in project.handled_messages


def test_sink_closure_is_transitive():
    project = build(
        consensus_node="""\
        class Node:
            def _emit(self, p):
                self._really_emit(p)

            def _really_emit(self, p):
                self.net.send(0, p, None)

            def _pure(self, p):
                return p + 1
        """,
    )
    assert project.sink_reachers.get("_really_emit") == "send"
    assert project.sink_reachers.get("_emit") == "send"
    assert "_pure" not in project.sink_reachers
    assert project.reaches_sink("send") == "send"
    assert project.reaches_sink("_pure") is None


def test_canonical_defs_from_module_and_static_names():
    project = build(
        types="""\
        def my_threshold(n):
            return (2 * ((n - 1) // 3)) + 1

        def _private_helper(n):
            return n
        """,
    )
    # Public defs in repro.types are canonical; private ones are not.
    assert "my_threshold" in project.canonical_quorum_defs
    assert "_private_helper" not in project.canonical_quorum_defs
    # The static fallback names are always present (fixture runs).
    assert "quorum_size" in project.canonical_quorum_defs


# -- RNG inventory -------------------------------------------------------------

RNG_SOURCE = """\
from repro.sim.rng import make_rng

def streams(seed, node_id):
    a = make_rng(seed, "jitter", node_id)
    b = make_rng(seed, "leader-schedule", shared=True)
    c = make_rng(seed, node_id)
    return a, b, c
"""


def test_rng_sites_resolution():
    project = build(net_latency=RNG_SOURCE)
    sites = sorted(project.rng_sites, key=lambda s: s.line)
    assert [s.labels for s in sites] == [
        ("jitter", None),
        ("leader-schedule",),
        (None,),
    ]
    assert [s.shared for s in sites] == [False, True, False]
    assert sites[0].first_label == "jitter"
    assert not sites[0].fully_constant
    assert sites[1].fully_constant


def test_rng_collisions_require_same_arity_and_constants():
    project = build(
        net_a="""\
        from repro.sim.rng import make_rng
        r1 = make_rng(0, "alpha")
        """,
        net_b="""\
        from repro.sim.rng import make_rng
        r2 = make_rng(0, "alpha")
        r3 = make_rng(0, "alpha", 7)
        r4 = make_rng(0, "beta")
        """,
    )
    site_r1 = next(s for s in project.rng_sites if s.path.endswith("a.py"))
    hits = project.rng_collisions(site_r1)
    # Same label, same arity collides; extra-label and beta sites do not.
    assert [h.labels for h in hits] == [("alpha",)]


# -- cache ---------------------------------------------------------------------


def test_load_project_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text("class Message:\n    pass\n")

    first = load_project(["pkg"], cache_dir=str(tmp_path / "cache"))
    assert first.digest
    cached_files = list((tmp_path / "cache").glob("analysis_project_*.pkl"))
    assert len(cached_files) == 1

    # A second load must come from the pickle, not a re-parse.
    def boom(_sources):
        raise AssertionError("cache miss: from_sources re-invoked")

    monkeypatch.setattr(ProjectContext, "from_sources", staticmethod(boom))
    second = load_project(["pkg"], cache_dir=str(tmp_path / "cache"))
    assert second.digest == first.digest
    assert second.modules == first.modules

    # Any source edit is a miss by construction.
    (pkg / "mod.py").write_text("class Message:\n    x = 1\n")
    with pytest.raises(AssertionError, match="cache miss"):
        load_project(["pkg"], cache_dir=str(tmp_path / "cache"))


def test_cache_disabled_by_env(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("REPRO_CACHE", "0")
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text("x = 1\n")
    load_project(["pkg"], cache_dir=str(tmp_path / "cache"))
    assert not (tmp_path / "cache").exists()


def test_parse_error_files_are_skipped():
    project = ProjectContext.from_sources({"bad.py": "def broken(:\n"})
    assert project.modules == {}


def test_rng_sites_in_matches_project_inventory():
    import ast

    from repro.analysis.engine import FileContext

    source = textwrap.dedent(RNG_SOURCE)
    ctx = FileContext("src/repro/net/latency.py", source, ast.parse(source))
    project = build(net_latency=RNG_SOURCE)
    assert rng_sites_in(ctx) == project.rng_sites
