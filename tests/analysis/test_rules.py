"""Per-rule fixtures: each rule has a failing snippet and a clean counterpart."""

import textwrap

from repro.analysis.engine import Analyzer


def run(source, path="pkg/mod.py"):
    return Analyzer().analyze_source(textwrap.dedent(source), path=path)


def rule_ids(source, path="pkg/mod.py"):
    return [f.rule for f in run(source, path=path)]


# -- DET001: raw random module ------------------------------------------------


def test_det001_flags_global_random_attribute():
    findings = run(
        """\
        import random

        def jitter():
            return random.random()
        """
    )
    assert [f.rule for f in findings] == ["DET001"]
    assert findings[0].line == 4


def test_det001_flags_random_random_constructor():
    assert "DET001" in rule_ids(
        """\
        import random
        rng = random.Random(42)
        """
    )


def test_det001_flags_from_import():
    assert "DET001" in rule_ids("from random import choice\n")


def test_det001_exempts_the_rng_module_itself():
    source = """\
        import random
        rng = random.Random(7)
        """
    assert rule_ids(source, path="src/repro/sim/rng.py") == []
    assert "DET001" in rule_ids(source, path="src/repro/consensus/leader.py")


def test_det001_clean_named_streams():
    assert (
        rule_ids(
            """\
            from repro.sim.rng import make_rng

            def jitter(seed):
                return make_rng(seed, "jitter").random()
            """
        )
        == []
    )


# -- DET002: wall clock / OS entropy ------------------------------------------


def test_det002_flags_time_time_through_alias():
    findings = run(
        """\
        import time as _time

        def stamp():
            return _time.time()
        """
    )
    assert [f.rule for f in findings] == ["DET002"]


def test_det002_flags_datetime_now_os_urandom_uuid4():
    ids = rule_ids(
        """\
        import os
        import uuid
        from datetime import datetime

        def fresh():
            return datetime.now(), os.urandom(8), uuid.uuid4()
        """
    )
    assert ids.count("DET002") == 3


def test_det002_allows_perf_counter():
    # Wall-clock *measurement* (tracing, profiling) is fine; only sources
    # that can leak into simulated state are banned.
    assert (
        rule_ids(
            """\
            import time

            def wall():
                return time.perf_counter()
            """
        )
        == []
    )


# -- DET003: unordered iteration ----------------------------------------------


def test_det003_set_variable_feeding_send_is_error():
    findings = run(
        """\
        def gossip(net, peers):
            members = set(peers)
            for p in members:
                net.send(0, p, None)
        """
    )
    assert [(f.rule, f.severity) for f in findings] == [("DET003", "error")]


def test_det003_set_literal_without_sink_is_warning():
    findings = run(
        """\
        def tally():
            total = 0
            for x in {1, 2, 3}:
                total += x
            return total
        """
    )
    assert [(f.rule, f.severity) for f in findings] == [("DET003", "warning")]


def test_det003_dict_keys_feeding_schedule_is_error():
    findings = run(
        """\
        def arm(sim, timers):
            for name in timers.keys():
                sim.schedule(1.0, print, name)
        """
    )
    assert [(f.rule, f.severity) for f in findings] == [("DET003", "error")]


def test_det003_sorted_iteration_is_clean():
    assert (
        rule_ids(
            """\
            def gossip(net, peers):
                members = set(peers)
                for p in sorted(members):
                    net.send(0, p, None)
            """
        )
        == []
    )


def test_det003_reassigned_to_list_is_clean():
    assert (
        rule_ids(
            """\
            def gossip(net, peers):
                members = set(peers)
                members = sorted(members)
                for p in members:
                    net.send(0, p, None)
            """
        )
        == []
    )


# -- DET004: identity/hash ordering -------------------------------------------


def test_det004_id_in_comparison():
    findings = run(
        """\
        def same(a, b):
            return id(a) == id(b)
        """
    )
    assert {f.rule for f in findings} == {"DET004"}


def test_det004_hash_as_sort_key():
    assert "DET004" in rule_ids(
        """\
        def order(items):
            return sorted(items, key=lambda v: hash(v))
        """
    )


def test_det004_bare_hash_keyword():
    assert "DET004" in rule_ids("order = sorted([1, 2], key=hash)\n")


def test_det004_field_sort_key_is_clean():
    assert (
        rule_ids(
            """\
            def order(items):
                return sorted(items, key=lambda v: v.node_id)
            """
        )
        == []
    )


# -- MSG001: message shape ----------------------------------------------------


def test_msg001_missing_slots_and_wire_size():
    findings = run(
        """\
        from repro.net.message import Message

        class VoteMsg(Message):
            def __init__(self, round):
                self.round = round
        """
    )
    messages = sorted(f.message for f in findings)
    assert [f.rule for f in findings] == ["MSG001", "MSG001"]
    assert any("__slots__" in m for m in messages)
    assert any("wire_size" in m for m in messages)


def test_msg001_dataclass_slots_with_wire_size_is_clean():
    assert (
        rule_ids(
            """\
            from dataclasses import dataclass

            from repro.net.message import Message

            @dataclass(slots=True)
            class VoteMsg(Message):
                round: int

                def wire_size(self):
                    return 84
            """
        )
        == []
    )


def test_msg001_explicit_slots_is_clean():
    assert (
        rule_ids(
            """\
            from repro.net.message import Message

            class Blob(Message):
                __slots__ = ("size",)

                def wire_size(self):
                    return self.size
            """
        )
        == []
    )


# -- MSG002: mutation after send ----------------------------------------------


def test_msg002_mutation_after_send():
    findings = run(
        """\
        def propose(net, msg):
            net.multicast(0, [1, 2], msg)
            msg.round = 5
        """
    )
    assert [f.rule for f in findings] == ["MSG002"]


def test_msg002_mutation_before_send_is_clean():
    assert (
        rule_ids(
            """\
            def propose(net, msg):
                msg.round = 5
                net.multicast(0, [1, 2], msg)
            """
        )
        == []
    )


def test_msg002_rebound_name_is_clean():
    # After rebinding, `msg` is a different object; mutating it is fine.
    assert (
        rule_ids(
            """\
            def propose(net, msg, fresh):
                net.send(0, 1, msg)
                msg = fresh()
                msg.round = 5
            """
        )
        == []
    )


# -- SIM001: float equality on simulated time ---------------------------------


def test_sim001_equality_on_now_and_deadline():
    findings = run(
        """\
        def expired(sim, deadline, t):
            if sim.now == 3.0:
                return True
            return deadline != t
        """
    )
    assert [(f.rule, f.severity) for f in findings] == [
        ("SIM001", "warning"),
        ("SIM001", "warning"),
    ]


def test_sim001_ordering_comparison_is_clean():
    assert (
        rule_ids(
            """\
            def expired(sim, deadline):
                return sim.now >= deadline
            """
        )
        == []
    )


def test_sim001_none_check_is_clean():
    assert (
        rule_ids(
            """\
            def armed(deadline):
                return deadline != None
            """
        )
        == []
    )


def test_sim001_message_suggests_tolerance_helper():
    findings = run(
        """\
        def due(sim, fire_at):
            return sim.now != fire_at
        """
    )
    assert [f.rule for f in findings] == ["SIM001"]
    assert "times_close" in findings[0].message


def test_sim001_tolerance_helper_module_is_exempt():
    # times_close itself compares with <= tolerance; its home module must
    # never be flagged for the comparisons it exists to encapsulate.
    source = """\
    def times_close(a, b, tol):
        expires_at = a
        return expires_at == b
    """
    assert rule_ids(source, path="src/repro/sim/timers.py") == []
    assert rule_ids(source, path="src/repro/sim/other.py") == ["SIM001"]


# -- OBS001: unguarded tracer emission in a loop ------------------------------


def test_obs001_unguarded_counter_in_loop():
    findings = run(
        """\
        def deliver(self, batch):
            for msg in batch:
                self.tracer.counter("net.msg", node=msg.dst, kind=msg.kind())
        """
    )
    assert [(f.rule, f.severity) for f in findings] == [("OBS001", "warning")]
    assert findings[0].line == 3


def test_obs001_guarded_loop_is_clean():
    assert (
        rule_ids(
            """\
            def deliver(self, batch):
                for msg in batch:
                    if self.tracer.enabled:
                        self.tracer.counter("net.msg", node=msg.dst)
            """
        )
        == []
    )


def test_obs001_guard_hoisted_outside_loop_is_clean():
    assert (
        rule_ids(
            """\
            def commit(self, chain, now):
                if self.tracer.enabled:
                    for vertex in chain:
                        self.tracer.counter("ordered", round=vertex.round)
            """
        )
        == []
    )


def test_obs001_flags_while_loops_and_local_aliases():
    findings = run(
        """\
        def drain(queue, tracer):
            while queue:
                item = queue.pop()
                tracer.gauge("queue.depth", value=len(queue))
        """
    )
    assert [f.rule for f in findings] == ["OBS001"]


def test_obs001_call_outside_loop_is_clean():
    assert (
        rule_ids(
            """\
            def finish(self, now):
                self.tracer.counter("run.done", time=now)
            """
        )
        == []
    )


def test_obs001_non_tracer_receiver_is_clean():
    # `.counter(...)` on something that isn't a tracer is not our business.
    assert (
        rule_ids(
            """\
            def tally(self, votes):
                for vote in votes:
                    self.metrics.counter(vote)
            """
        )
        == []
    )


# -- OBS002: span begin without a matching end in the same handler ------------


def test_obs002_begin_without_end_in_handler():
    findings = run(
        """\
        def on_val(self, msg, now):
            self.tracer.begin("rbc.deliver", key=msg.origin, start=now)
            self.store.add(msg.vertex)
        """
    )
    assert [(f.rule, f.severity) for f in findings] == [("OBS002", "warning")]
    assert findings[0].line == 2


def test_obs002_matched_begin_end_is_clean():
    assert (
        rule_ids(
            """\
            def on_val(self, msg, now):
                self.tracer.begin("rbc.deliver", key=msg.origin, start=now)
                self.store.add(msg.vertex)
                self.tracer.end("rbc.deliver", key=msg.origin, end=now)
            """
        )
        == []
    )


def test_obs002_end_on_conditional_path_still_counts():
    # Reachability is approximated as same-function presence: an `end` on
    # any path in the handler satisfies the rule.
    assert (
        rule_ids(
            """\
            def on_echo(self, msg, now):
                self.tracer.begin("rbc.echo", key=msg.origin, start=now)
                if self.quorum(msg):
                    self.tracer.end("rbc.echo", key=msg.origin, end=now)
            """
        )
        == []
    )


def test_obs002_end_for_different_span_name_does_not_match():
    findings = run(
        """\
        def on_ready(self, msg, now):
            self.tracer.begin("rbc.ready", key=msg.origin, start=now)
            self.tracer.end("rbc.echo", key=msg.origin, end=now)
        """
    )
    assert [f.rule for f in findings] == ["OBS002"]


def test_obs002_cross_handler_begin_end_flagged_per_function():
    # begin in one handler, end in another: the begin side is flagged (the
    # idiom is to suppress with an allow comment naming the closing site).
    findings = run(
        """\
        def open_round(self, round_, now):
            self.tracer.begin("round", key=round_, start=now)

        def close_round(self, round_, now):
            self.tracer.end("round", key=round_, end=now)
        """
    )
    assert [f.rule for f in findings] == ["OBS002"]


def test_obs002_allow_comment_suppresses():
    assert (
        rule_ids(
            """\
            def open_round(self, round_, now):
                self.tracer.begin("round", key=round_, start=now)  # repro: allow[OBS002] closed in close_round
            """
        )
        == []
    )


def test_obs002_dynamic_span_name_is_skipped():
    assert (
        rule_ids(
            """\
            def on_phase(self, phase, now):
                self.tracer.begin(phase.name, key=phase.key, start=now)
            """
        )
        == []
    )


def test_obs002_non_tracer_begin_is_clean():
    assert (
        rule_ids(
            """\
            def start(self, session):
                self.transaction.begin("outer")
            """
        )
        == []
    )


# -- DAG001: full-round DAG scan inside a per-item loop -----------------------

DAG_PATH = "src/repro/consensus/node.py"


def test_dag001_flags_round_scan_in_vertex_loop():
    findings = run(
        """\
        def count(self, vertices):
            for vertex in vertices:
                peers = self.store.round_vertices(vertex.round)
        """,
        path=DAG_PATH,
    )
    assert [(f.rule, f.severity) for f in findings] == [("DAG001", "warning")]
    assert findings[0].line == 3


def test_dag001_flags_uncovered_scan_in_while_loop():
    assert "DAG001" in rule_ids(
        """\
        def drain(self):
            while self.pending:
                tips = self.store.uncovered_before(self.round)
        """,
        path="src/repro/dag/store.py",
    )


def test_dag001_hoisted_scan_is_clean():
    assert (
        rule_ids(
            """\
            def count(self, vertices, round_):
                peers = self.store.round_vertices(round_)
                for vertex in vertices:
                    check(vertex, peers)
            """,
            path=DAG_PATH,
        )
        == []
    )


def test_dag001_round_range_loop_is_clean():
    # Iterating *rounds* and scanning each once is the batch pattern
    # (sync serves round batches this way), not a per-item rescan.
    assert (
        rule_ids(
            """\
            def serve(self, lo, hi):
                for round_ in range(lo, hi + 1):
                    for vertex in self.store.round_vertices(round_):
                        emit(vertex)
            """,
            path="src/repro/consensus/sync.py",
        )
        == []
    )


def test_dag001_out_of_scope_path_is_clean():
    assert (
        rule_ids(
            """\
            def watch(self, vertices):
                for vertex in vertices:
                    peers = self.store.round_vertices(vertex.round)
            """,
            path="src/repro/forensics/monitors.py",
        )
        == []
    )
