"""Interprocedural rules: bad/good fixtures plus seeded deliberate violations.

Each rule gets the failing snippet / clean counterpart pairing of the
per-file rules, and — per the whole-program contract — a fixture seeding a
deliberate violation of each class: magic quorum literal, colliding stream
name, unregistered message, interprocedural unordered-iteration sink.
"""

import textwrap

from repro.analysis.engine import Analyzer
from repro.analysis.project import ProjectContext

#: Minimal Message base so fixtures can subclass it.
MESSAGE_BASE = """\
class Message:
    pass
"""


def run(sources, report_on=None, rules=None):
    """Analyze ``{path: source}`` with a project built over all of them;
    findings are collected for ``report_on`` (default: every file)."""
    files = {path: textwrap.dedent(src) for path, src in sources.items()}
    project = ProjectContext.from_sources(files)
    analyzer = Analyzer(rules=rules, project=project)
    findings = []
    for path, src in sorted(files.items()):
        if report_on is None or path == report_on:
            findings.extend(analyzer.analyze_source(src, path=path))
    return findings


def rule_ids(sources, report_on=None):
    return [f.rule for f in run(sources, report_on=report_on)]


# -- QRM001: quorum re-derivation ---------------------------------------------

CONS = "src/repro/consensus/quorums.py"


def test_qrm001_flags_2f_plus_1():
    findings = run({CONS: """\
        def decide(votes, f):
            return len(votes) >= 2 * f + 1
        """})
    assert [f.rule for f in findings] == ["QRM001"]
    assert "re-derives" in findings[0].message


def test_qrm001_flags_f_plus_1_and_n_minus_f():
    ids = rule_ids({CONS: """\
        def thresholds(n, f):
            amplify = f + 1
            available = n - f
            return amplify, available
        """})
    assert ids == ["QRM001", "QRM001"]


def test_qrm001_flags_clan_majority_rederivation():
    # The exact bug class fixed in vertex_rbc: (len(clan)+1)//2 by hand.
    assert rule_ids({CONS: """\
        def clan_quorum_met(clan, count):
            return count >= (len(clan) + 1) // 2
        """}) == ["QRM001"]


def test_qrm001_flags_magic_quorum_literal():
    findings = run({CONS: """\
        def enough(votes):
            return len(votes) >= 5
        """})
    assert [f.rule for f in findings] == ["QRM001"]
    assert "magic integer literal" in findings[0].message


def test_qrm001_canonical_helper_call_is_clean():
    assert rule_ids({CONS: """\
        def decide(self, votes):
            return len(votes) >= self.membership.quorum
        """}) == []


def test_qrm001_canonical_definition_site_is_exempt():
    # A function *named* as a canonical helper is the derivation site.
    assert rule_ids({CONS: """\
        def quorum_size(n, f):
            return n - f
        """}) == []


def test_qrm001_out_of_scope_path_is_clean():
    assert rule_ids({"src/repro/committees/sampling.py": """\
        def majority(n_c):
            return (n_c + 1) // 2
        """}) == []


def test_qrm001_non_threshold_arithmetic_is_clean():
    assert rule_ids({CONS: """\
        def shapes(xs, chunk_index):
            mid = (len(xs) + 1) // 2  # size-ish but xs isn't, so: flagged?
            return chunk_index + 1
        """}) == []


def test_qrm001_structural_comparisons_are_clean():
    # "non-empty" / pair checks on count names are structure, not quorums.
    assert rule_ids({CONS: """\
        def structural(votes):
            return len(votes) >= 1 and len(votes) == 0
        """}) == []


# -- RNG001: stream inventory --------------------------------------------------

RNG_A = "src/repro/net/alpha.py"
RNG_B = "src/repro/net/beta.py"


def test_rng001_cross_module_collision_is_error():
    findings = run(
        {
            RNG_A: """\
            from repro.sim.rng import make_rng
            rng = make_rng(0, "jitter")
            """,
            RNG_B: """\
            from repro.sim.rng import make_rng
            rng = make_rng(0, "jitter")
            """,
        }
    )
    assert [(f.rule, f.severity) for f in findings] == [
        ("RNG001", "error"),
        ("RNG001", "error"),
    ]
    assert "collide" in findings[0].message


def test_rng001_shared_streams_do_not_collide():
    assert rule_ids(
        {
            RNG_A: 'from repro.sim.rng import make_rng\nr = make_rng(0, "beacon", shared=True)\n',
            RNG_B: 'from repro.sim.rng import make_rng\nr = make_rng(0, "beacon", shared=True)\n',
        }
    ) == []


def test_rng001_shared_exclusive_mix_is_error():
    findings = run(
        {
            RNG_A: 'from repro.sim.rng import make_rng\nr = make_rng(0, "beacon", shared=True)\n',
            RNG_B: 'from repro.sim.rng import make_rng\nr = make_rng(0, "beacon")\n',
        }
    )
    assert {f.rule for f in findings} == {"RNG001"}
    assert all("shared and exclusive" in f.message for f in findings)


def test_rng001_dynamic_first_label_is_warning():
    findings = run(
        {RNG_A: """\
        from repro.sim.rng import make_rng

        def stream(seed, name):
            return make_rng(seed, name)
        """}
    )
    assert [(f.rule, f.severity) for f in findings] == [("RNG001", "warning")]
    assert "escapes static resolution" in findings[0].message


def test_rng001_unlabelled_stream_is_error():
    findings = run(
        {RNG_A: "from repro.sim.rng import make_rng\nr = make_rng(0)\n"}
    )
    assert [(f.rule, f.severity) for f in findings] == [("RNG001", "error")]


def test_rng001_distinct_labels_and_dynamic_suffixes_are_clean():
    assert rule_ids(
        {
            RNG_A: """\
            from repro.sim.rng import make_rng

            def streams(seed, src, dst):
                return make_rng(seed, "lossy-link", src, dst)
            """,
            RNG_B: 'from repro.sim.rng import make_rng\nr = make_rng(0, "geo-latency")\n',
        }
    ) == []


# -- MSG003: dispatch reachability + stale fields ------------------------------

MSG_DEF = "src/repro/consensus/messages.py"
MSG_USE = "src/repro/consensus/node.py"


def test_msg003_unregistered_message_flagged_at_construction():
    findings = run(
        {
            "src/repro/net/message.py": MESSAGE_BASE,
            MSG_DEF: """\
            from repro.net.message import Message

            class GhostMsg(Message):
                round: int
            """,
            MSG_USE: """\
            from .messages import GhostMsg

            def propose(net):
                net.broadcast(0, GhostMsg(1))
            """,
        },
        report_on=MSG_USE,
    )
    assert [f.rule for f in findings] == ["MSG003"]
    assert "silently dropped" in findings[0].message


def test_msg003_dispatch_table_key_makes_message_handled():
    assert rule_ids(
        {
            "src/repro/net/message.py": MESSAGE_BASE,
            MSG_DEF: """\
            from dataclasses import dataclass

            from repro.net.message import Message

            @dataclass(slots=True)
            class EchoMsg(Message):
                round: int

                def wire_size(self):
                    return 8
            """,
            MSG_USE: """\
            from .messages import EchoMsg

            class Node:
                def dispatch_table(self):
                    return {EchoMsg: self._on_echo}

                def propose(self):
                    self.net.broadcast(0, EchoMsg(1))

                def _on_echo(self, src, msg):
                    pass
            """,
        }
    ) == []


def test_msg003_isinstance_chain_from_register_root_is_handled():
    assert rule_ids(
        {
            "src/repro/net/message.py": MESSAGE_BASE,
            MSG_USE: """\
            from repro.net.message import Message

            class PingMsg(Message):
                __slots__ = ()

                def wire_size(self):
                    return 8

            class Node:
                def __init__(self, net, node_id):
                    net.register(node_id, self._on_message)
                    net.send(0, 1, PingMsg())

                def _on_message(self, src, msg):
                    if isinstance(msg, PingMsg):
                        pass
            """,
        }
    ) == []


def test_msg003_stale_field_read_in_annotated_handler():
    findings = run(
        {
            "src/repro/net/message.py": MESSAGE_BASE,
            MSG_USE: """\
            from dataclasses import dataclass

            from repro.net.message import Message

            @dataclass(slots=True)
            class VoteMsg(Message):
                round: int

                def wire_size(self):
                    return 8

            class Node:
                def dispatch_table(self):
                    return {VoteMsg: self._on_vote}

                def _on_vote(self, src, msg: VoteMsg):
                    return msg.round + msg.epoch
            """,
        }
    )
    assert [f.rule for f in findings] == ["MSG003"]
    assert "msg.epoch" in findings[0].message
    assert "stale read" in findings[0].message


def test_msg003_declared_fields_methods_and_base_api_are_clean():
    assert rule_ids(
        {
            "src/repro/net/message.py": MESSAGE_BASE,
            MSG_USE: """\
            from dataclasses import dataclass

            from repro.net.message import Message

            @dataclass(slots=True)
            class VoteMsg(Message):
                round: int
                signed = True

                def wire_size(self):
                    return 8

                def weight(self):
                    return 1

            class Node:
                def dispatch_table(self):
                    return {VoteMsg: self._on_vote}

                def _on_vote(self, src, msg: VoteMsg):
                    return (msg.round, msg.signed, msg.weight(), msg.wire_size())
            """,
        }
    ) == []


# -- DET005: interprocedural sink reachability ---------------------------------

DET = "src/repro/consensus/gossip.py"


def test_det005_one_hop_helper_reaching_send():
    findings = run(
        {DET: """\
        class Node:
            def gossip(self, peers):
                members = set(peers)
                for p in members:
                    self._emit(p)

            def _emit(self, p):
                self.net.send(0, p, None)
        """}
    )
    det5 = [f for f in findings if f.rule == "DET005"]
    assert [(f.rule, f.severity) for f in det5] == [("DET005", "error")]
    assert "_emit" in det5[0].message and "send" in det5[0].message
    # DET003 still reports the unordered iteration itself (as a warning).
    assert [f.rule for f in findings if f.rule == "DET003"] == ["DET003"]


def test_det005_cross_module_two_hop_chain():
    findings = run(
        {
            DET: """\
            from .relay import forward

            def flood(peers):
                for p in set(peers):
                    forward(p)
            """,
            "src/repro/consensus/relay.py": """\
            def forward(p):
                deliver(p)

            def deliver(p):
                schedule(0.1, p)
            """,
        },
        report_on=DET,
    )
    assert "DET005" in [f.rule for f in findings]


def test_det005_direct_sink_left_to_det003():
    findings = run(
        {DET: """\
        def gossip(net, peers):
            for p in set(peers):
                net.send(0, p, None)
        """}
    )
    assert [(f.rule, f.severity) for f in findings] == [("DET003", "error")]


def test_det005_sorted_iteration_is_clean():
    assert rule_ids(
        {DET: """\
        class Node:
            def gossip(self, peers):
                for p in sorted(set(peers)):
                    self._emit(p)

            def _emit(self, p):
                self.net.send(0, p, None)
        """}
    ) == []


def test_det005_sink_free_helper_is_warning_only():
    findings = run(
        {DET: """\
        class Node:
            def tally(self, votes):
                for v in set(votes):
                    self._count(v)

            def _count(self, v):
                self.total += 1
        """}
    )
    assert [f.rule for f in findings] == ["DET003"]  # plain warning, no DET005


# -- engine integration --------------------------------------------------------


def test_project_rules_skipped_without_project():
    analyzer = Analyzer()  # no project: interprocedural rules must not run
    findings = analyzer.analyze_source(
        "def decide(votes, f):\n    return len(votes) >= 2 * f + 1\n",
        path=CONS,
    )
    assert findings == []


def test_suppression_applies_to_flow_rules():
    findings = run(
        {CONS: """\
        def decide(votes, f):
            return len(votes) >= 2 * f + 1  # repro: allow[QRM001]
        """}
    )
    assert findings == []
