"""Runtime sanitizers: violations are caught when on, nothing is paid when off.

The headline tests run the bench smoke configuration and one chaos smoke
scenario twice — sanitized and not — and require bit-identical results:
the sanitizers must observe, never perturb.
"""

from dataclasses import dataclass

import pytest

from repro.analysis import sanitizers
from repro.errors import SanitizerError
from repro.net.latency import UniformLatencyModel
from repro.net.message import Message
from repro.net.network import Network
from repro.sim import Simulator
from repro.sim.rng import make_rng


@dataclass(slots=True)
class Note(Message):
    """Minimal field-carrying message (repr covers the fields, as for all
    protocol messages, so the freeze guard can digest it)."""

    round: int

    def wire_size(self):
        return 64


def make_net(n=3):
    sim = Simulator()
    net = Network(sim, n, latency=UniformLatencyModel(0.01))
    for i in range(n):
        net.register(i, lambda src, msg: None)
    return sim, net


# -- off by default: zero instrumentation -------------------------------------


def test_everything_off_without_env(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    sim, net = make_net()
    assert sim.tie_audit is None
    assert net.freeze_guard is None
    make_rng(7, "some-stream")
    assert sanitizers.stream_count() == 0


# -- freeze-after-send --------------------------------------------------------


def test_freeze_guard_clean_run(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim, net = make_net()
    net.multicast(0, [1, 2], Note(round=1))
    sim.run()
    assert net.freeze_guard.checks > 0
    assert net.freeze_guard.violations_seen == 0


def test_freeze_guard_catches_mutation_after_send(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim, net = make_net()
    msg = Note(round=1)
    net.send(0, 1, msg)
    msg.round = 2  # the mutation DET/MSG rules exist to prevent
    with pytest.raises(SanitizerError, match="freeze-after-send"):
        sim.run()
    assert net.freeze_guard.violations_seen == 1


def test_freeze_guard_allows_unchanged_resend(monkeypatch):
    # Retransmission of the same object (reliable transport) is legitimate.
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim, net = make_net()
    msg = Note(round=1)
    net.send(0, 1, msg)
    net.send(0, 2, msg)
    sim.run()
    assert net.freeze_guard.violations_seen == 0


# -- RNG stream collisions ----------------------------------------------------


def test_stream_collision_detected(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    Simulator()  # run boundary: clears the registry
    make_rng(7, "latency")
    with pytest.raises(SanitizerError, match="collision"):
        make_rng(7, "latency")


def test_distinct_labels_do_not_collide(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    Simulator()
    make_rng(7, "latency")
    make_rng(7, "faults", 0, 1)
    make_rng(8, "latency")  # different master seed
    assert sanitizers.stream_count() == 3


def test_shared_streams_may_be_rederived(monkeypatch):
    # The leader-schedule beacon is re-derived by every node on purpose.
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    Simulator()
    for _ in range(4):
        make_rng(7, "leader-schedule", 0, shared=True)


def test_shared_exclusive_mix_is_an_error(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    Simulator()
    make_rng(7, "beacon", shared=True)
    with pytest.raises(SanitizerError, match="shared and exclusive"):
        make_rng(7, "beacon")


def test_new_simulator_resets_registry(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    Simulator()
    make_rng(7, "latency")
    Simulator()  # sequential run: same derivations are fine again
    make_rng(7, "latency")


# -- scheduler tie-order audit ------------------------------------------------


def test_tie_audit_records_mixed_ties(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim = Simulator()

    def alpha():
        pass

    def beta():
        pass

    sim.schedule_at(1.0, alpha)
    sim.schedule_at(1.0, beta)
    sim.schedule_at(2.0, alpha)
    audit = sim.tie_audit
    assert audit.tie_events == 1
    assert len(audit.mixed_ties) == 1
    when, names = audit.mixed_ties[0]
    assert when == 1.0
    assert len(names) == 2


def test_tie_audit_order_digest_is_reproducible(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")

    def one_run():
        sim, net = make_net()
        net.multicast(0, [1, 2], Note(round=1))
        net.multicast(1, [0, 2], Note(round=2))
        sim.run()
        return sim.tie_audit.order_digest()

    assert one_run() == one_run()


# -- end-to-end: sanitized runs are bit-identical -----------------------------


def test_bench_smoke_bit_identical_under_sanitize(monkeypatch):
    from repro.bench.profiling import SMOKE_CONFIG
    from repro.bench.runner import run_experiment

    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    plain = run_experiment(SMOKE_CONFIG)

    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitized = run_experiment(SMOKE_CONFIG)
    assert sanitized == plain


def test_chaos_smoke_bit_identical_under_sanitize(monkeypatch):
    from repro.chaos import SMOKE_SCENARIOS, run_scenario

    scenario = SMOKE_SCENARIOS[0]
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    plain = run_scenario(scenario)
    assert plain.ok

    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitized = run_scenario(scenario)
    assert sanitized.ok
    assert sanitized.checks == plain.checks
    assert sanitized.stats == plain.stats
