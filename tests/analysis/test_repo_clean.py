"""The checked-in tree must satisfy its own analyzer (satellite guarantee)."""

import json
import os

from repro.analysis.engine import Analyzer, apply_baseline, load_baseline
from repro.analysis.project import ProjectContext

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))


def test_src_tree_has_no_unbaselined_findings():
    # The project context makes the interprocedural rules (QRM001, RNG001,
    # MSG003, DET005) run here too — the full pack, exactly as CI runs it.
    project = ProjectContext.build(["src/repro"], root=REPO_ROOT)
    analyzer = Analyzer(project=project)
    findings = analyzer.run(["src/repro"], root=REPO_ROOT)
    baseline_path = os.path.join(REPO_ROOT, "analysis_baseline.json")
    baseline = load_baseline(baseline_path) if os.path.exists(baseline_path) else {}
    split = apply_baseline(findings, baseline)
    assert analyzer.parse_errors == []
    assert split.new == (), "\n".join(f.format() for f in split.new)


def test_committed_baseline_is_empty():
    # The whole-program rules shipped with their violations *fixed*, not
    # grandfathered: the committed baseline must stay empty.
    with open(os.path.join(REPO_ROOT, "analysis_baseline.json"), encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["findings"] == []


def test_new_rbc_message_modules_are_in_msg001_scope():
    # The optimistic/prefix RBC modules carry new wire messages
    # (BlockChunkMsg, ChunkRequestMsg, ChunkResponseMsg, manifest-bearing
    # VALs); MSG001 must see them — and find nothing — with no baseline
    # entries grandfathering them in.
    analyzer = Analyzer()
    targets = [
        "src/repro/rbc/optimistic.py",
        "src/repro/rbc/prefix.py",
        "src/repro/consensus/messages.py",
    ]
    findings = analyzer.run(targets, root=REPO_ROOT)
    assert analyzer.files_analyzed == len(targets)
    assert [f for f in findings if f.rule == "MSG001"] == []
    baseline_path = os.path.join(REPO_ROOT, "analysis_baseline.json")
    baseline = load_baseline(baseline_path) if os.path.exists(baseline_path) else {}
    assert not any("rbc/prefix" in path or "rbc/optimistic" in path
                   for _, path, _ in baseline)


def test_gitignore_covers_pycache():
    # scripts/ and benchmarks/ byte-compiled caches must never be committed
    # (or analyzed — the engine prunes them, see SKIP_DIRS).
    with open(os.path.join(REPO_ROOT, ".gitignore"), encoding="utf-8") as fh:
        patterns = [line.strip() for line in fh]
    assert "__pycache__/" in patterns
