"""Online monitor suite: detection units and the bit-identity guarantee."""

from types import SimpleNamespace

import pytest

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.committees.config import ClanConfig
from repro.consensus.deployment import Deployment
from repro.consensus.params import ProtocolParams
from repro.forensics.monitors import MonitorConfig, MonitorSuite
from repro.obs import Tracer
from repro.smr.runtime import SmrRuntime

SMOKE = ExperimentConfig(
    protocol="sailfish", n=7, txns_per_proposal=16, duration=4.0, warmup=1.0
)


def make_deployment(n=4, **kwargs):
    return Deployment(
        ClanConfig.baseline(n),
        params=ProtocolParams(verify_signatures=False),
        **kwargs,
    )


# -- the load-bearing constraint: monitors never perturb the run --------------


def test_monitored_metrics_bit_identical():
    plain = run_experiment(SMOKE)
    monitored = run_experiment(SMOKE, monitors=True)
    # Frozen-dataclass equality covers every field, including sim_events —
    # the monitors may not schedule a single extra simulator event.
    assert monitored == plain


def test_monitored_smr_run_identical_and_clean():
    def run(monitors):
        tracer = Tracer()
        runtime = SmrRuntime(
            ClanConfig.single_clan(10, 5, seed=1), tracer=tracer
        )
        client = runtime.new_client("cli")
        suite = (
            MonitorSuite(tracer=tracer).attach_runtime(runtime)
            if monitors
            else None
        )
        runtime.start()
        for i in range(20):
            runtime.submit(client, ("set", f"k{i}", i))
        runtime.run(until=6.0)
        if suite is not None:
            suite.finish()
        return runtime, client, suite

    plain_rt, plain_client, _ = run(monitors=False)
    mon_rt, mon_client, suite = run(monitors=True)
    assert mon_rt.sim.processed_events == plain_rt.sim.processed_events
    assert mon_client.accepted_count() == plain_client.accepted_count() == 20
    assert suite.anomalies == []


def test_double_attach_rejected():
    deployment = make_deployment()
    suite = MonitorSuite().attach(deployment)
    with pytest.raises(ValueError):
        suite.attach(deployment)


# -- stall watchdog -----------------------------------------------------------


def test_stall_watchdog_flags_laggard():
    deployment = make_deployment()
    suite = MonitorSuite(config=MonitorConfig(stall_factor=2.0)).attach(
        deployment
    )
    threshold = 2.0 * deployment.params.leader_timeout
    node0, node1 = deployment.nodes[0], deployment.nodes[1]
    suite._on_round(node0, 1, 0.0)
    suite._on_round(node1, 1, 0.0)
    # node1 keeps advancing; node0 never enters another round.
    suite._on_round(node1, 2, threshold + 1.0)
    suite._scan_stalls(threshold + 1.0)
    stalls = [a for a in suite.anomalies if a.name == "round.stall"]
    assert [a.node for a in stalls] == [0]
    assert stalls[0].kind == "liveness"
    # Dedup: the same stuck round is not re-flagged.
    suite._scan_stalls(threshold + 2.0)
    assert len([a for a in suite.anomalies if a.name == "round.stall"]) == 1


def test_stall_watchdog_ignores_crashed_nodes():
    deployment = make_deployment()
    suite = MonitorSuite(config=MonitorConfig(stall_factor=2.0)).attach(
        deployment
    )
    threshold = 2.0 * deployment.params.leader_timeout
    suite._on_round(deployment.nodes[0], 1, 0.0)
    suite._crashed.add(0)
    suite._scan_stalls(threshold + 1.0)
    assert [a for a in suite.anomalies if a.name == "round.stall"] == []


# -- commit-prefix safety monitor ---------------------------------------------


def test_prefix_divergence_is_a_safety_anomaly():
    deployment = make_deployment()
    suite = MonitorSuite().attach(deployment)
    v1 = SimpleNamespace(key=(1, 0))
    v2 = SimpleNamespace(key=(1, 2))
    node0, node1 = deployment.nodes[0], deployment.nodes[1]
    suite._on_ordered(node0, v1, 1.0, None)
    suite._on_ordered(node1, v1, 1.1, None)  # agrees
    suite._on_ordered(node0, v2, 1.2, None)
    divergent = SimpleNamespace(key=(1, 3))
    suite._on_ordered(node1, divergent, 1.3, None)
    (anomaly,) = suite.safety_anomalies
    assert anomaly.name == "commit.prefix_divergence"
    assert anomaly.node == 1
    assert anomaly.attrs["position"] == 1
    assert anomaly.attrs["expected"] == [1, 2]
    assert anomaly.attrs["got"] == [1, 3]
    # A diverged node is reported once, not once per subsequent vertex.
    suite._on_ordered(node1, SimpleNamespace(key=(1, 9)), 1.4, None)
    assert len(suite.safety_anomalies) == 1


def test_on_ordered_chains_previous_hook():
    deployment = make_deployment()
    seen = []
    deployment.nodes[0].on_ordered = lambda node, vertex, now: seen.append(
        (node.node_id, vertex.key, now)
    )
    MonitorSuite().attach(deployment)
    vertex = SimpleNamespace(key=(1, 0))
    deployment.nodes[0].on_ordered(deployment.nodes[0], vertex, 2.0)
    assert seen == [(0, (1, 0), 2.0)]


# -- equivocation collector ---------------------------------------------------


def test_equivocating_val_raises_byzantine_anomaly():
    from repro.consensus.messages import VertexValMsg, vertex_val_statement
    from repro.dag.vertex import Vertex

    deployment = make_deployment(n=4)
    suite = MonitorSuite().attach(deployment)
    deployment.start()
    deployment.run(until=2.0)
    observer = deployment.nodes[0]
    # Find a VAL node 0 already accepted whose vertex has reorderable edges.
    origin, state = next(
        (key[0], st)
        for key, st in sorted(observer.rbc.instances.items())
        if key[0] != 0 and st.vertex is not None
        and len(st.vertex.strong_edges) > 1
    )
    vertex = state.vertex
    twin = Vertex(
        round=vertex.round,
        source=vertex.source,
        block_digest=vertex.block_digest,
        strong_edges=tuple(reversed(vertex.strong_edges)),
        weak_edges=vertex.weak_edges,
        nvc=vertex.nvc,
    )
    assert twin.vertex_digest() != vertex.vertex_digest()
    signature = None
    if observer.rbc.mode == "two-round":
        # Sign with the equivocator's own key: valid accountability material.
        signature = deployment.nodes[origin].rbc._key.sign(
            vertex_val_statement(origin, twin.round, twin.vertex_digest())
        )
    observer.rbc._on_val(origin, VertexValMsg(twin, None, signature))
    (anomaly,) = [a for a in suite.anomalies if a.kind == "byzantine"]
    assert anomaly.name == "rbc.equivocation"
    assert anomaly.node == origin
    assert anomaly.attrs["observer"] == 0
    # Same (origin, round) seen again: deduplicated.
    observer.rbc._on_val(origin, VertexValMsg(twin, None, signature))
    assert len([a for a in suite.anomalies if a.kind == "byzantine"]) == 1


# -- clan health monitor ------------------------------------------------------


def make_runtime():
    runtime = SmrRuntime(ClanConfig.single_clan(8, 5, seed=2))
    suite = MonitorSuite().attach_runtime(runtime)
    return runtime, suite


def test_clan_margin_degradation_and_loss():
    runtime, suite = make_runtime()
    clan = sorted(runtime.executors)
    quorum = runtime.cfg.clan_client_quorum(0)  # 3 of 5
    runtime.start()
    # Crash executors one by one through the network (fires the lifecycle
    # hooks the monitor listens on).
    for i, node_id in enumerate(clan[: quorum - 1 + 2]):
        runtime.deployment.sim.schedule(
            1.0 + i, runtime.deployment.network.crash, node_id
        )
    runtime.run(until=6.0)
    margins = [a for a in suite.anomalies if a.name == "clan.quorum_margin"]
    by_margin = {a.attrs["margin"]: a for a in margins}
    assert by_margin[0].kind == "info"  # at exactly f_c+1 live executors
    assert by_margin[-1].kind == "liveness"  # below the reply quorum
    assert all(a.kind != "safety" for a in margins)


def test_execution_divergence_is_safety():
    runtime, suite = make_runtime()
    block_a = SimpleNamespace(payload_digest=lambda: b"\xaa" * 8)
    block_b = SimpleNamespace(payload_digest=lambda: b"\xbb" * 8)
    first, second = sorted(runtime.executors)[:2]
    suite._on_executed(first, block_a, 1.0)
    suite._on_executed(second, block_b, 1.1)
    (anomaly,) = suite.safety_anomalies
    assert anomaly.name == "clan.execution_divergence"
    assert anomaly.node == second
    assert anomaly.attrs["position"] == 0


def test_finish_flags_state_divergence():
    runtime, suite = make_runtime()
    client = runtime.new_client("cli")
    runtime.start()
    for i in range(6):
        runtime.submit(client, ("set", f"k{i}", i))
    runtime.run(until=5.0)
    victim = sorted(runtime.executors)[0]
    runtime.executors[victim].state_digest = lambda: b"\x00" * 8
    suite.finish()
    names = [a.name for a in suite.safety_anomalies]
    assert "clan.state_divergence" in names
    # finish() is idempotent.
    before = len(suite.anomalies)
    suite.finish()
    assert len(suite.anomalies) == before


# -- tracer mirroring ---------------------------------------------------------


def test_anomalies_mirrored_to_tracer():
    tracer = Tracer()
    deployment = make_deployment()
    suite = MonitorSuite(tracer=tracer).attach(deployment)
    suite._on_ordered(deployment.nodes[0], SimpleNamespace(key=(1, 0)), 1.0, None)
    suite._on_ordered(
        deployment.nodes[1], SimpleNamespace(key=(1, 3)), 1.1, None
    )
    rows = [r for r in tracer.to_dicts() if r["type"] == "anomaly"]
    assert len(rows) == 1
    assert rows[0]["name"] == "commit.prefix_divergence"
    assert rows[0]["kind"] == "safety"
    # Non-info anomalies also produce a flight-recorder bundle.
    assert len(suite.recorder.bundles) == 1
    assert suite.recorder.bundles[0]["reason"] == "commit.prefix_divergence"
