"""The forensics report layer and its CLI contract (exit codes included)."""

import json

import pytest

from repro.committees.config import ClanConfig
from repro.forensics.report import (
    build_forensics,
    format_report,
    main,
    waterfall_report,
)
from repro.obs import Tracer
from repro.smr.runtime import SmrRuntime


@pytest.fixture(scope="module")
def smoke_tracer():
    tracer = Tracer()
    runtime = SmrRuntime(ClanConfig.single_clan(10, 5, seed=1), tracer=tracer)
    client = runtime.new_client("cli")
    runtime.start()
    for i in range(20):
        runtime.submit(client, ("set", f"k{i}", i))
    runtime.run(until=6.0)
    assert client.accepted_count() == 20
    return tracer


@pytest.fixture(scope="module")
def trace_path(smoke_tracer, tmp_path_factory):
    path = tmp_path_factory.mktemp("forensics") / "trace.jsonl"
    smoke_tracer.export_jsonl(str(path))
    return str(path)


def test_format_report_sections(trace_path):
    forensics = build_forensics(trace_path)
    report = format_report(forensics)
    assert "Forensics: " in report
    assert "Critical-path attribution" in report
    assert "Slowest commits" in report
    assert "Reconciliation: OK" in report
    assert "Anomalies: none recorded" in report


def test_waterfall_report_by_commit_and_txn(trace_path):
    forensics = build_forensics(trace_path)
    commit = forensics.index.ordered_commits()[0]
    by_digest = waterfall_report(forensics, commit.digest[:10])
    assert by_digest is not None
    assert "per-txn critical path" in by_digest
    assert "residual" in by_digest
    txn_id = next(t for t in commit.txns if t in forensics.index.txns)
    by_txn = waterfall_report(forensics, txn_id)
    assert txn_id in by_txn
    assert waterfall_report(forensics, "zz-nothing") is None


def test_main_text_and_json(trace_path, capsys):
    assert main([trace_path]) == 0
    assert "Reconciliation: OK" in capsys.readouterr().out
    assert main([trace_path, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["reconciliation"]["ok"] is True
    assert payload["reconciliation"]["checked"] == 20
    assert payload["anomalies"] == []
    assert payload["commits"] >= 1
    assert payload["meta"]["dropped"] == 0
    segments = [r["segment"] for r in payload["attribution"]]
    assert segments == [
        "mempool", "dissemination", "ordering", "execution", "reply"
    ]


def test_main_commit_drilldown_and_unknown_id(trace_path, capsys):
    forensics = build_forensics(trace_path)
    commit = forensics.index.ordered_commits()[0]
    assert main([trace_path, "--commit", commit.digest[:10]]) == 0
    assert "critical replica" in capsys.readouterr().out
    assert main([trace_path, "--commit", "zz-nothing"]) == 2


def test_main_section_filters(trace_path, capsys):
    assert main([trace_path, "--anomalies"]) == 0
    out = capsys.readouterr().out
    assert "Anomalies" in out
    assert "Critical-path attribution" not in out
    assert main([trace_path, "--attribution"]) == 0
    out = capsys.readouterr().out
    assert "Critical-path attribution" in out
    assert "Anomalies" not in out


def test_safety_anomaly_fails_the_command(smoke_tracer, tmp_path, capsys):
    rows = [dict(r) for r in smoke_tracer.to_dicts()]
    rows.append(
        {
            "type": "anomaly",
            "name": "commit.prefix_divergence",
            "time": 5.0,
            "kind": "safety",
            "node": 2,
            "attrs": {"position": 1},
        }
    )
    path = tmp_path / "bad.jsonl"
    path.write_text(
        "\n".join(json.dumps(r) for r in rows) + "\n", encoding="utf-8"
    )
    assert main([str(path)]) == 1
    assert "commit.prefix_divergence" in capsys.readouterr().out


def test_reconciliation_failure_fails_the_command(
    smoke_tracer, tmp_path, capsys
):
    rows = []
    for r in smoke_tracer.to_dicts():
        row = dict(r)
        if row.get("name") == "smr.client_latency":
            row = dict(row, value=row["value"] + 0.5)  # break the telescoping
        rows.append(row)
    path = tmp_path / "skewed.jsonl"
    path.write_text(
        "\n".join(json.dumps(r) for r in rows) + "\n", encoding="utf-8"
    )
    assert main([str(path)]) == 1
    assert "Reconciliation: FAILED" in capsys.readouterr().out


def test_dropped_records_warn_in_report(smoke_tracer, tmp_path):
    capped = Tracer(capacity=1000)
    for row in smoke_tracer.records():
        capped._emit(row)
    path = tmp_path / "capped.jsonl"
    capped.export_jsonl(str(path))
    forensics = build_forensics(str(path))
    assert forensics.meta["dropped"] > 0
    assert "WARNING" in format_report(forensics)
