"""Provenance reconstruction and waterfall reconciliation.

The headline invariant (from the issue): on a seeded smoke configuration,
every accepted transaction's five critical-path segments sum to the measured
client latency within float tolerance — the attribution is an exact
decomposition, not an approximation.
"""

import pytest

from repro.committees.config import ClanConfig
from repro.forensics.provenance import (
    CLIENT_SEGMENTS,
    RECONCILE_TOL,
    attribution_rows,
    build_provenance,
    reconcile,
    slowest_replicas,
    txn_waterfall,
)
from repro.obs import Tracer
from repro.smr.runtime import SmrRuntime


@pytest.fixture(scope="module")
def smoke_index():
    tracer = Tracer()
    runtime = SmrRuntime(ClanConfig.single_clan(10, 5, seed=1), tracer=tracer)
    client = runtime.new_client("cli")
    runtime.start()
    for i in range(20):
        runtime.submit(client, ("set", f"k{i}", i))
    runtime.run(until=6.0)
    assert client.accepted_count() == 20
    return build_provenance(tracer.to_dicts()), client


def test_every_waterfall_reconciles_with_client_latency(smoke_index):
    index, client = smoke_index
    checked = 0
    for txn_id, txn in index.txns.items():
        if txn.client_latency is None:
            continue
        waterfall = txn_waterfall(index, txn)
        assert waterfall is not None, f"{txn_id}: incomplete provenance"
        assert set(waterfall["segments"]) == set(CLIENT_SEGMENTS)
        total = sum(waterfall["segments"].values())
        assert total == pytest.approx(txn.client_latency, abs=RECONCILE_TOL)
        assert all(dur >= 0.0 for dur in waterfall["segments"].values())
        checked += 1
    assert checked == 20


def test_reconcile_summary(smoke_index):
    index, _ = smoke_index
    summary = reconcile(index)
    assert summary["ok"]
    assert summary["checked"] == 20
    assert summary["skipped"] == 0
    assert summary["failures"] == []


def test_commits_carry_full_provenance(smoke_index):
    index, _ = smoke_index
    commits = index.ordered_commits()
    assert commits  # the 20 txns batched into at least one block
    total_txns = sum(len(c.txns) for c in commits)
    assert total_txns == 20
    n, clan_size = 10, 5
    for commit in commits:
        assert commit.digest is not None
        assert commit.proposed_at is not None
        # Every (honest) node orders the block; only the clan executes it.
        assert len(commit.ordered) == n
        assert len(commit.executed) == clan_size
        assert min(commit.ordered.values()) >= commit.proposed_at


def test_critical_replica_is_quorum_th_fastest(smoke_index):
    index, _ = smoke_index
    commit = index.ordered_commits()[0]
    quorum = 3  # f_c + 1 for a clan of 5
    node, at = commit.critical_replica(quorum)
    faster = sum(1 for t in commit.executed.values() if t < at)
    assert faster <= quorum - 1
    assert commit.executed[node] == at
    # Fewer executions than the quorum → no critical replica.
    assert commit.critical_replica(len(commit.executed) + 1) is None


def test_find_by_digest_prefix_and_round_proposer(smoke_index):
    index, _ = smoke_index
    commit = index.ordered_commits()[0]
    assert index.find(commit.digest[:8]) is commit
    assert index.find(f"{commit.round}:{commit.proposer}") is commit
    assert index.find(f"r{commit.round}:n{commit.proposer}") is commit
    assert index.find("no-such-commit") is None


def test_attribution_rows_cover_client_segments(smoke_index):
    index, _ = smoke_index
    rows = attribution_rows(index)
    assert [r["segment"] for r in rows] == list(CLIENT_SEGMENTS)
    assert all(r["count"] == 20 for r in rows)
    assert sum(r["share"] for r in rows) == pytest.approx(1.0)
    replicas = slowest_replicas(index)
    assert replicas and all(isinstance(n, int) for n, _ in replicas)
    assert sum(count for _, count in replicas) == len(index.ordered_commits())


def test_consensus_only_trace_still_attributes():
    """Synthetic traces (no clients) fall back to consensus segments."""
    rows = [
        {"type": "counter", "name": "consensus.propose", "node": 3,
         "time": 1.0, "value": 1.0, "attrs": {"round": 5, "has_block": True}},
        {"type": "span", "name": "rbc.e2e", "node": 0, "start": 1.0,
         "end": 1.2, "attrs": {"origin": 3, "round": 5}},
        {"type": "span", "name": "rbc.e2e", "node": 1, "start": 1.0,
         "end": 1.3, "attrs": {"origin": 3, "round": 5}},
        {"type": "counter", "name": "consensus.ordered", "node": 0,
         "time": 1.6, "value": 1.0,
         "attrs": {"round": 5, "source": 3, "digest": "ab" * 16}},
        {"type": "counter", "name": "consensus.ordered", "node": 1,
         "time": 1.7, "value": 1.0,
         "attrs": {"round": 5, "source": 3, "digest": "ab" * 16}},
    ]
    index = build_provenance(rows)
    assert not index.has_clients
    (commit,) = index.ordered_commits()
    segments = commit.segments()
    assert segments["dissemination"] == pytest.approx(0.3)
    assert segments["ordering"] == pytest.approx(0.4)
    rows = attribution_rows(index)
    assert [r["segment"] for r in rows] == ["dissemination", "ordering"]


def test_unordered_vertices_are_pruned():
    rows = [
        {"type": "span", "name": "rbc.e2e", "node": 0, "start": 1.0,
         "end": 1.2, "attrs": {"origin": 3, "round": 5}},
    ]
    index = build_provenance(rows)
    assert index.ordered_commits() == []
