"""Flight recorder: bounded rings, bundle caps, JSON export."""

import json

import pytest

from repro.forensics.recorder import FlightRecorder


def test_ring_evicts_oldest():
    recorder = FlightRecorder(capacity=3)
    for i in range(5):
        recorder.note(0, float(i), "round", round=i)
    bundle = recorder.dump("test", 5.0)
    events = bundle["events"][0]
    assert [e["round"] for e in events] == [2, 3, 4]  # oldest two evicted


def test_dump_selects_nodes_and_carries_context():
    recorder = FlightRecorder()
    recorder.note(0, 1.0, "round", round=7)
    recorder.note(1, 1.5, "crash")
    bundle = recorder.dump("crash", 2.0, nodes=[1], node=1)
    assert bundle["reason"] == "crash"
    assert bundle["context"] == {"node": 1}
    assert list(bundle["events"]) == [1]
    # Without a node filter, every ring is included.
    bundle_all = recorder.dump("sweep", 3.0)
    assert sorted(bundle_all["events"]) == [0, 1]


def test_bundle_cap_suppresses_overflow():
    recorder = FlightRecorder(max_bundles=2)
    assert recorder.dump("a", 1.0) is not None
    assert recorder.dump("b", 2.0) is not None
    assert recorder.dump("c", 3.0) is None
    assert recorder.suppressed == 1
    assert len(recorder.bundles) == 2


def test_export_round_trips_as_json(tmp_path):
    recorder = FlightRecorder()
    recorder.note(0, 1.0, "round", round=3)
    recorder.dump("anomaly", 2.0, kind="safety")
    path = tmp_path / "flight.json"
    assert recorder.export(str(path)) == 1
    payload = json.loads(path.read_text())
    assert payload["suppressed"] == 0
    assert payload["bundles"][0]["reason"] == "anomaly"
    # JSON object keys are strings; the ring events survive intact.
    assert payload["bundles"][0]["events"]["0"][0]["round"] == 3


def test_capacity_validated():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)
