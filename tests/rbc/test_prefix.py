"""Chunked block dissemination: splitting, manifests, prefix reassembly."""

from __future__ import annotations

import pytest

from repro.dag.block import Block
from repro.dag.transaction import Transaction
from repro.errors import DagError
from repro.rbc.prefix import (
    assemble_prefix,
    chunk_counts,
    split_block,
)


def concrete_block(txn_count=10, proposer=3, round_=5):
    txns = [Transaction(f"t{i}", ("set", f"k{i}", i)) for i in range(txn_count)]
    return Block.concrete(proposer, round_, txns, created_at=1.25)


class TestChunking:
    def test_counts_are_even_and_sum(self):
        assert chunk_counts(10, 4) == (3, 3, 2, 2)
        assert chunk_counts(8, 4) == (2, 2, 2, 2)
        assert chunk_counts(3, 4) == (1, 1, 1)  # never more chunks than txns
        assert chunk_counts(0, 4) == (0,)
        assert chunk_counts(5, 1) == (5,)

    @pytest.mark.parametrize("make", [
        lambda: concrete_block(),
        lambda: Block.synthetic(3, 5, 10, created_at=1.25),
    ])
    def test_split_and_manifest_verify(self, make):
        block = make()
        manifest, chunks = split_block(block, 4)
        assert manifest.block_digest == block.payload_digest()
        assert manifest.num_chunks == 4
        assert sum(c.txn_count for c in chunks) == block.txn_count
        for chunk in chunks:
            assert manifest.verify_chunk(chunk)

    def test_concrete_chunk_cannot_claim_another_index(self):
        # (Synthetic chunks are counted bytes, so equal-sized ones are
        # legitimately interchangeable; content binding is concrete-only.)
        manifest, chunks = split_block(concrete_block(), 4)
        impostor = chunks[1]
        assert not manifest.verify_chunk(
            type(impostor)(
                proposer=impostor.proposer, round=impostor.round, index=0,
                txns=impostor.txns, txn_count=impostor.txn_count,
                txn_size=impostor.txn_size,
            )
        )

    def test_full_reassembly_is_digest_identical(self):
        for block in (concrete_block(), Block.synthetic(3, 5, 10, created_at=1.25)):
            manifest, chunks = split_block(block, 4)
            rebuilt = assemble_prefix(
                manifest, {c.index: c for c in chunks}, manifest.num_chunks
            )
            assert rebuilt.payload_digest() == block.payload_digest()
            assert rebuilt.txn_count == block.txn_count

    def test_prefix_reassembly_concrete(self):
        block = concrete_block(txn_count=10)
        manifest, chunks = split_block(block, 4)  # counts (3, 3, 2, 2)
        prefix = assemble_prefix(manifest, {c.index: c for c in chunks}, 2)
        assert prefix.txn_count == 6
        assert prefix.txns == block.txns[:6]
        assert prefix.payload_digest() != block.payload_digest()

    def test_empty_prefix_is_zero_block(self):
        block = Block.synthetic(1, 2, 12, created_at=0.5)
        manifest, _ = split_block(block, 3)
        empty = assemble_prefix(manifest, {}, 0)
        assert empty.txn_count == 0
        assert empty.proposer == 1 and empty.round == 2

    def test_prefix_out_of_range_raises(self):
        block = Block.synthetic(1, 2, 12, created_at=0.5)
        manifest, chunks = split_block(block, 3)
        with pytest.raises(DagError):
            assemble_prefix(manifest, {c.index: c for c in chunks}, 4)

    def test_manifest_digest_binds_chunking(self):
        block = Block.synthetic(1, 2, 12, created_at=0.5)
        m3, _ = split_block(block, 3)
        m4, _ = split_block(block, 4)
        assert m3.manifest_digest() != m4.manifest_digest()

    def test_empty_block_splits(self):
        block = Block.concrete(0, 1, [], created_at=0.0)
        manifest, chunks = split_block(block, 4)
        assert manifest.num_chunks == 1
        assert chunks[0].txn_count == 0
        assert manifest.verify_chunk(chunks[0])
        rebuilt = assemble_prefix(manifest, {0: chunks[0]}, 1)
        assert rebuilt.txn_count == 0
