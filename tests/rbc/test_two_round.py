"""Tests for the two-round RBC variants (Fig. 3 and Abraham et al. baseline)."""


from repro.crypto.hashing import digest as hash_of
from repro.crypto.signatures import Signature
from repro.net.adversary import TargetedDelayAdversary
from repro.rbc.byzantine import send_equivocating_vals, send_withholding_vals
from repro.rbc.messages import EchoMsg, ValMsg
from repro.rbc.tribe_two_round import TribeTwoRoundRbc, echo_statement
from repro.rbc.two_round import TwoRoundRbc

N = 10
CLAN = frozenset({0, 1, 2, 3, 4})


def test_two_round_validity(make_harness):
    h = make_harness(TwoRoundRbc, 7)
    h.modules[0].broadcast(b"hello", 1)
    h.run()
    for i in range(7):
        assert h.delivered_values(i) == [(0, 1, b"hello", True)]


def test_two_round_faster_than_bracha(make_harness):
    """Good case: cert-based delivery beats the 3-hop Bracha path."""
    from repro.rbc.bracha import BrachaRbc

    latency = 0.1
    times = {}
    for proto in (TwoRoundRbc, BrachaRbc):
        h = make_harness(proto, 7, latency=latency)
        h.modules[0].broadcast(b"m", 1)
        h.run()
        times[proto] = h.sim.now
    # Both complete; the 2-round protocol's last event lands earlier or equal.
    assert times[TwoRoundRbc] <= times[BrachaRbc] + 1e-9


def test_tribe_two_round_clan_value_others_digest(make_harness):
    h = make_harness(TribeTwoRoundRbc, N, clan=CLAN)
    h.modules[1].broadcast(b"block", 4)
    h.run()
    for i in range(N):
        d = h.deliveries[i][0]
        if i in CLAN:
            assert d.full and d.payload == b"block"
        else:
            assert not d.full and d.payload is None


def test_unsigned_val_rejected(make_harness):
    h = make_harness(TribeTwoRoundRbc, N, clan=CLAN)
    h.net.send(0, 1, ValMsg(0, 1, hash_of(b"x"), b"x", None))
    h.run()
    assert h.deliveries[1] == []


def test_badly_signed_val_rejected(make_harness):
    h = make_harness(TribeTwoRoundRbc, N, clan=CLAN)
    fake_sig = Signature(0, hash_of(b"nonsense"), b"\x00" * 16)
    h.net.send(0, 1, ValMsg(0, 1, hash_of(b"x"), b"x", fake_sig))
    h.run()
    assert h.deliveries[1] == []


def test_echo_with_wrong_signer_rejected(make_harness):
    h = make_harness(TribeTwoRoundRbc, N, clan=CLAN)
    d = hash_of(b"v")
    sig = h.pki.key(2).sign(echo_statement(0, 1, d))
    # Node 3 replays node 2's echo signature as its own.
    h.net.send(3, 1, EchoMsg(0, 1, d, sig))
    h.run()
    state = h.modules[1].instances.get((0, 1))
    assert state is None or 3 not in state.echoes.get(d, set())


def test_forged_certificate_rejected(make_harness):
    """A certificate without f_c+1 clan signers must not deliver."""
    from repro.crypto.certificates import build_certificate
    from repro.rbc.messages import CertMsg

    h = make_harness(TribeTwoRoundRbc, N, clan=CLAN)
    d = hash_of(b"v")
    stmt = echo_statement(9, 1, d)
    # 7 signatures but only 2 clan members (0, 1) — below clan quorum 3.
    signers = [0, 1, 5, 6, 7, 8, 9]
    cert = build_certificate([h.pki.key(i).sign(stmt) for i in signers])
    h.net.send(9, 2, CertMsg(9, 1, d, cert, N))
    h.run()
    assert h.deliveries[2] == []


def test_valid_certificate_delivers_immediately(make_harness):
    from repro.crypto.certificates import build_certificate
    from repro.rbc.messages import CertMsg

    h = make_harness(TribeTwoRoundRbc, N, clan=CLAN)
    d = hash_of(b"v")
    stmt = echo_statement(9, 1, d)
    signers = [0, 1, 2, 5, 6, 7, 8]  # 7 total, 3 clan members
    cert = build_certificate([h.pki.key(i).sign(stmt) for i in signers])
    # Node 6 is outside the clan: it delivers the digest directly.  (Clan
    # members will pull forever since no one truly holds the payload of this
    # crafted cert, so bound the run.)
    h.net.send(9, 6, CertMsg(9, 1, d, cert, N))
    h.run(until=30.0)
    assert h.deliveries[6]
    assert h.deliveries[6][0].digest == d
    assert not h.deliveries[6][0].full


def test_withholding_sender_pull_via_cert_signers(make_harness):
    h = make_harness(TribeTwoRoundRbc, N, clan=CLAN)
    send_withholding_vals(
        h.net, 9, 1, b"secret", h.membership, receive_full=[0, 1, 2], pki=h.pki
    )
    h.run()
    for i in CLAN:
        assert h.deliveries[i] and h.deliveries[i][0].payload == b"secret"


def test_equivocation_agreement_holds(make_harness):
    h = make_harness(TribeTwoRoundRbc, N, clan=CLAN)
    assignments = {i: (b"A" if i < 5 else b"B") for i in range(9)}
    send_equivocating_vals(h.net, 9, 1, assignments, h.membership, pki=h.pki)
    h.run()
    digests = {d.digest for i in range(N) for d in h.deliveries[i]}
    assert len(digests) <= 1


def test_cert_forwarding_reaches_delayed_party(make_harness):
    """A party that misses all ECHOs gets the forwarded certificate."""
    adversary = TargetedDelayAdversary({8}, extra=10.0, until=0.2)
    h = make_harness(TribeTwoRoundRbc, N, clan=CLAN, adversary=adversary)
    h.modules[0].broadcast(b"m", 1)
    h.run()
    assert h.deliveries[8]


def test_all_to_all_broadcast_storm(make_harness):
    """Every party broadcasts in the same round; all n^2 instances deliver."""
    h = make_harness(TribeTwoRoundRbc, N, clan=CLAN)
    for s in range(N):
        h.modules[s].broadcast(f"b{s}".encode(), 1)
    h.run()
    for i in range(N):
        assert len(h.deliveries[i]) == N
        for d in h.deliveries[i]:
            if i in CLAN:
                assert d.payload == f"b{d.origin}".encode()
