"""Unit tests for the pull-based payload retrieval (Retriever/Responder)."""

import pytest

from repro.crypto.hashing import digest
from repro.errors import BroadcastError
from repro.net.latency import UniformLatencyModel
from repro.net.network import Network
from repro.rbc.base import payload_digest
from repro.rbc.messages import PayloadRequest, PayloadResponse
from repro.rbc.retrieval import Responder, Retriever
from repro.sim import Simulator

PAYLOAD = b"the-block"


def build(n=4, holders_have=True, channel="payload"):
    sim = Simulator()
    net = Network(sim, n, latency=UniformLatencyModel(0.01))
    got = []
    retriever = Retriever(0, net, sim, lambda o, r, p: got.append((o, r, p)),
                          retry_timeout=0.2, channel=channel)
    store = {(9, 1): PAYLOAD} if holders_have else {}
    responders = []
    for i in range(1, n):
        responder = Responder(i, net, lambda o, r, s=store: s.get((o, r)),
                              channel=channel)
        responders.append(responder)

        def handler(src, msg, responder=responder, retriever=retriever):
            if isinstance(msg, PayloadRequest):
                responder.on_request(src, msg)
            else:
                retriever.on_response(src, msg)

        net.register(i, handler)
    net.register(0, lambda src, msg: retriever.on_response(src, msg))
    return sim, net, retriever, got, responders


def test_fetch_retrieves_payload():
    sim, net, retriever, got, _ = build()
    retriever.fetch(9, 1, payload_digest(PAYLOAD), holders=[1])
    sim.run(until=5.0)
    assert got == [(9, 1, PAYLOAD)]
    assert retriever.pending == set()


def test_fetch_rotates_to_next_holder_on_timeout():
    sim, net, retriever, got, _ = build()
    net.crash(1)  # first holder dead
    retriever.fetch(9, 1, payload_digest(PAYLOAD), holders=[1, 2])
    sim.run(until=5.0)
    assert got == [(9, 1, PAYLOAD)]


def test_fetch_requires_holders():
    sim, net, retriever, got, _ = build()
    with pytest.raises(BroadcastError):
        retriever.fetch(9, 1, payload_digest(PAYLOAD), holders=[])


def test_fetch_idempotent_merges_holders():
    sim, net, retriever, got, _ = build()
    retriever.fetch(9, 1, payload_digest(PAYLOAD), holders=[1])
    retriever.fetch(9, 1, payload_digest(PAYLOAD), holders=[2])
    assert retriever.pending == {(9, 1)}
    sim.run(until=5.0)
    assert len(got) == 1


def test_corrupted_response_rejected_and_retried():
    sim, net, retriever, got, _ = build()
    retriever.fetch(9, 1, payload_digest(PAYLOAD), holders=[2])
    # An adversary injects a wrong payload for the pending fetch.
    net.send(3, 0, PayloadResponse(9, 1, payload_digest(PAYLOAD), b"evil"))
    sim.run(until=5.0)
    assert got == [(9, 1, PAYLOAD)]


def test_unsolicited_response_ignored():
    sim, net, retriever, got, _ = build()
    net.send(2, 0, PayloadResponse(9, 7, digest(b"x"), b"x"))
    sim.run(until=1.0)
    assert got == []


def test_responder_rate_limits_per_requester():
    sim, net, retriever, got, responders = build()
    responder = responders[0]  # node 1
    req = PayloadRequest(9, 1, payload_digest(PAYLOAD))
    sent_before = net.stats.messages_sent[1]
    for _ in range(5):
        responder.on_request(3, req)
    assert net.stats.messages_sent[1] == sent_before + 1


def test_responder_silent_when_payload_unknown():
    sim, net, retriever, got, responders = build(holders_have=False)
    responders[0].on_request(3, PayloadRequest(9, 1, digest(b"?")))
    assert net.stats.messages_sent[1] == 0


def test_channel_isolation():
    """Responses on another channel never satisfy a fetch."""
    # Holders have nothing, so only the injected response could complete it.
    sim, net, retriever, got, _ = build(channel="block", holders_have=False)
    retriever.fetch(9, 1, payload_digest(PAYLOAD), holders=[1])
    net.send(2, 0, PayloadResponse(9, 1, payload_digest(PAYLOAD), PAYLOAD, "vertex"))
    sim.run(until=2.0)
    assert got == []
    # The same response on the right channel completes it immediately.
    net.send(2, 0, PayloadResponse(9, 1, payload_digest(PAYLOAD), PAYLOAD, "block"))
    sim.run(until=3.0)
    assert got == [(9, 1, PAYLOAD)]


def test_backoff_growth_bounded():
    sim, net, retriever, got, _ = build(holders_have=False)
    retriever.fetch(9, 1, payload_digest(PAYLOAD), holders=[1])
    sim.run(until=300.0)
    # Capped exponential backoff: far fewer requests than 300s/0.2s.
    requests = net.stats.messages_sent[0]
    assert requests < 40
    assert retriever.pending == {(9, 1)}  # still trying (eventual delivery)


def test_gc_below_drops_stale_fetches_and_timers():
    sim, net, retriever, got, _ = build(holders_have=False)
    retriever.fetch(9, 1, payload_digest(b"a"), holders=[1])
    retriever.fetch(9, 2, payload_digest(b"b"), holders=[1])
    retriever.fetch(9, 7, payload_digest(b"c"), holders=[1])
    sim.run(until=1.0)
    events_mid = sim.processed_events
    assert retriever.gc_below(3) == 2
    assert retriever.pending == {(9, 7)}
    # The collected fetches' retry timers are cancelled: only (9, 7) keeps
    # generating traffic afterwards.
    sim.run(until=2.0)
    assert retriever.gc_below(3) == 0  # idempotent
    assert sim.processed_events > events_mid


def test_retriever_suspend_and_resume():
    sim, net, retriever, got, _ = build()
    net.crash(1)
    retriever.fetch(9, 1, payload_digest(PAYLOAD), holders=[1, 2])
    retriever.suspend()
    sim.run(until=5.0)
    assert got == []  # no retries while suspended
    retriever.resume()
    sim.run(until=10.0)
    assert got == [(9, 1, PAYLOAD)]


def test_responder_gc_below_drops_rate_limit_records():
    sim, net, retriever, got, responders = build()
    responder = responders[0]
    responder._served[((9, 1), 0)] = 1
    responder._served[((9, 8), 2)] = 1
    assert responder.gc_below(5) == 1
    assert ((9, 8), 2) in responder._served
    # A request for a collected instance is served afresh (the instance's
    # round was committed, so amplification is no longer a concern there).
    assert ((9, 1), 0) not in responder._served
