"""Tests for classic Bracha RBC (the baseline primitive)."""


from repro.rbc.bracha import BrachaRbc
from repro.rbc.messages import EchoMsg, ReadyMsg, ValMsg


N = 7  # f = 2, quorum = 5


def test_validity_all_deliver(make_harness):
    h = make_harness(BrachaRbc, N)
    h.modules[0].broadcast(b"hello", 1)
    h.run()
    for i in range(N):
        assert h.delivered_values(i) == [(0, 1, b"hello", True)]


def test_integrity_single_delivery_per_instance(make_harness):
    h = make_harness(BrachaRbc, N)
    h.modules[0].broadcast(b"hello", 1)
    h.modules[0].broadcast(b"world", 2)
    h.run()
    for i in range(N):
        rounds = [d.round for d in h.deliveries[i]]
        assert sorted(rounds) == [1, 2]


def test_concurrent_senders_all_deliver(make_harness):
    h = make_harness(BrachaRbc, N)
    for s in range(N):
        h.modules[s].broadcast(f"m{s}".encode(), 1)
    h.run()
    for i in range(N):
        origins = sorted(d.origin for d in h.deliveries[i])
        assert origins == list(range(N))
        for d in h.deliveries[i]:
            assert d.payload == f"m{d.origin}".encode()


def test_no_delivery_without_quorum_of_honest(make_harness):
    # Crash all but 4 of 7 nodes (less than quorum 5): no one can deliver.
    h = make_harness(BrachaRbc, N)
    for i in range(4, N):
        h.net.crash(i)
    h.modules[0].broadcast(b"x", 1)
    h.run()
    for i in range(4):
        assert h.deliveries[i] == []


def test_delivery_with_f_crashes(make_harness):
    h = make_harness(BrachaRbc, N)
    h.net.crash(5)
    h.net.crash(6)
    h.modules[0].broadcast(b"x", 1)
    h.run()
    for i in range(5):
        assert h.delivered_values(i) == [(0, 1, b"x", True)]


def test_equivocation_no_conflicting_deliveries(make_harness):
    """A Byzantine sender splits the tribe; agreement must still hold."""
    from repro.rbc.byzantine import send_equivocating_vals

    h = make_harness(BrachaRbc, N)
    assignments = {i: (b"A" if i < 4 else b"B") for i in range(1, N)}
    send_equivocating_vals(h.net, 0, 1, assignments, h.membership)
    h.run()
    delivered = {bytes(d.payload) for i in range(N) for d in h.deliveries[i]}
    assert len(delivered) <= 1
    if delivered:
        # 4-of-6 echo A: only A can gather a quorum of 5 (4 echoes + none).
        # Whether delivery happens depends on thresholds; conflicting values
        # never co-exist.
        assert delivered == {b"A"} or delivered == {b"B"}


def test_ready_amplification_completes_stragglers(make_harness):
    """A node that missed all ECHOs still delivers via f+1 READY amplification."""
    h = make_harness(BrachaRbc, N)
    h.modules[0].broadcast(b"x", 1)
    h.run()
    assert all(h.deliveries[i] for i in range(N))
    # Every honest node must have sent READY at most once, for one digest.
    for module in h.modules:
        state = module.instances[(0, 1)]
        assert state.ready_digest is not None


def test_spoofed_val_ignored(make_harness):
    """VAL claiming origin 0 but transmitted by 3 is dropped (auth channels)."""
    h = make_harness(BrachaRbc, N)
    from repro.crypto.hashing import digest as hash_of

    msg = ValMsg(origin=0, round=1, digest=hash_of(b"evil"), payload=b"evil")
    h.net.send(3, 2, msg)
    h.run()
    assert h.deliveries[2] == []
    state = h.modules[2].instances.get((0, 1))
    assert state is None or state.val_digest is None


def test_duplicate_echo_not_double_counted(make_harness):
    h = make_harness(BrachaRbc, N)
    from repro.crypto.hashing import digest as hash_of

    d = hash_of(b"v")
    # Node 1 sends the same ECHO to node 2 five times; still one supporter.
    for _ in range(5):
        h.net.send(1, 2, EchoMsg(0, 1, d))
    h.run()
    state = h.modules[2].instances[(0, 1)]
    assert state.echoes[d] == {1}
    assert state.ready_digest is None


def test_duplicate_ready_not_double_counted(make_harness):
    h = make_harness(BrachaRbc, N)
    from repro.crypto.hashing import digest as hash_of

    d = hash_of(b"v")
    for _ in range(10):
        h.net.send(1, 2, ReadyMsg(0, 1, d))
    h.run()
    state = h.modules[2].instances[(0, 1)]
    assert state.readies[d] == {1}
    assert not state.delivered


def test_malformed_val_payload_digest_mismatch(make_harness):
    h = make_harness(BrachaRbc, N)
    from repro.crypto.hashing import digest as hash_of

    msg = ValMsg(origin=0, round=1, digest=hash_of(b"other"), payload=b"evil")
    h.net.send(0, 2, msg)
    h.run()
    state = h.modules[2].instances.get((0, 1))
    assert state is None or not state.payloads


def test_good_case_latency_three_hops(make_harness):
    """Honest sender: delivery takes VAL + ECHO + READY = 3 one-way delays."""
    h = make_harness(BrachaRbc, N, latency=0.1)
    h.modules[0].broadcast(b"x", 1)
    h.run()
    for i in range(N):
        assert h.deliveries[i], f"node {i} never delivered"
    assert h.sim.now >= 0.3
    # The earliest delivery anywhere is exactly 3 * latency (sender's own
    # VAL->ECHO->READY chain runs over loopback + network hops).
    first = min(d.round for i in range(N) for d in h.deliveries[i])
    assert first == 1
