"""Shared fixtures for the RBC tests: a tribe with modules on a network."""

from __future__ import annotations

import pytest

from repro.crypto.signatures import Pki
from repro.net.latency import UniformLatencyModel
from repro.net.network import Network
from repro.rbc.base import Membership
from repro.rbc.bracha import BrachaRbc
from repro.rbc.optimistic import OptimisticRbc
from repro.rbc.tribe_bracha import TribeBrachaRbc
from repro.rbc.tribe_two_round import TribeTwoRoundRbc
from repro.rbc.two_round import TwoRoundRbc
from repro.sim import Simulator


class Harness:
    """A tribe of RBC modules over one simulated network."""

    def __init__(self, protocol, n, clan=None, latency=0.05, adversary=None, **kwargs):
        self.sim = Simulator()
        self.net = Network(
            self.sim, n, latency=UniformLatencyModel(latency), adversary=adversary
        )
        self.n = n
        clan = frozenset(clan) if clan is not None else frozenset(range(n))
        self.membership = Membership(n, clan)
        self.pki = Pki(n, seed=7)
        self.deliveries = {i: [] for i in range(n)}
        self.modules = []
        for i in range(n):
            def on_deliver(d, i=i):
                self.deliveries[i].append(d)
            if protocol in (BrachaRbc, TwoRoundRbc):
                if protocol is BrachaRbc:
                    module = BrachaRbc(i, n, self.net, self.sim, on_deliver)
                else:
                    module = TwoRoundRbc(i, n, self.net, self.sim, self.pki, on_deliver)
            elif protocol is OptimisticRbc:
                module = OptimisticRbc(
                    i, self.membership, self.net, self.sim, on_deliver, **kwargs
                )
            elif protocol is TribeBrachaRbc:
                module = TribeBrachaRbc(
                    i, self.membership, self.net, self.sim, on_deliver, **kwargs
                )
            elif protocol is TribeTwoRoundRbc:
                module = TribeTwoRoundRbc(
                    i, self.membership, self.net, self.sim, self.pki, on_deliver, **kwargs
                )
            else:
                raise AssertionError(protocol)
            self.modules.append(module)

    def run(self, until=None):
        self.sim.run(until=until, max_events=2_000_000)

    def delivered_values(self, node):
        return [(d.origin, d.round, d.payload, d.full) for d in self.deliveries[node]]


@pytest.fixture
def make_harness():
    return Harness
