"""Tests for the Fig. 2 tribe-assisted RBC (signature-free, 3 rounds)."""


from repro.net.adversary import TargetedDelayAdversary
from repro.rbc.byzantine import send_equivocating_vals, send_withholding_vals
from repro.rbc.tribe_bracha import TribeBrachaRbc

N = 10  # f = 3, quorum = 7
CLAN = frozenset({0, 1, 2, 3, 4})  # n_c = 5, f_c = 2, clan_quorum = 3


def test_validity_clan_gets_value_others_get_digest(make_harness):
    h = make_harness(TribeBrachaRbc, N, clan=CLAN)
    h.modules[0].broadcast(b"payload", 1)
    h.run()
    for i in range(N):
        assert len(h.deliveries[i]) == 1
        d = h.deliveries[i][0]
        assert (d.origin, d.round) == (0, 1)
        if i in CLAN:
            assert d.full and d.payload == b"payload"
        else:
            assert not d.full and d.payload is None
        from repro.rbc.base import payload_digest

        assert d.digest == payload_digest(b"payload")


def test_sender_outside_clan_can_broadcast(make_harness):
    # The primitive itself allows any designated sender; clan restriction on
    # proposers is a consensus-layer rule.
    h = make_harness(TribeBrachaRbc, N, clan=CLAN)
    h.modules[7].broadcast(b"from-outside", 2)
    h.run()
    for i in CLAN:
        assert h.deliveries[i][0].payload == b"from-outside"


def test_integrity_one_delivery_per_origin_round(make_harness):
    h = make_harness(TribeBrachaRbc, N, clan=CLAN)
    h.modules[1].broadcast(b"a", 1)
    h.run()
    for i in range(N):
        assert len(h.deliveries[i]) == 1


def test_echo_quorum_requires_clan_members(make_harness):
    """Without f_c+1 clan ECHOs no READY can form.

    Crash 3 of 5 clan members: only 2 clan ECHOs remain (< clan quorum 3),
    so no honest party delivers even though 7 tribe ECHOs are impossible
    anyway; crash only clan members to isolate the clan condition.
    """
    h = make_harness(TribeBrachaRbc, N, clan=CLAN)
    for i in (2, 3, 4):
        h.net.crash(i)
    h.modules[0].broadcast(b"x", 1)
    h.run()
    for i in range(N):
        if not h.net.is_crashed(i):
            assert h.deliveries[i] == []


def test_delivery_with_non_clan_crashes(make_harness):
    """Crashing f non-clan members leaves 7 parties: exactly quorum."""
    h = make_harness(TribeBrachaRbc, N, clan=CLAN)
    for i in (7, 8, 9):
        h.net.crash(i)
    h.modules[0].broadcast(b"x", 1)
    h.run()
    for i in range(7):
        assert len(h.deliveries[i]) == 1


def test_withholding_sender_triggers_pull(make_harness):
    """Sender gives the value to only 3 clan members; the other 2 pull it."""
    h = make_harness(TribeBrachaRbc, N, clan=CLAN)
    send_withholding_vals(
        h.net, 9, 1, b"secret", h.membership, receive_full=[0, 1, 2]
    )
    h.run()
    for i in CLAN:
        assert len(h.deliveries[i]) == 1
        assert h.deliveries[i][0].payload == b"secret", f"clan member {i}"
    for i in range(N):
        if i not in CLAN:
            assert len(h.deliveries[i]) == 1
            assert h.deliveries[i][0].payload is None


def test_pull_disabled_early_fetch_still_delivers(make_harness):
    h = make_harness(TribeBrachaRbc, N, clan=CLAN, early_fetch=False)
    send_withholding_vals(h.net, 9, 1, b"secret", h.membership, receive_full=[0, 1, 2])
    h.run()
    for i in CLAN:
        assert h.deliveries[i] and h.deliveries[i][0].payload == b"secret"


def test_equivocation_never_splits_clan(make_harness):
    """Byzantine sender equivocates; no two honest parties deliver different values."""
    h = make_harness(TribeBrachaRbc, N, clan=CLAN)
    assignments = {}
    for i in range(N):
        if i == 9:
            continue  # the Byzantine sender itself
        assignments[i] = b"A" if i % 2 == 0 else b"B"
    send_equivocating_vals(h.net, 9, 1, assignments, h.membership)
    h.run()
    digests = {d.digest for i in range(N) for d in h.deliveries[i]}
    assert len(digests) <= 1
    payloads = {d.payload for i in range(N) for d in h.deliveries[i] if d.full}
    assert len(payloads) <= 1


def test_agreement_under_adversarial_delay(make_harness):
    """A clan member cut off during dissemination still delivers eventually."""
    adversary = TargetedDelayAdversary({4}, extra=30.0, until=5.0)
    h = make_harness(TribeBrachaRbc, N, clan=CLAN, adversary=adversary)
    h.modules[0].broadcast(b"x", 1)
    h.run()
    assert h.deliveries[4]
    assert h.deliveries[4][0].payload == b"x"


def test_slow_clan_member_downloads_value(make_harness):
    """VALs to one clan member are hugely delayed; READY quorum forms without
    it and the retrieval path supplies the payload."""
    adversary = TargetedDelayAdversary({3}, extra=100.0, until=0.001)
    h = make_harness(TribeBrachaRbc, N, clan=CLAN, adversary=adversary)
    h.modules[0].broadcast(b"v", 1)
    # Run well past the protocol completion but before the delayed VAL (t=100).
    h.run(until=50.0)
    assert h.deliveries[3]
    assert h.deliveries[3][0].payload == b"v"


def test_conflicting_val_recorded_not_followed(make_harness):
    h = make_harness(TribeBrachaRbc, N, clan=CLAN)
    from repro.crypto.hashing import digest as hash_of
    from repro.rbc.messages import ValMsg

    h.net.send(5, 1, ValMsg(5, 1, hash_of(b"first"), None))
    h.net.send(5, 1, ValMsg(5, 1, hash_of(b"second"), None))
    h.run()
    state = h.modules[1].instances[(5, 1)]
    assert state.val_digest == hash_of(b"first")
    assert hash_of(b"second") in state.conflicting


def test_communication_cost_scales_with_clan(make_harness):
    """Sender bytes: ℓ to clan members, κ-sized to the rest (§3 complexity)."""
    big = bytes(100_000)
    h_clan = make_harness(TribeBrachaRbc, N, clan=CLAN)
    h_clan.modules[0].broadcast(big, 1)
    h_clan.run()
    clan_sender_bytes = h_clan.net.stats.bytes_sent[0]

    h_full = make_harness(TribeBrachaRbc, N, clan=frozenset(range(N)))
    h_full.modules[0].broadcast(big, 1)
    h_full.run()
    full_sender_bytes = h_full.net.stats.bytes_sent[0]

    # 5 full copies (incl. self) vs 10 full copies, plus small control traffic.
    assert clan_sender_bytes < 0.6 * full_sender_bytes


def test_deliveries_recorded_on_module(make_harness):
    h = make_harness(TribeBrachaRbc, N, clan=CLAN)
    h.modules[2].broadcast(b"z", 3)
    h.run()
    assert h.modules[0].delivered(2, 3)
    assert not h.modules[0].delivered(2, 4)
