"""Message/byte accounting for the RBC family (the §3/§4 complexity tables).

Counts actual protocol messages in the good case and checks them against the
closed-form expectations:

* Bracha-style (3 rounds): n VALs + n² ECHOes + n² READYs
* Two-round: n VALs + n² ECHOes + n·(cert broadcasts) = n VALs + 2n²
"""

import pytest

from repro.crypto.signatures import Pki
from repro.net.latency import UniformLatencyModel
from repro.net.network import Network
from repro.rbc.base import Membership
from repro.rbc.messages import CertMsg, EchoMsg, ReadyMsg, ValMsg
from repro.rbc.tribe_bracha import TribeBrachaRbc
from repro.rbc.tribe_two_round import TribeTwoRoundRbc
from repro.sim import Simulator

N = 10
CLAN = frozenset(range(5))


def run_protocol(protocol):
    sim = Simulator()
    net = Network(sim, N, latency=UniformLatencyModel(0.02), track_kinds=True)
    membership = Membership(N, CLAN)
    pki = Pki(N, seed=1)
    modules = []
    for i in range(N):
        if protocol is TribeBrachaRbc:
            modules.append(TribeBrachaRbc(i, membership, net, sim, lambda d: None))
        else:
            modules.append(
                TribeTwoRoundRbc(i, membership, net, sim, pki, lambda d: None)
            )
    modules[0].broadcast(b"x" * 1000, 1)
    sim.run(max_events=500_000)
    return net.stats


def test_bracha_message_counts():
    stats = run_protocol(TribeBrachaRbc)
    counts = stats.messages_by_kind
    assert counts["ValMsg"] == N  # one VAL per recipient (incl. self-clan)
    assert counts["EchoMsg"] == N * N  # every party broadcasts one ECHO
    assert counts["ReadyMsg"] == N * N  # every party broadcasts one READY
    assert "CertMsg" not in counts


def test_two_round_message_counts():
    stats = run_protocol(TribeTwoRoundRbc)
    counts = stats.messages_by_kind
    assert counts["ValMsg"] == N
    assert counts["EchoMsg"] == N * N
    # Every party forms/forwards the certificate exactly once.
    assert counts["CertMsg"] == N * N
    assert "ReadyMsg" not in counts


def test_two_round_bytes_include_signatures():
    bracha = run_protocol(TribeBrachaRbc).bytes_by_kind
    signed = run_protocol(TribeTwoRoundRbc).bytes_by_kind
    # Signed ECHOes are exactly one signature larger per message.
    per_echo_plain = bracha["EchoMsg"] / (N * N)
    per_echo_signed = signed["EchoMsg"] / (N * N)
    assert per_echo_signed - per_echo_plain == pytest.approx(64)


def test_payload_bytes_confined_to_clan():
    stats = run_protocol(TribeBrachaRbc)
    val_bytes = stats.bytes_by_kind["ValMsg"]
    # 5 full copies (1000 B payload + digest + header) + 5 digest-only VALs.
    full = 5 * (40 + 32 + 1000)
    digest_only = 5 * (40 + 32)
    assert val_bytes == full + digest_only
