"""Optimistic fast-path RBC: 2δ good case, pessimistic fallback triggers."""

from __future__ import annotations

import pytest

from repro.rbc.byzantine import send_equivocating_vals, silence
from repro.rbc.optimistic import OptimisticRbc
from repro.rbc.tribe_bracha import TribeBrachaRbc

DELTA = 0.05


class TestFastPath:
    def test_good_case_delivers_everywhere(self, make_harness):
        h = make_harness(OptimisticRbc, n=7, latency=DELTA)
        h.modules[0].broadcast(b"hello", 1)
        h.run()
        for node in range(7):
            assert h.delivered_values(node) == [(0, 1, b"hello", True)]
        for module in h.modules:
            assert module.fast_deliveries == 1
            assert module.fallback_deliveries == 0
            assert module.fallbacks == {}

    def test_good_case_is_two_rounds(self, make_harness):
        # Fast path: VAL (δ) + ECHO (δ) = 2δ; Bracha pays the READY hop too.
        times = {}
        for protocol in (OptimisticRbc, TribeBrachaRbc):
            h = make_harness(protocol, n=7, latency=DELTA)
            at = {}

            def record(d, at=at, h=h):
                at.setdefault("t", h.sim.now)

            h.modules[1].on_deliver = record
            h.modules[0].broadcast(b"payload", 1)
            h.run()
            times[protocol] = at["t"]
        assert times[OptimisticRbc] == pytest.approx(2 * DELTA)
        assert times[TribeBrachaRbc] == pytest.approx(3 * DELTA)

    def test_tribe_outside_clan_delivers_digest_only(self, make_harness):
        h = make_harness(OptimisticRbc, n=7, clan=range(4), latency=DELTA)
        h.modules[0].broadcast(b"clan-payload", 3)
        h.run()
        assert h.delivered_values(2) == [(0, 3, b"clan-payload", True)]
        origin, round_, payload, full = h.delivered_values(6)[0]
        assert (origin, round_, payload, full) == (0, 3, None, False)
        assert all(m.fast_deliveries == 1 for m in h.modules)


class TestFallback:
    def test_silent_party_forces_timeout_fallback(self, make_harness):
        h = make_harness(OptimisticRbc, n=7, latency=DELTA, fallback_timeout=0.4)
        silence(h.modules[6])
        h.modules[0].broadcast(b"slow", 1)
        h.run()
        for node in range(6):
            assert h.delivered_values(node) == [(0, 1, b"slow", True)]
            module = h.modules[node]
            assert module.fast_deliveries == 0
            assert module.fallback_deliveries == 1
            assert module.is_pessimistic(0, 1)
        triggers = {reason for m in h.modules[:6] for reason in m.fallbacks}
        assert "timeout" in triggers
        # Fallback happens at the timer, not before.
        assert h.sim.now > 0.4

    def test_ready_join_propagates_fallback(self, make_harness):
        # Party 0 times out early; its READY converts everyone else without
        # waiting for their (much longer) local timers.
        h = make_harness(OptimisticRbc, n=4, latency=DELTA, fallback_timeout=10.0)
        h.modules[0].fallback_timeout = 0.3
        silence(h.modules[3])
        delivered_at = {}
        for node in range(3):
            inner = h.modules[node].on_deliver

            def on_deliver(d, node=node, inner=inner):
                delivered_at[node] = h.sim.now
                inner(d)

            h.modules[node].on_deliver = on_deliver
        h.modules[1].broadcast(b"join", 2)
        h.run(until=5.0)
        for node in range(3):
            assert h.delivered_values(node) == [(1, 2, b"join", True)]
            assert delivered_at[node] < 1.0  # far below the 10 s timers
        assert h.modules[0].fallbacks == {"timeout": 1}
        assert h.modules[1].fallbacks == {"ready": 1}
        assert h.modules[2].fallbacks == {"ready": 1}

    def test_equivocation_falls_back_and_never_delivers(self, make_harness):
        h = make_harness(OptimisticRbc, n=7, latency=DELTA, fallback_timeout=0.4)
        assignments = {
            p: (b"value-a" if p % 2 == 0 else b"value-b") for p in range(7)
        }
        send_equivocating_vals(h.net, 0, 1, assignments, h.membership)
        h.run(until=10.0)
        # 4-vs-3 echo split: neither digest reaches the 2f+1 quorum.
        for node in range(1, 7):
            assert h.delivered_values(node) == []
            assert "conflict" in h.modules[node].fallbacks
        assert all(m.fast_deliveries == 0 for m in h.modules)

    def test_lone_faller_completes_via_delivered_nodes_readies(self, make_harness):
        # Totality across the fast/pessimistic split: every other node
        # fast-delivers on all-n echoes, but one node misses an ECHO, times
        # out, and falls back.  The fast deliverers skipped the READY phase —
        # they must answer the faller's READY with their own, or it waits for
        # a 2f+1 READY quorum that can never form.
        from repro.rbc.messages import EchoMsg

        h = make_harness(OptimisticRbc, n=4, latency=DELTA, fallback_timeout=0.3)
        inner = h.modules[3].on_message
        eaten = []

        def drop_one_echo(src, msg):
            if isinstance(msg, EchoMsg) and src == 0 and not eaten:
                eaten.append(msg)
                return
            inner(src, msg)

        h.net.register(3, drop_one_echo)
        faller_deliver = h.modules[3].on_deliver
        delivered_at = {}

        def timed_deliver(d):
            delivered_at["t"] = h.sim.now
            faller_deliver(d)

        h.modules[3].on_deliver = timed_deliver
        h.modules[0].broadcast(b"split", 1)
        h.run(until=5.0)
        for node in range(4):
            assert h.delivered_values(node) == [(0, 1, b"split", True)]
        assert all(m.fast_deliveries == 1 for m in h.modules[:3])
        assert h.modules[3].fallback_deliveries == 1
        assert h.modules[3].fallbacks == {"timeout": 1}
        # Delivery happens shortly after the faller's timer, not never.
        assert delivered_at["t"] < 1.5

    def test_fast_path_unaffected_by_other_instances_fallback(self, make_harness):
        # Fallback state is per-instance: a conflicted round must not drag a
        # clean one off its fast path.
        h = make_harness(OptimisticRbc, n=4, latency=DELTA, fallback_timeout=0.4)
        assignments = {p: (b"a" if p % 2 == 0 else b"b") for p in range(4)}
        send_equivocating_vals(h.net, 0, 1, assignments, h.membership)
        h.modules[1].broadcast(b"clean", 1)
        h.run(until=10.0)
        for node in range(4):
            assert (1, 1, b"clean", True) in h.delivered_values(node)
        assert all(m.fast_deliveries == 1 for m in h.modules)
