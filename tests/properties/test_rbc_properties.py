"""Property-based tests: RBC guarantees under randomized fault environments.

Hypothesis drives the adversary: random clan choice, random crash sets up to
f, random sender behaviour (honest / withholding / equivocating), random
latencies.  The Definition 2 properties must hold in every generated world:

* Integrity — at most one delivery per (origin, round) per party;
* Agreement — no two honest parties deliver different digests;
* Validity — with an honest sender and ≤ f crashes, everyone delivers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.latency import UniformLatencyModel
from repro.net.network import Network
from repro.rbc.base import Membership
from repro.rbc.byzantine import send_equivocating_vals, send_withholding_vals
from repro.rbc.tribe_bracha import TribeBrachaRbc
from repro.rbc.tribe_two_round import TribeTwoRoundRbc
from repro.crypto.signatures import Pki
from repro.sim import Simulator
from repro.types import clan_max_faults, max_faults


def build(n, clan, protocol, seed):
    sim = Simulator()
    net = Network(sim, n, latency=UniformLatencyModel(0.03, jitter=0.02, seed=seed))
    membership = Membership(n, frozenset(clan))
    pki = Pki(n, seed=seed)
    deliveries = {i: [] for i in range(n)}
    modules = []
    for i in range(n):
        def cb(d, i=i):
            deliveries[i].append(d)
        if protocol == "bracha":
            modules.append(TribeBrachaRbc(i, membership, net, sim, cb))
        else:
            modules.append(TribeTwoRoundRbc(i, membership, net, sim, pki, cb))
    return sim, net, membership, pki, deliveries, modules


world = st.fixed_dictionaries(
    {
        "n": st.integers(min_value=4, max_value=13),
        "seed": st.integers(min_value=0, max_value=10_000),
        "protocol": st.sampled_from(["bracha", "two-round"]),
        "clan_pick": st.randoms(use_true_random=False),
        "behaviour": st.sampled_from(["honest", "withhold", "equivocate"]),
        "crash_pick": st.randoms(use_true_random=False),
    }
)


@settings(max_examples=40, deadline=None)
@given(world=world)
def test_rbc_properties_hold_in_random_worlds(world):
    n = world["n"]
    f = max_faults(n)
    clan_size = world["clan_pick"].randint(3, n)
    clan = sorted(world["clan_pick"].sample(range(n), clan_size))
    sim, net, membership, pki, deliveries, modules = build(
        n, clan, world["protocol"], world["seed"]
    )
    sender = world["crash_pick"].randrange(n)
    crashes = set()
    if f > 0 and world["behaviour"] == "honest":
        # Crash up to f tribe members, but never a clan majority: the
        # tribe/clan construction assumes f_c <= ceil(n_c/2) - 1 faults per
        # clan (payload retrieval needs a live honest clan majority), so a
        # world that crashes more isn't one validity is promised in.
        count = world["crash_pick"].randint(0, f)
        candidates = [i for i in range(n) if i != sender]
        world["crash_pick"].shuffle(candidates)
        clan_budget = clan_max_faults(len(clan))
        for i in candidates:
            if len(crashes) == count:
                break
            if i in membership.clan:
                if clan_budget == 0:
                    continue
                clan_budget -= 1
            crashes.add(i)
    pki_arg = pki if world["protocol"] == "two-round" else None

    if world["behaviour"] == "honest":
        modules[sender].broadcast(b"payload", 1)
    elif world["behaviour"] == "withhold":
        lucky = clan[: max(1, len(clan) // 2)]
        send_withholding_vals(
            net, sender, 1, b"payload", membership, receive_full=lucky, pki=pki_arg
        )
    else:
        assignments = {
            i: (b"A" if i % 2 == 0 else b"B") for i in range(n) if i != sender
        }
        send_equivocating_vals(net, sender, 1, assignments, membership, pki=pki_arg)
    for node in crashes:
        net.crash(node)
    sim.run(until=60.0, max_events=300_000)

    live = [i for i in range(n) if i not in crashes]
    # Integrity.
    for i in live:
        assert len(deliveries[i]) <= 1
    # Agreement on the digest.
    digests = {d.digest for i in live for d in deliveries[i]}
    assert len(digests) <= 1
    # Agreement on the payload among clan deliverers.
    payloads = {
        bytes(d.payload) for i in live for d in deliveries[i] if d.full
    }
    assert len(payloads) <= 1
    # Clan members deliver payloads, outsiders deliver digests.
    for i in live:
        for d in deliveries[i]:
            assert d.full == (i in membership.clan)
    # Validity under an honest sender.
    if world["behaviour"] == "honest":
        for i in live:
            assert deliveries[i], f"honest-sender validity failed at {i}"
