"""Property-based tests: consensus safety under randomized configurations.

Randomizes tribe size, protocol variant, fault mix (crashes + Byzantine
behaviours up to f), seeds, and load; asserts the Byzantine atomic broadcast
safety properties on every world:

* honest ordered logs are prefix-consistent (Total order + Agreement);
* no (round, source) position is ordered twice (Integrity);
* the order respects DAG causality.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.consensus.byzantine import (
    CrashAt,
    EquivocatingProposer,
    LazyVoter,
    SilentNode,
)
from repro.smr.mempool import SyntheticWorkload
from repro.types import max_faults

BEHAVIOURS = [
    lambda: CrashAt(1.0),
    EquivocatingProposer,
    SilentNode,
    LazyVoter,
]

world = st.fixed_dictionaries(
    {
        "n": st.integers(min_value=4, max_value=10),
        "seed": st.integers(min_value=0, max_value=500),
        "mode": st.sampled_from(["baseline", "single-clan", "multi-clan"]),
        "rng": st.randoms(use_true_random=False),
        "txns": st.sampled_from([0, 1, 20]),
    }
)


@settings(max_examples=20, deadline=None)
@given(world=world)
def test_consensus_safety_in_random_worlds(world):
    n = world["n"]
    rng = world["rng"]
    if world["mode"] == "baseline":
        cfg = ClanConfig.baseline(n)
    elif world["mode"] == "single-clan":
        cfg = ClanConfig.single_clan(n, rng.randint(3, n), seed=world["seed"])
    else:
        cfg = ClanConfig.multi_clan(n, rng.choice([1, 2]), seed=world["seed"])

    f = max_faults(n)
    byzantine = {}
    count = rng.randint(0, f)
    for node in rng.sample(range(n), count):
        byzantine[node] = rng.choice(BEHAVIOURS)()

    workload = SyntheticWorkload(txns_per_proposal=world["txns"])
    deployment = Deployment(
        cfg,
        ProtocolParams(leader_timeout=1.0),
        make_block=workload.make_block,
        byzantine=byzantine,
        seed=world["seed"],
    )
    deployment.start()
    deployment.run(until=8.0, max_events=3_000_000)

    # Agreement / total order.
    deployment.check_total_order_consistency()
    for i in deployment.honest_ids:
        node = deployment.nodes[i]
        keys = node.ordered_keys()
        # Integrity.
        assert len(keys) == len(set(keys))
        # Causality.
        position = {k: idx for idx, k in enumerate(keys)}
        for vertex in node.ordered_vertices:
            for ref in vertex.parents():
                if ref.round == 0:
                    continue
                assert position.get(ref.key, 10**9) < position[vertex.key]
    # Liveness (no Byzantine nodes interfere with > f honest... all worlds
    # keep faults <= f, so progress must happen).
    assert min(deployment.nodes[i].round for i in deployment.honest_ids) >= 2
