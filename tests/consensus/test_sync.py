"""Tests for crash-recovery DAG catch-up (repro.consensus.sync)."""

import pytest

from repro.committees.config import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.consensus.sync import SyncRequestMsg, SyncResponseMsg
from repro.errors import ConsensusError
from repro.net.faults import ChurnSchedule


PARAMS = ProtocolParams(leader_timeout=1.0, verify_signatures=False)


def run_churn(churn, params=PARAMS, until=40.0, n=4, seed=3, **kwargs):
    deployment = Deployment(
        ClanConfig.baseline(n), params=params, churn=churn, seed=seed, **kwargs
    )
    deployment.start()
    deployment.run(until=until)
    return deployment


class TestCrashTimerSuppression:
    def test_crashed_node_freezes_completely(self):
        churn = ChurnSchedule.outages([(2, 5.0, None)])
        deployment = Deployment(ClanConfig.baseline(4), params=PARAMS, churn=churn)
        deployment.start()
        deployment.run(until=5.5)
        node = deployment.nodes[2]
        round_at_crash = node.round
        proposed_at_crash = set(node._proposed)
        no_voted_at_crash = set(node.no_voted)
        deployment.run(until=40.0)
        # No beyond-the-grave activity: the local timer and pull retries are
        # cancelled on crash, so round/proposal/no-vote state stays frozen.
        assert node.round == round_at_crash
        assert set(node._proposed) == proposed_at_crash
        assert set(node.no_voted) == no_voted_at_crash
        # The rest of the tribe keeps committing (n=4 tolerates f=1).
        others = [deployment.nodes[i] for i in (0, 1, 3)]
        assert all(len(o.ordered_log) > 100 for o in others)

    def test_timeout_guard_blocks_stale_timer_firing(self):
        deployment = Deployment(ClanConfig.baseline(4), params=PARAMS)
        deployment.start()
        deployment.run(until=3.0)
        node = deployment.nodes[0]
        node._crashed_local = True
        before = set(node.no_voted)
        node._on_timeout()  # an already-queued firing must be a no-op
        assert set(node.no_voted) == before


class TestCatchUp:
    def test_recovered_node_catches_up_and_commits_same_prefix(self):
        # Down from t=4 to t=16: dozens of missed rounds, far beyond the
        # sync gap threshold (the issue's >= 10 rounds acceptance bar).
        churn = ChurnSchedule.outages([(3, 4.0, 16.0)])
        deployment = run_churn(churn, until=50.0)
        node = deployment.nodes[3]
        frontier = max(deployment.nodes[i].round for i in range(3))
        missed = frontier  # sanity on the scale of the experiment
        assert missed > 10
        assert node.sync.syncs_started >= 1
        assert node.sync.vertices_pulled > 0
        # Caught up: same round neighbourhood and identical committed prefix.
        assert frontier - node.round <= PARAMS.sync_gap_threshold
        deployment.check_total_order_consistency()
        logs = deployment.ordered_logs()
        shortest = min(len(log) for log in logs.values())
        assert shortest > 100
        reference = logs[0][:shortest]
        assert logs[3][:shortest] == reference

    def test_catch_up_is_deterministic(self):
        def run_once():
            churn = ChurnSchedule.outages([(3, 4.0, 16.0)])
            deployment = run_churn(churn, until=40.0, seed=9)
            node = deployment.nodes[3]
            return (
                node.sync.vertices_pulled,
                node.round,
                deployment.nodes[3].ordered_keys(),
            )

        assert run_once() == run_once()

    def test_catchup_disabled_leaves_node_behind(self):
        churn = ChurnSchedule.outages([(3, 4.0, 16.0)])
        params = ProtocolParams(
            leader_timeout=1.0, verify_signatures=False, catchup=False
        )
        deployment = run_churn(churn, params=params, until=40.0)
        node = deployment.nodes[3]
        frontier = max(deployment.nodes[i].round for i in range(3))
        assert node.sync.syncs_started == 0
        # Without the synchronizer the node cannot attach new vertices
        # (missing causal history) and trails far behind the frontier.
        assert frontier - node.round > params.sync_gap_threshold
        deployment.check_total_order_consistency()

    def test_multiple_sequential_recoveries(self):
        churn = ChurnSchedule.outages(
            [(1, 3.0, 12.0), (2, 18.0, 27.0)]
        )
        deployment = run_churn(churn, until=60.0)
        for node_id in (1, 2):
            node = deployment.nodes[node_id]
            assert node.sync.syncs_started >= 1
        frontier = max(n.round for n in deployment.nodes)
        for node in deployment.nodes:
            assert frontier - node.round <= PARAMS.sync_gap_threshold
        deployment.check_total_order_consistency()


class TestSyncMessages:
    def test_request_wire_size_is_constant(self):
        assert SyncRequestMsg(1, 10).wire_size() == SyncRequestMsg(5, 500).wire_size()

    def test_response_wire_size_sums_contents(self):
        empty = SyncResponseMsg(1, 2, (), ())
        assert empty.wire_size() > 0


class TestResponderRateLimit:
    def _deployment(self):
        deployment = Deployment(ClanConfig.baseline(4), params=PARAMS)
        deployment.start()
        deployment.run(until=5.0)
        return deployment

    def test_rate_limited_per_request_window(self):
        deployment = self._deployment()
        node = deployment.nodes[0]
        sent = []
        node.network.send = lambda src, dst, msg: sent.append(msg)
        for _ in range(5):
            node.sync.on_request(1, SyncRequestMsg(1, 5))
        assert len(sent) == node.sync.MAX_RESPONSES_PER_REQUEST

    def test_span_is_clamped(self):
        deployment = self._deployment()
        node = deployment.nodes[0]
        sent = []
        node.network.send = lambda src, dst, msg: sent.append(msg)
        node.sync.on_request(1, SyncRequestMsg(1, 10_000))
        (msg,) = sent
        assert msg.to_round - msg.from_round + 1 <= node.sync.batch_rounds

    def test_ignores_self_and_empty_windows(self):
        deployment = self._deployment()
        node = deployment.nodes[0]
        sent = []
        node.network.send = lambda src, dst, msg: sent.append(msg)
        node.sync.on_request(0, SyncRequestMsg(1, 5))  # self
        node.sync.on_request(1, SyncRequestMsg(5, 4))  # empty
        node.sync.on_request(1, SyncRequestMsg(100_000, 100_001))  # nothing held
        assert sent == []

    def test_invalid_vertices_rejected(self):
        deployment = self._deployment()
        node = deployment.nodes[0]
        pulled_before = node.sync.vertices_pulled
        bad_round = type(
            "V", (), {"round": 0, "source": 1, "strong_edges": ()}
        )()
        bad_source = type(
            "V", (), {"round": 2, "source": 99, "strong_edges": ()}
        )()
        node.sync.on_response(1, SyncResponseMsg(1, 2, (bad_round, bad_source), ()))
        assert node.sync.vertices_pulled == pulled_before


class TestRetrievalGc:
    def test_node_gc_trims_sync_served_records(self):
        deployment = Deployment(ClanConfig.baseline(4), params=PARAMS)
        deployment.start()
        deployment.run(until=20.0)
        node = deployment.nodes[0]
        node.sync._served[(1, 1)] = 1
        node.sync._served[(1, node.round + 100)] = 1
        node.sync.gc_below(node.round)
        assert (1, 1) not in node.sync._served
        assert (1, node.round + 100) in node.sync._served

    def test_commit_path_invokes_gc(self):
        params = ProtocolParams(
            leader_timeout=1.0, verify_signatures=False, gc_depth=4
        )
        deployment = Deployment(ClanConfig.baseline(4), params=params)
        deployment.start()
        node = deployment.nodes[0]
        node.sync._served[(2, 1)] = 1  # plant a stale record at round 1
        deployment.run(until=20.0)
        assert node.last_committed_round > 10
        assert (2, 1) not in node.sync._served

    def test_gc_depth_zero_disables(self):
        params = ProtocolParams(
            leader_timeout=1.0, verify_signatures=False, gc_depth=0
        )
        deployment = Deployment(ClanConfig.baseline(4), params=params)
        deployment.start()
        node = deployment.nodes[0]
        node.sync._served[(2, 1)] = 1
        deployment.run(until=10.0)
        assert (2, 1) in node.sync._served


class TestSynchronizerValidation:
    def test_parameter_validation(self):
        deployment = Deployment(ClanConfig.baseline(4), params=PARAMS)
        node = deployment.nodes[0]
        from repro.consensus.sync import DagSynchronizer

        with pytest.raises(ConsensusError):
            DagSynchronizer(node, gap_threshold=0)
        with pytest.raises(ConsensusError):
            DagSynchronizer(node, batch_rounds=0)
        with pytest.raises(ConsensusError):
            DagSynchronizer(node, retry_timeout=0.0)
