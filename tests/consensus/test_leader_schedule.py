"""Tests for the rotating leader schedule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus.leader import LeaderSchedule
from repro.errors import ConsensusError


def test_every_party_leads_once_per_epoch():
    schedule = LeaderSchedule(9, seed=4)
    for epoch in range(3):
        leaders = [schedule.leader(epoch * 9 + slot) for slot in range(1, 10)]
        assert sorted(leaders) == list(range(9))


def test_epochs_use_different_permutations():
    schedule = LeaderSchedule(20, seed=4)
    first = [schedule.leader(r) for r in range(1, 21)]
    second = [schedule.leader(r) for r in range(21, 41)]
    assert first != second  # re-shuffled per epoch (same multiset)
    assert sorted(first) == sorted(second)


def test_schedule_deterministic_across_instances():
    a = LeaderSchedule(12, seed=9)
    b = LeaderSchedule(12, seed=9)
    assert [a.leader(r) for r in range(1, 40)] == [b.leader(r) for r in range(1, 40)]


def test_is_leader_consistency():
    schedule = LeaderSchedule(7, seed=1)
    for round_ in range(1, 30):
        leader = schedule.leader(round_)
        assert schedule.is_leader(round_, leader)
        assert not schedule.is_leader(round_, (leader + 1) % 7)


def test_multi_leader_rounds_distinct_and_prefixed():
    schedule = LeaderSchedule(10, seed=2, leaders_per_round=3)
    for round_ in range(1, 25):
        leaders = schedule.leaders(round_)
        assert len(leaders) == 3
        assert len(set(leaders)) == 3
        assert schedule.leader(round_) == leaders[0]


def test_invalid_parameters():
    with pytest.raises(ConsensusError):
        LeaderSchedule(0)
    with pytest.raises(ConsensusError):
        LeaderSchedule(5, leaders_per_round=6)
    with pytest.raises(ConsensusError):
        LeaderSchedule(5).leader(0)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=1000),
    round_=st.integers(min_value=1, max_value=10_000),
)
def test_leader_always_in_range(n, seed, round_):
    schedule = LeaderSchedule(n, seed=seed)
    assert 0 <= schedule.leader(round_) < n
