"""Consensus-level tests for the optimistic and certified-prefix RBC modes.

The RBC primitives are unit-tested in ``tests/rbc``; these tests run full
deployments to check the properties that only emerge end to end: total-order
consistency across honest nodes, fast-path usage under clean networks,
graceful fallback under equivocation, and non-stalling prefix commits under
slow or withholding proposers.
"""

from __future__ import annotations

from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.consensus.byzantine import (
    EquivocatingProposer,
    SlowProposer,
    TailWithholder,
)
from repro.smr.mempool import SyntheticWorkload
from repro.smr.runtime import SmrRuntime

from .conftest import run_deployment


def _ordered_keys(deployment, nodes):
    return {i: deployment.nodes[i].ordered_keys() for i in nodes}


class TestOptimisticMode:
    def test_clean_run_commits_on_the_fast_path(self, run):
        dep, _ = run(
            ClanConfig.baseline(4), until=6.0,
            params=ProtocolParams(rbc_mode="optimistic"),
        )
        logs = _ordered_keys(dep, range(4))
        assert len(set(map(tuple, logs.values()))) == 1
        assert len(logs[0]) > 10
        for node in dep.nodes:
            assert node.rbc.fast_deliveries > 0
            assert node.rbc.fallback_deliveries == 0
            assert node.rbc.fallbacks == {}

    def test_equivocator_forces_fallback_without_divergence(self, run):
        dep, _ = run(
            ClanConfig.baseline(4), until=8.0,
            params=ProtocolParams(rbc_mode="optimistic"),
            byzantine={3: EquivocatingProposer()},
        )
        honest = range(3)
        logs = _ordered_keys(dep, honest)
        assert len(set(map(tuple, logs.values()))) == 1
        assert len(logs[0]) > 10
        # Every honest node saw the conflict and left the fast path for the
        # equivocator's instances — and still made progress.
        for i in honest:
            assert dep.nodes[i].rbc.fallbacks.get("conflict", 0) > 0

    def test_fast_path_outpaces_bracha(self, run):
        # 2δ vs 3δ per RBC instance compounds round over round: on a clean
        # network the optimistic deployment drives rounds strictly faster.
        rounds = {}
        for mode in ("bracha", "optimistic"):
            dep, _ = run(
                ClanConfig.baseline(4), until=6.0,
                params=ProtocolParams(rbc_mode=mode),
            )
            rounds[mode] = min(node.round for node in dep.nodes)
        assert rounds["optimistic"] > rounds["bracha"]


class TestPrefixMode:
    def test_clean_run_commits_full_prefixes(self, run):
        dep, _ = run(
            ClanConfig.baseline(4), until=6.0,
            params=ProtocolParams(rbc_mode="prefix"),
        )
        logs = _ordered_keys(dep, range(4))
        assert len(set(map(tuple, logs.values()))) == 1
        for node in dep.nodes:
            assert node.prefix_commits > 0
            # Honest proposers on a clean network: nothing ever truncates.
            assert node.prefix_truncated == 0
            assert node.prefix_chunks_dropped == 0
            assert not node._awaiting_chunks

    def test_decisions_are_identical_across_honest_nodes(self, run):
        dep, _ = run(
            ClanConfig.baseline(4), until=6.0,
            params=ProtocolParams(rbc_mode="prefix"),
            byzantine={2: SlowProposer(delay=0.6)},
        )
        honest = [0, 1, 3]
        logs = _ordered_keys(dep, honest)
        assert len(set(map(tuple, logs.values()))) == 1
        # The prefix decision reads only the ordered log, so every honest
        # node truncates the same commits to the same lengths.
        counters = {
            (
                dep.nodes[i].prefix_commits,
                dep.nodes[i].prefix_truncated,
                dep.nodes[i].prefix_chunks_committed,
                dep.nodes[i].prefix_chunks_dropped,
            )
            for i in honest
        }
        assert len(counters) == 1

    def test_slow_proposer_commits_nonempty_prefixes_without_stall(self, run):
        dep, _ = run(
            ClanConfig.baseline(4), until=8.0,
            params=ProtocolParams(rbc_mode="prefix"),
            byzantine={2: SlowProposer(delay=0.6)},
        )
        honest = [0, 1, 3]
        rounds = {dep.nodes[i].round for i in range(4)}
        # No round stall: the slow proposer trails nobody (its own vertices
        # still RBC on time; only the block tail drips).
        assert max(rounds) - min(rounds) <= 1
        for i in honest:
            node = dep.nodes[i]
            assert node.prefix_commits > 0
            assert node.prefix_truncated > 0
            assert node.prefix_chunks_committed > 0

    def test_tail_withholder_loses_only_its_tail(self, run):
        dep, _ = run(
            ClanConfig.baseline(4), until=8.0,
            params=ProtocolParams(rbc_mode="prefix"),
            byzantine={1: TailWithholder(keep_fraction=0.5)},
        )
        honest = [0, 2, 3]
        logs = _ordered_keys(dep, honest)
        assert len(set(map(tuple, logs.values()))) == 1
        for i in honest:
            node = dep.nodes[i]
            assert node.prefix_truncated > 0
            # The withheld tail is dropped, never waited for.
            assert not node._awaiting_chunks

    def test_smr_execution_matches_two_round(self):
        # End to end: the decided prefixes reach the executors, every clan
        # replica executes the identical sequence, and on a clean network the
        # result is byte-identical to the two-round baseline.
        digests = {}
        for mode in ("two-round", "prefix"):
            runtime = SmrRuntime(
                ClanConfig.baseline(4),
                params=ProtocolParams(rbc_mode=mode, verify_signatures=False),
                seed=3,
            )
            client = runtime.new_client("c")
            runtime.start()
            for i in range(12):
                runtime.submit(client, ("incr", f"k{i % 3}", 1))
            runtime.run(until=6.0, max_events=10_000_000)
            runtime.check_execution_consistency()
            digests[mode] = {
                member: runtime.executors[member].state_digest()
                for member in sorted(runtime.executors)
            }
        assert digests["prefix"] == digests["two-round"]


class TestDeterminism:
    def test_mode_runs_are_reproducible(self):
        for mode in ("optimistic", "prefix"):
            logs = []
            for _ in range(2):
                workload = SyntheticWorkload(txns_per_proposal=5)
                dep = Deployment(
                    ClanConfig.baseline(4),
                    ProtocolParams(rbc_mode=mode),
                    make_block=workload.make_block,
                    seed=9,
                )
                dep.start()
                dep.run(until=5.0, max_events=10_000_000)
                logs.append([n.ordered_keys() for n in dep.nodes])
            assert logs[0] == logs[1], mode


def test_run_deployment_helper_exports(run):
    # Keep the conftest helper importable directly too (used by benches).
    assert run is run_deployment
