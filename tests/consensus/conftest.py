"""Shared helpers for consensus tests."""

from __future__ import annotations

import pytest

from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.smr.mempool import SyntheticWorkload


def run_deployment(
    cfg: ClanConfig,
    until: float = 8.0,
    txns: int = 5,
    params: ProtocolParams | None = None,
    **kwargs,
):
    """Build, start, and run a deployment; returns (deployment, workload)."""
    workload = SyntheticWorkload(txns_per_proposal=txns)
    deployment = Deployment(
        cfg,
        params or ProtocolParams(),
        make_block=workload.make_block,
        **kwargs,
    )
    deployment.start()
    deployment.run(until=until, max_events=10_000_000)
    return deployment, workload


@pytest.fixture
def run():
    return run_deployment
