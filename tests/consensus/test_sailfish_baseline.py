"""Tests for baseline Sailfish: progress, safety, commit latency."""

import pytest

from repro.committees import ClanConfig
from repro.consensus import Deployment, LeaderSchedule, ProtocolParams
from repro.errors import ConsensusError


def test_progress_and_agreement(run):
    dep, _ = run(ClanConfig.baseline(7), until=5.0)
    dep.check_total_order_consistency()
    assert all(dep.nodes[i].round > 20 for i in range(7))
    assert dep.min_ordered() > 50
    # Every node committed the same leader sequence.
    leader_keys = {tuple(v.key for v in dep.nodes[i].committed_leaders) for i in range(7)}
    assert len(leader_keys) == 1


def test_round_duration_is_one_rbc(run):
    """With 2-round RBC and δ=0.05 a round takes ≈ 2δ; ~50 rounds in 5 s."""
    dep, _ = run(ClanConfig.baseline(7), until=5.0)
    assert 40 <= dep.nodes[0].round <= 60


def test_every_honest_vertex_eventually_ordered(run):
    dep, _ = run(ClanConfig.baseline(4), until=6.0)
    ordered = dep.ordered_vertices_everywhere()
    keys = {v.key for v in ordered}
    last_full_round = max(r for (r, s) in keys) - 3
    for round_ in range(1, last_full_round):
        for source in range(4):
            assert (round_, source) in keys, f"vertex ({round_},{source}) missing"


def test_leader_commit_latency_is_3_delta(run):
    """Leader vertices commit ~3δ after proposal; non-leaders ~5δ (paper §7)."""
    dep, workload = run(ClanConfig.baseline(7), until=5.0, txns=2)
    node = dep.nodes[0]
    delta = 0.05
    leader_lat, nonleader_lat = [], []
    for vertex, committed_at in node.ordered_log:
        if vertex.block_digest is None:
            continue
        _, created_at = workload.blocks[vertex.block_digest]
        latency = committed_at - created_at
        if dep.schedule.leader(vertex.round) == vertex.source:
            leader_lat.append(latency)
        else:
            nonleader_lat.append(latency)
    assert leader_lat and nonleader_lat
    avg_leader = sum(leader_lat) / len(leader_lat)
    avg_nonleader = sum(nonleader_lat) / len(nonleader_lat)
    assert avg_leader == pytest.approx(3 * delta, rel=0.25)
    assert avg_nonleader == pytest.approx(5 * delta, rel=0.25)
    assert avg_leader < avg_nonleader


def test_total_order_has_no_duplicates(run):
    dep, _ = run(ClanConfig.baseline(4), until=5.0)
    for node in dep.nodes:
        keys = node.ordered_keys()
        assert len(keys) == len(set(keys))


def test_order_respects_causality(run):
    """A vertex never precedes any of its ancestors in the total order."""
    dep, _ = run(ClanConfig.baseline(4), until=4.0)
    node = dep.nodes[1]
    position = {v.key: i for i, v in enumerate(node.ordered_vertices)}
    for vertex in node.ordered_vertices:
        for ref in vertex.parents():
            if ref.round == 0:
                continue
            assert ref.key in position, f"{vertex.key} ordered before parent {ref.key}"
            assert position[ref.key] < position[vertex.key]


def test_vertices_carry_quorum_strong_edges(run):
    dep, _ = run(ClanConfig.baseline(7), until=3.0)
    node = dep.nodes[0]
    for vertex in node.ordered_vertices:
        if vertex.round >= 2:
            assert len(vertex.strong_edges) >= dep.cfg.quorum


def test_deterministic_given_seed():
    from tests.consensus.conftest import run_deployment

    logs = []
    for _ in range(2):
        dep, _ = run_deployment(ClanConfig.baseline(4), until=3.0, seed=42)
        logs.append(dep.nodes[0].ordered_keys())
    assert logs[0] == logs[1]


def test_bracha_mode_progresses_slower_per_round(run):
    dep2, _ = run(ClanConfig.baseline(7), until=5.0)
    dep3, _ = run(
        ClanConfig.baseline(7), until=5.0, params=ProtocolParams(rbc_mode="bracha")
    )
    # 3-round RBC per round vs 2-round: strictly fewer rounds in the same time.
    assert dep3.nodes[0].round < dep2.nodes[0].round
    dep3.check_total_order_consistency()
    assert dep3.min_ordered() > 0


def test_leader_schedule_rotates():
    schedule = LeaderSchedule(5, seed=1)
    leaders = {schedule.leader(r) for r in range(1, 6)}
    assert leaders == set(range(5))  # every party leads once per epoch
    with pytest.raises(ConsensusError):
        schedule.leader(0)


def test_multi_leader_schedule():
    schedule = LeaderSchedule(5, seed=1, leaders_per_round=2)
    leaders = schedule.leaders(3)
    assert len(leaders) == 2 and len(set(leaders)) == 2
    assert schedule.leader(3) == leaders[0]


def test_double_start_rejected():
    dep = Deployment(ClanConfig.baseline(4))
    dep.start()
    with pytest.raises(ConsensusError):
        dep.nodes[0].start()


def test_max_rounds_stops_proposals(run):
    dep, _ = run(
        ClanConfig.baseline(4), until=10.0, params=ProtocolParams(max_rounds=5)
    )
    assert all(node.round <= 5 for node in dep.nodes)


def test_too_many_faults_rejected():
    with pytest.raises(ConsensusError):
        Deployment(ClanConfig.baseline(4), crashed={1, 2})
