"""Unit tests for the merged vertex+block RBC (§5 dissemination layer)."""

import pytest

from repro.committees import ClanConfig
from repro.crypto.signatures import Pki
from repro.dag.block import Block
from repro.dag.transaction import Transaction
from repro.dag.vertex import Vertex, genesis_vertex
from repro.net.latency import UniformLatencyModel
from repro.net.network import Network
from repro.consensus.messages import (
    VertexValMsg,
    vertex_val_statement,
)
from repro.consensus.vertex_rbc import VertexRbc
from repro.errors import ConsensusError
from repro.sim import Simulator

N = 10
CLAN_SIZE = 5


class Harness:
    def __init__(self, cfg=None, mode="two-round"):
        self.cfg = cfg or ClanConfig.single_clan(N, CLAN_SIZE, seed=1)
        self.sim = Simulator()
        self.net = Network(self.sim, self.cfg.n, latency=UniformLatencyModel(0.05))
        self.pki = Pki(self.cfg.n, seed=1)
        self.first_vals = {i: [] for i in range(self.cfg.n)}
        self.vertices = {i: [] for i in range(self.cfg.n)}
        self.blocks = {i: [] for i in range(self.cfg.n)}
        self.modules = []
        for i in range(self.cfg.n):
            module = VertexRbc(
                i, self.cfg, self.net, self.sim, self.pki,
                on_first_val=lambda v, i=i: self.first_vals[i].append(v),
                on_vertex=lambda v, i=i: self.vertices[i].append(v),
                on_block=lambda b, i=i: self.blocks[i].append(b),
                mode=mode,
            )
            self.net.register(i, lambda src, msg, m=module: m.on_message(src, msg))
            self.modules.append(module)

    def make_proposal(self, proposer, txns=3):
        block = Block.concrete(
            proposer, 1, [Transaction(f"p{proposer}:{k}", ("noop",)) for k in range(txns)], 0.0
        )
        refs = tuple(genesis_vertex(i).ref() for i in range(self.cfg.n))
        vertex = Vertex(1, proposer, block.payload_digest(), refs)
        return vertex, block

    def run(self, until=None):
        self.sim.run(until=until, max_events=1_000_000)


def test_vertex_to_all_block_to_clan():
    h = Harness()
    proposer = sorted(h.cfg.clan(0))[0]
    vertex, block = h.make_proposal(proposer)
    h.modules[proposer].broadcast(vertex, block)
    h.run()
    for i in range(N):
        assert len(h.vertices[i]) == 1
        if i in h.cfg.clan(0):
            assert len(h.blocks[i]) == 1
        else:
            assert h.blocks[i] == []


def test_block_less_vertex_from_outsider():
    h = Harness()
    outsider = next(i for i in range(N) if i not in h.cfg.clan(0))
    refs = tuple(genesis_vertex(i).ref() for i in range(N))
    vertex = Vertex(1, outsider, None, refs)
    h.modules[outsider].broadcast(vertex, None)
    h.run()
    for i in range(N):
        assert len(h.vertices[i]) == 1
        assert h.blocks[i] == []


def test_outsider_cannot_propose_blocks():
    h = Harness()
    outsider = next(i for i in range(N) if i not in h.cfg.clan(0))
    vertex, block = h.make_proposal(outsider)
    with pytest.raises(Exception):
        # Config rejects: outsiders have no block clan.
        h.modules[outsider].broadcast(vertex, block)


def test_block_digest_mismatch_rejected_on_broadcast():
    h = Harness()
    proposer = sorted(h.cfg.clan(0))[0]
    vertex, _ = h.make_proposal(proposer)
    _, other_block = h.make_proposal(proposer, txns=5)
    with pytest.raises(ConsensusError):
        h.modules[proposer].broadcast(vertex, other_block)


def test_first_val_hook_fires_before_delivery():
    h = Harness()
    proposer = sorted(h.cfg.clan(0))[0]
    vertex, block = h.make_proposal(proposer)
    h.modules[proposer].broadcast(vertex, block)
    # One network delay in: VALs arrived, quorum has not completed.
    h.run(until=0.051)
    receivers_with_val = sum(1 for i in range(N) if h.first_vals[i])
    receivers_delivered = sum(1 for i in range(N) if h.vertices[i])
    assert receivers_with_val == N
    assert receivers_delivered == 0
    h.run()
    assert all(h.vertices[i] for i in range(N))


def test_crafted_val_with_bad_block_not_echoed():
    """A VAL whose block does not match the advertised digest is ignored by
    clan members (they never echo), so the instance cannot complete."""
    h = Harness()
    proposer = sorted(h.cfg.clan(0))[0]
    vertex, block = h.make_proposal(proposer)
    _, wrong_block = h.make_proposal(proposer, txns=7)
    sig = h.pki.key(proposer).sign(
        vertex_val_statement(proposer, 1, vertex.vertex_digest())
    )
    for i in range(N):
        body = wrong_block if i in h.cfg.clan(0) else None
        h.net.send(proposer, i, VertexValMsg(vertex, body, sig))
    h.run(until=10.0)
    assert all(not h.vertices[i] for i in range(N))


def test_unsigned_val_rejected_in_two_round_mode():
    h = Harness()
    proposer = sorted(h.cfg.clan(0))[0]
    vertex, block = h.make_proposal(proposer)
    for i in range(N):
        h.net.send(proposer, i, VertexValMsg(vertex, block if i in h.cfg.clan(0) else None, None))
    h.run(until=5.0)
    assert all(not h.vertices[i] for i in range(N))


def test_bracha_mode_delivers():
    h = Harness(mode="bracha")
    proposer = sorted(h.cfg.clan(0))[0]
    vertex, block = h.make_proposal(proposer)
    h.modules[proposer].broadcast(vertex, block)
    h.run()
    for i in range(N):
        assert len(h.vertices[i]) == 1
    for i in h.cfg.clan(0):
        assert len(h.blocks[i]) == 1


def test_multi_clan_blocks_routed_per_clan():
    cfg = ClanConfig.multi_clan(N, 2, seed=2)
    h = Harness(cfg=cfg)
    p0 = next(iter(cfg.clan(0)))
    p1 = next(iter(cfg.clan(1)))
    v0, b0 = h.make_proposal(p0)
    v1, b1 = h.make_proposal(p1)
    h.modules[p0].broadcast(v0, b0)
    h.modules[p1].broadcast(v1, b1)
    h.run()
    for i in range(N):
        assert len(h.vertices[i]) == 2  # everyone gets both vertices
        my_clan = cfg.clan_index_of(i)
        proposers = {b.proposer for b in h.blocks[i]}
        expected = {p0} if my_clan == 0 else {p1}
        assert proposers == expected


def test_block_delivery_never_precedes_vertex_delivery():
    h = Harness()
    order = {i: [] for i in range(N)}
    for i, module in enumerate(h.modules):
        original_v, original_b = module.on_vertex, module.on_block
        module.on_vertex = lambda v, i=i, f=original_v: (order[i].append("v"), f(v))
        module.on_block = lambda b, i=i, f=original_b: (order[i].append("b"), f(b))
    proposer = sorted(h.cfg.clan(0))[0]
    vertex, block = h.make_proposal(proposer)
    h.modules[proposer].broadcast(vertex, block)
    h.run()
    for i in h.cfg.clan(0):
        assert order[i] == ["v", "b"]
