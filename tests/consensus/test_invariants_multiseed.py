"""Cross-seed invariant sweeps for the full consensus stack.

Runs the three protocols across several seeds and asserts the global
invariants the paper's correctness rests on.  Complements the hypothesis
suites with heavier, longer-running configurations.
"""

import pytest

from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.smr.mempool import SyntheticWorkload

SEEDS = [1, 2, 3]


def run(cfg, seed):
    workload = SyntheticWorkload(txns_per_proposal=10)
    deployment = Deployment(
        cfg,
        ProtocolParams(),
        make_block=workload.make_block,
        seed=seed,
    )
    deployment.start()
    deployment.run(until=5.0, max_events=10_000_000)
    return deployment, workload


@pytest.mark.parametrize("seed", SEEDS)
def test_single_clan_block_custody_invariant(seed):
    """Every ordered block digest is held by every honest clan member, and
    by no one outside the clan."""
    cfg = ClanConfig.single_clan(10, 5, seed=seed)
    deployment, _ = run(cfg, seed)
    ordered = deployment.ordered_vertices_everywhere()
    digests = {v.block_digest for v in ordered if v.block_digest is not None}
    assert digests
    for node in deployment.nodes:
        held = set(node.blocks)
        if node.node_id in cfg.clan(0):
            assert digests <= held
        else:
            assert not held


@pytest.mark.parametrize("seed", SEEDS)
def test_committed_leader_chain_is_monotone_and_shared(seed):
    cfg = ClanConfig.baseline(7)
    deployment, _ = run(cfg, seed)
    chains = []
    for i in deployment.honest_ids:
        rounds = [v.round for v in deployment.nodes[i].committed_leaders]
        assert rounds == sorted(set(rounds)), "leader rounds must be strictly increasing"
        chains.append(tuple(v.key for v in deployment.nodes[i].committed_leaders))
    shortest = min(len(c) for c in chains)
    assert len({c[:shortest] for c in chains}) == 1


@pytest.mark.parametrize("seed", SEEDS)
def test_multi_clan_every_block_ordered_exactly_once(seed):
    cfg = ClanConfig.multi_clan(12, 3, seed=seed)
    deployment, workload = run(cfg, seed)
    ordered = deployment.ordered_vertices_everywhere()
    digests = [v.block_digest for v in ordered if v.block_digest is not None]
    assert len(digests) == len(set(digests))
    # Every ordered digest corresponds to a block the workload created.
    for digest in digests:
        assert digest in workload.blocks


@pytest.mark.parametrize("seed", SEEDS)
def test_throughput_conservation(seed):
    """Ordered transactions never exceed created transactions."""
    cfg = ClanConfig.single_clan(10, 5, seed=seed)
    deployment, workload = run(cfg, seed)
    created = sum(count for count, _ in workload.blocks.values())
    node = deployment.nodes[deployment.honest_ids[0]]
    ordered = sum(
        workload.blocks[v.block_digest][0]
        for v, _ in node.ordered_log
        if v.block_digest is not None
    )
    assert ordered <= created
    assert ordered > 0.5 * created  # most of the offered load lands


def test_round_entry_times_monotone():
    """Within one node, round entries move strictly forward in time."""
    cfg = ClanConfig.baseline(7)
    workload = SyntheticWorkload(txns_per_proposal=5)
    entries = []
    deployment = Deployment(cfg, make_block=workload.make_block, seed=5)
    node = deployment.nodes[0]
    original = node._enter_round

    def tracking(round_):
        entries.append((round_, deployment.sim.now))
        original(round_)

    node._enter_round = tracking
    deployment.start()
    deployment.run(until=4.0, max_events=5_000_000)
    rounds = [r for r, _ in entries]
    times = [t for _, t in entries]
    assert rounds == sorted(rounds)
    assert times == sorted(times)
