"""Tests for the Deployment harness itself."""

import pytest

from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.consensus.byzantine import SilentNode
from repro.errors import ConsensusError
from repro.smr.mempool import SyntheticWorkload


def test_honest_ids_excludes_faulty():
    deployment = Deployment(
        ClanConfig.baseline(7), crashed={6}, byzantine={5: SilentNode()}
    )
    assert deployment.honest_ids == [0, 1, 2, 3, 4]


def test_crashed_and_byzantine_overlap_rejected():
    with pytest.raises(ConsensusError):
        Deployment(
            ClanConfig.baseline(7), crashed={3}, byzantine={3: SilentNode()}
        )


def test_staggered_start_still_converges():
    workload = SyntheticWorkload(txns_per_proposal=2)
    deployment = Deployment(
        ClanConfig.baseline(4),
        ProtocolParams(leader_timeout=2.0),
        make_block=workload.make_block,
    )
    deployment.start(stagger=0.2)  # node i starts at 0.2*i
    deployment.run(until=8.0, max_events=5_000_000)
    deployment.check_total_order_consistency()
    assert deployment.min_ordered() > 10


def test_ordered_vertices_everywhere_is_common_prefix():
    workload = SyntheticWorkload(txns_per_proposal=2)
    deployment = Deployment(ClanConfig.baseline(4), make_block=workload.make_block)
    deployment.start()
    deployment.run(until=4.0, max_events=5_000_000)
    common = deployment.ordered_vertices_everywhere()
    shortest = min(len(deployment.nodes[i].ordered_log) for i in range(4))
    assert len(common) == shortest
    for i in range(4):
        prefix = [v.key for v in deployment.nodes[i].ordered_vertices[: len(common)]]
        assert prefix == [v.key for v in common]


def test_consistency_check_detects_divergence():
    deployment = Deployment(ClanConfig.baseline(4))
    deployment.start()
    deployment.run(until=2.0, max_events=5_000_000)
    # Forge a divergence on one node's log.
    node = deployment.nodes[2]
    assert node.ordered_log
    vertex, when = node.ordered_log[0]
    other = deployment.nodes[3].ordered_log[1][0]
    node.ordered_log[0] = (other, when)
    with pytest.raises(ConsensusError):
        deployment.check_total_order_consistency()


def test_deployment_with_zero_block_factory():
    """No make_block: pure metadata consensus still runs and orders."""
    deployment = Deployment(ClanConfig.baseline(4))
    deployment.start()
    deployment.run(until=3.0, max_events=5_000_000)
    assert deployment.min_ordered() > 10
    assert all(
        v.block_digest is None
        for v in deployment.ordered_vertices_everywhere()
    )
