"""Consensus-level tests for the sparse-edge (Clownfish-style) mode.

Sparse mode trims non-leader strong edges to a deterministic fan-out and
compensates with the any-edge indirect-commit rule; these tests check the
properties that only emerge end to end: total-order consistency, the
realized fan-out actually shrinking, leader vertices keeping full edges,
votes still forming, and determinism of the shared-RNG target selection.
"""

from __future__ import annotations

import pytest

from repro.committees import ClanConfig
from repro.consensus import ProtocolParams
from repro.errors import ConfigError

from .conftest import run_deployment


def _ordered_keys(deployment, nodes):
    return {i: deployment.nodes[i].ordered_keys() for i in nodes}


class TestSparseEdges:
    def test_clean_run_is_consistent_and_live(self, run):
        n = 16
        dep, _ = run(
            ClanConfig.baseline(n), until=6.0,
            params=ProtocolParams(edge_mode="sparse"),
        )
        dep.check_total_order_consistency()
        logs = _ordered_keys(dep, range(n))
        assert len(set(map(tuple, logs.values()))) == 1
        assert len(logs[0]) > 10 * n  # many rounds' worth ordered

    def test_fanout_is_respected_and_leaders_stay_full(self, run):
        n = 16
        fanout = 4
        params = ProtocolParams(edge_mode="sparse", edge_fanout=fanout)
        dep, _ = run(ClanConfig.baseline(n), until=6.0, params=params)
        quorum = dep.cfg.quorum
        checked_sparse = checked_leader = 0
        store = dep.nodes[0].store
        max_round = max(v.round for v in dep.nodes[0].ordered_vertices)
        for r in range(2, max_round):  # round 1 references genesis (full)
            leader = dep.schedule.leader(r)
            for v in store.round_vertices(r):
                if v.source == leader:
                    # The leader keeps full edges: the deterministic
                    # backbone of the indirect-commit walk.
                    assert len(v.strong_edges) >= quorum
                    checked_leader += 1
                else:
                    assert len(v.strong_edges) <= fanout
                    checked_sparse += 1
        assert checked_sparse > 0 and checked_leader > 0

    def test_sparse_vertices_keep_voting(self, run):
        n = 16
        dep, _ = run(
            ClanConfig.baseline(n), until=6.0,
            params=ProtocolParams(edge_mode="sparse", edge_fanout=4),
        )
        node = dep.nodes[0]
        # Direct commits require quorum votes; a healthy sparse run must
        # keep committing every round through the mandatory leader edge.
        assert node.last_committed_round > 10
        voted_rounds = [r for r, voters in node.votes.items() if len(voters) >= dep.cfg.quorum]
        assert len(voted_rounds) > 10

    def test_selection_is_deterministic_across_replicas(self, run):
        params = ProtocolParams(edge_mode="sparse", edge_fanout=4)
        dep_a, _ = run(ClanConfig.baseline(8), until=5.0, params=params)
        dep_b, _ = run(ClanConfig.baseline(8), until=5.0, params=params)
        assert _ordered_keys(dep_a, range(8)) == _ordered_keys(dep_b, range(8))
        va = {v.key: v.strong_edges for v in dep_a.nodes[0].ordered_vertices}
        vb = {v.key: v.strong_edges for v in dep_b.nodes[0].ordered_vertices}
        assert va == vb

    def test_sparse_shrinks_edge_references(self, run):
        n = 16
        full, _ = run(ClanConfig.baseline(n), until=5.0)
        sparse, _ = run(
            ClanConfig.baseline(n), until=5.0,
            params=ProtocolParams(edge_mode="sparse", edge_fanout=4),
        )
        refs_full = sum(nd.rbc.strong_refs_sent for nd in full.nodes)
        refs_sparse = sum(nd.rbc.strong_refs_sent for nd in sparse.nodes)
        per_vertex_full = refs_full / sum(nd.rbc.vertices_broadcast for nd in full.nodes)
        per_vertex_sparse = refs_sparse / sum(
            nd.rbc.vertices_broadcast for nd in sparse.nodes
        )
        assert per_vertex_full >= full.cfg.quorum  # full mode: >= 2f+1 refs
        assert per_vertex_sparse < per_vertex_full / 2

    def test_single_clan_sparse_is_consistent(self, run):
        cfg = ClanConfig.single_clan(12, 6, seed=7)
        dep, _ = run(
            cfg, until=6.0, params=ProtocolParams(edge_mode="sparse"),
        )
        dep.check_total_order_consistency()
        assert dep.min_ordered() > 10

    def test_param_validation(self):
        with pytest.raises(ConfigError):
            ProtocolParams(edge_mode="thin")
        with pytest.raises(ConfigError):
            ProtocolParams(edge_fanout=-1)
        assert ProtocolParams(edge_fanout=0).fanout_for(150) == 8
        assert ProtocolParams(edge_fanout=0).fanout_for(4) == 3
        assert ProtocolParams(edge_fanout=6).fanout_for(150) == 6
