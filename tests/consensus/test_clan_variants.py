"""Tests for single-clan and multi-clan Sailfish (§5, §6)."""


from repro.committees import ClanConfig
from repro.net.latency import UniformLatencyModel


def test_single_clan_progress_and_agreement(run):
    cfg = ClanConfig.single_clan(10, 5, seed=1)
    dep, _ = run(cfg, until=5.0)
    dep.check_total_order_consistency()
    assert dep.min_ordered() > 50


def test_single_clan_only_clan_members_propose_blocks(run):
    cfg = ClanConfig.single_clan(10, 5, seed=1)
    dep, _ = run(cfg, until=4.0)
    for vertex in dep.ordered_vertices_everywhere():
        if vertex.block_digest is not None:
            assert vertex.source in cfg.clan(0)
        elif vertex.round >= 1:
            # Metadata-only vertices come from outside the clan.
            assert vertex.source not in cfg.clan(0)


def test_single_clan_blocks_confined_to_clan(run):
    """Nodes outside the clan never hold block bodies."""
    cfg = ClanConfig.single_clan(10, 5, seed=1)
    dep, _ = run(cfg, until=4.0)
    for node in dep.nodes:
        if node.node_id in cfg.clan(0):
            assert node.blocks, f"clan member {node.node_id} should hold blocks"
        else:
            assert not node.blocks, f"outsider {node.node_id} holds blocks"


def test_single_clan_sender_bytes_lower_than_baseline(run):
    """The §5 claim: clan dissemination slashes proposer bandwidth."""
    base_dep, _ = run(ClanConfig.baseline(10), until=3.0, txns=100)
    clan_cfg = ClanConfig.single_clan(10, 5, seed=1)
    clan_dep, _ = run(clan_cfg, until=3.0, txns=100)
    proposer = sorted(clan_cfg.clan(0))[0]
    base_bytes = base_dep.network.stats.bytes_sent[proposer]
    clan_bytes = clan_dep.network.stats.bytes_sent[proposer]
    assert clan_bytes < 0.75 * base_bytes


def test_multi_clan_progress_and_agreement(run):
    cfg = ClanConfig.multi_clan(12, 3, seed=2)
    dep, _ = run(cfg, until=5.0)
    dep.check_total_order_consistency()
    assert dep.min_ordered() > 50


def test_multi_clan_everyone_proposes_blocks(run):
    cfg = ClanConfig.multi_clan(12, 3, seed=2)
    dep, _ = run(cfg, until=4.0)
    proposers = {
        v.source for v in dep.ordered_vertices_everywhere() if v.block_digest
    }
    assert proposers == set(range(12))


def test_multi_clan_blocks_stay_in_proposer_clan(run):
    cfg = ClanConfig.multi_clan(12, 3, seed=2)
    dep, workload = run(cfg, until=4.0)
    # Each node's held blocks must all come from proposers of its own clan.
    for node in dep.nodes:
        my_clan = cfg.clan_index_of(node.node_id)
        for block in node.blocks.values():
            assert cfg.clan_index_of(block.proposer) == my_clan


def test_multi_clan_global_order_spans_all_clans(run):
    """Blocks are clan-local but the total order is global (§6)."""
    cfg = ClanConfig.multi_clan(12, 3, seed=2)
    dep, _ = run(cfg, until=4.0)
    ordered = dep.ordered_vertices_everywhere()
    clans_seen = {
        cfg.clan_index_of(v.source) for v in ordered if v.block_digest is not None
    }
    assert clans_seen == {0, 1, 2}
    # And the order is identical at nodes of different clans (checked by
    # ordered_vertices_everywhere via check_total_order_consistency).


def test_single_clan_vertex_only_nodes_still_vote(run):
    """Non-clan nodes propose metadata vertices that drive commits."""
    cfg = ClanConfig.single_clan(10, 5, seed=1)
    dep, _ = run(cfg, until=3.0)
    outsider = next(i for i in range(10) if i not in cfg.clan(0))
    node = dep.nodes[outsider]
    assert node.round > 10  # fully participates in consensus
    assert node.ordered_log  # and learns the global order


def test_clan_latency_beats_baseline_under_load(run):
    """§7: single-clan Sailfish shows lower latency — outsiders ECHO on the
    (small) vertex without waiting for block bodies."""
    latency = UniformLatencyModel(0.05)
    kwargs = dict(until=4.0, txns=400, bandwidth_bps=80e6, latency=latency)
    base_dep, base_wl = run(ClanConfig.baseline(10), **kwargs)
    clan_dep, clan_wl = run(ClanConfig.single_clan(10, 5, seed=1), **kwargs)

    def avg_latency(dep, workload):
        node = dep.nodes[dep.honest_ids[0]]
        samples = []
        for vertex, committed_at in node.ordered_log:
            if vertex.block_digest is None:
                continue
            _, created_at = workload.blocks[vertex.block_digest]
            samples.append(committed_at - created_at)
        return sum(samples) / len(samples)

    assert avg_latency(clan_dep, clan_wl) < avg_latency(base_dep, base_wl)
