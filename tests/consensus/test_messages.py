"""Wire-size and structure tests for consensus messages.

The bandwidth model's realism rests on these sizes: the §5 claim that
"references are much smaller than payloads" must hold numerically.
"""


from repro.consensus.messages import (
    NoVoteCertificate,
    NoVoteMsg,
    VertexCertMsg,
    VertexEchoMsg,
    VertexReadyMsg,
    VertexValMsg,
    no_vote_statement,
    vertex_echo_statement,
    vertex_val_statement,
)
from repro.crypto.certificates import build_certificate
from repro.crypto.signatures import Pki
from repro.dag.block import Block
from repro.dag.vertex import Vertex, genesis_vertex
from repro.net import sizes

PKI = Pki(10, seed=1)


def make_vertex(n=10, with_block=False):
    refs = tuple(genesis_vertex(i).ref() for i in range(n))
    block = None
    digest = None
    if with_block:
        block = Block.synthetic(0, 1, txn_count=1000, created_at=0.0)
        digest = block.payload_digest()
    return Vertex(1, 0, digest, refs), block


def test_val_with_block_dominated_by_payload():
    vertex, block = make_vertex(with_block=True)
    sig = PKI.key(0).sign(vertex_val_statement(0, 1, vertex.vertex_digest()))
    with_block = VertexValMsg(vertex, block, sig)
    without = VertexValMsg(vertex, None, sig)
    assert with_block.wire_size() - without.wire_size() == block.wire_size()
    # ℓ >> vertex metadata at realistic loads (the §5 premise).
    assert block.wire_size() > 10 * vertex.wire_size()


def test_vertex_metadata_scales_with_n_not_payload():
    small, _ = make_vertex(n=4)
    large, _ = make_vertex(n=10)
    assert large.wire_size() - small.wire_size() == 6 * sizes.VERTEX_REF_SIZE


def test_echo_and_ready_sizes():
    echo_signed = VertexEchoMsg(0, 1, b"\x00" * 32, PKI.key(1).sign(b"\x00" * 32))
    echo_plain = VertexEchoMsg(0, 1, b"\x00" * 32, None)
    ready = VertexReadyMsg(0, 1, b"\x00" * 32)
    assert echo_signed.wire_size() - echo_plain.wire_size() == sizes.SIGNATURE_SIZE
    assert ready.wire_size() == sizes.HEADER_SIZE + sizes.HASH_SIZE
    assert echo_signed.signed and not echo_plain.signed


def test_cert_size_includes_bitmap():
    stmt = vertex_echo_statement(0, 1, b"\x01" * 32)
    cert = build_certificate([PKI.key(i).sign(stmt) for i in range(7)])
    msg_small = VertexCertMsg(0, 1, b"\x01" * 32, cert, n=8)
    msg_large = VertexCertMsg(0, 1, b"\x01" * 32, cert, n=800)
    assert msg_large.wire_size() > msg_small.wire_size()
    assert msg_large.wire_size() - msg_small.wire_size() == 100 - 1  # bitmap bytes


def test_no_vote_message_and_certificate():
    msg = NoVoteMsg(5, PKI.key(2).sign(no_vote_statement(5)))
    assert msg.wire_size() == sizes.HEADER_SIZE + sizes.SIGNATURE_SIZE
    cert = build_certificate([PKI.key(i).sign(no_vote_statement(5)) for i in range(7)])
    nvc = NoVoteCertificate(5, cert)
    assert nvc.round == 5
    assert len(nvc.signers) == 7
    assert nvc.wire_size() > 0


def test_statements_domain_separated():
    d = b"\x02" * 32
    assert vertex_val_statement(0, 1, d) != vertex_echo_statement(0, 1, d)
    assert no_vote_statement(1) != no_vote_statement(2)
    assert vertex_echo_statement(0, 1, d) != vertex_echo_statement(0, 2, d)
    assert vertex_echo_statement(0, 1, d) != vertex_echo_statement(1, 1, d)


def test_val_properties_expose_origin_round():
    vertex, block = make_vertex(with_block=True)
    msg = VertexValMsg(vertex, block, None)
    assert msg.origin == 0 and msg.round == 1
    assert not msg.signed
