"""Tests for epoch-based clan rotation."""

import pytest

from repro.committees import ClanConfig
from repro.committees.rotation import ClanSchedule, StaticSchedule
from repro.consensus import Deployment, ProtocolParams
from repro.errors import CommitteeError
from repro.smr.mempool import SyntheticWorkload


def test_epoch_boundaries():
    schedule = ClanSchedule("single-clan", 12, epoch_length=10, clan_size=6, seed=1)
    assert schedule.epoch_of(1) == 0
    assert schedule.epoch_of(10) == 0
    assert schedule.epoch_of(11) == 1
    assert schedule.epoch_of(21) == 2


def test_zero_epoch_length_never_rotates():
    schedule = ClanSchedule("single-clan", 12, epoch_length=0, clan_size=6, seed=1)
    assert schedule.cfg_at(1) is schedule.cfg_at(10_000)


def test_rotation_changes_clans():
    schedule = ClanSchedule("single-clan", 20, epoch_length=5, clan_size=8, seed=1)
    clans = {schedule.cfg_of_epoch(e).clan(0) for e in range(5)}
    assert len(clans) > 1  # re-elected clans differ across epochs
    for e in range(5):
        assert len(schedule.cfg_of_epoch(e).clan(0)) == 8


@pytest.mark.rederives_rng_streams
def test_schedule_deterministic():
    a = ClanSchedule("multi-clan", 12, epoch_length=7, clans=2, seed=3)
    b = ClanSchedule("multi-clan", 12, epoch_length=7, clans=2, seed=3)
    for e in range(4):
        assert a.cfg_of_epoch(e).clans == b.cfg_of_epoch(e).clans


def test_static_schedule_wrapper():
    cfg = ClanConfig.baseline(7)
    schedule = StaticSchedule(cfg)
    assert schedule.cfg_at(99) is cfg
    assert schedule.epoch_of(99) == 0


def test_invalid_schedule_params():
    with pytest.raises(CommitteeError):
        ClanSchedule("bogus", 10)
    with pytest.raises(CommitteeError):
        ClanSchedule("single-clan", 10, clan_size=None)
    with pytest.raises(CommitteeError):
        ClanSchedule("baseline", 10, epoch_length=-1)


def test_consensus_progresses_across_epoch_boundaries():
    n = 12
    schedule = ClanSchedule("single-clan", n, epoch_length=8, clan_size=6, seed=4)
    workload = SyntheticWorkload(txns_per_proposal=5)
    deployment = Deployment(
        schedule.cfg_at(1),
        ProtocolParams(),
        make_block=workload.make_block,
        clan_schedule=schedule,
        seed=4,
    )
    deployment.start()
    deployment.run(until=8.0, max_events=10_000_000)
    deployment.check_total_order_consistency()
    rounds = min(node.round for node in deployment.nodes)
    assert rounds > 24  # crossed at least three epoch boundaries
    assert deployment.min_ordered() > 40


def test_blocks_follow_the_epochs_clan():
    """Every ordered block-bearing vertex was proposed by (and its block held
    within) the clan in force for its round."""
    n = 12
    schedule = ClanSchedule("single-clan", n, epoch_length=8, clan_size=6, seed=4)
    workload = SyntheticWorkload(txns_per_proposal=5)
    deployment = Deployment(
        schedule.cfg_at(1),
        ProtocolParams(),
        make_block=workload.make_block,
        clan_schedule=schedule,
        seed=4,
    )
    deployment.start()
    deployment.run(until=8.0, max_events=10_000_000)
    ordered = deployment.ordered_vertices_everywhere()
    epochs_seen = set()
    for vertex in ordered:
        cfg = schedule.cfg_at(vertex.round)
        epochs_seen.add(schedule.epoch_of(vertex.round))
        if vertex.block_digest is not None:
            assert vertex.source in cfg.block_proposers, (
                f"round {vertex.round}: {vertex.source} proposed a block but "
                f"is not in the epoch's clan"
            )
    assert len(epochs_seen) >= 3


def test_rotation_block_holdings_match_epochs():
    """A node holds exactly the blocks of the epochs in which it served."""
    n = 12
    schedule = ClanSchedule("single-clan", n, epoch_length=10, clan_size=6, seed=5)
    workload = SyntheticWorkload(txns_per_proposal=5)
    deployment = Deployment(
        schedule.cfg_at(1),
        ProtocolParams(),
        make_block=workload.make_block,
        clan_schedule=schedule,
        seed=5,
    )
    deployment.start()
    deployment.run(until=8.0, max_events=10_000_000)
    ordered = deployment.ordered_vertices_everywhere()
    # Map block digest -> round to locate each block's epoch.
    round_of = {
        v.block_digest: v.round for v in ordered if v.block_digest is not None
    }
    for node in deployment.nodes:
        for digest, block in node.blocks.items():
            round_ = round_of.get(digest)
            if round_ is None:
                continue  # not in the common ordered prefix
            cfg = schedule.cfg_at(round_)
            if block.proposer == node.node_id:
                continue  # own proposals are always held
            assert node.node_id in cfg.clan(cfg.block_clan_of(block.proposer))
