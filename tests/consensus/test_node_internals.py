"""White-box tests for SailfishNode internals: votes, no-votes, NVC validity."""


from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.consensus.messages import (
    NoVoteCertificate,
    NoVoteMsg,
    no_vote_statement,
)
from repro.crypto.certificates import build_certificate
from repro.crypto.signatures import Signature
from repro.dag.vertex import Vertex, genesis_vertex
from repro.net.latency import UniformLatencyModel
from repro.smr.mempool import SyntheticWorkload

N = 7


def build(crashed=None, leader_timeout=0.8):
    workload = SyntheticWorkload(txns_per_proposal=2)
    deployment = Deployment(
        ClanConfig.baseline(N),
        ProtocolParams(leader_timeout=leader_timeout),
        latency=UniformLatencyModel(0.05),
        make_block=workload.make_block,
        crashed=crashed,
        seed=8,
    )
    return deployment


def test_vote_counting_deduplicates_sources():
    deployment = build()
    node = deployment.nodes[0]
    refs = tuple(genesis_vertex(i).ref() for i in range(N))
    leader1 = deployment.schedule.leader(1)
    leader_vertex = Vertex(1, leader1, None, refs)
    node._on_vertex_delivered(leader_vertex)
    # Feed the same voting vertex twice through the first-VAL hook.
    vote_vertex = Vertex(2, 3, None, (leader_vertex.ref(),))
    node._on_first_val(vote_vertex)
    node._on_first_val(vote_vertex)
    assert node.votes[1] == {3}


def test_no_vote_signature_checked():
    deployment = build()
    node = deployment.nodes[0]
    bogus = Signature(2, no_vote_statement(1), b"\x00" * 16)
    node._on_no_vote(2, NoVoteMsg(1, bogus))
    assert 2 not in node.no_votes[1]
    good = deployment.pki.key(2).sign(no_vote_statement(1))
    node._on_no_vote(2, NoVoteMsg(1, good))
    assert 2 in node.no_votes[1]


def test_no_vote_from_wrong_sender_rejected():
    deployment = build()
    node = deployment.nodes[0]
    sig = deployment.pki.key(2).sign(no_vote_statement(1))
    node._on_no_vote(3, NoVoteMsg(1, sig))  # relayed under the wrong src
    assert not node.no_votes[1]


def test_invalid_leader_vertex_without_nvc_rejected():
    """A leader vertex skipping the previous leader without an NVC is not
    vote-eligible."""
    deployment = build()
    node = deployment.nodes[0]
    refs = tuple(genesis_vertex(i).ref() for i in range(N))
    # Build rounds 1: all vertices delivered.
    r1 = [Vertex(1, s, None, refs) for s in range(N)]
    for v in r1:
        node._on_vertex_delivered(v)
    leader2 = deployment.schedule.leader(2)
    prev_leader = deployment.schedule.leader(1)
    non_leader_refs = tuple(v.ref() for v in r1 if v.source != prev_leader)
    invalid_leader_vertex = Vertex(2, leader2, None, non_leader_refs, nvc=None)
    node._on_vertex_delivered(invalid_leader_vertex)
    assert node._leader_vertex_valid(2) is False


def test_leader_vertex_with_valid_nvc_accepted():
    deployment = build()
    node = deployment.nodes[0]
    refs = tuple(genesis_vertex(i).ref() for i in range(N))
    r1 = [Vertex(1, s, None, refs) for s in range(N)]
    for v in r1:
        node._on_vertex_delivered(v)
    leader2 = deployment.schedule.leader(2)
    prev_leader = deployment.schedule.leader(1)
    non_leader_refs = tuple(v.ref() for v in r1 if v.source != prev_leader)
    sigs = [
        deployment.pki.key(i).sign(no_vote_statement(1)) for i in range(5)
    ]
    nvc = NoVoteCertificate(1, build_certificate(sigs))
    leader_vertex = Vertex(2, leader2, None, non_leader_refs, nvc=nvc)
    node._on_vertex_delivered(leader_vertex)
    assert node._leader_vertex_valid(2) is True


def test_leader_vertex_with_undersized_nvc_rejected():
    deployment = build()
    node = deployment.nodes[0]
    refs = tuple(genesis_vertex(i).ref() for i in range(N))
    r1 = [Vertex(1, s, None, refs) for s in range(N)]
    for v in r1:
        node._on_vertex_delivered(v)
    leader2 = deployment.schedule.leader(2)
    prev_leader = deployment.schedule.leader(1)
    non_leader_refs = tuple(v.ref() for v in r1 if v.source != prev_leader)
    sigs = [deployment.pki.key(i).sign(no_vote_statement(1)) for i in range(3)]
    nvc = NoVoteCertificate(1, build_certificate(sigs))  # only 3 < 2f+1
    leader_vertex = Vertex(2, leader2, None, non_leader_refs, nvc=nvc)
    node._on_vertex_delivered(leader_vertex)
    assert node._leader_vertex_valid(2) is False


def test_no_vote_promise_withholds_leader_edge():
    """After no-voting round r, a (non-next-leader) node's round r+1 vertex
    must not reference the round-r leader vertex even if it arrives late."""
    deployment = build(crashed=None, leader_timeout=0.3)
    # Use a targeted run: crash nothing, manually drive node 0.
    node = deployment.nodes[0]
    refs = tuple(genesis_vertex(i).ref() for i in range(N))
    r1 = [Vertex(1, s, None, refs) for s in range(N)]
    prev_leader = deployment.schedule.leader(1)
    node.started = True
    node.round = 1
    node.no_voted.add(1)  # simulated timeout happened
    for v in r1:
        node.store.add(v)
    edges = node._strong_edges(2)
    if deployment.schedule.leader(2) != node.node_id:
        assert all(ref.source != prev_leader for ref in edges)
    else:
        # The next leader keeps the edge (documented liveness exception).
        assert any(ref.source == prev_leader for ref in edges)


def test_commit_requires_attached_leader_vertex():
    deployment = build()
    node = deployment.nodes[0]
    # Stuff votes without the leader vertex: no commit.
    node.votes[1] = set(range(5))
    node._try_commit(1)
    assert node.committed_leaders == []


def test_crashed_leader_rounds_skipped_in_committed_sequence():
    deployment = build(crashed={4}, leader_timeout=0.5)
    deployment.start()
    deployment.run(until=15.0, max_events=10_000_000)
    deployment.check_total_order_consistency()
    node = deployment.nodes[0]
    committed_rounds = [v.round for v in node.committed_leaders]
    assert committed_rounds == sorted(committed_rounds)
    # Rounds led by the crashed node never appear as committed leaders.
    for vertex in node.committed_leaders:
        assert vertex.source != 4
