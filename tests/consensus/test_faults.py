"""Fault-injection tests: crashes, equivocation, withholding, no-vote path."""


from repro.committees import ClanConfig
from repro.consensus import ProtocolParams
from repro.consensus.byzantine import (
    CrashAt,
    EquivocatingProposer,
    LazyVoter,
    SilentNode,
    WithholdingProposer,
)
from repro.net.adversary import PartialSynchronyAdversary


def test_liveness_with_f_crashed_from_start(run):
    dep, _ = run(ClanConfig.baseline(10), until=25.0, crashed={7, 8, 9})
    dep.check_total_order_consistency()
    assert dep.min_ordered() > 30
    assert all(dep.nodes[i].round > 15 for i in dep.honest_ids)


def test_liveness_with_leader_crash_mid_run(run):
    """A node crashing mid-run forces the no-vote/NVC path whenever it leads."""
    dep, _ = run(ClanConfig.baseline(10), until=25.0, byzantine={4: CrashAt(2.0)})
    dep.check_total_order_consistency()
    assert dep.min_ordered() > 30
    # The crashed node's pre-crash vertices may still be ordered; afterwards
    # no vertex from it appears.
    late = [v for v, t in dep.nodes[0].ordered_log if v.source == 4 and t > 10.0]
    assert all(v.round < 50 for v in late)


def test_no_vote_certificates_used_after_leader_crash(run):
    dep, _ = run(ClanConfig.baseline(7), until=20.0, crashed={3})
    node = dep.nodes[0]
    nvc_vertices = [v for v in node.ordered_vertices if v.nvc is not None]
    # Node 3 leads some rounds; every successor leader must embed an NVC.
    assert nvc_vertices, "expected NVC-bearing leader vertices after crashes"
    for vertex in nvc_vertices:
        assert vertex.nvc.round == vertex.round - 1
        assert len(vertex.nvc.signers) >= dep.cfg.quorum


def test_equivocating_proposer_cannot_split_order(run):
    dep, _ = run(
        ClanConfig.baseline(7), until=10.0, byzantine={3: EquivocatingProposer()}
    )
    dep.check_total_order_consistency()
    assert dep.min_ordered() > 20
    # At most one version of each equivocated vertex is ever ordered.
    for i in dep.honest_ids:
        keys = dep.nodes[i].ordered_keys()
        assert len(keys) == len(set(keys))


def test_equivocating_proposer_detected(run):
    dep, _ = run(
        ClanConfig.baseline(7), until=5.0, byzantine={3: EquivocatingProposer()}
    )
    flagged = 0
    for i in dep.honest_ids:
        rbc = dep.nodes[i].rbc
        for (origin, _round), state in rbc.instances.items():
            # Evidence of equivocation: conflicting VALs seen directly, or
            # ECHOes for two different digests within one instance.
            if origin == 3 and (state.conflicting or len(state.echoes) > 1):
                flagged += 1
                break
    assert flagged >= 1  # at least one honest node observed the equivocation


def test_silent_node_does_not_block_progress(run):
    dep, _ = run(ClanConfig.baseline(7), until=20.0, byzantine={2: SilentNode()})
    dep.check_total_order_consistency()
    assert dep.min_ordered() > 30
    assert all(v.source != 2 for v in dep.nodes[0].ordered_vertices)


def test_lazy_voter_delays_but_does_not_stop_commits(run):
    dep, _ = run(ClanConfig.baseline(7), until=10.0, byzantine={2: LazyVoter()})
    dep.check_total_order_consistency()
    assert len(dep.nodes[0].committed_leaders) > 10


def test_withholding_proposer_blocks_pulled_by_clan(run):
    """Sender gives its block to f_c+1 clan members; the rest pull it."""
    cfg = ClanConfig.single_clan(10, 5, seed=1)
    proposer = sorted(cfg.clan(0))[0]
    dep, _ = run(
        cfg, until=10.0, byzantine={proposer: WithholdingProposer(receive_full=3)}
    )
    dep.check_total_order_consistency()
    assert dep.min_ordered() > 20
    # Every honest clan member ends up holding the withheld blocks.
    ordered_digests = {
        v.block_digest
        for v in dep.ordered_vertices_everywhere()
        if v.source == proposer and v.block_digest
    }
    assert ordered_digests
    for member in cfg.clan(0):
        if member == proposer:
            continue
        held = set(dep.nodes[member].blocks)
        missing = ordered_digests - held
        assert not missing, f"clan member {member} missing {len(missing)} blocks"


def test_withholding_below_clan_quorum_starves_instance(run):
    """With < f_c+1 clan copies the instance cannot complete — and consensus
    simply proceeds without that proposer's vertices."""
    cfg = ClanConfig.single_clan(10, 5, seed=1)
    proposer = sorted(cfg.clan(0))[0]
    dep, _ = run(
        cfg, until=10.0, byzantine={proposer: WithholdingProposer(receive_full=1)}
    )
    dep.check_total_order_consistency()
    assert dep.min_ordered() > 20
    assert all(v.source != proposer for v in dep.ordered_vertices_everywhere())


def test_progress_resumes_after_gst():
    """Heavy pre-GST asynchrony: little progress before, steady after."""
    from tests.consensus.conftest import run_deployment

    adversary = PartialSynchronyAdversary(gst=5.0, max_extra=4.0, delta=0.5, seed=3)
    dep, _ = run_deployment(
        ClanConfig.baseline(7),
        until=25.0,
        adversary=adversary,
        params=ProtocolParams(leader_timeout=3.0),
    )
    dep.check_total_order_consistency()
    post_gst = [t for _, t in dep.nodes[0].ordered_log if t > 6.0]
    assert len(post_gst) > 20


def test_combined_faults_at_bound(run):
    """n=13, f=4: one crash + one equivocator + one silent + one lazy."""
    dep, _ = run(
        ClanConfig.baseline(13),
        until=25.0,
        crashed={12},
        byzantine={9: EquivocatingProposer(), 10: SilentNode(), 11: LazyVoter()},
    )
    dep.check_total_order_consistency()
    assert dep.min_ordered() > 30
