#!/usr/bin/env python3
"""Perf smoke benchmark: one small deterministic run, gated against a baseline.

Runs a scaled-down single-clan configuration (< 60 s wall) and emits
``BENCH_smoke.json`` with

* the *simulated* metrics (deterministic across machines — the regression
  gate on protocol behavior),
* ``sim_events`` (deterministic — any change is a real behavioral change), and
* ``events_per_sec`` = sim_events / wall (the core-speed gate: catches
  simulator slowdowns; loosely toleranced because CI runners are noisy).

Usage::

    python scripts/bench_smoke.py --out BENCH_smoke.json          # just measure
    python scripts/bench_smoke.py --check                         # gate vs baseline
    python scripts/bench_smoke.py --update-baseline               # refresh baseline

``--check`` exits non-zero if simulated throughput drops more than
``--tolerance`` (default 20%) below ``benchmarks/baselines/smoke.json``, or
if events/sec drops more than ``--eps-tolerance`` (default 60%) below the
baseline.  ``--jobs`` routes the run through the parallel engine
(:func:`repro.bench.parallel.run_grid`) — with one config it mostly checks
the engine itself; results are identical at any worker count.
"""

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.parallel import run_grid  # noqa: E402
from repro.bench.profiling import SMOKE_CONFIG  # noqa: E402
from repro.bench.runner import _simulate  # noqa: E402

DEFAULT_BASELINE = os.path.join(REPO_ROOT, "benchmarks", "baselines", "smoke.json")


def run_smoke(jobs: int = 0) -> dict:
    start = time.perf_counter()
    if jobs:
        # Through the parallel engine (cache off: the gate must simulate).
        metrics = run_grid([SMOKE_CONFIG], jobs=jobs, cache=False)[0]
    else:
        metrics = _simulate(SMOKE_CONFIG)
    wall = time.perf_counter() - start
    return {
        "config": {
            "protocol": SMOKE_CONFIG.protocol,
            "n": SMOKE_CONFIG.n,
            "clan_size": SMOKE_CONFIG.clan_size,
            "txns_per_proposal": SMOKE_CONFIG.txns_per_proposal,
            "duration": SMOKE_CONFIG.duration,
        },
        # Deterministic simulated results: the regression gate.
        "throughput_tps": round(metrics.throughput_tps, 2),
        "avg_latency_s": round(metrics.avg_latency_s, 4),
        "p95_latency_s": round(metrics.p95_latency_s, 4),
        "committed_txns": metrics.committed_txns,
        "rounds": metrics.rounds,
        "sim_events": metrics.sim_events,
        # Machine-dependent: wall is informational, events/sec is gated with
        # a loose tolerance (it only has to catch order-of-magnitude rot).
        "wall_s": round(wall, 3),
        "events_per_sec": round(metrics.sim_events / wall, 1) if wall > 0 else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_smoke.json", help="result JSON path")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="run through the parallel engine with this many workers (0 = direct)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if throughput or events/sec regress beyond tolerance vs baseline",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional throughput drop (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--eps-tolerance",
        type=float,
        default=0.60,
        help="allowed fractional events/sec drop (default 0.60 — runner noise)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the measured result to the baseline path",
    )
    args = parser.parse_args(argv)

    result = run_smoke(jobs=args.jobs)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(
        f"smoke: {result['throughput_tps'] / 1000.0:.2f} kTPS, "
        f"avg latency {result['avg_latency_s']:.3f} s, "
        f"{result['committed_txns']} txns, "
        f"{result['sim_events']} events in {result['wall_s']:.2f} s wall "
        f"({result['events_per_sec']:,.0f} events/sec)"
    )
    print(f"wrote {args.out}")

    if args.update_baseline:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        baseline = dict(result)
        baseline.pop("wall_s", None)  # machine-dependent; keep baseline portable
        with open(args.baseline, "w") as fh:
            json.dump(baseline, fh, indent=2)
            fh.write("\n")
        print(f"updated baseline {args.baseline}")
        return 0

    if args.check:
        if not os.path.exists(args.baseline):
            print(f"FAIL: baseline {args.baseline} missing", file=sys.stderr)
            return 1
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = []
        floor = baseline["throughput_tps"] * (1.0 - args.tolerance)
        measured = result["throughput_tps"]
        if measured < floor:
            failures.append(
                f"throughput {measured:.0f} TPS < floor {floor:.0f} TPS "
                f"(baseline {baseline['throughput_tps']:.0f} TPS "
                f"- {args.tolerance:.0%} tolerance)"
            )
        else:
            print(
                f"OK: throughput {measured:.0f} TPS >= floor {floor:.0f} TPS "
                f"(baseline {baseline['throughput_tps']:.0f} TPS)"
            )
        eps_base = baseline.get("events_per_sec")
        if eps_base:
            eps_floor = eps_base * (1.0 - args.eps_tolerance)
            eps = result["events_per_sec"]
            if eps < eps_floor:
                failures.append(
                    f"core speed {eps:,.0f} events/sec < floor {eps_floor:,.0f} "
                    f"(baseline {eps_base:,.0f} - {args.eps_tolerance:.0%} tolerance)"
                )
            else:
                print(
                    f"OK: core speed {eps:,.0f} events/sec >= floor "
                    f"{eps_floor:,.0f} (baseline {eps_base:,.0f})"
                )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
