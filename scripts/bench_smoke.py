#!/usr/bin/env python3
"""Perf smoke benchmark: one small deterministic run, gated against a baseline.

Runs a scaled-down single-clan configuration (< 60 s wall) and emits
``BENCH_smoke.json`` with both the *simulated* metrics (deterministic across
machines — the regression gate) and the wall-clock time (informational only;
CI runners are too noisy to gate on).

Usage::

    python scripts/bench_smoke.py --out BENCH_smoke.json          # just measure
    python scripts/bench_smoke.py --check                         # gate vs baseline
    python scripts/bench_smoke.py --update-baseline               # refresh baseline

``--check`` exits non-zero if simulated throughput drops more than
``--tolerance`` (default 20%) below ``benchmarks/baselines/smoke.json``.
Because the simulation is deterministic, any change here is a real behavioral
change in the protocol stack, not machine noise.
"""

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.runner import ExperimentConfig, run_experiment  # noqa: E402

DEFAULT_BASELINE = os.path.join(REPO_ROOT, "benchmarks", "baselines", "smoke.json")

#: The smoke configuration: small enough for <60 s wall anywhere, big enough
#: to exercise RBC, commit, and the NIC queueing model.
SMOKE_CONFIG = ExperimentConfig(
    protocol="single-clan",
    n=12,
    clan_size=6,
    txns_per_proposal=250,
    bandwidth_bps=400e6,
    duration=6.0,
    warmup=2.0,
)


def run_smoke() -> dict:
    start = time.perf_counter()
    metrics = run_experiment(SMOKE_CONFIG)
    wall = time.perf_counter() - start
    return {
        "config": {
            "protocol": SMOKE_CONFIG.protocol,
            "n": SMOKE_CONFIG.n,
            "clan_size": SMOKE_CONFIG.clan_size,
            "txns_per_proposal": SMOKE_CONFIG.txns_per_proposal,
            "duration": SMOKE_CONFIG.duration,
        },
        # Deterministic simulated results: the regression gate.
        "throughput_tps": round(metrics.throughput_tps, 2),
        "avg_latency_s": round(metrics.avg_latency_s, 4),
        "p95_latency_s": round(metrics.p95_latency_s, 4),
        "committed_txns": metrics.committed_txns,
        "rounds": metrics.rounds,
        # Informational only: varies with the machine.
        "wall_s": round(wall, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_smoke.json", help="result JSON path")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if throughput regresses beyond --tolerance vs the baseline",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional throughput drop (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the measured result to the baseline path",
    )
    args = parser.parse_args(argv)

    result = run_smoke()
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(
        f"smoke: {result['throughput_tps'] / 1000.0:.2f} kTPS, "
        f"avg latency {result['avg_latency_s']:.3f} s, "
        f"{result['committed_txns']} txns in {result['wall_s']:.2f} s wall"
    )
    print(f"wrote {args.out}")

    if args.update_baseline:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        baseline = dict(result)
        baseline.pop("wall_s", None)  # machine-dependent; keep baseline portable
        with open(args.baseline, "w") as fh:
            json.dump(baseline, fh, indent=2)
            fh.write("\n")
        print(f"updated baseline {args.baseline}")
        return 0

    if args.check:
        if not os.path.exists(args.baseline):
            print(f"FAIL: baseline {args.baseline} missing", file=sys.stderr)
            return 1
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        floor = baseline["throughput_tps"] * (1.0 - args.tolerance)
        measured = result["throughput_tps"]
        if measured < floor:
            print(
                f"FAIL: throughput {measured:.0f} TPS < floor {floor:.0f} TPS "
                f"(baseline {baseline['throughput_tps']:.0f} TPS "
                f"- {args.tolerance:.0%} tolerance)",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: throughput {measured:.0f} TPS >= floor {floor:.0f} TPS "
            f"(baseline {baseline['throughput_tps']:.0f} TPS)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
