#!/usr/bin/env python3
"""Print EXPERIMENTS.md-ready tables from the current results/*.csv.

Run after ``pytest benchmarks/ --benchmark-only`` to refresh the
paper-vs-measured record:

    python scripts/refresh_experiments_tables.py
"""

import csv
import os

RESULTS = os.environ.get("REPRO_RESULTS_DIR", "results")


def load(name):
    path = os.path.join(RESULTS, f"{name}.csv")
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        return list(csv.DictReader(fh))


def fig5_summary():
    print("### Simulation peaks (throughput kTPS / latency at heaviest load)")
    for fig in ("fig5a", "fig5b", "fig5c"):
        rows = load(f"{fig}_sim")
        if not rows:
            continue
        protos = {}
        for r in rows:
            protos.setdefault(r["protocol"], []).append(r)
        cells = []
        for proto in ("sailfish", "single-clan", "multi-clan"):
            if proto not in protos:
                continue
            peak = max(float(r["throughput_ktps"]) for r in protos[proto])
            heavy = max(protos[proto], key=lambda r: int(r["txns/proposal"]))
            cells.append(f"{proto}: {peak:.1f}k @ {heavy['avg_latency_s']}s")
        print(f"  {fig} (n={rows[0]['n']}): " + " | ".join(cells))


def fig6_summary():
    rows = load("fig6_sim")
    if not rows:
        return
    print("\n### Fig. 6 multi/single throughput ratios")
    by = {}
    for r in rows:
        by[(r["protocol"], int(r["txns/proposal"]))] = float(r["throughput_ktps"])
    loads = sorted({int(r["txns/proposal"]) for r in rows})
    for point in loads:
        single = by.get(("single-clan", point))
        multi = by.get(("multi-clan", point))
        if single and multi:
            print(f"  load {point}: {multi / single:.2f}")


def strawman_summary():
    rows = load("strawman_comparison")
    if rows:
        print("\n### Straw-man comparison (δ units)")
        for r in rows:
            print(f"  {r['architecture']}: {r['avg_latency_delta']}δ")


if __name__ == "__main__":
    fig5_summary()
    fig6_summary()
    strawman_summary()
