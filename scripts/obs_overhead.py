#!/usr/bin/env python3
"""Tracing-overhead gate: sampled causal tracing must stay cheap.

Runs the smoke bench configuration twice — untraced, and with the full
causal tracer attached at ``--sample`` (default 1/16) — and compares
simulator events per wall second.  The CI gate fails when the traced run
costs more than ``--max-overhead`` (default 5%) events/sec.

Timing ratios are noisy on shared runners, so both sides take best-of
``--trials`` and the gate allows ``--retries`` full re-measurements before
declaring a real regression (the same protocol as
``tests/obs/test_overhead.py``).

Usage::

    python scripts/obs_overhead.py                 # measure + gate at 5%
    python scripts/obs_overhead.py --check         # exit 1 on breach
    python scripts/obs_overhead.py --sample 1 --max-overhead 0.5
"""

import argparse
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.profiling import SMOKE_CONFIG  # noqa: E402
from repro.bench.runner import _simulate  # noqa: E402
from repro.obs import Tracer  # noqa: E402


def parse_sample(text: str) -> float:
    if "/" in text:
        num, _, den = text.partition("/")
        return float(num) / float(den)
    return float(text)


def events_per_sec(tracer_factory, trials: int) -> float:
    """Best-of-N events/sec for the smoke config under one tracer setup."""
    best = 0.0
    for _ in range(trials):
        tracer = tracer_factory()
        start = time.perf_counter()
        metrics = _simulate(SMOKE_CONFIG, tracer=tracer)
        wall = time.perf_counter() - start
        best = max(best, metrics.sim_events / wall)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sample", default="1/16",
        help="tracer head-sampling rate (float or ratio; default 1/16)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=0.05,
        help="allowed fractional events/sec cost of tracing (0.05 = 5%%)",
    )
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument(
        "--retries", type=int, default=3,
        help="full re-measurements before declaring a regression",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when overhead exceeds --max-overhead",
    )
    args = parser.parse_args(argv)
    sample = parse_sample(args.sample)

    # Warm both paths so neither pays one-time setup costs in the timed runs.
    _simulate(SMOKE_CONFIG)
    _simulate(SMOKE_CONFIG, tracer=Tracer(sample=sample))

    overhead = None
    for attempt in range(1 + args.retries):
        bare = events_per_sec(lambda: None, args.trials)
        traced = events_per_sec(lambda: Tracer(sample=sample), args.trials)
        overhead = 1.0 - traced / bare
        print(
            f"attempt {attempt + 1}: untraced {bare:,.0f} events/sec, "
            f"traced@{args.sample} {traced:,.0f} events/sec "
            f"-> overhead {overhead:+.1%} (budget {args.max_overhead:.0%})"
        )
        if overhead <= args.max_overhead:
            print("OK: tracing overhead within budget")
            return 0
    if args.check:
        print(
            f"FAIL: tracing at sample={args.sample} costs {overhead:.1%} "
            f"events/sec (> {args.max_overhead:.0%}) after "
            f"{1 + args.retries} attempts",
            file=sys.stderr,
        )
        return 1
    print(f"WARNING: overhead {overhead:.1%} above budget (no --check: exit 0)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
