#!/usr/bin/env python3
"""Observability regression gate: metric summaries across runs.

Runs the deterministic traced SMR smoke (the same workload as
``python -m repro trace smr_smoke``) at full sampling, reduces the trace to
a metrics summary — histogram quantiles per span name, counter totals,
anomaly counts — and compares it against the committed ``OBS_baseline.json``
with noise-aware thresholds (exact aggregates at ``--rel-tol``, histogram
quantiles at ``--quantile-tol``).

The simulation is seeded and single-threaded, so counter totals and span
durations are exactly reproducible across machines; drift beyond the
thresholds means the *instrumentation or the protocol changed*, not the
hardware.  Regenerate the baseline after intentional changes with ``--out``.

Usage::

    python scripts/obs_regress.py --out OBS_baseline.json   # refresh baseline
    python scripts/obs_regress.py --check --compare OBS_baseline.json
"""

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.committees.config import ClanConfig  # noqa: E402
from repro.obs import Tracer, load_summary, save_summary, summarize_trace  # noqa: E402
from repro.obs.regression import (  # noqa: E402
    diff_summaries,
    format_findings,
    has_regressions,
)
from repro.smr.runtime import SmrRuntime  # noqa: E402


def traced_smoke_summary() -> dict:
    """The deterministic SMR smoke under full causal tracing -> summary."""
    tracer = Tracer(sample=1.0)
    runtime = SmrRuntime(ClanConfig.single_clan(10, 5, seed=1), tracer=tracer)
    client = runtime.new_client("obs-regress")
    runtime.start()
    for _ in range(20):
        runtime.submit(client, ("incr", "ctr", 1))
    runtime.run(until=6.0, max_events=10_000_000)
    if client.accepted_count() != 20:
        raise SystemExit(
            f"smoke run only accepted {client.accepted_count()}/20 txns — "
            "fix the run before gating metrics on it"
        )
    return summarize_trace(tracer)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=None, help="write the fresh summary here (baseline refresh)"
    )
    parser.add_argument(
        "--compare", default=None, metavar="BASELINE_JSON",
        help="committed summary to diff against (default: OBS_baseline.json "
        "when present)",
    )
    parser.add_argument(
        "--check", action="store_true", help="exit 1 on any regression finding"
    )
    parser.add_argument("--rel-tol", type=float, default=0.10)
    parser.add_argument("--quantile-tol", type=float, default=0.50)
    args = parser.parse_args(argv)

    summary = traced_smoke_summary()
    counters = summary.get("counters", {})
    print(
        f"smoke summary: {len(counters)} counters, "
        f"{len(summary.get('histograms', {}))} histograms"
    )
    if args.out:
        save_summary(summary, args.out)
        print(f"summary written to {args.out}")
        return 0

    baseline_path = args.compare
    if baseline_path is None and os.path.exists(
        os.path.join(REPO_ROOT, "OBS_baseline.json")
    ):
        baseline_path = os.path.join(REPO_ROOT, "OBS_baseline.json")
    if baseline_path is None:
        print("no baseline to compare against (use --out to create one)")
        return 0
    base = load_summary(baseline_path)
    findings = diff_summaries(
        base, summary, rel_tol=args.rel_tol, quantile_tol=args.quantile_tol
    )
    print(format_findings(findings))
    if has_regressions(findings):
        if args.check:
            print("FAIL: observability metrics drifted from the baseline",
                  file=sys.stderr)
            return 1
        print("WARNING: drift beyond thresholds (no --check: exit 0)")
    else:
        print("OK: metrics match the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
