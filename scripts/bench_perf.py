#!/usr/bin/env python3
"""Perf benchmark: core speed (events/sec) + parallel-engine speedup.

Produces ``BENCH_perf.json`` with

* **core speed** — simulator events per wall second on the smoke
  configuration (best of ``--trials``), comparable against the
  pre-optimization figure via ``--baseline-eps``;
* **grid timing** — one fig5a-shaped (protocol × load) grid run serially and
  through the parallel engine (``--jobs``), with the identical-results check
  the engine guarantees (merge by grid index, never completion order).

Wall-clock speedup only materializes with real cores: ``--check`` asserts
``speedup >= --min-speedup`` **only when the machine has >= 4 CPUs** (a
single-core runner legitimately shows ~1x; the determinism check still runs).
On a **single-CPU machine the grid comparison is skipped entirely** —
running the same grid twice to show a ~1.0x ratio measures nothing — and
``BENCH_perf.json`` records ``"skipped"`` with the reason instead.

The report also carries a **tribe-scale smoke point**: events/sec at n=150
with sparse edges, capped at a fixed simulator-event budget so one data
point exercises the bitmap edge store and sparse selection at the paper's
largest scale without paying for a full n=150 round.

``--compare BENCH_perf.json`` additionally gates against a **committed
baseline** with explicit tolerances: the parallel grid must not be slower
than serial (speedup >= 1.0, on >= 4-CPU machines), results must stay
identical, core events/sec must not regress more than
``--regression-tolerance`` (default 15%) below the committed figure, and the
n=150 sparse smoke must stay within ``--sparse-tolerance`` (default 35% —
loose: big-n runs wander more across machines) of its committed figure.

Usage::

    python scripts/bench_perf.py --out BENCH_perf.json --jobs 4
    python scripts/bench_perf.py --check --jobs 4 --min-speedup 2.5
    python scripts/bench_perf.py --check --compare BENCH_perf.json --jobs auto
"""

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.experiments import figure_geometry, point_config  # noqa: E402
from repro.bench.parallel import (  # noqa: E402
    clear_memory_cache,
    get_pool,
    resolve_jobs,
    run_grid,
    shutdown_pool,
)
from repro.bench.profiling import SMOKE_CONFIG  # noqa: E402
from repro.bench.runner import ExperimentConfig, _simulate  # noqa: E402
from repro.errors import SimulationError  # noqa: E402

#: Tribe-scale smoke: n=150 (the paper's largest sweep point) with sparse
#: edges.  A full n=150 round is ~5M simulator events, so the run is capped
#: by event budget rather than simulated time — enough to push thousands of
#: vertex broadcasts through the bitmap store and the sparse edge selection.
SPARSE_SMOKE_CONFIG = ExperimentConfig(
    protocol="sailfish",
    n=150,
    txns_per_proposal=32,
    bandwidth_bps=400e6,
    duration=5.0,  # never reached: the event cap fires first
    warmup=1.0,
    edge_mode="sparse",
)
SPARSE_SMOKE_EVENTS = 2_000_000


def measure_core_speed(trials: int) -> dict:
    """Best-of-N events/sec on the smoke config (uncached, in-process)."""
    eps_trials = []
    sim_events = 0
    for _ in range(trials):
        start = time.perf_counter()
        metrics = _simulate(SMOKE_CONFIG)
        wall = time.perf_counter() - start
        sim_events = metrics.sim_events
        eps_trials.append(round(metrics.sim_events / wall, 1))
    return {
        "sim_events": sim_events,
        "trials": eps_trials,
        "best": max(eps_trials),
    }


def measure_sparse_smoke(max_events: int = SPARSE_SMOKE_EVENTS) -> dict:
    """Events/sec at tribe scale: one event-capped n=150 sparse-edge run."""
    start = time.perf_counter()
    try:
        metrics = _simulate(SPARSE_SMOKE_CONFIG, max_events=max_events)
        events = metrics.sim_events
    except SimulationError:
        # The cap fired mid-run — the expected outcome; the budget itself is
        # the event count.
        events = max_events
    wall = time.perf_counter() - start
    return {
        "n": SPARSE_SMOKE_CONFIG.n,
        "edge_mode": SPARSE_SMOKE_CONFIG.edge_mode,
        "events": events,
        "wall_s": round(wall, 3),
        "events_per_sec": round(events / wall, 1),
    }


def perf_grid():
    """A fig5a-shaped grid: 2 protocols × 3 loads at the current scale."""
    geom = figure_geometry("fig5a")
    return [
        point_config(protocol, geom, load, 400e6, 4e-6)
        for protocol in ("sailfish", "single-clan")
        for load in (32, 250, 1000)
    ]


def measure_grid(jobs: int, cpus: int) -> dict:
    if cpus < 2:
        # Running the same grid twice on one core to report a ~1.0x ratio
        # measures nothing; record the skip so --compare knows why the
        # section is absent instead of silently passing.
        return {
            "skipped": (
                f"parallel-vs-serial comparison needs >= 2 CPUs (machine has {cpus})"
            )
        }
    configs = perf_grid()
    clear_memory_cache()
    start = time.perf_counter()
    serial = run_grid(configs, jobs=1, cache=False)
    serial_wall = time.perf_counter() - start
    clear_memory_cache()
    # The pool is persistent across grids; standing it up is a once-per-
    # process cost, so fork it outside the timed section.
    if jobs > 1:
        get_pool(jobs)
    start = time.perf_counter()
    fanned = run_grid(configs, jobs=jobs, cache=False)
    parallel_wall = time.perf_counter() - start
    shutdown_pool()
    return {
        "points": len(configs),
        "jobs": jobs,
        "serial_wall_s": round(serial_wall, 3),
        "parallel_wall_s": round(parallel_wall, 3),
        "speedup": round(serial_wall / parallel_wall, 2) if parallel_wall else 0.0,
        "identical_results": serial == fanned,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_perf.json")
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument(
        "--jobs", default=str(min(4, os.cpu_count() or 1)),
        help="workers for the parallel grid run: an integer or 'auto' "
        "(default: min(4, cpus))",
    )
    parser.add_argument(
        "--baseline-eps", type=float, default=None,
        help="pre-optimization events/sec on the same machine (for the ratio)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on non-identical results, or (with >= 4 CPUs) low speedup",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.5,
        help="required grid speedup when the machine has >= 4 CPUs",
    )
    parser.add_argument(
        "--compare", default=None, metavar="BASELINE_JSON",
        help="committed BENCH_perf.json to gate against: fail on parallel "
        "speedup < 1.0 (>= 4 CPUs), non-identical results, or core "
        "events/sec more than --regression-tolerance below the baseline",
    )
    parser.add_argument(
        "--regression-tolerance", type=float, default=0.15,
        help="allowed fractional core-speed regression vs --compare (0.15 = 15%%)",
    )
    parser.add_argument(
        "--sparse-tolerance", type=float, default=0.35,
        help="allowed fractional regression of the n=150 sparse smoke vs "
        "--compare (loose by design: big-n runs wander more across machines)",
    )
    parser.add_argument(
        "--skip-sparse-smoke", action="store_true",
        help="omit the n=150 sparse-edge smoke point (and its gate)",
    )
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    jobs = resolve_jobs(args.jobs, source="--jobs")
    baseline = None
    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
    core = measure_core_speed(args.trials)
    grid = measure_grid(jobs, cpus)
    sparse = None if args.skip_sparse_smoke else measure_sparse_smoke()
    result = {
        "cpus": cpus,
        "core_speed": core,
        "grid": grid,
        # Skipped sections are recorded with their reason, never omitted:
        # --compare on another machine must be able to tell "not measured
        # here" apart from "baseline predates the section".
        "sparse_smoke": (
            sparse if sparse is not None else {"skipped": "--skip-sparse-smoke"}
        ),
    }
    if args.baseline_eps:
        result["core_speed"]["baseline"] = args.baseline_eps
        result["core_speed"]["vs_baseline"] = round(core["best"] / args.baseline_eps, 3)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(
        f"core speed: {core['best']:,.0f} events/sec "
        f"(trials: {', '.join(f'{t:,.0f}' for t in core['trials'])})"
    )
    grid_skipped = "skipped" in grid
    if grid_skipped:
        print(f"grid: skipped — {grid['skipped']}")
    else:
        print(
            f"grid ({grid['points']} points): serial {grid['serial_wall_s']:.1f} s, "
            f"jobs={grid['jobs']} {grid['parallel_wall_s']:.1f} s "
            f"-> {grid['speedup']:.2f}x on {cpus} CPU(s), "
            f"identical={grid['identical_results']}"
        )
    if sparse is not None:
        print(
            f"sparse smoke (n={sparse['n']}, {sparse['edge_mode']} edges): "
            f"{sparse['events_per_sec']:,.0f} events/sec "
            f"({sparse['events']:,} events in {sparse['wall_s']:.1f} s)"
        )
    print(f"wrote {args.out}")

    failures = []
    if (args.check or baseline is not None) and not grid_skipped:
        if not grid["identical_results"]:
            failures.append("parallel grid results differ from serial")
    if args.check and not grid_skipped:
        if cpus >= 4 and grid["speedup"] < args.min_speedup:
            failures.append(
                f"speedup {grid['speedup']:.2f}x < {args.min_speedup:.2f}x "
                f"on a {cpus}-CPU machine"
            )
    if baseline is not None:
        # Explicit regression tolerances against the committed baseline.
        # Skipped sections — on either side — are announced, never silently
        # passed over: a 1-CPU runner comparing against a many-core baseline
        # must still exit 0, but say which gates it could not apply.
        if grid_skipped:
            print(f"compare: parallel-grid gate skipped — {grid['skipped']}")
        elif baseline.get("grid", {}).get("skipped"):
            print(
                "compare: baseline grid was skipped "
                f"({baseline['grid']['skipped']}); gating the current grid "
                "on its own speedup only"
            )
        if not grid_skipped and cpus >= 4 and grid["speedup"] < 1.0:
            failures.append(
                f"parallel engine slower than serial: speedup "
                f"{grid['speedup']:.2f}x < 1.0x on a {cpus}-CPU machine"
            )
        committed = baseline.get("core_speed", {}).get("best")
        if committed:
            floor = committed * (1.0 - args.regression_tolerance)
            if core["best"] < floor:
                failures.append(
                    f"core speed {core['best']:,.0f} events/sec is more than "
                    f"{args.regression_tolerance:.0%} below the committed "
                    f"{committed:,.0f} (floor {floor:,.0f})"
                )
            else:
                print(
                    f"baseline: {core['best']:,.0f} vs committed "
                    f"{committed:,.0f} events/sec (floor {floor:,.0f}) — ok"
                )
        committed_sparse = baseline.get("sparse_smoke", {}).get("events_per_sec")
        if sparse is None or not committed_sparse:
            side = "current run" if sparse is None else "baseline"
            print(f"compare: sparse-smoke gate skipped — no data in {side}")
        if sparse is not None and committed_sparse:
            floor = committed_sparse * (1.0 - args.sparse_tolerance)
            if sparse["events_per_sec"] < floor:
                failures.append(
                    f"n={sparse['n']} sparse smoke {sparse['events_per_sec']:,.0f} "
                    f"events/sec is more than {args.sparse_tolerance:.0%} below "
                    f"the committed {committed_sparse:,.0f} (floor {floor:,.0f})"
                )
            else:
                print(
                    f"sparse smoke: {sparse['events_per_sec']:,.0f} vs committed "
                    f"{committed_sparse:,.0f} events/sec (floor {floor:,.0f}) — ok"
                )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.check or baseline is not None:
        print("OK: perf checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
