"""Legacy setup shim.

The sandboxed environment has setuptools 65 without the ``wheel`` package, so
PEP-517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation`` fall back to ``setup.py develop``.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
