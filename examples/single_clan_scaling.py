#!/usr/bin/env python3
"""Single-clan Sailfish (§5): elect a clan, confine blocks to it, compare
bandwidth against baseline Sailfish on the same network.

Shows the paper's core mechanism end to end:

* exact hypergeometric sizing of the clan for a target failure probability;
* blocks reliably delivered only inside the clan (outsiders hold digests);
* the proposer-bandwidth reduction that drives the throughput gains;
* commit latency unaffected (vertices carry only digests).

    python examples/single_clan_scaling.py
"""

from repro.committees import ClanConfig
from repro.committees.hypergeometric import dishonest_majority_prob, min_clan_size
from repro.consensus import Deployment, ProtocolParams
from repro.net.latency import gcp_latency_model
from repro.smr.mempool import SyntheticWorkload
from repro.types import max_faults

N = 20
TXNS_PER_PROPOSAL = 300
BANDWIDTH = 200e6  # 200 Mbit/s effective per node
DURATION = 6.0


def run(cfg: ClanConfig) -> tuple[Deployment, SyntheticWorkload]:
    workload = SyntheticWorkload(txns_per_proposal=TXNS_PER_PROPOSAL)
    deployment = Deployment(
        cfg,
        ProtocolParams(verify_signatures=False),
        latency=gcp_latency_model(cfg.n, seed=3),
        bandwidth_bps=BANDWIDTH,
        make_block=workload.make_block,
        seed=3,
    )
    deployment.start()
    deployment.run(until=DURATION)
    deployment.check_total_order_consistency()
    return deployment, workload


def avg_block_latency(deployment: Deployment, workload: SyntheticWorkload) -> float:
    node = deployment.nodes[deployment.honest_ids[0]]
    samples = [
        when - workload.blocks[v.block_digest][1]
        for v, when in node.ordered_log
        if v.block_digest is not None
    ]
    return sum(samples) / len(samples)


def main() -> None:
    # Size the clan with the exact statistics of §5 (Eq. 1-2).  At n=20 a
    # meaningful reduction needs a relaxed failure bound — the paper's point
    # that clan benefits grow with scale (Fig. 1).
    target = 1e-2
    clan_size = min_clan_size(N, failure_prob=target)
    prob = dishonest_majority_prob(N, max_faults(N), clan_size)
    print(f"tribe n={N}: clan of {clan_size} has dishonest-majority "
          f"probability {prob:.2e} (target {target:.0e})")

    baseline_cfg = ClanConfig.baseline(N)
    clan_cfg = ClanConfig.single_clan(N, clan_size, seed=3)

    base_dep, base_wl = run(baseline_cfg)
    clan_dep, clan_wl = run(clan_cfg)

    proposer = sorted(clan_cfg.clan(0))[0]
    outsider = next(i for i in range(N) if i not in clan_cfg.clan(0))

    base_bytes = base_dep.network.stats.bytes_sent[proposer] / 1e6
    clan_bytes = clan_dep.network.stats.bytes_sent[proposer] / 1e6
    print(f"\nproposer {proposer} outbound traffic over {DURATION:.0f}s:")
    print(f"  baseline Sailfish    : {base_bytes:8.1f} MB")
    print(f"  single-clan Sailfish : {clan_bytes:8.1f} MB "
          f"({clan_bytes / base_bytes:.0%} of baseline)")

    print(f"\naverage block commit latency (created -> ordered):")
    print(f"  baseline Sailfish    : {avg_block_latency(base_dep, base_wl):.3f} s")
    print(f"  single-clan Sailfish : {avg_block_latency(clan_dep, clan_wl):.3f} s")

    clan_node = clan_dep.nodes[proposer]
    out_node = clan_dep.nodes[outsider]
    print(f"\nblock bodies held after the run:")
    print(f"  clan member {proposer:2}: {len(clan_node.blocks):4} blocks")
    print(f"  outsider    {outsider:2}: {len(out_node.blocks):4} blocks "
          "(outsiders order digests only)")
    print(f"\nboth protocols ordered consistently; single-clan ordered "
          f"{clan_dep.min_ordered()} vertices vs baseline {base_dep.min_ordered()}")


if __name__ == "__main__":
    main()
