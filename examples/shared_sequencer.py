#!/usr/bin/env python3
"""Multi-clan Sailfish as a shared sequencer (§6.1).

Two independent applications (a DEX and a game) share one globally-ordered
sequencer built from a 12-party tribe partitioned into two clans.  Each clan
disseminates, executes, and answers clients for its own application only,
while the *total order spans both* — the shared-sequencer property.

    python examples/shared_sequencer.py
"""

from repro.committees import ClanConfig
from repro.committees.multiclan import multi_clan_dishonest_prob
from repro.smr import SmrRuntime
from repro.types import max_faults

N = 12
CLANS = 2


def main() -> None:
    cfg = ClanConfig.multi_clan(N, CLANS, seed=11)
    prob = multi_clan_dishonest_prob(
        N, max_faults(N), [len(c) for c in cfg.clans]
    )
    print(f"tribe n={N} partitioned into {CLANS} clans "
          f"{[sorted(c) for c in cfg.clans]}")
    print(f"probability some clan lacks an honest majority: {prob:.2e}")

    runtime = SmrRuntime(cfg, seed=11)
    dex = runtime.new_client("dex", clan_idx=0)
    game = runtime.new_client("game", clan_idx=1)
    runtime.start()

    # Each application submits to its own clan.
    dex_txns = [
        runtime.submit(dex, ("set", "ETH/USD", 3001)),
        runtime.submit(dex, ("set", "BTC/USD", 97000)),
        runtime.submit(dex, ("incr", "trades", 1)),
    ]
    game_txns = [
        runtime.submit(game, ("set", "player:1:hp", 100)),
        runtime.submit(game, ("incr", "player:1:xp", 250)),
    ]

    runtime.run(until=6.0)
    runtime.deployment.check_total_order_consistency()
    runtime.check_execution_consistency(0)
    runtime.check_execution_consistency(1)

    print("\nper-application results (accepted on f_c+1 matching replies):")
    for name, client, txns in (("dex", dex, dex_txns), ("game", game, game_txns)):
        for txn in txns:
            print(f"  [{name:4}] {txn.op!r:30} -> {client.result_of(txn.txn_id)!r}")

    # The global order interleaves both applications' blocks; every party
    # (whichever clan it serves) agrees on it.
    node = runtime.deployment.nodes[0]
    clan_of = cfg.clan_index_of
    interleaving = [
        f"r{v.round}:clan{clan_of(v.source)}"
        for v, _ in node.ordered_log
        if v.block_digest is not None
    ]
    print(f"\nglobal order interleaves clans: {interleaving[:12]} ...")

    # But state is clan-local: clan 0 executed only DEX keys.
    member0 = next(iter(cfg.clan(0)))
    member1 = next(iter(cfg.clan(1)))
    print(f"\nclan 0 replica sees ETH/USD={runtime.executors[member0].machine.get('ETH/USD')}, "
          f"player:1:hp={runtime.executors[member0].machine.get('player:1:hp')}")
    print(f"clan 1 replica sees ETH/USD={runtime.executors[member1].machine.get('ETH/USD')}, "
          f"player:1:hp={runtime.executors[member1].machine.get('player:1:hp')}")


if __name__ == "__main__":
    main()
