#!/usr/bin/env python3
"""Quickstart: a 7-node baseline Sailfish tribe committing transactions.

Runs the full stack — simulated geo network, merged vertex+block RBC, DAG
consensus, execution, and a client accepting on f_c+1 matching replies — in a
couple of simulated seconds.

    python examples/quickstart.py
"""

from repro.committees import ClanConfig
from repro.smr import SmrRuntime


def main() -> None:
    # 1. A tribe of 7 parties (tolerates f = 2 Byzantine faults).  The
    #    baseline config makes everyone a block proposer and executor —
    #    plain Sailfish.
    cfg = ClanConfig.baseline(7)
    print(f"tribe: n={cfg.n}, f={cfg.f}, quorum={cfg.quorum}, mode={cfg.mode}")

    # 2. The SMR runtime wires consensus nodes, executors, and clients over
    #    one deterministic simulated network.
    runtime = SmrRuntime(cfg, seed=42)
    client = runtime.new_client("alice")
    runtime.start()

    # 3. Submit a few dependent transactions.
    t1 = runtime.submit(client, ("set", "greeting", "hello world"))
    t2 = runtime.submit(client, ("incr", "counter", 5))
    t3 = runtime.submit(client, ("incr", "counter", 7))

    # 4. Run five simulated seconds of protocol.
    runtime.run(until=5.0)

    # 5. Every honest node ordered the same vertices...
    runtime.deployment.check_total_order_consistency()
    node0 = runtime.deployment.nodes[0]
    print(f"rounds completed: {node0.round}")
    print(f"vertices ordered: {len(node0.ordered_log)}")
    print(f"leaders committed: {len(node0.committed_leaders)}")

    # ...all replicas reached the same state...
    runtime.check_execution_consistency()
    print("replica states: consistent")

    # ...and the client saw f_c+1 matching replies for each transaction.
    for txn in (t1, t2, t3):
        print(f"  {txn.op!r:35} -> accepted={client.is_accepted(txn.txn_id)}"
              f" result={client.result_of(txn.txn_id)!r}")


if __name__ == "__main__":
    main()
