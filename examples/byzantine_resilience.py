#!/usr/bin/env python3
"""Fault injection: the protocol under crashes, equivocation, and withholding.

Runs a 13-party single-clan deployment at the fault bound f = 4 with four
simultaneous misbehaviours and shows safety (identical total orders, identical
replica states) and liveness (steady commits) are preserved:

* a node that crashes mid-run (forcing the no-vote certificate path whenever
  it would have led a round);
* an equivocating proposer (different vertices to different halves);
* a block-withholding proposer (clan members pull the block, §3);
* a silent node (participates in RBC, never proposes).

    python examples/byzantine_resilience.py
"""

from repro.committees import ClanConfig
from repro.consensus import Deployment, ProtocolParams
from repro.consensus.byzantine import (
    CrashAt,
    EquivocatingProposer,
    SilentNode,
    WithholdingProposer,
)
from repro.net.latency import gcp_latency_model
from repro.smr.mempool import SyntheticWorkload

N = 13  # f = 4


def main() -> None:
    cfg = ClanConfig.single_clan(N, 8, seed=5)
    clan = sorted(cfg.clan(0))
    withholder = clan[0]
    faulty = {
        withholder: WithholdingProposer(receive_full=5),
        clan[1]: EquivocatingProposer(),
    }
    outsiders = [i for i in range(N) if i not in cfg.clan(0)]
    faulty[outsiders[0]] = SilentNode()
    faulty[outsiders[1]] = CrashAt(3.0)
    print(f"n={N}, f={cfg.f}; injected faults:")
    for node, behavior in sorted(faulty.items()):
        print(f"  node {node:2}: {type(behavior).__name__}")

    workload = SyntheticWorkload(txns_per_proposal=50)
    deployment = Deployment(
        cfg,
        ProtocolParams(leader_timeout=2.0),
        latency=gcp_latency_model(N, seed=5),
        make_block=workload.make_block,
        byzantine=faulty,
        seed=5,
    )
    deployment.start()
    deployment.run(until=20.0)

    # Safety: all honest parties agree on one total order.
    deployment.check_total_order_consistency()
    print("\nsafety: honest total orders are consistent")

    honest = deployment.honest_ids
    rounds = [deployment.nodes[i].round for i in honest]
    ordered = [len(deployment.nodes[i].ordered_log) for i in honest]
    print(f"liveness: honest nodes reached rounds {min(rounds)}..{max(rounds)}, "
          f"ordered >= {min(ordered)} vertices in 20 s")

    # The no-vote path fired for the crashed node's leader slots.
    node = deployment.nodes[honest[0]]
    nvcs = [v for v in node.ordered_vertices if v.nvc is not None]
    print(f"no-vote certificates embedded in leader vertices: {len(nvcs)}")

    # The withheld blocks were pulled by the rest of the clan.
    withheld = [
        v.block_digest
        for v in node.ordered_vertices
        if v.source == withholder and v.block_digest
    ]
    holders = [
        member
        for member in clan
        if member not in faulty
        and all(d in deployment.nodes[member].blocks for d in withheld)
    ]
    print(f"withholder's {len(withheld)} ordered blocks were retrieved by "
          f"{len(holders)} honest clan members via the pull path")

    # The equivocator's split vertices never produced divergent deliveries.
    keys = node.ordered_keys()
    assert len(keys) == len(set(keys))
    print("equivocation: at most one version per (round, source) was ordered")


if __name__ == "__main__":
    main()
