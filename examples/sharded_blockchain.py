#!/usr/bin/env python3
"""State-sharded blockchain on multi-clan Sailfish with cross-shard 2PC (§6.1).

Each clan manages one shard of the key space.  Intra-shard transactions run
as ordinary per-clan submissions; a cross-shard transfer runs the ordered
two-phase commit of :mod:`repro.smr.cross_clan` — prepares lock keys on both
shards via the *global* total order, then a commit applies atomically.

    python examples/sharded_blockchain.py
"""

from repro.committees import ClanConfig
from repro.smr import SmrRuntime
from repro.smr.cross_clan import CrossClanCoordinator


def main() -> None:
    cfg = ClanConfig.multi_clan(12, 2, seed=9)
    runtime = SmrRuntime(cfg, seed=9, sharded=True)
    shard0 = runtime.new_client("shard0", clan_idx=0)
    shard1 = runtime.new_client("shard1", clan_idx=1)
    coordinator = CrossClanCoordinator(runtime, {0: shard0, 1: shard1})
    runtime.start()

    # Intra-shard setup: account balances live on their own shards.
    t_alice = runtime.submit(shard0, ("set", "alice", 100))
    t_bob = runtime.submit(shard1, ("set", "bob", 10))
    runtime.run(until=4.0)
    print(f"setup: alice={shard0.result_of(t_alice.txn_id)} (shard 0), "
          f"bob={shard1.result_of(t_bob.txn_id)} (shard 1)")

    # Cross-shard transfer: alice -70 on shard 0, bob +70 on shard 1.
    transfer = coordinator.begin({0: {"alice": 30}, 1: {"bob": 80}})
    now = runtime.sim.now
    while not transfer.is_finished() and now < 30.0:
        now += 0.5
        runtime.run(until=now)
        transfer.try_decide()
    print(f"cross-shard transfer {transfer.xid}: decision={transfer.decision}")

    runtime.check_execution_consistency(0)
    runtime.check_execution_consistency(1)
    member0 = next(iter(cfg.clan(0)))
    member1 = next(iter(cfg.clan(1)))
    print(f"final: alice={runtime.executors[member0].machine.get('alice')} "
          f"bob={runtime.executors[member1].machine.get('bob')}")
    print("replica states: consistent on both shards")

    # A conflicting pair of cross-shard transactions: exactly one commits.
    x1 = coordinator.begin({0: {"alice": 0}, 1: {"bob": 110}})
    x2 = coordinator.begin({0: {"alice": 55}, 1: {"carol": 55}})
    while not (x1.is_finished() and x2.is_finished()) and now < 60.0:
        now += 0.5
        runtime.run(until=now)
        x1.try_decide()
        x2.try_decide()
    print(f"conflicting transfers: {x1.xid}={x1.decision}, {x2.xid}={x2.decision} "
          "(the global order picked the winner deterministically)")


if __name__ == "__main__":
    main()
