#!/usr/bin/env python3
"""Committee planner: size clans for a deployment with exact statistics.

A small operator tool over the paper's §5/§6.2 analysis: given a tribe size
and a failure budget, print the minimal single clan (Fig. 1 machinery), the
largest admissible equal partition, and the projected peak throughput of each
option from the analytical model.

    python examples/committee_planner.py [n] [failure_exponent]
    python examples/committee_planner.py 300 9     # n=300, budget 1e-9
"""

import sys

from repro.bench.model import AnalyticalModel, PAPER_LOADS
from repro.committees.hypergeometric import dishonest_majority_prob, min_clan_size
from repro.committees.multiclan import equal_partition_prob, max_equal_clans
from repro.types import max_faults


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    exponent = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    budget = 10.0 ** -exponent
    f = max_faults(n)
    print(f"tribe n={n} (f={f}), failure budget {budget:.0e}\n")

    clan = min_clan_size(n, failure_prob=budget)
    prob = dishonest_majority_prob(n, f, clan)
    print(f"single-clan option: clan of {clan} "
          f"({clan / n:.0%} of tribe), failure {prob:.2e}")

    q = max_equal_clans(n, budget)
    if q > 1:
        partition_prob = equal_partition_prob(n, q)
        print(f"multi-clan option : {q} clans of {n // q}, failure {partition_prob:.2e}")
    else:
        print("multi-clan option : none admissible at this budget")

    model = AnalyticalModel(n=n)
    rows = [
        ("baseline Sailfish", model.peak_stable_throughput("sailfish", PAPER_LOADS)),
        (
            f"single-clan ({clan})",
            model.peak_stable_throughput("single-clan", PAPER_LOADS, clan_size=clan),
        ),
    ]
    if q > 1:
        rows.append(
            (
                f"multi-clan ({q}x{n // q})",
                model.peak_stable_throughput("multi-clan", PAPER_LOADS, clans=q),
            )
        )
    print("\nprojected peak stable throughput (analytical model):")
    for name, peak in rows:
        print(f"  {name:22}: {peak / 1000.0:8.1f} kTPS")


if __name__ == "__main__":
    main()
