"""Classic Bracha reliable broadcast.

The special case of the tribe-assisted protocol (Fig. 2) where the clan is
the whole tribe: every party receives the full payload, and the
"f_c+1 from the clan" condition collapses into the plain 2f+1 ECHO quorum.
This is the primitive existing DAG-based BFT SMR protocols build on, and the
baseline the paper compares against.
"""

from __future__ import annotations

from ..net.network import Network
from ..sim.scheduler import Simulator
from ..types import NodeId
from .base import DeliverFn, Membership
from .tribe_bracha import TribeBrachaRbc


class BrachaRbc(TribeBrachaRbc):
    """Per-node classic Bracha RBC module over a tribe of ``n`` parties."""

    def __init__(
        self,
        node_id: NodeId,
        n: int,
        network: Network,
        sim: Simulator,
        on_deliver: DeliverFn,
        register: bool = True,
        tracer=None,
    ) -> None:
        super().__init__(
            node_id,
            Membership.whole_tribe(n),
            network,
            sim,
            on_deliver,
            register=register,
            tracer=tracer,
        )
