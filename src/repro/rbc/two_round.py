"""Round-optimal (two-round) reliable broadcast of Abraham et al.

The special case of the Fig. 3 tribe-assisted protocol where the clan is the
whole tribe: every party receives the full payload and the certificate needs
only the plain 2f+1 signed ECHOs.  This is the RBC the paper's Sailfish
implementation uses for vertex propagation.
"""

from __future__ import annotations

from ..crypto.signatures import Pki
from ..net.network import Network
from ..sim.scheduler import Simulator
from ..types import NodeId
from .base import DeliverFn, Membership
from .tribe_two_round import TribeTwoRoundRbc


class TwoRoundRbc(TribeTwoRoundRbc):
    """Per-node round-optimal RBC module over a tribe of ``n`` parties."""

    def __init__(
        self,
        node_id: NodeId,
        n: int,
        network: Network,
        sim: Simulator,
        pki: Pki,
        on_deliver: DeliverFn,
        register: bool = True,
        tracer=None,
    ) -> None:
        super().__init__(
            node_id,
            Membership.whole_tribe(n),
            network,
            sim,
            pki,
            on_deliver,
            register=register,
            tracer=tracer,
        )
