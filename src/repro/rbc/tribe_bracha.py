"""Tribe-assisted Byzantine reliable broadcast, Fig. 2 (Bracha-based).

Signature-free, three rounds in the good case:

1. The sender sends ⟨VAL, m, r⟩ to clan members and ⟨VAL, H(m), r⟩ to the
   rest of the tribe.
2. On its first VAL, a party multicasts ⟨ECHO, H(m), r⟩ — clan members only
   after holding the full value (so f_c+1 clan ECHOs certify an honest
   holder), everyone else on the digest alone.
3. On 2f+1 ECHOs for H(m) with at least f_c+1 from the clan, a party
   multicasts ⟨READY, H(m), r⟩; f+1 READYs amplify.
4. On 2f+1 READYs a clan member delivers m (pulling it from an echoing clan
   member if the sender withheld it); everyone else delivers H(m).
"""

from __future__ import annotations

from typing import Any

from ..errors import BroadcastError
from ..net.network import Network
from ..sim.scheduler import Simulator
from ..types import NodeId, Round
from .base import (
    DeliverFn,
    InstanceState,
    Membership,
    RbcProtocol,
    payload_digest,
)
from .messages import (
    EchoMsg,
    PayloadRequest,
    PayloadResponse,
    ReadyMsg,
    ValMsg,
)
from .retrieval import Responder, Retriever


class TribeBrachaRbc(RbcProtocol):
    """Per-node module for the Fig. 2 protocol.

    Args:
        early_fetch: start pulling a missing payload as soon as the ECHO
            quorum forms (the §5 optimization) instead of waiting for the
            READY quorum.
    """

    def __init__(
        self,
        node_id: NodeId,
        membership: Membership,
        network: Network,
        sim: Simulator,
        on_deliver: DeliverFn,
        early_fetch: bool = True,
        retry_timeout: float = 0.5,
        register: bool = True,
        tracer=None,
    ) -> None:
        super().__init__(
            node_id, membership, network, on_deliver, register=register, tracer=tracer
        )
        self.sim = sim
        self.early_fetch = early_fetch
        self._retriever = Retriever(
            node_id, network, sim, self._on_pulled_payload, retry_timeout
        )
        self._responder = Responder(node_id, network, self._lookup_payload)
        #: Instances whose READY quorum fired while the payload was missing.
        self._awaiting_payload: set[tuple[NodeId, Round]] = set()

    # -- sending -------------------------------------------------------------

    def broadcast(self, payload: Any, round_: Round) -> None:
        digest_ = payload_digest(payload)
        if self.tracer.enabled:
            self.tracer.counter(
                "rbc.propose", node=self.node_id, round=round_, time=self.sim.now
            )
        clan = self.membership.clan
        in_clan = [p for p in self.membership.all_parties if p in clan]
        outside = [p for p in self.membership.all_parties if p not in clan]
        self.network.multicast(
            self.node_id, in_clan, ValMsg(self.node_id, round_, digest_, payload)
        )
        if outside:
            self.network.multicast(
                self.node_id, outside, ValMsg(self.node_id, round_, digest_, None)
            )

    # -- receiving -----------------------------------------------------------

    def on_message(self, src: NodeId, msg: Any) -> None:
        if isinstance(msg, ValMsg):
            self._on_val(src, msg)
        elif isinstance(msg, EchoMsg):
            self._on_echo(src, msg)
        elif isinstance(msg, ReadyMsg):
            self._on_ready(src, msg)
        elif isinstance(msg, PayloadRequest):
            self._responder.on_request(src, msg)
        elif isinstance(msg, PayloadResponse):
            self._retriever.on_response(src, msg)
        else:
            raise BroadcastError(f"unexpected message {type(msg).__name__}")

    def _on_val(self, src: NodeId, msg: ValMsg) -> None:
        if src != msg.origin:
            return  # authenticated channels: VAL must come from its origin
        state = self.instance(msg.origin, msg.round)
        if self.tracer.enabled and state.val_at is None:
            state.val_at = self.sim.now
        digest_ = msg.digest
        if msg.payload is not None:
            if payload_digest(msg.payload) != digest_:
                return  # malformed: advertised digest does not match payload
            state.payloads.setdefault(digest_, msg.payload)
        if state.val_digest is None:
            state.val_digest = digest_
        elif state.val_digest != digest_:
            state.conflicting.add(digest_)
            return  # equivocation: honour only the first VAL
        if state.echoed:
            self._maybe_complete(msg.origin, msg.round, state)
            return
        # Clan members echo only once they hold the full value; others echo
        # on the digest alone.
        if self.in_clan and digest_ not in state.payloads:
            return
        state.echoed = True
        if self.tracer.enabled:
            now = self.sim.now
            state.echo_at = now
            self.tracer.span(
                "rbc.val_to_echo",
                start=state.val_at if state.val_at is not None else now,
                end=now, node=self.node_id, origin=msg.origin, round=msg.round,
            )
        self.network.broadcast(self.node_id, EchoMsg(msg.origin, msg.round, digest_))

    def _on_echo(self, src: NodeId, msg: EchoMsg) -> None:
        state = self.instance(msg.origin, msg.round)
        supporters = state.echoes.setdefault(msg.digest, set())
        if src in supporters:
            return
        supporters.add(src)
        self._check_echo_quorum(msg.origin, msg.round, msg.digest, state)

    def _check_echo_quorum(
        self, origin: NodeId, round_: Round, digest_: bytes, state: InstanceState
    ) -> None:
        supporters = state.echoes.get(digest_, ())
        if len(supporters) < self.membership.quorum:
            return
        clan_supporters = [p for p in supporters if p in self.membership.clan]
        if len(clan_supporters) < self.membership.clan_quorum:
            return
        if state.ready_digest is None:
            state.ready_digest = digest_
            if self.tracer.enabled:
                self._trace_ready(state, origin, round_)
            self.network.broadcast(self.node_id, ReadyMsg(origin, round_, digest_))
        # §5 optimization: a clan member missing the payload can start the
        # download as soon as the ECHO quorum certifies an honest holder.
        if (
            self.early_fetch
            and self.in_clan
            and digest_ not in state.payloads
            and not state.delivered
        ):
            self._retriever.fetch(origin, round_, digest_, clan_supporters)

    def _trace_ready(self, state, origin: NodeId, round_: Round) -> None:
        """Record the echo→ready phase transition for one instance."""
        now = self.sim.now
        state.ready_at = now
        start = state.echo_at
        if start is None:
            start = state.val_at if state.val_at is not None else now
        self.tracer.span(
            "rbc.echo_to_ready", start=start, end=now,
            node=self.node_id, origin=origin, round=round_,
        )

    def _on_ready(self, src: NodeId, msg: ReadyMsg) -> None:
        state = self.instance(msg.origin, msg.round)
        supporters = state.readies.setdefault(msg.digest, set())
        if src in supporters:
            return
        supporters.add(src)
        count = len(supporters)
        if count >= self.membership.ready_amplify and state.ready_digest is None:
            state.ready_digest = msg.digest
            if self.tracer.enabled:
                self._trace_ready(state, msg.origin, msg.round)
            self.network.broadcast(
                self.node_id, ReadyMsg(msg.origin, msg.round, msg.digest)
            )
        if count >= self.membership.quorum:
            self._try_deliver(msg.origin, msg.round, msg.digest, state)

    # -- delivery and retrieval -----------------------------------------------

    def _try_deliver(
        self, origin: NodeId, round_: Round, digest_: bytes, state: InstanceState
    ) -> None:
        if state.delivered:
            return
        if not self.in_clan:
            self._deliver(origin, round_, state, digest_)
            return
        if digest_ in state.payloads:
            self._deliver(origin, round_, state, digest_)
            return
        # Clan member without the value: pull it from echoing clan members.
        self._awaiting_payload.add((origin, round_))
        holders = [
            p for p in state.echoes.get(digest_, ()) if p in self.membership.clan
        ]
        if holders:
            self._retriever.fetch(origin, round_, digest_, holders)
        # If no holder is known yet, later ECHOs will trigger the fetch via
        # _check_echo_quorum / _on_pulled_payload.

    def _maybe_complete(self, origin: NodeId, round_: Round, state: InstanceState) -> None:
        """Deliver if the READY quorum fired before the payload arrived."""
        if (origin, round_) in self._awaiting_payload and not state.delivered:
            digest_ = state.val_digest
            if digest_ is not None and digest_ in state.payloads:
                self._awaiting_payload.discard((origin, round_))
                self._deliver(origin, round_, state, digest_)

    def _on_pulled_payload(self, origin: NodeId, round_: Round, payload: Any) -> None:
        state = self.instance(origin, round_)
        digest_ = payload_digest(payload)
        state.payloads.setdefault(digest_, payload)
        if (origin, round_) in self._awaiting_payload and not state.delivered:
            ready = state.readies.get(digest_, ())
            if len(ready) >= self.membership.quorum:
                self._awaiting_payload.discard((origin, round_))
                self._deliver(origin, round_, state, digest_)

    def _lookup_payload(self, origin: NodeId, round_: Round) -> Any | None:
        state = self.instances.get((origin, round_))
        if state is None:
            return None
        if state.val_digest is not None and state.val_digest in state.payloads:
            return state.payloads[state.val_digest]
        if state.payloads:
            return next(iter(state.payloads.values()))
        return None
