"""Wire messages for the RBC family.

Sizes follow the paper's accounting: VAL carries either the ℓ-byte payload
(clan members) or just the κ-byte digest (everyone else); ECHO/READY carry a
digest (plus a signature in the signed variants); CERT carries a BLS
multi-signature plus signer bitmap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..crypto.certificates import QuorumCertificate
from ..crypto.signatures import Signature
from ..net import sizes
from ..net.message import Message
from ..types import NodeId, Round
from .base import payload_wire_size


@dataclass(slots=True)
class ValMsg(Message):
    """⟨VAL, m, r⟩ to clan members; ⟨VAL, H(m), r⟩ to the rest."""

    origin: NodeId
    round: Round
    digest: bytes
    payload: Any | None  # None when only the digest is sent
    signature: Signature | None = None

    @property
    def signed(self) -> bool:
        return self.signature is not None

    def wire_size(self) -> int:
        size = sizes.HEADER_SIZE + sizes.HASH_SIZE
        if self.payload is not None:
            size += payload_wire_size(self.payload)
        if self.signature is not None:
            size += sizes.SIGNATURE_SIZE
        return size


@dataclass(slots=True)
class EchoMsg(Message):
    """⟨ECHO, H(m), r⟩ — multicast by every party after its first VAL."""

    origin: NodeId
    round: Round
    digest: bytes
    signature: Signature | None = None

    @property
    def signed(self) -> bool:
        return self.signature is not None

    def wire_size(self) -> int:
        size = sizes.HEADER_SIZE + sizes.HASH_SIZE
        if self.signature is not None:
            size += sizes.SIGNATURE_SIZE
        return size


@dataclass(slots=True)
class ReadyMsg(Message):
    """⟨READY, H(m), r⟩ — Bracha-style second phase."""

    origin: NodeId
    round: Round
    digest: bytes

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE + sizes.HASH_SIZE


@dataclass(slots=True)
class CertMsg(Message):
    """EC_r(m): certificate of 2f+1 ECHO signatures (Fig. 3 / two-round RBC)."""

    origin: NodeId
    round: Round
    digest: bytes
    cert: QuorumCertificate
    n: int  # committee size, for bitmap sizing

    signed = True  # carries aggregate signature material

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE + sizes.HASH_SIZE + self.cert.wire_size(self.n)


@dataclass(slots=True)
class PayloadRequest(Message):
    """Pull request for a missing payload (§3: download from the clan).

    ``channel`` separates independent pull planes sharing one node handler
    (e.g. "payload" for RBC payloads, "block"/"vertex" in the consensus
    layer's merged RBC).
    """

    origin: NodeId
    round: Round
    digest: bytes
    channel: str = "payload"

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE + sizes.HASH_SIZE


@dataclass(slots=True)
class PayloadResponse(Message):
    """Pull response carrying the full payload."""

    origin: NodeId
    round: Round
    digest: bytes
    payload: Any
    channel: str = "payload"

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE + sizes.HASH_SIZE + payload_wire_size(self.payload)
