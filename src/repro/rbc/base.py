"""Shared machinery for the reliable-broadcast family.

* :class:`Membership` — tribe/clan thresholds used by every protocol.
* payload helpers — any payload is either ``bytes`` or an object exposing
  ``wire_size()`` and ``payload_digest()`` (e.g. :class:`repro.dag.block.Block`).
* :class:`RbcProtocol` — the per-node module: multiplexes instances keyed by
  ``(origin, round)``, owns the network registration, and invokes the
  delivery callback at most once per instance (Integrity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..committees.config import ClanConfig
from ..crypto.hashing import digest
from ..errors import BroadcastError
from ..net.network import Network
from ..types import NodeId, Round, clan_max_faults, max_faults, quorum_size

#: Delivery callback: (origin, round, payload-or-None, digest, full).
DeliverFn = Callable[["Delivery"], None]

InstanceKey = tuple[NodeId, Round]


def payload_wire_size(payload: Any) -> int:
    """Wire size in bytes of an RBC payload."""
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    size_fn = getattr(payload, "wire_size", None)
    if callable(size_fn):
        return size_fn()
    raise BroadcastError(f"payload {type(payload).__name__} has no wire size")


def payload_digest(payload: Any) -> bytes:
    """Canonical digest H(m) of an RBC payload."""
    if isinstance(payload, (bytes, bytearray)):
        return digest(bytes(payload))
    digest_fn = getattr(payload, "payload_digest", None)
    if callable(digest_fn):
        return digest_fn()
    raise BroadcastError(f"payload {type(payload).__name__} has no digest")


@dataclass(frozen=True)
class Membership:
    """Tribe and clan thresholds for one RBC deployment.

    ``clan`` is the set of parties that receive full payloads.  For standard
    (non-tribe-assisted) RBC the clan is the whole tribe, which makes the
    "≥ f_c+1 ECHOs from the clan" condition subsume into the plain 2f+1.
    """

    n: int
    clan: frozenset[NodeId]

    def __post_init__(self) -> None:
        if not self.clan:
            raise BroadcastError("clan must be non-empty")
        if any(not 0 <= p < self.n for p in self.clan):
            raise BroadcastError("clan member outside the tribe")

    @property
    def f(self) -> int:
        return max_faults(self.n)

    @property
    def quorum(self) -> int:
        """Tribe Byzantine quorum (2f+1 at n=3f+1; see types.quorum_size)."""
        return quorum_size(self.n)

    @property
    def ready_amplify(self) -> int:
        """READY amplification threshold f+1."""
        return self.f + 1

    @property
    def clan_size(self) -> int:
        return len(self.clan)

    @property
    def clan_quorum(self) -> int:
        """ECHOs required from the clan: f_c + 1."""
        return clan_max_faults(self.clan_size) + 1

    @property
    def all_parties(self) -> range:
        return range(self.n)

    @staticmethod
    def whole_tribe(n: int) -> "Membership":
        return Membership(n, frozenset(range(n)))

    @staticmethod
    def from_clan_config(cfg: ClanConfig, clan_idx: int) -> "Membership":
        return Membership(cfg.n, cfg.clan(clan_idx))


@dataclass(frozen=True, slots=True)
class Delivery:
    """The output of ``r_deliver`` at one party.

    ``payload`` is the full message for clan members (``full=True``) and
    ``None`` for parties outside the clan, which deliver only ``digest``
    (= H(m)), per Definition 2.
    """

    origin: NodeId
    round: Round
    payload: Any | None
    digest: bytes
    full: bool


@dataclass
class InstanceState:
    """Common per-(origin, round) instance state.

    ECHO/READY tallies are per-digest: an equivocating sender may split the
    network across digests, and quorum checks must never mix them.
    """

    val_digest: bytes | None = None
    delivered: bool = False
    delivered_digest: bytes | None = None
    payload: Any | None = None
    echoed: bool = False
    ready_digest: bytes | None = None
    cert_sent: bool = False
    echoes: dict[bytes, set[NodeId]] = field(default_factory=dict)
    readies: dict[bytes, set[NodeId]] = field(default_factory=dict)
    #: Full payloads received (via VAL or pull), keyed by digest.
    payloads: dict[bytes, Any] = field(default_factory=dict)
    #: Signatures collected on ECHO statements, keyed by digest (signed modes).
    echo_sigs: dict[bytes, dict[NodeId, Any]] = field(default_factory=dict)
    # Equivocation bookkeeping: extra digests seen in conflicting VALs (tests
    # and slashing logic read this; the protocol itself honours only the first).
    conflicting: set[bytes] = field(default_factory=set)
    # Phase timestamps, populated only when tracing is enabled: first VAL
    # seen, own ECHO sent, own READY (or certificate) sent.
    val_at: float | None = None
    echo_at: float | None = None
    ready_at: float | None = None


class RbcProtocol:
    """Base per-node RBC module.

    Subclasses implement :meth:`broadcast` and the message handlers, and share
    instance management, delivery-once semantics, and statistics.
    """

    def __init__(
        self,
        node_id: NodeId,
        membership: Membership,
        network: Network,
        on_deliver: DeliverFn,
        register: bool = True,
        tracer=None,
    ) -> None:
        self.node_id = node_id
        self.membership = membership
        self.network = network
        self.on_deliver = on_deliver
        #: Defaults to the network's tracer so RBC spans and net.hop records
        #: land in the same trace without extra wiring.
        self.tracer = tracer if tracer is not None else network.tracer
        self.instances: dict[InstanceKey, InstanceState] = {}
        self.deliveries: list[Delivery] = []
        if register:
            network.register(node_id, self.on_message)

    # -- plumbing ----------------------------------------------------------

    @property
    def in_clan(self) -> bool:
        return self.node_id in self.membership.clan

    def instance(self, origin: NodeId, round_: Round) -> InstanceState:
        key = (origin, round_)
        state = self.instances.get(key)
        if state is None:
            state = self.instances[key] = InstanceState()
        return state

    def broadcast(self, payload: Any, round_: Round) -> None:
        """``r_bcast``: disseminate ``payload`` as this node, in ``round_``."""
        raise NotImplementedError

    def on_message(self, src: NodeId, msg: Any) -> None:
        """Network entry point; subclasses dispatch on message type."""
        raise NotImplementedError

    def _deliver(
        self, origin: NodeId, round_: Round, state: InstanceState, digest_: bytes
    ) -> None:
        """Invoke r_deliver exactly once (Integrity)."""
        if state.delivered:
            return
        state.delivered = True
        state.delivered_digest = digest_
        payload = state.payloads.get(digest_)
        delivery = Delivery(origin, round_, payload, digest_, payload is not None)
        self.deliveries.append(delivery)
        if self.tracer.enabled:
            self._trace_delivery(origin, round_, state)
        self.on_deliver(delivery)

    def _trace_delivery(
        self, origin: NodeId, round_: Round, state: InstanceState
    ) -> None:
        """Emit the tail phase span(s) for a completed instance.

        Bracha-style instances produce ``rbc.ready_to_deliver``; two-round
        instances (no READY phase) produce ``rbc.echo_to_deliver``.  Every
        instance produces ``rbc.e2e`` from the first VAL (or from delivery
        itself when the local node never saw a VAL, e.g. pull-completed).
        """
        now = self.tracer.now()
        tr = self.tracer
        if state.ready_at is not None:
            tr.span("rbc.ready_to_deliver", start=state.ready_at, end=now,
                    node=self.node_id, origin=origin, round=round_)
        elif state.echo_at is not None:
            tr.span("rbc.echo_to_deliver", start=state.echo_at, end=now,
                    node=self.node_id, origin=origin, round=round_)
        start = state.val_at if state.val_at is not None else now
        tr.span("rbc.e2e", start=start, end=now,
                node=self.node_id, origin=origin, round=round_)

    def delivered(self, origin: NodeId, round_: Round) -> bool:
        state = self.instances.get((origin, round_))
        return bool(state and state.delivered)
