"""Adversarial RBC senders for fault-injection tests and benchmarks.

These helpers craft raw protocol messages directly on the network, modelling
senders that equivocate or withhold payloads.  They never touch honest-party
state, so they compose with any of the RBC modules.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..crypto.signatures import Pki
from ..errors import BroadcastError
from ..net.network import Network
from ..types import NodeId, Round
from .base import Membership, RbcProtocol, payload_digest
from .messages import ValMsg
from .tribe_two_round import val_statement


def silence(module: RbcProtocol) -> None:
    """Turn an RBC module into a silent (Byzantine-mute) party.

    The party stays on the membership roll but never echoes, readies, or
    serves pulls — the cheapest Byzantine behaviour, and the one that
    starves optimistic all-to-all fast paths.  Re-registers a drop-all
    handler because the network captured the original bound method.
    """
    def _drop(*_args, **_kwargs) -> None:
        return None

    module.broadcast = _drop
    module.on_message = _drop
    module.network.register(module.node_id, _drop)


def send_equivocating_vals(
    network: Network,
    origin: NodeId,
    round_: Round,
    assignments: dict[NodeId, Any],
    membership: Membership,
    pki: Pki | None = None,
) -> None:
    """Send different VALs to different parties (classic equivocation).

    ``assignments`` maps each recipient to the payload the Byzantine sender
    shows it.  Recipients outside the clan receive only the digest of their
    assigned payload.  With ``pki``, VALs are signed (two-round variants).
    """
    if not assignments:
        raise BroadcastError("equivocation needs at least one recipient")
    for recipient, payload in assignments.items():
        digest_ = payload_digest(payload)
        signature = None
        if pki is not None:
            signature = pki.key(origin).sign(val_statement(origin, round_, digest_))
        body = payload if recipient in membership.clan else None
        network.send(origin, recipient, ValMsg(origin, round_, digest_, body, signature))


def send_withholding_vals(
    network: Network,
    origin: NodeId,
    round_: Round,
    payload: Any,
    membership: Membership,
    receive_full: Iterable[NodeId],
    pki: Pki | None = None,
) -> None:
    """Send the payload to only ``receive_full`` clan members, digest to the rest.

    Models a Byzantine sender that starves most of the clan so they must use
    the pull path (§3's download-from-the-clan mechanism).
    """
    digest_ = payload_digest(payload)
    signature = None
    if pki is not None:
        signature = pki.key(origin).sign(val_statement(origin, round_, digest_))
    full = set(receive_full)
    unknown = full - set(membership.clan)
    if unknown:
        raise BroadcastError(f"receive_full parties {sorted(unknown)} not in clan")
    for recipient in membership.all_parties:
        body = payload if recipient in full else None
        network.send(origin, recipient, ValMsg(origin, round_, digest_, body, signature))
