"""Payload retrieval ("download value m from parties in P_c").

When a clan member reaches the delivery condition without having received the
payload (possible under a Byzantine sender), it pulls the payload from clan
members that provably hold it — any clan member that sent an ECHO claims to
have received ``m`` (Fig. 2 step 2).  Requests go to one holder at a time
with a retry timer; responders answer each requester at most once per
instance (the paper's rate-limiting remark).
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import BroadcastError
from ..net.network import Network
from ..sim.scheduler import Simulator
from ..types import NodeId, Round
from .base import InstanceKey, payload_digest
from .messages import PayloadRequest, PayloadResponse


class Retriever:
    """Per-node pull client: fetches missing payloads from known holders."""

    def __init__(
        self,
        node_id: NodeId,
        network: Network,
        sim: Simulator,
        on_payload: Callable[[NodeId, Round, Any], None],
        retry_timeout: float = 0.5,
        channel: str = "payload",
    ) -> None:
        if retry_timeout <= 0:
            raise BroadcastError("retry timeout must be positive")
        self.node_id = node_id
        self.network = network
        self.sim = sim
        self.on_payload = on_payload
        self.retry_timeout = retry_timeout
        self.channel = channel
        self._pending: dict[InstanceKey, dict] = {}

    def fetch(
        self,
        origin: NodeId,
        round_: Round,
        digest: bytes,
        holders: list[NodeId],
    ) -> None:
        """Start pulling payload for ``(origin, round_)`` from ``holders``.

        Idempotent: a second call for the same instance refreshes the holder
        list but does not restart an in-flight request.
        """
        key = (origin, round_)
        state = self._pending.get(key)
        if state is not None:
            for holder in holders:
                if holder not in state["holders"]:
                    state["holders"].append(holder)
            return
        if not holders:
            raise BroadcastError(f"no holders known for instance {key}")
        state = {
            "digest": digest,
            "holders": list(holders),
            "next": 0,
            "timer": None,
            "timeout": self.retry_timeout,
        }
        self._pending[key] = state
        self._request(key)

    def add_holder(self, origin: NodeId, round_: Round, holder: NodeId) -> None:
        """Tell an in-flight fetch about another party that holds the payload."""
        state = self._pending.get((origin, round_))
        if state is not None and holder not in state["holders"]:
            state["holders"].append(holder)

    @property
    def pending(self) -> set[InstanceKey]:
        return set(self._pending)

    def gc_below(self, round_: Round) -> int:
        """Drop (and stop retrying) fetches for instances older than
        ``round_`` — their rounds have been committed/garbage-collected and
        the payload can no longer matter.  Returns the number of entries
        collected; without this, ``_pending`` (and its retry timers) grows
        without bound when holders stay unresponsive forever."""
        stale = [key for key in self._pending if key[1] < round_]
        for key in stale:
            state = self._pending.pop(key)
            if state["timer"] is not None:
                state["timer"].cancel()
        return len(stale)

    def suspend(self) -> None:
        """Cancel all retry timers (crash: a dead node must not keep
        requesting).  Pending state survives for :meth:`resume`."""
        for state in self._pending.values():
            if state["timer"] is not None:
                state["timer"].cancel()
                state["timer"] = None

    def resume(self) -> None:
        """Re-issue every suspended fetch (recovery)."""
        for key in list(self._pending):
            self._request(key)

    def _request(self, key: InstanceKey) -> None:
        state = self._pending.get(key)
        if state is None:
            return
        holders = state["holders"]
        target = holders[state["next"] % len(holders)]
        state["next"] += 1
        origin, round_ = key
        self.network.send(
            self.node_id,
            target,
            PayloadRequest(origin, round_, state["digest"], self.channel),
        )
        # Exponential backoff (capped): retries persist for eventual delivery
        # without flooding the network when every holder is slow or faulty.
        state["timer"] = self.sim.schedule(state["timeout"], self._request, key)
        state["timeout"] = min(state["timeout"] * 1.5, 30.0)

    def on_response(self, src: NodeId, msg: PayloadResponse) -> None:
        """Handle a payload response; verifies the digest before accepting."""
        if msg.channel != self.channel:
            return
        key = (msg.origin, msg.round)
        state = self._pending.get(key)
        if state is None:
            return
        if payload_digest(msg.payload) != state["digest"]:
            return  # corrupted or adversarial response; keep retrying
        if state["timer"] is not None:
            state["timer"].cancel()
        del self._pending[key]
        self.on_payload(msg.origin, msg.round, msg.payload)


class Responder:
    """Per-node pull server with per-requester rate limiting."""

    def __init__(
        self,
        node_id: NodeId,
        network: Network,
        lookup: Callable[[NodeId, Round], Any | None],
        max_responses_per_requester: int = 1,
        channel: str = "payload",
    ) -> None:
        self.node_id = node_id
        self.network = network
        self.lookup = lookup
        self.max_responses = max_responses_per_requester
        self.channel = channel
        self._served: dict[tuple[InstanceKey, NodeId], int] = {}

    def gc_below(self, round_: Round) -> int:
        """Forget rate-limit records for instances older than ``round_``.

        The records exist only to stop Byzantine requesters amplifying
        traffic *within* an instance's lifetime; once the instance's round is
        committed and garbage-collected they are dead weight.  Returns the
        number of entries collected."""
        stale = [key for key in self._served if key[0][1] < round_]
        for key in stale:
            del self._served[key]
        return len(stale)

    def on_request(self, src: NodeId, msg: PayloadRequest) -> None:
        if msg.channel != self.channel:
            return
        key = ((msg.origin, msg.round), src)
        served = self._served.get(key, 0)
        if served >= self.max_responses:
            return  # rate-limited: Byzantine requesters cannot amplify traffic
        payload = self.lookup(msg.origin, msg.round)
        if payload is None:
            return
        self._served[key] = served + 1
        self.network.send(
            self.node_id,
            src,
            PayloadResponse(msg.origin, msg.round, msg.digest, payload, self.channel),
        )
