"""Optimistic signature-free reliable broadcast (good case: 2 rounds).

The fast path piggybacks on the Bracha message flow but skips READY: when
*all n* parties ECHO the same digest — so every party provably saw the same
VAL and every clan member holds the payload — the instance delivers after
just VAL + ECHO (2δ), one message delay ahead of the pessimistic 3δ path.

An instance abandons the fast path ("falls back") and completes through the
inherited :class:`~repro.rbc.tribe_bracha.TribeBrachaRbc` READY path when
the all-to-all agreement is no longer attainable or timely:

* **conflict** — a second digest shows up in a VAL or an ECHO (equivocating
  sender, or honest parties echoing different values);
* **timeout** — the per-instance fallback timer fires before all n ECHOs
  arrive (lossy links, partitions, crashed or silent parties);
* **ready** — any READY is received, meaning some other party already fell
  back; joining immediately keeps the pessimistic quorum moving at network
  speed instead of waiting for the local timer.

Safety of the fast path: delivering d on all-n ECHOs means every honest
party echoed d, and parties echo at most once, so no conflicting digest can
ever gather an ECHO (hence READY) quorum — fast and fallback deliveries
cannot diverge.  Totality: if any party fast-delivers d, every honest party
echoed d; parties that miss the all-n condition fall back by timer and the
2f+1 honest ECHOs they already share complete the READY path.
"""

from __future__ import annotations

from typing import Any

from ..net.network import Network
from ..sim.scheduler import EventHandle, Simulator
from ..types import NodeId, Round
from .base import DeliverFn, InstanceKey, InstanceState, Membership
from .messages import EchoMsg, ReadyMsg, ValMsg
from .tribe_bracha import TribeBrachaRbc


class OptimisticRbc(TribeBrachaRbc):
    """Per-node module for the optimistic fast-path protocol.

    Args:
        fallback_timeout: how long an instance waits for the all-to-all ECHO
            agreement (armed on its first VAL or ECHO) before switching to
            the pessimistic READY path.  Pick it above one retransmission
            round-trip of the underlying transport so transient loss the
            reliable channel can mask does not force a fallback.
    """

    def __init__(
        self,
        node_id: NodeId,
        membership: Membership,
        network: Network,
        sim: Simulator,
        on_deliver: DeliverFn,
        early_fetch: bool = True,
        retry_timeout: float = 0.5,
        fallback_timeout: float = 0.5,
        register: bool = True,
        tracer=None,
    ) -> None:
        super().__init__(
            node_id, membership, network, sim, on_deliver,
            early_fetch=early_fetch, retry_timeout=retry_timeout,
            register=register, tracer=tracer,
        )
        self.fallback_timeout = fallback_timeout
        #: Instances that abandoned the fast path (complete via READY).
        self._pessimistic: set[InstanceKey] = set()
        self._fallback_timers: dict[InstanceKey, EventHandle] = {}
        self.fast_deliveries = 0
        self.fallback_deliveries = 0
        #: Fallback trigger counts by reason ("conflict"/"timeout"/"ready").
        self.fallbacks: dict[str, int] = {}

    # -- receiving ---------------------------------------------------------

    def _on_val(self, src: NodeId, msg: ValMsg) -> None:
        if src != msg.origin:
            return
        state = self.instance(msg.origin, msg.round)
        key = (msg.origin, msg.round)
        if not state.delivered and key not in self._pessimistic:
            self._arm_fallback(key)
        super()._on_val(src, msg)
        if state.conflicting and not state.delivered and key not in self._pessimistic:
            self._fall_back(msg.origin, msg.round, state, "conflict")

    def _on_echo(self, src: NodeId, msg: EchoMsg) -> None:
        state = self.instance(msg.origin, msg.round)
        key = (msg.origin, msg.round)
        if not state.delivered and key not in self._pessimistic:
            self._arm_fallback(key)
        super()._on_echo(src, msg)
        if (
            (len(state.echoes) > 1 or state.conflicting)
            and not state.delivered
            and key not in self._pessimistic
        ):
            self._fall_back(msg.origin, msg.round, state, "conflict")

    def _on_ready(self, src: NodeId, msg: ReadyMsg) -> None:
        # A READY proves some party already fell back; join its pessimistic
        # quorum right away rather than waiting out the local timer.
        state = self.instance(msg.origin, msg.round)
        key = (msg.origin, msg.round)
        if not state.delivered and key not in self._pessimistic:
            self._fall_back(msg.origin, msg.round, state, "ready")
        elif (
            state.delivered
            and state.ready_digest is None
            and state.delivered_digest is not None
        ):
            # Totality: this node delivered on the fast path (it never entered
            # the READY phase), but a peer fell back and now needs 2f+1
            # READYs.  Answer with our own READY for the delivered digest —
            # without it, a lone faller could wait forever while everyone
            # else sits on a completed fast-path instance.
            state.ready_digest = state.delivered_digest
            self.network.broadcast(
                self.node_id,
                ReadyMsg(msg.origin, msg.round, state.delivered_digest),
            )
        super()._on_ready(src, msg)

    def _check_echo_quorum(
        self, origin: NodeId, round_: Round, digest_: bytes, state: InstanceState
    ) -> None:
        if (origin, round_) in self._pessimistic:
            super()._check_echo_quorum(origin, round_, digest_, state)
            return
        if state.delivered or len(state.echoes) > 1 or state.conflicting:
            return
        supporters = state.echoes.get(digest_, ())
        if len(supporters) == self.membership.n:
            # Unanimous ECHO: every clan member echoed only after holding the
            # payload, so a clan member (self included) already has it.
            self._deliver(origin, round_, state, digest_)

    # -- fallback machinery ------------------------------------------------

    def _arm_fallback(self, key: InstanceKey) -> None:
        if key in self._fallback_timers:
            return
        self._fallback_timers[key] = self.sim.schedule(
            self.fallback_timeout, self._on_fallback_timeout, key
        )

    def _cancel_fallback(self, key: InstanceKey) -> None:
        handle = self._fallback_timers.pop(key, None)
        if handle is not None:
            handle.cancel()

    def _on_fallback_timeout(self, key: InstanceKey) -> None:
        self._fallback_timers.pop(key, None)
        state = self.instances.get(key)
        if state is None or state.delivered or key in self._pessimistic:
            return
        self._fall_back(key[0], key[1], state, "timeout")

    def _fall_back(
        self, origin: NodeId, round_: Round, state: InstanceState, reason: str
    ) -> None:
        key = (origin, round_)
        if state.delivered or key in self._pessimistic:
            return
        self._pessimistic.add(key)
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1
        self._cancel_fallback(key)
        if self.tracer.enabled:
            self.tracer.counter(
                "rbc.fallback", node=self.node_id, origin=origin,
                round=round_, reason=reason, time=self.sim.now,
            )
        # Replay the quorum check for every digest already echoed: the 2f+1
        # threshold may long be met while the fast path was holding out for
        # all n.
        for digest_ in sorted(state.echoes):
            super()._check_echo_quorum(origin, round_, digest_, state)

    # -- delivery ----------------------------------------------------------

    def _deliver(
        self, origin: NodeId, round_: Round, state: InstanceState, digest_: bytes
    ) -> None:
        if state.delivered:
            return
        key = (origin, round_)
        self._cancel_fallback(key)
        if key in self._pessimistic:
            self.fallback_deliveries += 1
        else:
            self.fast_deliveries += 1
        super()._deliver(origin, round_, state, digest_)

    # -- introspection -----------------------------------------------------

    def is_pessimistic(self, origin: NodeId, round_: Round) -> bool:
        return (origin, round_) in self._pessimistic


__all__ = ["OptimisticRbc"]
