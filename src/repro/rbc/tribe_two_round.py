"""Two-round tribe-assisted reliable broadcast, Fig. 3 (signature-based).

Good-case optimal: two message delays from sender to delivery.

1. The sender signs and sends ⟨VAL, m, r⟩ₖ to clan members and
   ⟨VAL, H(m), r⟩ₖ to the rest.
2. On its first VAL, a party multicasts a *signed* ⟨ECHO, H(m), r⟩ᵢ — clan
   members only after holding the full value.
3. On 2f+1 signed ECHOs with at least f_c+1 from the clan, a party forms the
   certificate EC_r(m) (a BLS multi-signature + signer bitmap), multicasts
   it, and delivers: clan members deliver m (pulling it from a clan signer of
   the certificate if missing), everyone else delivers H(m).
4. Receiving a valid EC_r(m) also delivers immediately.
"""

from __future__ import annotations

from typing import Any

from ..crypto.certificates import QuorumCertificate, build_certificate, verify_certificate
from ..crypto.hashing import digest as compute_digest
from ..crypto.signatures import Pki
from ..errors import BroadcastError
from ..net.network import Network
from ..sim.scheduler import Simulator
from ..types import NodeId, Round
from .base import DeliverFn, InstanceState, Membership, RbcProtocol, payload_digest
from .messages import CertMsg, EchoMsg, PayloadRequest, PayloadResponse, ValMsg
from .retrieval import Responder, Retriever


def echo_statement(origin: NodeId, round_: Round, digest_: bytes) -> bytes:
    """The statement an ECHO signature covers."""
    return compute_digest(b"ECHO", origin, round_, digest_)


def val_statement(origin: NodeId, round_: Round, digest_: bytes) -> bytes:
    """The statement the sender's VAL signature covers."""
    return compute_digest(b"VAL", origin, round_, digest_)


class TribeTwoRoundRbc(RbcProtocol):
    """Per-node module for the Fig. 3 protocol."""

    def __init__(
        self,
        node_id: NodeId,
        membership: Membership,
        network: Network,
        sim: Simulator,
        pki: Pki,
        on_deliver: DeliverFn,
        retry_timeout: float = 0.5,
        register: bool = True,
        tracer=None,
    ) -> None:
        super().__init__(
            node_id, membership, network, on_deliver, register=register, tracer=tracer
        )
        self.sim = sim
        self.pki = pki
        self._key = pki.key(node_id)
        self._retriever = Retriever(
            node_id, network, sim, self._on_pulled_payload, retry_timeout
        )
        self._responder = Responder(node_id, network, self._lookup_payload)
        self._awaiting_payload: dict[tuple[NodeId, Round], bytes] = {}

    # -- sending -------------------------------------------------------------

    def broadcast(self, payload: Any, round_: Round) -> None:
        digest_ = payload_digest(payload)
        if self.tracer.enabled:
            self.tracer.counter(
                "rbc.propose", node=self.node_id, round=round_, time=self.sim.now
            )
        signature = self._key.sign(val_statement(self.node_id, round_, digest_))
        clan = self.membership.clan
        in_clan = [p for p in self.membership.all_parties if p in clan]
        outside = [p for p in self.membership.all_parties if p not in clan]
        self.network.multicast(
            self.node_id,
            in_clan,
            ValMsg(self.node_id, round_, digest_, payload, signature),
        )
        if outside:
            self.network.multicast(
                self.node_id,
                outside,
                ValMsg(self.node_id, round_, digest_, None, signature),
            )

    # -- receiving -----------------------------------------------------------

    def on_message(self, src: NodeId, msg: Any) -> None:
        if isinstance(msg, ValMsg):
            self._on_val(src, msg)
        elif isinstance(msg, EchoMsg):
            self._on_echo(src, msg)
        elif isinstance(msg, CertMsg):
            self._on_cert(src, msg)
        elif isinstance(msg, PayloadRequest):
            self._responder.on_request(src, msg)
        elif isinstance(msg, PayloadResponse):
            self._retriever.on_response(src, msg)
        else:
            raise BroadcastError(f"unexpected message {type(msg).__name__}")

    def _on_val(self, src: NodeId, msg: ValMsg) -> None:
        if src != msg.origin:
            return
        if msg.signature is None or not self.pki.verify(msg.signature):
            return
        if msg.signature.message_digest != val_statement(msg.origin, msg.round, msg.digest):
            return
        if msg.signature.signer != msg.origin:
            return
        state = self.instance(msg.origin, msg.round)
        if self.tracer.enabled and state.val_at is None:
            state.val_at = self.sim.now
        digest_ = msg.digest
        if msg.payload is not None:
            if payload_digest(msg.payload) != digest_:
                return
            state.payloads.setdefault(digest_, msg.payload)
        if state.val_digest is None:
            state.val_digest = digest_
        elif state.val_digest != digest_:
            state.conflicting.add(digest_)
            return
        if state.echoed:
            self._maybe_complete(msg.origin, msg.round, state)
            return
        if self.in_clan and digest_ not in state.payloads:
            return  # clan members vouch only for values they hold
        state.echoed = True
        if self.tracer.enabled:
            now = self.sim.now
            state.echo_at = now
            self.tracer.span(
                "rbc.val_to_echo",
                start=state.val_at if state.val_at is not None else now,
                end=now, node=self.node_id, origin=msg.origin, round=msg.round,
            )
        echo_sig = self._key.sign(echo_statement(msg.origin, msg.round, digest_))
        self.network.broadcast(
            self.node_id, EchoMsg(msg.origin, msg.round, digest_, echo_sig)
        )

    def _on_echo(self, src: NodeId, msg: EchoMsg) -> None:
        if msg.signature is None or msg.signature.signer != src:
            return
        if msg.signature.message_digest != echo_statement(msg.origin, msg.round, msg.digest):
            return
        if not self.pki.verify(msg.signature):
            return
        state = self.instance(msg.origin, msg.round)
        sigs = state.echo_sigs.setdefault(msg.digest, {})
        if src in sigs:
            return
        sigs[src] = msg.signature
        supporters = state.echoes.setdefault(msg.digest, set())
        supporters.add(src)
        self._check_echo_quorum(msg.origin, msg.round, msg.digest, state)

    def _check_echo_quorum(
        self, origin: NodeId, round_: Round, digest_: bytes, state: InstanceState
    ) -> None:
        if state.cert_sent or state.delivered:
            return
        supporters = state.echoes.get(digest_, ())
        if len(supporters) < self.membership.quorum:
            return
        clan_supporters = [p for p in supporters if p in self.membership.clan]
        if len(clan_supporters) < self.membership.clan_quorum:
            return
        cert = build_certificate(list(state.echo_sigs[digest_].values()))
        state.cert_sent = True
        self.network.broadcast(
            self.node_id, CertMsg(origin, round_, digest_, cert, self.membership.n)
        )
        self._try_deliver(origin, round_, digest_, state, cert)

    def _on_cert(self, src: NodeId, msg: CertMsg) -> None:
        state = self.instance(msg.origin, msg.round)
        if state.delivered:
            return
        if not verify_certificate(
            self.pki,
            msg.cert,
            quorum=self.membership.quorum,
            clan=self.membership.clan,
            clan_quorum=self.membership.clan_quorum,
        ):
            return
        if msg.cert.message_digest != echo_statement(msg.origin, msg.round, msg.digest):
            return
        # Forward the certificate once so every honest party eventually holds
        # it even if the original quorum-former was the only honest multicaster.
        if not state.cert_sent:
            state.cert_sent = True
            self.network.broadcast(self.node_id, msg)
        self._try_deliver(msg.origin, msg.round, msg.digest, state, msg.cert)

    # -- delivery and retrieval -----------------------------------------------

    def _try_deliver(
        self,
        origin: NodeId,
        round_: Round,
        digest_: bytes,
        state: InstanceState,
        cert: QuorumCertificate,
    ) -> None:
        if state.delivered:
            return
        if not self.in_clan:
            self._deliver(origin, round_, state, digest_)
            return
        if digest_ in state.payloads:
            self._deliver(origin, round_, state, digest_)
            return
        self._awaiting_payload[(origin, round_)] = digest_
        holders = [p for p in cert.signers if p in self.membership.clan]
        self._retriever.fetch(origin, round_, digest_, holders)

    def _maybe_complete(self, origin: NodeId, round_: Round, state: InstanceState) -> None:
        digest_ = self._awaiting_payload.get((origin, round_))
        if digest_ is not None and digest_ in state.payloads and not state.delivered:
            del self._awaiting_payload[(origin, round_)]
            self._deliver(origin, round_, state, digest_)

    def _on_pulled_payload(self, origin: NodeId, round_: Round, payload: Any) -> None:
        state = self.instance(origin, round_)
        digest_ = payload_digest(payload)
        state.payloads.setdefault(digest_, payload)
        expected = self._awaiting_payload.get((origin, round_))
        if expected == digest_ and not state.delivered:
            del self._awaiting_payload[(origin, round_)]
            self._deliver(origin, round_, state, digest_)

    def _lookup_payload(self, origin: NodeId, round_: Round) -> Any | None:
        state = self.instances.get((origin, round_))
        if state is None or not state.payloads:
            return None
        if state.val_digest is not None and state.val_digest in state.payloads:
            return state.payloads[state.val_digest]
        return next(iter(state.payloads.values()))
