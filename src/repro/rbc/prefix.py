"""Raptr-style prefix dissemination: blocks split into certified chunks.

A proposer carves its block into ``C`` contiguous chunks and advertises a
:class:`ChunkManifest` — the per-chunk digests plus the block metadata —
whose own digest is bound into the vertex (``Vertex.chunk_root``).  Chunks
then travel as separate messages, so a voter that received only the head of
the block can still attest exactly how much it holds: the protocol commits
the longest commonly-available *prefix* instead of stalling the round on a
slow or tail-withholding proposer.

Determinism contract: chunk boundaries depend only on ``(txn_count, C)``,
and :func:`assemble_prefix` rebuilds a prefix block from the manifest alone
plus the first ``k`` chunks — for ``k = C`` the result is digest-identical
to the original block, so the full-block path is unchanged byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import digest
from ..dag.block import Block
from ..errors import DagError
from ..net import sizes
from ..net.message import Message
from ..types import NodeId, Round


@dataclass(frozen=True, slots=True)
class BlockChunk:
    """One contiguous slice of a block's transaction list.

    Synthetic blocks yield synthetic chunks (``txns is None``); both kinds
    report real wire sizes so the bandwidth model stays honest.
    """

    proposer: NodeId
    round: Round
    index: int
    txns: tuple | None
    txn_count: int
    txn_size: int

    def chunk_digest(self) -> bytes:
        if self.txns is not None:
            return digest(
                b"chunk", self.proposer, self.round, self.index,
                *[t.txn_digest() for t in self.txns],
            )
        return digest(
            b"chunk", self.proposer, self.round, self.index,
            self.txn_count, self.txn_size,
        )

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE + self.txn_count * self.txn_size


@dataclass(frozen=True, slots=True)
class ChunkManifest:
    """Binding commitment to a block's chunking.

    ``manifest_digest()`` is what the vertex commits to (``chunk_root``), so
    an equivocating proposer cannot show different chunkings of the same
    block digest to different voters.
    """

    proposer: NodeId
    round: Round
    block_digest: bytes
    chunk_digests: tuple[bytes, ...]
    chunk_counts: tuple[int, ...]
    txn_count: int
    txn_size: int
    created_at: float

    def __post_init__(self) -> None:
        if len(self.chunk_digests) != len(self.chunk_counts):
            raise DagError("manifest chunk digests/counts length mismatch")
        if sum(self.chunk_counts) != self.txn_count:
            raise DagError("manifest chunk counts do not sum to txn_count")

    @property
    def num_chunks(self) -> int:
        return len(self.chunk_digests)

    def manifest_digest(self) -> bytes:
        return digest(
            b"manifest", self.proposer, self.round, self.block_digest,
            self.txn_count, self.txn_size, self.created_at,
            *self.chunk_digests, *self.chunk_counts,
        )

    def verify_chunk(self, chunk: BlockChunk) -> bool:
        """True iff ``chunk`` is the committed chunk at its index."""
        if not 0 <= chunk.index < self.num_chunks:
            return False
        if chunk.txn_count != self.chunk_counts[chunk.index]:
            return False
        return chunk.chunk_digest() == self.chunk_digests[chunk.index]

    def prefix_txn_count(self, k: int) -> int:
        """Transactions covered by the first ``k`` chunks."""
        return sum(self.chunk_counts[:k])

    def wire_size(self) -> int:
        return (
            sizes.HEADER_SIZE + sizes.HASH_SIZE
            + self.num_chunks * (sizes.HASH_SIZE + 4)
        )


def chunk_counts(txn_count: int, num_chunks: int) -> tuple[int, ...]:
    """Deterministic chunk boundaries: as even as possible, remainder first."""
    num_chunks = max(1, min(num_chunks, txn_count) if txn_count else 1)
    base, rem = divmod(txn_count, num_chunks)
    return tuple(base + (1 if i < rem else 0) for i in range(num_chunks))


def split_block(block: Block, num_chunks: int) -> tuple[ChunkManifest, list[BlockChunk]]:
    """Split ``block`` into at most ``num_chunks`` chunks plus its manifest."""
    counts = chunk_counts(block.txn_count, num_chunks)
    chunks: list[BlockChunk] = []
    offset = 0
    for index, count in enumerate(counts):
        txns = None
        if block.txns is not None:
            txns = block.txns[offset:offset + count]
        chunks.append(
            BlockChunk(
                proposer=block.proposer, round=block.round, index=index,
                txns=txns, txn_count=count, txn_size=block.txn_size,
            )
        )
        offset += count
    manifest = ChunkManifest(
        proposer=block.proposer,
        round=block.round,
        block_digest=block.payload_digest(),
        chunk_digests=tuple(c.chunk_digest() for c in chunks),
        chunk_counts=counts,
        txn_count=block.txn_count,
        txn_size=block.txn_size,
        created_at=block.created_at,
    )
    return manifest, chunks


def assemble_prefix(
    manifest: ChunkManifest, chunks: dict[int, BlockChunk], k: int
) -> Block:
    """Rebuild the block covering chunks ``[0, k)``.

    For ``k == num_chunks`` the result is digest-identical to the block the
    manifest was split from; smaller ``k`` yields the committed prefix block.
    Requires the first ``k`` chunks to be present (and assumed verified).
    """
    if not 0 <= k <= manifest.num_chunks:
        raise DagError(f"prefix length {k} outside [0, {manifest.num_chunks}]")
    prefix = [chunks[i] for i in range(k)]  # KeyError = caller's bug
    txn_count = manifest.prefix_txn_count(k)
    if k > 0 and prefix[0].txns is not None:
        txns = tuple(t for c in prefix for t in c.txns)
    else:
        # Synthetic chunks (or an empty prefix): a counted block suffices.
        txns = None
    return Block(
        proposer=manifest.proposer,
        round=manifest.round,
        txns=txns,
        txn_count=txn_count,
        txn_size=manifest.txn_size,
        created_at=manifest.created_at,
    )


# -- wire messages ----------------------------------------------------------


@dataclass(slots=True)
class BlockChunkMsg(Message):
    """⟨CHUNK, i, r⟩ — one block chunk pushed by the proposer to its clan."""

    origin: NodeId
    round: Round
    chunk: BlockChunk

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE + self.chunk.wire_size()


@dataclass(slots=True)
class ChunkRequestMsg(Message):
    """Pull request for one missing chunk of ``origin``'s round-``r`` block."""

    origin: NodeId
    round: Round
    index: int

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE + 4


@dataclass(slots=True)
class ChunkResponseMsg(Message):
    """Pull response: a verified chunk, the manifest, or both.

    The manifest rides along so a clan member that pulled the bare vertex
    (and thus never saw the VAL manifest) can still verify chunks and
    assemble the committed prefix; ``chunk`` is ``None`` for manifest-only
    answers from holders that have no chunks themselves."""

    origin: NodeId
    round: Round
    chunk: BlockChunk | None
    manifest: ChunkManifest | None = None

    def wire_size(self) -> int:
        size = sizes.HEADER_SIZE
        if self.chunk is not None:
            size += self.chunk.wire_size()
        if self.manifest is not None:
            size += self.manifest.wire_size()
        return size


__all__ = [
    "BlockChunk",
    "ChunkManifest",
    "chunk_counts",
    "split_block",
    "assemble_prefix",
    "BlockChunkMsg",
    "ChunkRequestMsg",
    "ChunkResponseMsg",
]
