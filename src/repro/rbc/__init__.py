"""Reliable broadcast protocols.

Four protocols, all multiplexing instances keyed by ``(origin, round)`` over
the simulated network:

* :class:`~repro.rbc.bracha.BrachaRbc` — classic 3-round Bracha RBC
  (payload to everyone); the primitive existing DAG BFT builds on.
* :class:`~repro.rbc.two_round.TwoRoundRbc` — Abraham et al.'s good-case
  2-round RBC with signed ECHOs and certificates (payload to everyone).
* :class:`~repro.rbc.tribe_bracha.TribeBrachaRbc` — the paper's Fig. 2:
  signature-free tribe-assisted RBC; payload only to the clan, digest to the
  rest, READY requires 2f+1 ECHOs with ≥ f_c+1 from the clan.
* :class:`~repro.rbc.tribe_two_round.TribeTwoRoundRbc` — the paper's Fig. 3:
  2-round tribe-assisted RBC with signed ECHOs and an ``EC_r(m)`` certificate.
* :class:`~repro.rbc.optimistic.OptimisticRbc` — signature-free optimistic
  fast path: delivers after VAL+ECHO (2δ) when all n parties echo one digest,
  falling back to the Bracha READY path on conflict, timeout, or any READY.

:mod:`repro.rbc.prefix` adds Raptr-style chunked dissemination (manifests,
chunk splitting/reassembly) used by the consensus layer's prefix commits.

Clan members that reach delivery without the payload pull it from clan
members known to hold it (:mod:`repro.rbc.retrieval`), exactly as §3 allows.
"""

from .base import Delivery, Membership, RbcProtocol
from .bracha import BrachaRbc
from .optimistic import OptimisticRbc
from .prefix import BlockChunk, ChunkManifest, assemble_prefix, split_block
from .tribe_bracha import TribeBrachaRbc
from .tribe_two_round import TribeTwoRoundRbc
from .two_round import TwoRoundRbc

__all__ = [
    "Delivery",
    "Membership",
    "RbcProtocol",
    "BrachaRbc",
    "TribeBrachaRbc",
    "TwoRoundRbc",
    "TribeTwoRoundRbc",
    "OptimisticRbc",
    "BlockChunk",
    "ChunkManifest",
    "assemble_prefix",
    "split_block",
]
