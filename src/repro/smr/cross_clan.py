"""Cross-clan transactions via two-phase commit (§6.1, state-sharded mode).

The multi-clan protocol orders everything globally but executes each block
only inside its proposer's clan.  A transaction touching keys owned by two
clans therefore needs coordination.  Following the state-sharding literature
the paper cites (and leaves as future work), we implement the standard
ordered-2PC pattern on top of the global total order:

1. The client submits a ``prepare`` transaction to *each* involved clan; the
   global order fixes one position for every prepare.
2. Executing a prepare locks the local keys and records the read-set digest;
   clan members report the vote (prepared / aborted) to the coordinating
   client, which needs f_c+1 matching votes per clan.
3. The client submits ``commit`` (or ``abort``) transactions to the involved
   clans; executing them applies (or discards) the staged writes and releases
   the locks.

Because every step is itself a globally-ordered transaction, all replicas of
a clan take identical lock/commit decisions — no extra consensus is needed,
exactly the property the multi-clan design provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import ExecutionError

#: Cross-clan operation tags understood by :class:`ShardedStateMachine`.
PREPARE = "xc-prepare"
COMMIT = "xc-commit"
ABORT = "xc-abort"


@dataclass(slots=True)
class _Staged:
    """A prepared-but-undecided cross-clan write set on one shard."""

    xid: str
    writes: dict[Any, Any]
    locked: frozenset


class ShardedStateMachine:
    """A KV shard with 2PC support, deterministic given the ordered log.

    Local operations are plain ``("set" | "get" | "del" | "incr", ...)``
    tuples (same as :class:`~repro.smr.state_machine.KvStateMachine`); the
    cross-clan ops are::

        (PREPARE, xid, {key: value, ...})   -> "prepared" | "aborted"
        (COMMIT, xid)                        -> "committed" | "unknown"
        (ABORT, xid)                         -> "aborted" | "unknown"

    A prepare aborts deterministically when any of its keys is locked by an
    earlier (globally-ordered) prepare.
    """

    def __init__(self) -> None:
        self._data: dict[Any, Any] = {}
        self._locks: dict[Any, str] = {}
        self._staged: dict[str, _Staged] = {}
        self._applied: set[str] = set()

    # -- plain operations --------------------------------------------------

    def _apply_local(self, op: tuple) -> Any:
        kind = op[0]
        if kind == "noop":
            return None
        if kind == "set":
            _, key, value = op
            if key in self._locks:
                raise ExecutionError(f"key {key!r} locked by {self._locks[key]}")
            self._data[key] = value
            return value
        if kind == "get":
            return self._data.get(op[1])
        if kind == "del":
            return self._data.pop(op[1], None) is not None
        if kind == "incr":
            _, key, amount = op
            if key in self._locks:
                raise ExecutionError(f"key {key!r} locked by {self._locks[key]}")
            value = self._data.get(key, 0) + amount
            self._data[key] = value
            return value
        raise ExecutionError(f"unknown operation {kind!r}")

    # -- 2PC operations -----------------------------------------------------

    def apply(self, txn_id: str, op: tuple | None) -> Any:
        """Apply one ordered transaction (replay-protected by txn id)."""
        if txn_id in self._applied:
            return None
        self._applied.add(txn_id)
        if op is None:
            return None
        kind = op[0]
        if kind == PREPARE:
            return self._prepare(op[1], op[2])
        if kind == COMMIT:
            return self._commit(op[1])
        if kind == ABORT:
            return self._abort(op[1])
        return self._apply_local(op)

    def _prepare(self, xid: str, writes: dict) -> str:
        if xid in self._staged:
            return "prepared"  # idempotent
        conflict = any(key in self._locks for key in writes)
        if conflict:
            return "aborted"
        self._staged[xid] = _Staged(
            xid=xid, writes=dict(writes), locked=frozenset(writes)
        )
        for key in writes:
            self._locks[key] = xid
        return "prepared"

    def _commit(self, xid: str) -> str:
        staged = self._staged.pop(xid, None)
        if staged is None:
            return "unknown"
        for key, value in sorted(staged.writes.items(), key=lambda kv: repr(kv[0])):
            self._data[key] = value
        for key in staged.locked:
            if self._locks.get(key) == xid:
                del self._locks[key]
        return "committed"

    def _abort(self, xid: str) -> str:
        staged = self._staged.pop(xid, None)
        if staged is None:
            return "unknown"
        for key in staged.locked:
            if self._locks.get(key) == xid:
                del self._locks[key]
        return "aborted"

    def apply_txn(self, txn) -> Any:
        """Uniform executor entry point (mirrors KvStateMachine)."""
        return self.apply(txn.txn_id, txn.op)

    # -- inspection ------------------------------------------------------------

    def get(self, key: Any) -> Any:
        return self._data.get(key)

    def is_locked(self, key: Any) -> bool:
        return key in self._locks

    def pending_transactions(self) -> set[str]:
        return set(self._staged)

    def state_digest(self) -> bytes:
        from ..crypto.hashing import digest

        items = sorted((repr(k), repr(v)) for k, v in self._data.items())
        locks = sorted((repr(k), x) for k, x in self._locks.items())
        return digest(
            b"sharded-state",
            *[f"{k}={v}" for k, v in items],
            b"locks",
            *[f"{k}:{x}" for k, x in locks],
        )


class CrossClanCoordinator:
    """Client-side 2PC driver over an :class:`~repro.smr.runtime.SmrRuntime`.

    Drives prepare/commit across clans using ordinary per-clan clients; the
    runtime must have been built with ``SmrRuntime(..., sharded=True)``."""

    def __init__(self, runtime, clients_by_clan: dict[int, Any]) -> None:
        self.runtime = runtime
        self.clients = dict(clients_by_clan)
        self._seq = 0

    def begin(self, writes_by_clan: dict[int, dict]) -> "CrossClanTransaction":
        """Submit prepares for a cross-clan write set; returns a handle."""
        self._seq += 1
        xid = f"xc-{self._seq}"
        prepares = {}
        for clan_idx, writes in writes_by_clan.items():
            client = self.clients[clan_idx]
            txn = self.runtime.submit(client, (PREPARE, xid, dict(writes)))
            prepares[clan_idx] = txn
        return CrossClanTransaction(self, xid, prepares)


@dataclass
class CrossClanTransaction:
    """Handle tracking one cross-clan transaction through 2PC."""

    coordinator: CrossClanCoordinator
    xid: str
    prepares: dict[int, Any]
    decision_txns: dict[int, Any] = field(default_factory=dict)
    decision: str | None = None

    def try_decide(self) -> str | None:
        """Once every clan's prepare is accepted, submit commit/abort."""
        if self.decision is not None:
            return self.decision
        votes = {}
        for clan_idx, txn in self.prepares.items():
            client = self.coordinator.clients[clan_idx]
            if not client.is_accepted(txn.txn_id):
                return None  # still waiting on f_c+1 replies
            votes[clan_idx] = client.result_of(txn.txn_id)
        self.decision = (
            "commit" if all(v == "prepared" for v in votes.values()) else "abort"
        )
        op = COMMIT if self.decision == "commit" else ABORT
        for clan_idx in self.prepares:
            client = self.coordinator.clients[clan_idx]
            self.decision_txns[clan_idx] = self.coordinator.runtime.submit(
                client, (op, self.xid)
            )
        return self.decision

    def is_finished(self) -> bool:
        if self.decision is None:
            return False
        return all(
            self.coordinator.clients[ci].is_accepted(t.txn_id)
            for ci, t in self.decision_txns.items()
        )
