"""Clients: submit to a clan, accept on f_c+1 matching replies (§1 key idea).

A client needs ``f_c + 1`` consistent responses from clan members to be sure
at least one honest party executed its transaction.  Inconsistent minority
responses (from Byzantine executors) are outvoted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..committees.config import ClanConfig
from ..dag.transaction import Transaction
from ..errors import ExecutionError
from ..obs.tracer import NULL_TRACER
from ..types import NodeId


@dataclass(slots=True)
class _PendingRequest:
    txn: Transaction
    clan_idx: int
    #: responses received: node -> result
    responses: dict[NodeId, Any] = field(default_factory=dict)
    accepted: bool = False
    result: Any = None
    accepted_at: float | None = None


class Client:
    """A client of one clan (in multi-clan: of the application's clan)."""

    def __init__(
        self,
        client_id: str,
        clan_cfg: ClanConfig,
        clan_idx: int = 0,
        tracer=None,
    ) -> None:
        if not 0 <= clan_idx < clan_cfg.num_clans:
            raise ExecutionError(f"clan index {clan_idx} out of range")
        self.client_id = client_id
        self.cfg = clan_cfg
        self.clan_idx = clan_idx
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._seq = 0
        self._pending: dict[str, _PendingRequest] = {}

    # -- submission ----------------------------------------------------------

    def create_txn(self, op: tuple, now: float = 0.0) -> Transaction:
        """Create a transaction addressed to this client's clan."""
        self._seq += 1
        txn = Transaction(
            txn_id=f"{self.client_id}:{self._seq}", op=op, created_at=now
        )
        self._pending[txn.txn_id] = _PendingRequest(txn, self.clan_idx)
        return txn

    # -- responses -----------------------------------------------------------

    def on_response(self, node_id: NodeId, txn_id: str, result: Any, now: float) -> None:
        """Record a reply from a clan member; accept on f_c+1 matching."""
        request = self._pending.get(txn_id)
        if request is None or request.accepted:
            return
        if node_id not in self.cfg.clan(request.clan_idx):
            return  # only clan members may answer for this transaction
        request.responses[node_id] = result
        quorum = self.cfg.clan_client_quorum(request.clan_idx)
        tally: dict[str, int] = {}
        for value in request.responses.values():
            key = repr(value)
            tally[key] = tally.get(key, 0) + 1
            if tally[key] >= quorum:
                request.accepted = True
                request.result = value
                request.accepted_at = now
                if self.tracer.enabled:
                    # Client-observed latency: creation → f_c+1 matching replies.
                    self.tracer.counter(
                        "smr.client_latency",
                        value=now - request.txn.created_at,
                        time=now,
                        client=self.client_id,
                        clan=request.clan_idx,
                        txn=txn_id,
                        quorum=quorum,
                    )
                    ctx = self.tracer.ctx(("txn", txn_id))
                    if ctx is not None:
                        # Close the per-txn trace root: submission → accept.
                        # The span id is the root ctx opened at submit time,
                        # so every stage in between parents under it.
                        self.tracer.span(
                            "smr.txn",
                            start=request.txn.created_at, end=now,
                            txn=txn_id, client=self.client_id,
                            clan=request.clan_idx,
                            trace=ctx.trace_id, span=ctx.span_id,
                        )
                        self.tracer.unbind(("txn", txn_id))
                return

    # -- inspection -----------------------------------------------------------

    def is_accepted(self, txn_id: str) -> bool:
        request = self._pending.get(txn_id)
        return bool(request and request.accepted)

    def result_of(self, txn_id: str) -> Any:
        request = self._pending.get(txn_id)
        if request is None or not request.accepted:
            raise ExecutionError(f"transaction {txn_id} not accepted yet")
        return request.result

    def accepted_count(self) -> int:
        return sum(1 for r in self._pending.values() if r.accepted)

    def pending_count(self) -> int:
        return sum(1 for r in self._pending.values() if not r.accepted)
