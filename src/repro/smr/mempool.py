"""Mempools: where proposers get the transactions for their blocks.

Two implementations of the ``make_block(proposer, round, now)`` interface the
consensus node expects:

* :class:`Mempool` — a client-fed queue of concrete transactions (tests,
  examples, the SMR layer).
* :class:`SyntheticWorkload` — the paper's benchmark workload: every proposer
  packs a configurable number of 512-byte transactions into each proposal.
"""

from __future__ import annotations

from collections import deque

from ..dag.block import Block
from ..dag.transaction import Transaction
from ..errors import ConfigError
from ..net import sizes
from ..types import NodeId, Round


class Mempool:
    """A per-node FIFO of pending concrete transactions."""

    def __init__(self, max_txns_per_block: int = 1000) -> None:
        if max_txns_per_block < 1:
            raise ConfigError("max_txns_per_block must be positive")
        self.max_txns_per_block = max_txns_per_block
        self._queue: deque[Transaction] = deque()

    def submit(self, txn: Transaction) -> None:
        self._queue.append(txn)

    def __len__(self) -> int:
        return len(self._queue)

    def make_block(self, proposer: NodeId, round_: Round, now: float) -> Block | None:
        """Drain up to ``max_txns_per_block`` transactions into a block.

        Returns ``None`` when the mempool is empty — the proposer then sends a
        metadata-only vertex.
        """
        if not self._queue:
            return None
        txns = []
        while self._queue and len(txns) < self.max_txns_per_block:
            txns.append(self._queue.popleft())
        return Block.concrete(proposer, round_, txns, created_at=now)


class SyntheticWorkload:
    """The paper's closed-loop workload: fixed transactions per proposal.

    One instance is shared by all proposers; it also serves as the metrics
    oracle — it remembers every block's size and creation time so throughput
    and latency can be computed even on nodes that never see block bodies.
    """

    def __init__(
        self,
        txns_per_proposal: int,
        txn_size: int = sizes.DEFAULT_TXN_SIZE,
    ) -> None:
        if txns_per_proposal < 0:
            raise ConfigError("txns_per_proposal cannot be negative")
        if txn_size < 1:
            raise ConfigError("txn_size must be positive")
        self.txns_per_proposal = txns_per_proposal
        self.txn_size = txn_size
        #: block digest -> (txn_count, created_at)
        self.blocks: dict[bytes, tuple[int, float]] = {}

    def make_block(self, proposer: NodeId, round_: Round, now: float) -> Block | None:
        if self.txns_per_proposal == 0:
            return None
        block = Block.synthetic(
            proposer, round_, self.txns_per_proposal, created_at=now,
            txn_size=self.txn_size,
        )
        self.blocks[block.payload_digest()] = (block.txn_count, now)
        return block
