"""End-to-end SMR runtime: consensus + execution + clients.

Wires a :class:`~repro.consensus.Deployment` to per-node
:class:`~repro.smr.executor.Executor` instances and routes execution replies
back to :class:`~repro.smr.client.Client` objects with a simulated reply
delay.  This is the full client-visible system of the paper: submit to a
clan, transactions get globally ordered, the clan executes, and the client
accepts on ``f_c + 1`` matching replies.
"""

from __future__ import annotations

from ..committees.config import ClanConfig
from ..consensus.deployment import Deployment
from ..consensus.params import ProtocolParams
from ..dag.transaction import Transaction
from ..errors import ExecutionError
from ..net.latency import LatencyModel
from ..obs.ctx import txn_trace_key
from ..obs.tracer import ensure_tracer
from ..types import NodeId
from .client import Client
from .executor import Executor
from .mempool import Mempool


class SmrRuntime:
    """A runnable SMR system over the simulated network."""

    def __init__(
        self,
        clan_cfg: ClanConfig,
        params: ProtocolParams | None = None,
        latency: LatencyModel | None = None,
        reply_delay: float = 0.05,
        max_txns_per_block: int = 500,
        seed: int = 0,
        sharded: bool = False,
        tracer=None,
        **deployment_kwargs,
    ) -> None:
        self.cfg = clan_cfg
        self.reply_delay = reply_delay
        self.sharded = sharded
        self.tracer = ensure_tracer(tracer)
        self.mempools: dict[NodeId, Mempool] = {
            p: Mempool(max_txns_per_block) for p in clan_cfg.block_proposers
        }
        self.deployment = Deployment(
            clan_cfg,
            params,
            latency=latency,
            make_block=self._make_block,
            seed=seed,
            tracer=tracer,
            **deployment_kwargs,
        )
        self.sim = self.deployment.sim
        self.clients: dict[str, Client] = {}
        self.executors: dict[NodeId, Executor] = {}
        for node in self.deployment.nodes:
            if not clan_cfg.executes(node.node_id):
                continue
            machine = None
            if sharded:
                from .cross_clan import ShardedStateMachine

                machine = ShardedStateMachine()
            executor = Executor(
                node.node_id, clan_cfg, respond=self._respond, machine=machine,
                tracer=self.tracer,
            )
            self.executors[node.node_id] = executor
            node.on_ordered = (
                lambda _node, vertex, now, ex=executor: ex.on_ordered(vertex, now)
            )
            if node.params.rbc_mode == "prefix":
                # Blocks reach execution only as decided prefixes, keyed by
                # the ordered vertex's block digest (see SailfishNode).
                node.on_commit_block = (
                    lambda _node, key, block, ex=executor: ex.on_block(
                        block, self.sim.now, key=key
                    )
                )
            else:
                node.on_block_ready = (
                    lambda _node, block, ex=executor: ex.on_block(block, self.sim.now)
                )

    def _make_block(self, proposer: NodeId, round_: int, now: float):
        block = self.mempools[proposer].make_block(proposer, round_, now)
        if block is not None and self.tracer.enabled:
            if self.tracer.sample < 1.0:
                # Head sampling keys off txn identity: if any txn in this
                # block is sampled, force-sample the block's dissemination
                # trace too, so the txn's root-to-commit tree stays complete
                # at 1/k rates (VertexRbc._broadcast_ctx reads the binding).
                for txn in block.iter_txns():
                    if self.tracer.ctx(("txn", txn.txn_id)) is not None:
                        self.tracer.bind(
                            ("blkforce", block.payload_digest()), True
                        )
                        break
            # Block manifest: the txn → block mapping the forensics critical
            # path hangs every later stage (ordering, execution, reply) off.
            self.tracer.counter(
                "smr.block", value=block.txn_count, node=proposer, time=now,
                digest=block.payload_digest().hex(), round=round_,
                txns=[txn.txn_id for txn in block.iter_txns()],
            )
        return block

    # -- clients -----------------------------------------------------------

    def new_client(self, client_id: str, clan_idx: int = 0) -> Client:
        if client_id in self.clients:
            raise ExecutionError(f"duplicate client id {client_id}")
        client = Client(client_id, self.cfg, clan_idx, tracer=self.tracer)
        self.clients[client_id] = client
        return client

    def submit(self, client: Client, op: tuple) -> Transaction:
        """Create a transaction and hand it to one proposer of the clan."""
        txn = client.create_txn(op, now=self.sim.now)
        clan = sorted(self.cfg.clan(client.clan_idx) & self.cfg.block_proposers)
        if not clan:
            raise ExecutionError(f"clan {client.clan_idx} has no block proposers")
        proposer = clan[hash(txn.txn_id) % len(clan)]
        self.mempools[proposer].submit(txn)
        if self.tracer.enabled:
            # Trace roots open at submission: the id derives from the txn
            # identity, and the client closes the root span at quorum accept.
            tctx = self.tracer.root_ctx(txn_trace_key(txn.txn_id))
            if tctx is not None:
                self.tracer.bind(("txn", txn.txn_id), tctx)
                self.tracer.counter(
                    "smr.submit", node=proposer, time=txn.created_at,
                    txn=txn.txn_id, clan=client.clan_idx,
                    trace=tctx.trace_id, span=tctx.span_id,
                )
            else:
                self.tracer.counter(
                    "smr.submit", node=proposer, time=txn.created_at,
                    txn=txn.txn_id, clan=client.clan_idx,
                )
        return txn

    def _respond(self, node_id: NodeId, txn_id: str, result, executed_at: float) -> None:
        client_id = txn_id.rsplit(":", 1)[0]
        client = self.clients.get(client_id)
        if client is None:
            return
        self.sim.schedule(
            self.reply_delay, client.on_response, node_id, txn_id, result, executed_at
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self.deployment.start()

    def run(self, until: float, max_events: int | None = None) -> None:
        self.deployment.run(until=until, max_events=max_events)

    def check_execution_consistency(self, clan_idx: int = 0) -> None:
        """Raise unless all live members of a clan reached the same state."""
        digests = set()
        for member in self.cfg.clan(clan_idx):
            if member in self.deployment.crashed or member in self.deployment.byzantine:
                continue
            digests.add(self.executors[member].state_digest())
        if len(digests) > 1:
            raise ExecutionError(f"clan {clan_idx} replicas diverged: {len(digests)} states")
