"""Per-node transaction execution (§5: only clan members execute).

The executor consumes the node's total order.  For each ordered vertex
carrying a block digest it checks whether this node belongs to the proposer's
clan; if so, the block's transactions are applied in order once the block
body is available (block delivery can lag vertex ordering — the paper's
"execution lags behind consensus").  Vertices whose blocks belong to other
clans are skipped: that clan executes and answers its own clients.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from ..committees.config import ClanConfig
from ..dag.block import Block
from ..dag.vertex import Vertex
from ..obs.tracer import NULL_TRACER
from ..types import NodeId
from .state_machine import KvStateMachine

#: Response callback: (executing node, txn_id, result, executed_at).
ResponseFn = Callable[[NodeId, str, Any, float], None]


class Executor:
    """Deterministic execution engine of one clan member."""

    def __init__(
        self,
        node_id: NodeId,
        clan_cfg: ClanConfig,
        respond: ResponseFn | None = None,
        machine: object | None = None,
        tracer=None,
    ) -> None:
        self.node_id = node_id
        self.cfg = clan_cfg
        self.respond = respond
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Any object exposing ``apply_txn(txn)`` and ``state_digest()``.
        self.machine = machine if machine is not None else KvStateMachine()
        self._my_clan = clan_cfg.clan_index_of(node_id)
        #: Ordered vertices whose blocks this node must execute, FIFO.
        self._queue: deque[Vertex] = deque()
        #: Blocks available locally, by digest.
        self._blocks: dict[bytes, Block] = {}
        self.executed_blocks = 0
        self.executed_txns = 0
        self.skipped_vertices = 0
        #: Forensics hook fired after each executed block:
        #: (node_id, block, time).  Never scheduled — purely synchronous.
        self.on_executed = None

    @property
    def executes_anything(self) -> bool:
        return self._my_clan is not None

    def on_ordered(self, vertex: Vertex, now: float) -> None:
        """Feed one newly ordered vertex (call in total order)."""
        if vertex.block_digest is None:
            self.skipped_vertices += 1
            return
        proposer_clan = self.cfg.clan_index_of(vertex.source)
        if self._my_clan is None or proposer_clan != self._my_clan:
            self.skipped_vertices += 1
            return
        self._queue.append(vertex)
        self._drain(now)

    def on_block(self, block: Block, now: float, key: bytes | None = None) -> None:
        """Feed a delivered block body.

        ``key`` overrides the indexing digest: in prefix mode the executed
        block is the *decided prefix*, whose own digest differs from the
        ``vertex.block_digest`` the ordered vertex points at."""
        self._blocks[key if key is not None else block.payload_digest()] = block
        self._drain(now)

    def _drain(self, now: float) -> None:
        # Blocks must execute in total order: stop at the first gap.
        while self._queue:
            vertex = self._queue[0]
            block = self._blocks.get(vertex.block_digest)
            if block is None:
                return
            self._queue.popleft()
            self._execute(block, now, vertex.block_digest)

    def _execute(self, block: Block, now: float, key: bytes | None = None) -> None:
        self.executed_blocks += 1
        if self.tracer.enabled:
            self.tracer.counter(
                "smr.execute", value=block.txn_count, node=self.node_id,
                time=now, digest=block.payload_digest().hex(),
            )
            # ``key`` is the consensus-visible digest the trace was opened
            # under (in prefix mode the executed prefix's own digest can
            # differ); the span's digest attr uses it so offline joins line
            # up with the smr.block manifest.
            ctx = self.tracer.ctx(("block", key if key is not None else
                                   block.payload_digest()))
            if ctx is not None:
                self.tracer.ctx_span(
                    "smr.execute", start=now, ctx=ctx, end=now,
                    node=self.node_id,
                    digest=(key if key is not None else
                            block.payload_digest()).hex(),
                    txns=block.txn_count,
                )
        if block.is_synthetic:
            self.executed_txns += block.txn_count
        else:
            for txn in block.iter_txns():
                result = self.machine.apply_txn(txn)
                self.executed_txns += 1
                if self.respond is not None:
                    self.respond(self.node_id, txn.txn_id, result, now)
        if self.on_executed is not None:
            self.on_executed(self.node_id, block, now)

    @property
    def pending_blocks(self) -> int:
        return len(self._queue)

    def state_digest(self) -> bytes:
        return self.machine.state_digest()
