"""A deterministic key-value state machine.

Transactions carry operation tuples; applying the same ordered log to two
instances yields byte-identical states (checked via :meth:`state_digest`).
Supported operations::

    ("set",  key, value)   -> returns value
    ("get",  key)          -> returns current value (or None)
    ("del",  key)          -> returns True if the key existed
    ("incr", key, amount)  -> returns the new counter value
    ("noop",)              -> returns None
"""

from __future__ import annotations

from typing import Any

from ..crypto.hashing import digest
from ..dag.transaction import Transaction
from ..errors import ExecutionError


class KvStateMachine:
    """Deterministic in-memory KV store with replay protection."""

    def __init__(self) -> None:
        self._data: dict[Any, Any] = {}
        self._applied: set[str] = set()
        self.applied_count = 0

    def apply(self, txn: Transaction) -> Any:
        """Execute one transaction; duplicates (same txn_id) are no-ops."""
        if txn.txn_id in self._applied:
            return None
        self._applied.add(txn.txn_id)
        self.applied_count += 1
        op = txn.op
        if op is None:
            return None
        kind = op[0]
        if kind == "noop":
            return None
        if kind == "set":
            _, key, value = op
            self._data[key] = value
            return value
        if kind == "get":
            return self._data.get(op[1])
        if kind == "del":
            return self._data.pop(op[1], None) is not None
        if kind == "incr":
            _, key, amount = op
            value = self._data.get(key, 0) + amount
            self._data[key] = value
            return value
        raise ExecutionError(f"unknown operation {kind!r}")

    def apply_txn(self, txn: Transaction) -> Any:
        """Uniform executor entry point (see also ShardedStateMachine)."""
        return self.apply(txn)

    def get(self, key: Any) -> Any:
        return self._data.get(key)

    def state_digest(self) -> bytes:
        """Digest of the full state — equal on replicas that agree."""
        items = sorted((repr(k), repr(v)) for k, v in self._data.items())
        return digest(b"kv-state", *[f"{k}={v}" for k, v in items])

    def __len__(self) -> int:
        return len(self._data)
