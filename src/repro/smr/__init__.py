"""State machine replication layer: execution, mempool, clients.

The paper's execution model (§1, §5): once vertices are totally ordered, only
the members of the responsible clan execute the transactions and reply to the
client; a client accepts a result once it has ``f_c + 1`` matching replies.
"""

from .client import Client
from .executor import Executor
from .mempool import Mempool, SyntheticWorkload
from .runtime import SmrRuntime
from .state_machine import KvStateMachine

__all__ = ["KvStateMachine", "Executor", "Mempool", "SyntheticWorkload", "Client", "SmrRuntime"]
