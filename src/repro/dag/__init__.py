"""DAG data structures (paper Fig. 4) and ordering machinery.

The vertex carries only the *digest* of its block of transactions — the
paper's key structural change — so vertices stay small enough to replicate to
the whole tribe while blocks are confined to a clan.
"""

from .block import Block
from .ordering import OrderingEngine
from .store import DagStore
from .transaction import Transaction
from .vertex import Vertex, VertexRef, genesis_vertex

__all__ = [
    "Transaction",
    "Block",
    "Vertex",
    "VertexRef",
    "genesis_vertex",
    "DagStore",
    "OrderingEngine",
]
