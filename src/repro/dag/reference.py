"""Reference DAG store: the original tuple-adjacency algorithms.

This is the pre-bitmap implementation of :class:`~repro.dag.store.DagStore`,
kept as an executable specification.  ``tests/dag/test_bitmap_equivalence.py``
drives randomized DAGs (gaps, weak edges, GC frontiers) through both stores
and asserts identical ``causal_history`` / ``strong_path_exists`` / ordering
answers — the bitmap store in :mod:`repro.dag.store` must never diverge from
these set/BFS/DFS semantics, only outrun them.

Not used on any runtime path.
"""

from __future__ import annotations

from collections import defaultdict, deque

from ..errors import DagError
from ..types import GENESIS_ROUND, NodeId, Round
from .vertex import Vertex, VertexRef, genesis_vertex

Key = tuple[Round, NodeId]


class ReferenceDagStore:
    """The original per-vertex adjacency DAG store (specification copy)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise DagError(f"need at least one party, got {n}")
        self.n = n
        self._vertices: dict[Key, Vertex] = {}
        self._by_round: dict[Round, dict[NodeId, Vertex]] = defaultdict(dict)
        self._pending: dict[Key, Vertex] = {}
        self._uncovered: dict[Key, Vertex] = {}
        for source in range(n):
            self._attach(genesis_vertex(source))

    # -- insertion -----------------------------------------------------------

    def add(self, vertex: Vertex) -> list[Vertex]:
        key = vertex.key
        if key in self._vertices:
            existing = self._vertices[key]
            if existing.vertex_digest() != vertex.vertex_digest():
                raise DagError(f"conflicting vertices at {key}")
            return []
        if key in self._pending:
            return []
        if not self._parents_present(vertex):
            self._pending[key] = vertex
            return []
        attached = [vertex]
        self._attach(vertex)
        progress = True
        while progress:
            progress = False
            for key, pending in list(self._pending.items()):
                if self._parents_present(pending):
                    del self._pending[key]
                    self._attach(pending)
                    attached.append(pending)
                    progress = True
        return attached

    def _parents_present(self, vertex: Vertex) -> bool:
        vertices = self._vertices
        for ref in vertex.strong_edges:
            if (ref.round, ref.source) not in vertices:
                return False
        for ref in vertex.weak_edges:
            if (ref.round, ref.source) not in vertices:
                return False
        return True

    def _attach(self, vertex: Vertex) -> None:
        key = vertex.key
        self._vertices[key] = vertex
        self._by_round[vertex.round][vertex.source] = vertex
        uncovered = self._uncovered
        uncovered[key] = vertex
        pop = uncovered.pop
        for ref in vertex.strong_edges:
            pop((ref.round, ref.source), None)
        for ref in vertex.weak_edges:
            pop((ref.round, ref.source), None)

    # -- lookups -------------------------------------------------------------

    def get(self, round_: Round, source: NodeId) -> Vertex | None:
        return self._vertices.get((round_, source))

    def contains(self, ref: VertexRef) -> bool:
        vertex = self._vertices.get(ref.key)
        return vertex is not None and vertex.vertex_digest() == ref.digest

    def contains_key(self, round_: Round, source: NodeId) -> bool:
        return (round_, source) in self._vertices

    def round_vertices(self, round_: Round) -> list[Vertex]:
        return list(self._by_round.get(round_, {}).values())

    def num_in_round(self, round_: Round) -> int:
        return len(self._by_round.get(round_, {}))

    def uncovered_before(self, round_: Round) -> list[Vertex]:
        return [
            v
            for v in self._uncovered.values()
            if GENESIS_ROUND < v.round < round_
        ]

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def size(self) -> int:
        return len(self._vertices)

    # -- graph queries -------------------------------------------------------

    def strong_path_exists(self, frm: Vertex, to: Vertex) -> bool:
        if to.round > frm.round:
            return False
        if frm.key == to.key:
            return True
        target_key = to.key
        target_round = to.round
        queue = deque([frm])
        seen: set[Key] = {frm.key}
        while queue:
            vertex = queue.popleft()
            for ref in vertex.strong_edges:
                key = ref.key
                if key == target_key:
                    return True
                if key in seen or ref.round <= target_round:
                    continue
                seen.add(key)
                child = self._vertices.get(key)
                if child is not None:
                    queue.append(child)
        return False

    def path_exists(self, frm: Vertex, to: Vertex) -> bool:
        """Any-edge (strong + weak) reachability, DFS over ref tuples."""
        if to.round > frm.round:
            return False
        if frm.key == to.key:
            return True
        target_key = to.key
        target_round = to.round
        stack = [frm]
        seen: set[Key] = {frm.key}
        while stack:
            vertex = stack.pop()
            for ref in vertex.parents():
                key = ref.key
                if key == target_key:
                    return True
                if key in seen or ref.round <= target_round:
                    continue
                seen.add(key)
                child = self._vertices.get(key)
                if child is not None:
                    stack.append(child)
        return False

    def causal_history(self, vertex: Vertex, stop: set[Key] | None = None) -> list[Vertex]:
        result: list[Vertex] = []
        stack = [vertex]
        seen: set[Key] = {vertex.key}
        vertices = self._vertices
        while stack:
            v = stack.pop()
            if v.round > GENESIS_ROUND:
                result.append(v)
            for ref in v.parents():
                if ref.round == GENESIS_ROUND:
                    continue
                key = (ref.round, ref.source)
                if key in seen or (stop is not None and key in stop):
                    continue
                seen.add(key)
                parent = vertices.get(key)
                if parent is None:
                    raise DagError(f"attached vertex {v.key} missing parent {key}")
                stack.append(parent)
        return result
