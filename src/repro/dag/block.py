"""The block structure of Fig. 4: ``b.txn`` — a list of transactions.

Blocks are the heavy payloads: at the paper's peak load a block holds 6000
512-byte transactions (≈ 3 MB).  Benchmarks use *synthetic* blocks that carry
only a transaction count (so a 150-node simulation does not allocate a
million Transaction objects per round); tests and examples use concrete
transactions.  Both kinds report identical wire sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..crypto.hashing import digest
from ..errors import DagError
from ..net import sizes
from ..types import NodeId, Round
from .transaction import Transaction


@dataclass(frozen=True, slots=True)
class Block:
    """A block of transactions proposed by ``proposer`` in ``round``."""

    proposer: NodeId
    round: Round
    txns: tuple[Transaction, ...] | None
    txn_count: int
    txn_size: int
    created_at: float
    #: Lazily computed digest cache (checked on every VAL validation).
    _digest_cache: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.txn_count < 0:
            raise DagError("transaction count cannot be negative")
        if self.txns is not None and len(self.txns) != self.txn_count:
            raise DagError(
                f"txn_count {self.txn_count} != len(txns) {len(self.txns)}"
            )

    @staticmethod
    def concrete(
        proposer: NodeId, round_: Round, txns: list[Transaction], created_at: float
    ) -> "Block":
        """A block carrying real transactions (tests, examples, SMR)."""
        txn_size = txns[0].size if txns else sizes.DEFAULT_TXN_SIZE
        return Block(
            proposer=proposer,
            round=round_,
            txns=tuple(txns),
            txn_count=len(txns),
            txn_size=txn_size,
            created_at=created_at,
        )

    @staticmethod
    def synthetic(
        proposer: NodeId,
        round_: Round,
        txn_count: int,
        created_at: float,
        txn_size: int = sizes.DEFAULT_TXN_SIZE,
    ) -> "Block":
        """A counted-bytes block for benchmark workloads."""
        return Block(
            proposer=proposer,
            round=round_,
            txns=None,
            txn_count=txn_count,
            txn_size=txn_size,
            created_at=created_at,
        )

    @property
    def is_synthetic(self) -> bool:
        return self.txns is None

    def iter_txns(self) -> Iterator[Transaction]:
        """Concrete transactions, in proposal order (empty for synthetic)."""
        return iter(self.txns or ())

    def payload_digest(self) -> bytes:
        """Digest used as ``v.block_digest`` in the vertex (RBC payload id)."""
        cached = self._digest_cache
        if cached is not None:
            return cached
        if self.txns is not None:
            value = digest(
                b"block", self.proposer, self.round,
                *[t.txn_digest() for t in self.txns],
            )
        else:
            value = digest(
                b"block", self.proposer, self.round, self.txn_count,
                self.txn_size, self.created_at,
            )
        object.__setattr__(self, "_digest_cache", value)
        return value

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE + self.txn_count * self.txn_size
