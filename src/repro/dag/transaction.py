"""Transactions.

Two flavours share one type:

* **Concrete** transactions carry an operation the state machine executes
  (used by tests, examples, and the SMR layer).
* **Synthetic** transactions exist only as counted bytes inside a block
  (used by benchmarks, where the paper also uses 512 random bytes each).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..crypto.hashing import digest
from ..net import sizes


@dataclass(frozen=True, slots=True)
class Transaction:
    """A client transaction.

    Args:
        txn_id: unique identifier (client-assigned).
        op: operation payload, e.g. ``("set", "key", "value")`` for the
            key-value state machine, or ``None`` for synthetic load.
        created_at: simulated creation time (latency measurements start here).
        size: bytes this transaction occupies on the wire (paper: 512).
    """

    txn_id: str
    op: tuple[Any, ...] | None = None
    created_at: float = 0.0
    size: int = sizes.DEFAULT_TXN_SIZE

    def txn_digest(self) -> bytes:
        return digest(b"txn", self.txn_id, self.op)
