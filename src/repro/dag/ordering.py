"""Deterministic total ordering from a committed-leader sequence.

Commit rules live in the consensus layer; this engine implements the part
every DAG protocol shares: once leaders are committed in round order, each
leader's not-yet-ordered causal history is appended in a deterministic order
(by round, then source).  Because honest parties agree on the DAG (RBC) and
on the committed leader sequence (consensus safety), they produce identical
total orders.
"""

from __future__ import annotations

from ..errors import DagError
from ..types import NodeId, Round
from .store import DagStore
from .vertex import Vertex

Key = tuple[Round, NodeId]


class OrderingEngine:
    """Produces the ``a_deliver`` sequence of one party."""

    def __init__(self, store: DagStore) -> None:
        self.store = store
        self.ordered: list[Vertex] = []
        self._ordered_keys: set[Key] = set()
        #: The ordered set as per-round bitmasks — the stop structure the
        #: bitmap store prunes with directly (no per-key set probes).
        self._ordered_masks: dict[Round, int] = {}
        self._last_leader_round: Round = 0

    @property
    def last_leader_round(self) -> Round:
        return self._last_leader_round

    def order_leader(self, leader: Vertex) -> list[Vertex]:
        """Order ``leader``'s causal history; returns the newly ordered suffix.

        Leaders must be supplied in strictly increasing round order (the
        consensus layer commits them that way).
        """
        if leader.round <= self._last_leader_round:
            raise DagError(
                f"leader round {leader.round} not after {self._last_leader_round}"
            )
        # Pruning the walk at already-ordered vertices keeps each commit
        # O(newly ordered) — the ordered set is closed under ancestry, so the
        # pruned subtrees contain only vertices ordered by earlier leaders.
        history = self.store.causal_history(leader, stop_masks=self._ordered_masks)
        history.sort(key=lambda v: (v.round, v.source))
        masks = self._ordered_masks
        for vertex in history:
            self._ordered_keys.add(vertex.key)
            masks[vertex.round] = masks.get(vertex.round, 0) | (1 << vertex.source)
        self.ordered.extend(history)
        self._last_leader_round = leader.round
        return history

    def is_ordered(self, vertex: Vertex) -> bool:
        return vertex.key in self._ordered_keys

    @property
    def count(self) -> int:
        return len(self.ordered)
