"""The vertex structure of Fig. 4.

A vertex carries the round, the proposer, the *digest* of its block, strong
edges to ≥ 2f+1 vertices of the previous round, weak edges to older orphan
vertices, and (for leader vertices after a failed round) a no-vote or timeout
certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..crypto.hashing import digest
from ..errors import DagError
from ..net import sizes
from ..types import GENESIS_ROUND, NodeId, Round


@dataclass(frozen=True, slots=True)
class VertexRef:
    """A reference (edge target): round, source, and the vertex digest."""

    round: Round
    source: NodeId
    digest: bytes

    @property
    def key(self) -> tuple[Round, NodeId]:
        """Position key — unique per honest RBC instance (non-equivocation)."""
        return (self.round, self.source)

    def wire_size(self) -> int:
        return sizes.VERTEX_REF_SIZE


@dataclass(frozen=True, slots=True)
class Vertex:
    """A DAG vertex (Fig. 4): metadata only; the block travels separately."""

    round: Round
    source: NodeId
    block_digest: bytes | None
    strong_edges: tuple[VertexRef, ...]
    weak_edges: tuple[VertexRef, ...] = ()
    nvc: Any | None = None  # no-vote certificate for round-1 (if any)
    tc: Any | None = None  # timeout certificate for round-1 (if any)
    #: Prefix dissemination (rbc_mode="prefix"): how many chunks the block
    #: was split into (0 = unchunked), the manifest digest binding that
    #: chunking, and this proposer's attestations of partially-held parent
    #: blocks as (proposer, held-chunk-count) pairs (omitted pairs = full).
    block_chunks: int = 0
    chunk_root: bytes | None = None
    prefix_votes: tuple[tuple[NodeId, int], ...] = ()
    #: Lazily computed digest cache (performance: digests are requested on
    #: every ECHO-quorum check).  Not part of equality or repr.
    _digest_cache: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Lazily computed parents() cache: hot loops (prefix tracking, history
    #: walks) call it per delivery, and concatenating two tuples per call is
    #: measurable there.  Not part of equality or repr.
    _parents_cache: "tuple[VertexRef, ...] | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.round < GENESIS_ROUND:
            raise DagError(f"negative round {self.round}")
        for ref in self.strong_edges:
            if ref.round != self.round - 1:
                raise DagError(
                    f"strong edge to round {ref.round} from round {self.round}"
                )
        for ref in self.weak_edges:
            if ref.round >= self.round - 1:
                raise DagError(
                    f"weak edge to round {ref.round} from round {self.round}"
                )
        if self.block_chunks:
            if self.block_digest is None:
                raise DagError("chunked vertex must carry a block digest")
            if self.chunk_root is None:
                raise DagError("chunked vertex must carry a chunk root")
        elif self.chunk_root is not None:
            raise DagError("chunk_root requires block_chunks")

    def vertex_digest(self) -> bytes:
        cached = self._digest_cache
        if cached is not None:
            return cached
        # parents() is strong edges then weak edges, so feeding the cached
        # concatenation keeps the digest inputs bit-identical.
        parts = [
            b"vertex",
            self.round,
            self.source,
            self.block_digest if self.block_digest is not None else b"",
            *[e.digest for e in self.parents()],
        ]
        # Prefix-mode fields are appended only when set, so unchunked
        # vertices keep their historical digests bit for bit.
        if self.block_chunks:
            parts += (b"chunks", self.block_chunks, self.chunk_root)
        if self.prefix_votes:
            parts.append(b"votes")
            for voter, held in self.prefix_votes:
                parts += (voter, held)
        value = digest(*parts)
        object.__setattr__(self, "_digest_cache", value)
        return value

    def ref(self) -> VertexRef:
        return VertexRef(self.round, self.source, self.vertex_digest())

    @property
    def key(self) -> tuple[Round, NodeId]:
        return (self.round, self.source)

    def parents(self) -> tuple[VertexRef, ...]:
        cached = self._parents_cache
        if cached is None:
            cached = self.strong_edges + self.weak_edges
            object.__setattr__(self, "_parents_cache", cached)
        return cached

    def wire_size(self) -> int:
        size = sizes.HEADER_SIZE + sizes.HASH_SIZE  # header + block digest
        size += (len(self.strong_edges) + len(self.weak_edges)) * sizes.VERTEX_REF_SIZE
        if self.nvc is not None:
            size += getattr(self.nvc, "wire_size", lambda: sizes.HASH_SIZE)()
        if self.tc is not None:
            size += getattr(self.tc, "wire_size", lambda: sizes.HASH_SIZE)()
        if self.block_chunks:
            size += 2 + sizes.HASH_SIZE  # chunk count + chunk root
        size += len(self.prefix_votes) * 6  # (voter, held-count) pairs
        return size

    # RBC payload protocol --------------------------------------------------

    def payload_digest(self) -> bytes:
        return self.vertex_digest()


def genesis_vertex(source: NodeId) -> Vertex:
    """The synthetic round-0 vertex every node starts with for ``source``."""
    return Vertex(
        round=GENESIS_ROUND,
        source=source,
        block_digest=None,
        strong_edges=(),
        weak_edges=(),
    )
