"""Per-node DAG storage with orphan buffering and path queries.

Vertices arrive via RBC in arbitrary order; a vertex becomes *attached* only
once all its parents are present (RBC agreement guarantees parents eventually
arrive).  The store indexes vertices by ``(round, source)`` — unique per
honest instance thanks to RBC non-equivocation — and answers the two queries
consensus needs: strong-path reachability (commit rule) and causal history
(total ordering).

Edge storage is *per-round bitmaps*: a vertex's source id doubles as its
dense index within its round, so presence, strong edges, weak edges, and
orphan tips are all ``int`` bitmasks and every graph query is a bitwise sweep
over round arrays instead of a per-vertex set walk:

* ``_parents_present`` is two mask subtractions instead of O(edges) dict
  probes, and the masks are computed once per vertex, not once per retry.
* ``strong_path_exists`` unions strong masks level by level; the per-anchor
  reachability closure is immutable once the anchor is attached (attachment
  implies the full ancestry is attached and edges are frozen), so it is
  cached in ``_reach`` and pruned at the commit frontier via
  :meth:`prune_reach_below`.
* ``causal_history`` sweeps a ``{round: mask}`` frontier downward; since all
  edges point strictly below their source, each round is finalized the
  moment it becomes the maximum — no seen-set needed.

``repro.dag.reference.ReferenceDagStore`` preserves the original adjacency
algorithms as an executable specification; the randomized equivalence suite
holds this implementation to it bit for bit.
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import DagError
from ..types import GENESIS_ROUND, NodeId, Round
from .vertex import Vertex, VertexRef, genesis_vertex

Key = tuple[Round, NodeId]

#: Weak-edge masks of one vertex, grouped by target round.
WeakLevels = tuple[tuple[Round, int], ...]


class DagStore:
    """The local DAG of one party."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise DagError(f"need at least one party, got {n}")
        self.n = n
        self._vertices: dict[Key, Vertex] = {}
        self._by_round: dict[Round, dict[NodeId, Vertex]] = defaultdict(dict)
        self._pending: dict[Key, Vertex] = {}
        #: Edge masks of buffered vertices (computed once, not per retry).
        self._pending_masks: dict[Key, tuple[int, WeakLevels]] = {}
        #: round -> bitmask of attached sources.
        self._present: dict[Round, int] = {}
        #: (round, source) -> strong-edge bitmask over round-1 sources.
        self._strong_mask: dict[Key, int] = {}
        #: (round, source) -> weak-edge masks grouped by target round.
        self._weak_levels: dict[Key, WeakLevels] = {}
        #: round -> bitmask of tips: attached vertices with no attached child
        #: yet — candidates for weak edges when this node proposes.
        self._uncovered: dict[Round, int] = {}
        #: Strong-reachability closures keyed by anchor: ``_reach[key][i]``
        #: is the mask of sources reachable at round ``key[0] - 1 - i``.
        #: Immutable per anchor (see module docstring); extended lazily to
        #: the deepest round queried and pruned at the commit frontier.
        self._reach: dict[Key, list[int]] = {}
        for source in range(n):
            self._attach(genesis_vertex(source), 0, ())

    # -- insertion -----------------------------------------------------------

    def add(self, vertex: Vertex) -> list[Vertex]:
        """Insert a delivered vertex; returns all vertices newly *attached*.

        If parents are missing, the vertex is buffered and attached (and
        returned by a later ``add``) once they arrive.  Duplicate positions
        are rejected — the RBC layer guarantees one vertex per (round, source).
        """
        key = vertex.key
        if key in self._vertices:
            existing = self._vertices[key]
            if existing.vertex_digest() != vertex.vertex_digest():
                raise DagError(f"conflicting vertices at {key}")
            return []
        if key in self._pending:
            return []
        strong, weak_levels = _edge_masks(vertex)
        if not self._masks_present(vertex.round, strong, weak_levels):
            self._pending[key] = vertex
            self._pending_masks[key] = (strong, weak_levels)
            return []
        attached = [vertex]
        self._attach(vertex, strong, weak_levels)
        # Attaching one vertex may unblock buffered descendants, recursively.
        masks = self._pending_masks
        progress = True
        while progress:
            progress = False
            for key, pending in list(self._pending.items()):
                strong, weak_levels = masks[key]
                if self._masks_present(pending.round, strong, weak_levels):
                    del self._pending[key]
                    del masks[key]
                    self._attach(pending, strong, weak_levels)
                    attached.append(pending)
                    progress = True
        return attached

    def _masks_present(self, round_: Round, strong: int, weak_levels: WeakLevels) -> bool:
        present = self._present
        if strong & ~present.get(round_ - 1, 0):
            return False
        for r, mask in weak_levels:
            if mask & ~present.get(r, 0):
                return False
        return True

    def _attach(self, vertex: Vertex, strong: int, weak_levels: WeakLevels) -> None:
        round_ = vertex.round
        bit = 1 << vertex.source
        self._vertices[vertex.key] = vertex
        self._by_round[round_][vertex.source] = vertex
        self._present[round_] = self._present.get(round_, 0) | bit
        self._strong_mask[vertex.key] = strong
        self._weak_levels[vertex.key] = weak_levels
        uncovered = self._uncovered
        uncovered[round_] = uncovered.get(round_, 0) | bit
        if strong:
            uncovered[round_ - 1] = uncovered.get(round_ - 1, 0) & ~strong
        for r, mask in weak_levels:
            uncovered[r] = uncovered.get(r, 0) & ~mask

    # -- lookups ---------------------------------------------------------------

    def get(self, round_: Round, source: NodeId) -> Vertex | None:
        return self._vertices.get((round_, source))

    def contains(self, ref: VertexRef) -> bool:
        vertex = self._vertices.get(ref.key)
        return vertex is not None and vertex.vertex_digest() == ref.digest

    def contains_key(self, round_: Round, source: NodeId) -> bool:
        return (round_, source) in self._vertices

    def round_vertices(self, round_: Round) -> list[Vertex]:
        return list(self._by_round.get(round_, {}).values())

    def num_in_round(self, round_: Round) -> int:
        return len(self._by_round.get(round_, {}))

    def uncovered_before(self, round_: Round) -> list[Vertex]:
        """Attached tips from rounds < ``round_`` (weak-edge candidates)."""
        out: list[Vertex] = []
        for r in sorted(self._uncovered):
            if not GENESIS_ROUND < r < round_:
                continue
            mask = self._uncovered[r]
            in_round = self._by_round[r]
            while mask:
                low = mask & -mask
                mask ^= low
                out.append(in_round[low.bit_length() - 1])
        return out

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def size(self) -> int:
        return len(self._vertices)

    # -- graph queries -----------------------------------------------------------

    def strong_path_exists(self, frm: Vertex, to: Vertex) -> bool:
        """Is there a path from ``frm`` to ``to`` using only strong edges?"""
        if to.round >= frm.round:
            return frm.key == to.key
        closure = self._reach_closure(frm, to.round)
        index = frm.round - 1 - to.round
        if index >= len(closure):
            return False  # the closure went empty above the target round
        return bool(closure[index] >> to.source & 1)

    def _reach_closure(self, frm: Vertex, floor: Round) -> list[int]:
        """Strong-reachability masks from ``frm`` down to round ``floor``.

        Cached per anchor: once ``frm`` is attached its ancestry is complete
        and frozen, so the closure can only ever be *extended* downward, never
        invalidated.  An unattached probe (some tests query buffered
        vertices) is computed without caching, expanding through attached
        vertices only — the same vertices the reference BFS expands.
        """
        key = frm.key
        attached = key in self._vertices
        closure = self._reach.get(key)
        if closure is None:
            strong = self._strong_mask.get(key)
            if strong is None:
                strong, _ = _edge_masks(frm)
            closure = [strong]
            if attached:
                self._reach[key] = closure
        target_index = frm.round - 1 - floor
        strong_mask = self._strong_mask
        present = self._present
        while len(closure) <= target_index and closure[-1]:
            round_ = frm.round - len(closure)  # round of closure[-1]
            mask = closure[-1]
            if not attached:
                mask &= present.get(round_, 0)
            below = 0
            while mask:
                low = mask & -mask
                mask ^= low
                below |= strong_mask[(round_, low.bit_length() - 1)]
            closure.append(below)
        return closure

    def path_exists(self, frm: Vertex, to: Vertex) -> bool:
        """Any-edge (strong + weak) reachability.

        The sparse-edge commit rule uses this: with ``edge_mode="sparse"``
        the strong-edge graph no longer guarantees quorum intersection, so
        indirect commits accept weak-edge routes too (see DESIGN.md).
        """
        if to.round >= frm.round:
            return frm.key == to.key
        target_round = to.round
        target_bit = 1 << to.source
        levels = self._seed_levels(frm)
        vertices = self._vertices
        strong_mask = self._strong_mask
        weak_levels = self._weak_levels
        while levels:
            round_ = max(levels)
            mask = levels.pop(round_)
            if round_ < target_round:
                continue  # weak edges can jump below the target round
            if round_ == target_round:
                if mask & target_bit:
                    return True
                continue
            while mask:
                low = mask & -mask
                mask ^= low
                source = low.bit_length() - 1
                if (round_, source) not in vertices:
                    continue  # unattached refs are never expanded
                strong = strong_mask[(round_, source)]
                if strong:
                    levels[round_ - 1] = levels.get(round_ - 1, 0) | strong
                for r, m in weak_levels[(round_, source)]:
                    levels[r] = levels.get(r, 0) | m
        return False

    def _seed_levels(self, vertex: Vertex) -> dict[Round, int]:
        """The ``{round: mask}`` frontier holding ``vertex``'s own edges."""
        strong = self._strong_mask.get(vertex.key)
        if strong is None:
            strong, weak = _edge_masks(vertex)
        else:
            weak = self._weak_levels[vertex.key]
        levels: dict[Round, int] = {}
        if strong:
            levels[vertex.round - 1] = strong
        for r, mask in weak:
            levels[r] = levels.get(r, 0) | mask
        return levels

    def causal_history(
        self,
        vertex: Vertex,
        stop: set[Key] | None = None,
        *,
        stop_masks: dict[Round, int] | None = None,
    ) -> list[Vertex]:
        """All attached ancestors of ``vertex`` (strong and weak edges),
        excluding genesis vertices, including ``vertex`` itself.

        Args:
            stop: keys whose subtrees are pruned from the walk.  The ordering
                engine passes its already-ordered set: ordering is closed
                under ancestry, so everything below an ordered vertex is
                ordered too and re-walking it every leader commit would make
                each commit cost O(whole DAG) instead of O(new vertices).
            stop_masks: the same pruning as per-round bitmasks (keyword-only
                fast path; the ordering engine maintains these directly).

        Returns vertices in descending round order (ascending source within a
        round); callers needing the canonical order sort by (round, source).
        """
        if stop:
            stop_masks = {}
            for r, s in stop:
                stop_masks[r] = stop_masks.get(r, 0) | (1 << s)
        result: list[Vertex] = []
        if vertex.round > GENESIS_ROUND:
            result.append(vertex)
        levels = self._seed_levels(vertex)
        vertices = self._vertices
        strong_mask = self._strong_mask
        weak_levels = self._weak_levels
        while levels:
            round_ = max(levels)
            mask = levels.pop(round_)
            if round_ <= GENESIS_ROUND:
                continue
            if stop_masks is not None:
                mask &= ~stop_masks.get(round_, 0)
            while mask:
                low = mask & -mask
                mask ^= low
                source = low.bit_length() - 1
                v = vertices.get((round_, source))
                if v is None:
                    raise DagError(
                        f"history of {vertex.key} missing parent ({round_}, {source})"
                    )
                result.append(v)
                strong = strong_mask[(round_, source)]
                if strong:
                    levels[round_ - 1] = levels.get(round_ - 1, 0) | strong
                for r, m in weak_levels[(round_, source)]:
                    levels[r] = levels.get(r, 0) | m
        return result

    # -- garbage collection -------------------------------------------------------

    def prune_reach_below(self, floor: Round) -> None:
        """Drop reachability closures anchored below ``floor``.

        The commit-chain walk only queries anchors above the committed
        frontier, so closures for older anchors are dead weight; the node's
        GC hook calls this alongside its other per-commit pruning.
        """
        if any(key[0] < floor for key in self._reach):
            self._reach = {k: v for k, v in self._reach.items() if k[0] >= floor}


def _edge_masks(vertex: Vertex) -> tuple[int, WeakLevels]:
    """(strong bitmask over round-1, weak masks grouped by round)."""
    strong = 0
    for ref in vertex.strong_edges:
        strong |= 1 << ref.source
    if not vertex.weak_edges:
        return strong, ()
    weak: dict[Round, int] = {}
    for ref in vertex.weak_edges:
        weak[ref.round] = weak.get(ref.round, 0) | (1 << ref.source)
    return strong, tuple(weak.items())
