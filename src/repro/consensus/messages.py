"""Consensus wire messages: merged vertex+block dissemination and no-votes.

The merged RBC (§5, "Efficiently propagating the vertex and the block") sends
one VAL per recipient: clan members of the proposer's clan receive vertex AND
block; everyone else receives the vertex alone (which embeds the block
digest).  ECHO/READY/CERT all refer to the *vertex digest*, which covers the
block digest, so one instance certifies both.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING

from ..crypto.certificates import QuorumCertificate
from ..crypto.hashing import digest as compute_digest
from ..crypto.signatures import Signature
from ..dag.block import Block
from ..dag.vertex import Vertex
from ..net import sizes
from ..net.message import Message
from ..types import NodeId, Round

if TYPE_CHECKING:
    from ..rbc.prefix import ChunkManifest


# Statement digests are pure functions of their (hashable) arguments and are
# recomputed for every sign/verify/tally on the same RBC instance; the memo
# turns the n-plus recomputations per instance into one SHA-256 each.


@lru_cache(maxsize=65536)
def vertex_val_statement(origin: NodeId, round_: Round, vertex_digest: bytes) -> bytes:
    return compute_digest(b"VVAL", origin, round_, vertex_digest)


@lru_cache(maxsize=65536)
def vertex_echo_statement(origin: NodeId, round_: Round, vertex_digest: bytes) -> bytes:
    return compute_digest(b"VECHO", origin, round_, vertex_digest)


@lru_cache(maxsize=65536)
def no_vote_statement(round_: Round) -> bytes:
    return compute_digest(b"NOVOTE", round_)


@dataclass(slots=True)
class VertexValMsg(Message):
    """Merged VAL: the vertex for everyone, the block for clan members.

    In prefix mode the block travels as separate chunk messages; clan
    members instead receive the :class:`~repro.rbc.prefix.ChunkManifest`
    (verified against ``vertex.chunk_root``) alongside the vertex.
    """

    vertex: Vertex
    block: Block | None
    signature: Signature | None
    manifest: "ChunkManifest | None" = None

    @property
    def origin(self) -> NodeId:
        return self.vertex.source

    @property
    def round(self) -> Round:
        return self.vertex.round

    @property
    def signed(self) -> bool:
        return self.signature is not None

    def wire_size(self) -> int:
        size = self.vertex.wire_size()
        if self.block is not None:
            size += self.block.wire_size()
        if self.signature is not None:
            size += sizes.SIGNATURE_SIZE
        if self.manifest is not None:
            size += self.manifest.wire_size()
        return size


@dataclass(slots=True)
class VertexEchoMsg(Message):
    """ECHO over the vertex digest (signed in two-round mode)."""

    origin: NodeId
    round: Round
    vertex_digest: bytes
    signature: Signature | None = None

    @property
    def signed(self) -> bool:
        return self.signature is not None

    def wire_size(self) -> int:
        size = sizes.HEADER_SIZE + sizes.HASH_SIZE
        if self.signature is not None:
            size += sizes.SIGNATURE_SIZE
        return size


@dataclass(slots=True)
class VertexReadyMsg(Message):
    """READY over the vertex digest (bracha mode only)."""

    origin: NodeId
    round: Round
    vertex_digest: bytes

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE + sizes.HASH_SIZE


@dataclass(slots=True)
class VertexCertMsg(Message):
    """EC_r certificate over the vertex digest (two-round mode only)."""

    origin: NodeId
    round: Round
    vertex_digest: bytes
    cert: QuorumCertificate
    n: int

    signed = True

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE + sizes.HASH_SIZE + self.cert.wire_size(self.n)


@dataclass(slots=True)
class NoVoteMsg(Message):
    """Signed complaint: the sender saw no leader vertex for ``round``."""

    round: Round
    signature: Signature

    signed = True

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE + sizes.SIGNATURE_SIZE


@dataclass(frozen=True, slots=True)
class NoVoteCertificate:
    """2f+1 aggregated no-votes for ``round`` — carried in the next leader's
    vertex (``v.nvc``) to justify the missing strong edge to the leader."""

    round: Round
    cert: QuorumCertificate

    @property
    def signers(self) -> frozenset[NodeId]:
        return self.cert.signers

    def wire_size(self) -> int:
        # Bitmap sized for a "large" committee; refined by the caller if needed.
        return sizes.HASH_SIZE + sizes.BLS_SIGNATURE_SIZE + 32


@dataclass(slots=True)
class VertexRequestMsg(Message):
    """Pull request for a missing vertex (off the consensus critical path)."""

    origin: NodeId
    round: Round

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE


@dataclass(slots=True)
class VertexResponseMsg(Message):
    """Pull response carrying the full vertex."""

    vertex: Vertex

    def wire_size(self) -> int:
        return self.vertex.wire_size() + sizes.HEADER_SIZE
