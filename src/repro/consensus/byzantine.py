"""Byzantine behaviors for fault-injection tests and robustness benchmarks.

A :class:`ByzantineBehavior` is installed on a node *after* construction and
perturbs its outbound behaviour.  All behaviours stay within the model the
protocol tolerates (≤ f such nodes): safety and liveness tests assert the
honest majority is unaffected.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..dag.block import Block
from ..dag.vertex import Vertex
from ..errors import ConsensusError
from ..types import Round

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .deployment import Deployment
    from .node import SailfishNode


class ByzantineBehavior:
    """Base: installs nothing (an honest 'Byzantine' node)."""

    def install(self, node: "SailfishNode", deployment: "Deployment") -> None:
        """Attach the behaviour to ``node``."""


class CrashAt(ByzantineBehavior):
    """Crash (stop sending and receiving) at a given simulated time."""

    def __init__(self, at: float) -> None:
        if at < 0:
            raise ConsensusError("crash time cannot be negative")
        self.at = at

    def install(self, node: "SailfishNode", deployment: "Deployment") -> None:
        deployment.sim.schedule(self.at, deployment.network.crash, node.node_id)


class SilentNode(ByzantineBehavior):
    """Participates in RBC for others' vertices but never proposes its own."""

    def install(self, node: "SailfishNode", deployment: "Deployment") -> None:
        node._propose = lambda round_: None  # type: ignore[assignment]


class LazyVoter(ByzantineBehavior):
    """Never includes the leader edge — withholds every vote."""

    def install(self, node: "SailfishNode", deployment: "Deployment") -> None:
        original = node._strong_edges

        def no_leader_edges(round_: Round):
            prev = round_ - 1
            edges = original(round_)
            if prev < 1:
                return edges
            leader = node.schedule.leader(prev)
            if node.schedule.leader(round_) == node.node_id:
                # When leading, keep the edge: without it the vertex would
                # need an NVC this node cannot produce.
                return edges
            without = tuple(ref for ref in edges if ref.source != leader)
            # Withhold the vote only while the vertex stays well-formed
            # (≥ 2f+1 strong edges) — a malformed vertex would be discarded
            # by everyone and make this behaviour indistinguishable from a
            # silent node.
            if len(without) >= node.cfg.quorum:
                return without
            return edges

        node._strong_edges = no_leader_edges  # type: ignore[assignment]


class EquivocatingProposer(ByzantineBehavior):
    """Sends different vertices (different blocks) to the two halves of the
    tribe at the VAL stage.  The RBC layer must prevent a split delivery."""

    def install(self, node: "SailfishNode", deployment: "Deployment") -> None:
        rbc = node.rbc
        network = deployment.network
        cfg = node.cfg

        def equivocating_broadcast(vertex: Vertex, block: Block | None) -> None:
            from .messages import VertexValMsg, vertex_val_statement

            # Reversing the edge tuple changes the vertex digest while keeping
            # the vertex structurally valid — a minimal equivocation.
            twin = Vertex(
                round=vertex.round,
                source=vertex.source,
                block_digest=vertex.block_digest,
                strong_edges=tuple(reversed(vertex.strong_edges)),
                weak_edges=vertex.weak_edges,
                nvc=vertex.nvc,
            )
            for variant, parties in (
                (vertex, [p for p in range(cfg.n) if p % 2 == 0]),
                (twin, [p for p in range(cfg.n) if p % 2 == 1]),
            ):
                signature = None
                if rbc.mode == "two-round":
                    signature = rbc._key.sign(
                        vertex_val_statement(
                            node.node_id, variant.round, variant.vertex_digest()
                        )
                    )
                # Both variants advertise (and carry) the same block — the
                # equivocation is in the vertex content, so recipients of
                # either variant can ECHO and the split is maximal.
                network.multicast(
                    node.node_id, parties, VertexValMsg(variant, block, signature)
                )

        rbc.broadcast = equivocating_broadcast  # type: ignore[assignment]


class WithholdingProposer(ByzantineBehavior):
    """Sends its block to only a minority of its clan, forcing block pulls."""

    def __init__(self, receive_full: int = 1) -> None:
        if receive_full < 0:
            raise ConsensusError("receive_full cannot be negative")
        self.receive_full = receive_full

    def install(self, node: "SailfishNode", deployment: "Deployment") -> None:
        rbc = node.rbc
        network = deployment.network
        cfg = node.cfg
        keep = self.receive_full

        def withholding_broadcast(vertex: Vertex, block: Block | None) -> None:
            from .messages import VertexValMsg, vertex_val_statement

            signature = None
            if rbc.mode == "two-round":
                signature = rbc._key.sign(
                    vertex_val_statement(
                        node.node_id, vertex.round, vertex.vertex_digest()
                    )
                )
            if block is None:
                network.broadcast(node.node_id, VertexValMsg(vertex, None, signature))
                return
            clan = sorted(cfg.clan(cfg.block_clan_of(node.node_id)))
            lucky = set(clan[:keep])
            for party in range(cfg.n):
                body = block if party in lucky else None
                network.send(node.node_id, party, VertexValMsg(vertex, body, signature))

        rbc.broadcast = withholding_broadcast  # type: ignore[assignment]


def _prefix_broadcast_parts(rbc, vertex: Vertex, block: Block):
    """The pieces an honest prefix-mode broadcast would send.

    Returns (manifest, chunks, signature, in_clan, outside) so Byzantine
    proposers can replay the honest dissemination with perturbed timing or
    coverage.  Raises if the node is not in prefix mode."""
    from ..rbc.prefix import split_block
    from .messages import vertex_val_statement

    if not rbc._prefix:
        raise ConsensusError("prefix dissemination requires rbc_mode='prefix'")
    signature = None
    if rbc.mode == "two-round":  # pragma: no cover - prefix is never two-round
        signature = rbc._key.sign(
            vertex_val_statement(rbc.node_id, vertex.round, vertex.vertex_digest())
        )
    cfg = rbc.schedule.cfg_at(vertex.round)
    clan = cfg.clan(cfg.block_clan_of(rbc.node_id))
    in_clan = [p for p in range(rbc.cfg.n) if p in clan]
    outside = [p for p in range(rbc.cfg.n) if p not in clan]
    manifest, chunks = split_block(block, vertex.block_chunks)
    return manifest, chunks, signature, in_clan, outside


class SlowProposer(ByzantineBehavior):
    """Disseminates its block tail late: chunk i arrives ``i * delay`` after
    the vertex (prefix mode), or the whole block arrives ``delay`` late
    while the digest-only vertex goes out on time (other modes).

    The certified-prefix commit rule should absorb this without stalling any
    round: voters attest the chunks they hold at attestation time, and the
    commit orders that prefix."""

    def __init__(self, delay: float = 0.6) -> None:
        if delay <= 0:
            raise ConsensusError("delay must be positive")
        self.delay = delay

    def install(self, node: "SailfishNode", deployment: "Deployment") -> None:
        rbc = node.rbc
        network = deployment.network
        sim = deployment.sim
        delay = self.delay

        def slow_broadcast(vertex: Vertex, block: Block | None) -> None:
            from ..rbc.prefix import BlockChunkMsg
            from .messages import VertexValMsg, vertex_val_statement

            if block is None or not rbc._prefix:
                signature = None
                if rbc.mode == "two-round":
                    signature = rbc._key.sign(
                        vertex_val_statement(
                            node.node_id, vertex.round, vertex.vertex_digest()
                        )
                    )
                if block is None:
                    network.broadcast(
                        node.node_id, VertexValMsg(vertex, None, signature)
                    )
                    return
                # Non-prefix fallback: vertex on time, block only after the
                # delay (everyone else pulls or waits).
                cfg = rbc.schedule.cfg_at(vertex.round)
                clan = cfg.clan(cfg.block_clan_of(node.node_id))
                in_clan = [p for p in range(rbc.cfg.n) if p in clan]
                outside = [p for p in range(rbc.cfg.n) if p not in clan]
                network.multicast(
                    node.node_id, outside, VertexValMsg(vertex, None, signature)
                )
                sim.schedule(
                    delay, network.multicast, node.node_id, in_clan,
                    VertexValMsg(vertex, block, signature),
                )
                return
            manifest, chunks, signature, in_clan, outside = _prefix_broadcast_parts(
                rbc, vertex, block
            )
            network.multicast(
                node.node_id, in_clan, VertexValMsg(vertex, None, signature, manifest)
            )
            if outside:
                network.multicast(
                    node.node_id, outside, VertexValMsg(vertex, None, signature)
                )
            for chunk in chunks:
                msg = BlockChunkMsg(node.node_id, vertex.round, chunk)
                if chunk.index == 0:
                    network.multicast(node.node_id, in_clan, msg)
                else:
                    sim.schedule(
                        chunk.index * delay, network.multicast,
                        node.node_id, in_clan, msg,
                    )

        rbc.broadcast = slow_broadcast  # type: ignore[assignment]


class TailWithholder(ByzantineBehavior):
    """Never sends the tail of its blocks: only the first
    ``ceil(keep_fraction * chunks)`` chunks are disseminated (prefix mode).

    The commit rule should order exactly the disseminated prefix — the
    proposer loses its tail transactions but cannot stall the round or the
    executor.  In non-prefix modes this behaviour degenerates to an honest
    broadcast (there is no tail to withhold without chunking)."""

    def __init__(self, keep_fraction: float = 0.5) -> None:
        if not 0.0 <= keep_fraction <= 1.0:
            raise ConsensusError("keep_fraction must be within [0, 1]")
        self.keep_fraction = keep_fraction

    def install(self, node: "SailfishNode", deployment: "Deployment") -> None:
        rbc = node.rbc
        network = deployment.network
        original = rbc.broadcast
        fraction = self.keep_fraction

        def withholding_broadcast(vertex: Vertex, block: Block | None) -> None:
            from ..rbc.prefix import BlockChunkMsg
            from .messages import VertexValMsg

            if block is None or not rbc._prefix:
                original(vertex, block)
                return
            manifest, chunks, signature, in_clan, outside = _prefix_broadcast_parts(
                rbc, vertex, block
            )
            keep = min(len(chunks), max(1, math.ceil(len(chunks) * fraction)))
            network.multicast(
                node.node_id, in_clan, VertexValMsg(vertex, None, signature, manifest)
            )
            if outside:
                network.multicast(
                    node.node_id, outside, VertexValMsg(vertex, None, signature)
                )
            for chunk in chunks[:keep]:
                network.multicast(
                    node.node_id, in_clan,
                    BlockChunkMsg(node.node_id, vertex.round, chunk),
                )

        rbc.broadcast = withholding_broadcast  # type: ignore[assignment]
