"""Deployment: a whole tribe of consensus nodes over one simulated network.

This is the entry point tests, examples, and the benchmark harness share:
build a :class:`Deployment` from a :class:`~repro.committees.ClanConfig`, a
latency model, and a workload; run the simulator; inspect ordered logs.
"""

from __future__ import annotations

from typing import Callable

from ..committees.config import ClanConfig
from ..crypto.signatures import Pki
from ..dag.block import Block
from ..dag.vertex import Vertex
from ..errors import ConsensusError
from ..net.adversary import DelayAdversary
from ..net.cpu import CpuModel
from ..net.faults import ChurnSchedule, LinkFault
from ..net.latency import LatencyModel, UniformLatencyModel
from ..net.network import Network
from ..net.transport import ReliableTransport
from ..obs.tracer import ensure_tracer
from ..sim.scheduler import Simulator
from ..types import NodeId, Round
from .byzantine import ByzantineBehavior
from .leader import LeaderSchedule
from .node import SailfishNode
from .params import ProtocolParams

MakeBlock = Callable[[NodeId, Round, float], Block | None]


class Deployment:
    """A runnable tribe."""

    def __init__(
        self,
        clan_cfg: ClanConfig,
        params: ProtocolParams | None = None,
        latency: LatencyModel | None = None,
        bandwidth_bps: float | None = None,
        adversary: DelayAdversary | None = None,
        cpu: CpuModel | None = None,
        make_block: MakeBlock | None = None,
        seed: int = 0,
        crashed: set[NodeId] | None = None,
        byzantine: dict[NodeId, ByzantineBehavior] | None = None,
        clan_schedule=None,
        tracer=None,
        track_kinds: bool = False,
        faults: LinkFault | None = None,
        reliable: bool = False,
        churn: ChurnSchedule | None = None,
    ) -> None:
        self.cfg = clan_cfg
        self.clan_schedule = clan_schedule
        self.params = params if params is not None else ProtocolParams()
        self.tracer = ensure_tracer(tracer)
        self.sim = Simulator(tracer=tracer)
        # The deployment's simulator is the canonical time source: bind it so
        # records created by any layer carry simulated timestamps.
        self.tracer.set_clock(lambda: self.sim.now)
        n = clan_cfg.n
        self.base_network = Network(
            self.sim,
            n,
            latency=latency if latency is not None else UniformLatencyModel(0.05),
            bandwidth_bps=bandwidth_bps,
            adversary=adversary,
            cpu=cpu,
            track_kinds=track_kinds,
            tracer=tracer,
            faults=faults,
        )
        # Lossy links need the reliable channel for the protocol's "perfect
        # point-to-point links" assumption to hold; partitions/crashes alone
        # don't (messages there are delayed or legitimately lost with the
        # node), so `reliable` stays an explicit knob.
        self.network = (
            ReliableTransport(self.base_network) if reliable else self.base_network
        )
        self.churn = churn
        self.pki = Pki(n, seed=seed)
        self.schedule = LeaderSchedule(n, seed=seed)
        self.crashed = set(crashed or ())
        self.byzantine = dict(byzantine or {})
        overlap = self.crashed & set(self.byzantine)
        if overlap:
            raise ConsensusError(f"nodes {sorted(overlap)} both crashed and Byzantine")
        faulty = len(self.crashed) + len(self.byzantine)
        if faulty > clan_cfg.f:
            raise ConsensusError(
                f"{faulty} faulty nodes exceed the bound f={clan_cfg.f}"
            )
        self.nodes: list[SailfishNode] = []
        for node_id in range(n):
            node = SailfishNode(
                node_id,
                clan_cfg,
                self.network,
                self.sim,
                self.pki,
                self.schedule,
                self.params,
                make_block=make_block,
                clan_schedule=clan_schedule,
            )
            self.nodes.append(node)
        for node_id, behavior in self.byzantine.items():
            behavior.install(self.nodes[node_id], self)
        for node_id in self.crashed:
            self.network.crash(node_id)
        if churn is not None:
            # Transient crash/recover churn is installed after registration so
            # the lifecycle callbacks (timer suppression, catch-up) are wired.
            # Churned nodes are NOT counted against f: they are honest and
            # recover; permanent faults above remain bounded by f.
            churn.install(self.sim, self.network)

    @property
    def honest_ids(self) -> list[NodeId]:
        return [
            i
            for i in range(self.cfg.n)
            if i not in self.crashed and i not in self.byzantine
        ]

    def start(self, stagger: float = 0.0) -> None:
        """Start every live node (optionally staggered by node id)."""
        for node in self.nodes:
            if node.node_id in self.crashed:
                continue
            if stagger:
                self.sim.schedule(stagger * node.node_id, node.start)
            else:
                node.start()

    def run(self, until: float, max_events: int | None = None) -> None:
        self.sim.run(until=until, max_events=max_events)

    # -- safety/liveness inspection helpers ------------------------------------

    def ordered_logs(self) -> dict[NodeId, list[tuple[Round, NodeId]]]:
        """Ordered vertex keys per honest node."""
        return {i: self.nodes[i].ordered_keys() for i in self.honest_ids}

    def check_total_order_consistency(self) -> None:
        """Raise if any two honest nodes' ordered logs conflict (prefix rule)."""
        logs = list(self.ordered_logs().items())
        for (id_a, log_a), (id_b, log_b) in zip(logs, logs[1:]):
            shared = min(len(log_a), len(log_b))
            if log_a[:shared] != log_b[:shared]:
                for pos in range(shared):
                    if log_a[pos] != log_b[pos]:
                        raise ConsensusError(
                            f"order divergence at position {pos}: node {id_a} has "
                            f"{log_a[pos]}, node {id_b} has {log_b[pos]}"
                        )
        # zip over consecutive pairs suffices: prefix-consistency is transitive.

    def min_ordered(self) -> int:
        return min(len(self.nodes[i].ordered_log) for i in self.honest_ids)

    def ordered_vertices_everywhere(self) -> list[Vertex]:
        """Vertices ordered by every honest node (the common prefix)."""
        logs = self.ordered_logs()
        shared = min(len(log) for log in logs.values())
        reference = self.honest_ids[0]
        self.check_total_order_consistency()
        return self.nodes[reference].ordered_vertices[:shared]
