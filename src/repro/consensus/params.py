"""Protocol parameters."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class ProtocolParams:
    """Tunables of the consensus protocol.

    Args:
        rbc_mode: ``"two-round"`` (signed ECHOs + certificates, as in the
            paper's evaluation), ``"bracha"`` (signature-free, 3 rounds),
            ``"optimistic"`` (signature-free 2-round fast path on all-to-all
            ECHO agreement, Bracha fallback on conflict/timeout/READY), or
            ``"prefix"`` (Raptr-style chunked blocks with certified-prefix
            commits; Bracha-style vertex certification).
        leader_timeout: seconds a node waits for the round leader's vertex
            before multicasting a no-vote.
        verify_signatures: verify every signature structurally.  Disabling
            this is a benchmark-only shortcut for all-honest runs; the CPU
            cost model still charges verification time in simulated time.
        retry_timeout: initial retry interval for block/vertex pulls.
        max_rounds: stop proposing after this round (0 = unlimited); the
            benchmark harness uses it to bound runs.
        catchup: enable the crash-recovery/lagging-node DAG synchronizer
            (:mod:`repro.consensus.sync`).
        sync_gap_threshold: how many rounds behind the observed frontier a
            node may fall before it enters catch-up mode.
        sync_batch_rounds: rounds of vertices requested per sync pull.
        sync_retry_timeout: initial retry interval for sync pulls (backs off
            exponentially, capped, like payload pulls).
        gc_depth: rounds of retrieval state kept behind the commit frontier
            before garbage collection (0 disables GC).
        fallback_timeout: (optimistic mode) how long an RBC instance waits
            for all-to-all ECHO agreement before switching to the
            pessimistic READY path.
        block_chunks: (prefix mode) chunks a block is split into; voters
            attest the prefix they hold and the commit rule orders the
            certified prefix.
        edge_mode: ``"full"`` (every vertex strong-references all delivered
            previous-round vertices, as in the paper) or ``"sparse"``
            (Clownfish-style reduced fan-out: non-leader vertices reference
            the previous leader plus ``edge_fanout - 1`` targets drawn from
            the shared leader-schedule RNG stream; leader vertices keep full
            edges and indirect commits use any-edge reachability — the
            compensating commit rule, see DESIGN.md).
        edge_fanout: strong edges per non-leader vertex in sparse mode
            (0 = auto: ``max(3, bit_length(n))``, i.e. ~log2 n).
    """

    rbc_mode: str = "two-round"
    leader_timeout: float = 1.5
    verify_signatures: bool = True
    retry_timeout: float = 0.25
    max_rounds: int = 0
    catchup: bool = True
    sync_gap_threshold: int = 5
    sync_batch_rounds: int = 20
    sync_retry_timeout: float = 0.5
    gc_depth: int = 8
    fallback_timeout: float = 0.5
    block_chunks: int = 4
    edge_mode: str = "full"
    edge_fanout: int = 0

    def fanout_for(self, n: int) -> int:
        """The effective sparse fan-out for a tribe of ``n`` parties."""
        return self.edge_fanout if self.edge_fanout else max(3, n.bit_length())

    def __post_init__(self) -> None:
        if self.rbc_mode not in ("two-round", "bracha", "optimistic", "prefix"):
            raise ConfigError(f"unknown rbc_mode {self.rbc_mode!r}")
        if self.edge_mode not in ("full", "sparse"):
            raise ConfigError(f"unknown edge_mode {self.edge_mode!r}")
        if self.edge_fanout < 0:
            raise ConfigError("edge_fanout cannot be negative")
        if self.leader_timeout <= 0:
            raise ConfigError("leader_timeout must be positive")
        if self.retry_timeout <= 0:
            raise ConfigError("retry_timeout must be positive")
        if self.max_rounds < 0:
            raise ConfigError("max_rounds cannot be negative")
        if self.sync_gap_threshold < 1:
            raise ConfigError("sync_gap_threshold must be at least 1")
        if self.sync_batch_rounds < 1:
            raise ConfigError("sync_batch_rounds must be at least 1")
        if self.sync_retry_timeout <= 0:
            raise ConfigError("sync_retry_timeout must be positive")
        if self.gc_depth < 0:
            raise ConfigError("gc_depth cannot be negative")
        if self.fallback_timeout <= 0:
            raise ConfigError("fallback_timeout must be positive")
        if self.block_chunks < 1:
            raise ConfigError("block_chunks must be at least 1")
