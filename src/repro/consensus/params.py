"""Protocol parameters."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class ProtocolParams:
    """Tunables of the consensus protocol.

    Args:
        rbc_mode: ``"two-round"`` (signed ECHOs + certificates, as in the
            paper's evaluation) or ``"bracha"`` (signature-free, 3 rounds).
        leader_timeout: seconds a node waits for the round leader's vertex
            before multicasting a no-vote.
        verify_signatures: verify every signature structurally.  Disabling
            this is a benchmark-only shortcut for all-honest runs; the CPU
            cost model still charges verification time in simulated time.
        retry_timeout: initial retry interval for block/vertex pulls.
        max_rounds: stop proposing after this round (0 = unlimited); the
            benchmark harness uses it to bound runs.
    """

    rbc_mode: str = "two-round"
    leader_timeout: float = 1.5
    verify_signatures: bool = True
    retry_timeout: float = 0.25
    max_rounds: int = 0

    def __post_init__(self) -> None:
        if self.rbc_mode not in ("two-round", "bracha"):
            raise ConfigError(f"unknown rbc_mode {self.rbc_mode!r}")
        if self.leader_timeout <= 0:
            raise ConfigError("leader_timeout must be positive")
        if self.retry_timeout <= 0:
            raise ConfigError("retry_timeout must be positive")
        if self.max_rounds < 0:
            raise ConfigError("max_rounds cannot be negative")
