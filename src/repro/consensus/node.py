"""The Sailfish-style consensus node.

One implementation serves all three protocols of the paper; the
:class:`~repro.committees.ClanConfig` decides who proposes blocks and where
they are disseminated.  The consensus rules are Sailfish's:

* Every party proposes one vertex per round via the merged RBC.
* A round-r vertex strong-references all delivered round-(r-1) vertices
  (≥ 2f+1), and weak-references uncovered older vertices.
* **Voting**: a round-(r+1) vertex whose strong edges include the round-r
  leader vertex is a vote for it.  Votes are counted from the *first
  dissemination message* (VAL), giving the 1-RBC + 1δ commit latency.
* **Commit**: 2f+1 votes + the leader vertex delivered → direct commit;
  earlier uncommitted leaders commit indirectly when a strong path from the
  newly committed leader reaches them.
* **No-votes**: a party that times out waiting for the round-r leader vertex
  multicasts a signed no-vote and withholds its strong edge to that leader;
  2f+1 no-votes form the NVC the round-(r+1) leader embeds instead of a
  leader edge.
* **Total order**: committed leaders, in round order, each append their
  not-yet-ordered causal history deterministically.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

from ..committees.config import ClanConfig
from ..crypto.certificates import build_certificate, verify_certificate
from ..crypto.signatures import Pki
from ..dag.block import Block
from ..dag.ordering import OrderingEngine
from ..dag.store import DagStore
from ..dag.vertex import Vertex, VertexRef
from ..errors import ConsensusError
from ..net.network import Network
from ..rbc.prefix import assemble_prefix, split_block
from ..sim.rng import make_rng
from ..sim.scheduler import Simulator
from ..sim.timers import Timer
from ..types import NodeId, Round
from .leader import LeaderSchedule
from .messages import NoVoteCertificate, NoVoteMsg, no_vote_statement
from .params import ProtocolParams
from .sync import DagSynchronizer, SyncRequestMsg, SyncResponseMsg
from .vertex_rbc import VertexRbc

#: Hook invoked for each newly ordered vertex: (node, vertex, time).
OrderedHook = Callable[["SailfishNode", Vertex, float], None]


class SailfishNode:
    """One party of the tribe."""

    def __init__(
        self,
        node_id: NodeId,
        clan_cfg: ClanConfig,
        network: Network,
        sim: Simulator,
        pki: Pki,
        schedule: LeaderSchedule,
        params: ProtocolParams,
        make_block: Callable[[NodeId, Round, float], Block | None] | None = None,
        on_ordered: OrderedHook | None = None,
        on_block_ready: Callable[["SailfishNode", Block], None] | None = None,
        clan_schedule=None,
        tracer=None,
    ) -> None:
        self.node_id = node_id
        self.cfg = clan_cfg
        if clan_schedule is None:
            from ..committees.rotation import StaticSchedule

            clan_schedule = StaticSchedule(clan_cfg)
        self.clan_schedule = clan_schedule
        self.network = network
        self.sim = sim
        self.pki = pki
        self.schedule = schedule
        self.params = params
        self.make_block = make_block
        self.on_ordered = on_ordered
        self.on_block_ready = on_block_ready
        #: Hook invoked on every round entry: (node, round, time).  Used by
        #: the forensics stall watchdog; never scheduled, so attaching it
        #: cannot perturb the simulation.
        self.on_round: Callable[["SailfishNode", Round, float], None] | None = None
        self.tracer = tracer if tracer is not None else network.tracer
        self._round_entered_at: float | None = None

        #: Sparse-edge mode (Clownfish-style): non-leader vertices reference
        #: only the previous leader plus a deterministic sample of targets.
        self._sparse = params.edge_mode == "sparse"
        self._fanout = params.fanout_for(clan_cfg.n)

        self.store = DagStore(clan_cfg.n)
        self.ordering = OrderingEngine(self.store)
        self.rbc = VertexRbc(
            node_id,
            clan_cfg,
            network,
            sim,
            pki,
            on_first_val=self._on_first_val,
            on_vertex=self._on_vertex_delivered,
            on_block=self._on_block_delivered,
            mode=params.rbc_mode,
            verify_signatures=params.verify_signatures,
            retry_timeout=params.retry_timeout,
            fallback_timeout=params.fallback_timeout,
            schedule=clan_schedule,
            tracer=self.tracer,
            edge_mode=params.edge_mode,
        )

        # Prefix mode (Raptr-style certified-prefix commits): chunked
        # vertices awaiting their attestation window, ordered-but-unfetched
        # prefixes, commit-decision hooks, and counters.
        self._prefix = params.rbc_mode == "prefix"
        #: (round, source) -> {"vertex", "votes": {attester: held}}.
        self._prefix_pending: dict[tuple[Round, NodeId], dict] = {}
        #: Decided prefixes whose chunks are still being pulled.
        self._awaiting_chunks: dict[tuple[Round, NodeId], tuple[Vertex, int]] = {}
        #: Execution feed: (node, key, block) fired at prefix-commit decision
        #: time — in prefix mode blocks NEVER reach the executor through
        #: on_block_ready, only through this hook, so every clan member
        #: executes the identical decided prefix.
        self.on_commit_block: Callable[["SailfishNode", bytes, Block], None] | None = None
        #: Forensics hook: (node, vertex, committed_chunks) per decision.
        self.on_prefix: Callable[["SailfishNode", Vertex, int], None] | None = None
        self.prefix_commits = 0
        self.prefix_truncated = 0
        self.prefix_chunks_committed = 0
        self.prefix_chunks_dropped = 0
        if self._prefix:
            self.rbc.on_chunk = self._on_chunks_progress

        self.round: Round = 0
        self.started = False
        #: Votes per leader round: set of voting vertex sources.
        self.votes: dict[Round, set[NodeId]] = defaultdict(set)
        #: No-vote signatures collected per round.
        self.no_votes: dict[Round, dict[NodeId, object]] = defaultdict(dict)
        self.no_voted: set[Round] = set()
        self.timeout_fired: set[Round] = set()
        self.last_committed_round: Round = 0
        self.committed_leaders: list[Vertex] = []
        #: (vertex, simulated commit time) in total order.
        self.ordered_log: list[tuple[Vertex, float]] = []
        #: Blocks available locally, by digest (clan duty).
        self.blocks: dict[bytes, Block] = {}
        self._timer = Timer(sim, params.leader_timeout, self._on_timeout)
        self._proposed: set[Round] = set()
        #: Validity of attached leader vertices (leader-edge-or-NVC rule).
        self._leader_valid: dict[Round, bool] = {}
        #: Crash-recovery/lagging-node catch-up (see repro.consensus.sync).
        self.sync = DagSynchronizer(
            self,
            gap_threshold=params.sync_gap_threshold,
            batch_rounds=params.sync_batch_rounds,
            retry_timeout=params.sync_retry_timeout,
            enabled=params.catchup,
        )
        #: Fail-stop flag mirroring the network's view; guards every timer-
        #: and schedule-driven action so a crashed node cannot keep acting
        #: from beyond the grave.
        self._crashed_local = False
        network.register(node_id, self._on_message)
        # Fast-path dispatch: the raw Network (not the reliable-transport
        # adapter, which must see every message to run its ack protocol)
        # jumps straight to the per-type handler, skipping _on_message's
        # isinstance chain.  Must cover exactly what _on_message handles.
        set_dispatch = getattr(network, "set_dispatch", None)
        if set_dispatch is not None:
            table = self.rbc.dispatch_table()
            table[NoVoteMsg] = self._on_no_vote
            table[SyncRequestMsg] = self.sync.on_request
            table[SyncResponseMsg] = self.sync.on_response
            set_dispatch(node_id, table)
        if hasattr(network, "on_lifecycle"):
            network.on_lifecycle(node_id, self._on_crash, self._on_recover)

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Enter round 1 and propose the first vertex."""
        if self.started:
            raise ConsensusError("node already started")
        self.started = True
        self._enter_round(1)

    def _enter_round(self, round_: Round, propose: bool = True) -> None:
        # Round spans are aggregate-only instrumentation: verbose mode.
        if self.tracer.verbose:
            now = self.sim.now
            if self._round_entered_at is not None and round_ > 1:
                self.tracer.span(
                    "consensus.round", start=self._round_entered_at, end=now,
                    node=self.node_id, round=round_ - 1,
                )
            self._round_entered_at = now
        self.round = round_
        if self.on_round is not None:
            self.on_round(self, round_, self.sim.now)
        if self.params.max_rounds and round_ > self.params.max_rounds:
            self._timer.cancel()
            return
        self._timer.start(self.params.leader_timeout)
        if propose:
            self._propose(round_)

    # -- proposing ------------------------------------------------------------------

    def _propose(self, round_: Round) -> None:
        if round_ in self._proposed or self._crashed_local:
            return
        self._proposed.add(round_)
        strong = self._strong_edges(round_)
        # Sparse mode trims a quorum's worth of delivered vertices down to
        # the fan-out, so the per-vertex floor drops with it; _try_advance
        # still gates round entry on a full quorum of deliveries.
        required = self.cfg.quorum
        if self._sparse and self.schedule.leader(round_) != self.node_id:
            required = min(required, self._fanout)
        if round_ > 1 and len(strong) < required:
            raise ConsensusError(
                f"node {self.node_id} proposing round {round_} with "
                f"{len(strong)} strong edges < required {required}"
            )
        weak = tuple(
            v.ref()
            for v in sorted(
                self.store.uncovered_before(round_ - 1), key=lambda v: v.key
            )
        )
        nvc = self._leader_nvc(round_, strong)
        block = None
        round_cfg = self.clan_schedule.cfg_at(round_)
        if round_cfg.is_block_proposer(self.node_id) and self.make_block is not None:
            block = self.make_block(self.node_id, round_, self.sim.now)
        num_chunks = 0
        chunk_root = None
        if self._prefix and block is not None:
            # split_block clamps the chunk count for small blocks; the vertex
            # must carry the actual count so peers re-split identically.
            manifest, _ = split_block(block, self.params.block_chunks)
            num_chunks = manifest.num_chunks
            chunk_root = manifest.manifest_digest()
        vertex = Vertex(
            round=round_,
            source=self.node_id,
            block_digest=block.payload_digest() if block is not None else None,
            strong_edges=strong,
            weak_edges=weak,
            nvc=nvc,
            block_chunks=num_chunks,
            chunk_root=chunk_root,
            prefix_votes=self._prefix_votes(strong + weak) if self._prefix else (),
        )
        if block is not None:
            self.blocks[vertex.block_digest] = block
        self.rbc.broadcast(vertex, block)

    def _strong_edges(self, round_: Round) -> tuple[VertexRef, ...]:
        prev = round_ - 1
        vertices = self.store.round_vertices(prev)
        leader = self.schedule.leader(prev) if prev >= 1 else None
        if leader is not None:
            drop_leader = False
            if not self._leader_vertex_valid(prev):
                # Never reference (vote for) an invalid leader vertex.
                drop_leader = True
            elif prev in self.no_voted and self.schedule.leader(round_) != self.node_id:
                # A no-voter promised not to vote: drop the leader edge even
                # if the leader vertex arrived after the timeout.  Exception:
                # the round-`round_` leader may reference it — its own no-vote
                # can only ever appear in the NVC that it alone consumes, so
                # the NVC/commit intersection argument is unaffected, and the
                # exception restores liveness when the NVC cannot form.
                drop_leader = True
            if drop_leader:
                vertices = [v for v in vertices if v.source != leader]
                leader = None
        if (
            self._sparse
            and round_ > 1
            and len(vertices) > self._fanout
            and self.schedule.leader(round_) != self.node_id
        ):
            # Leader vertices keep full edges: the leader chain is the
            # deterministic backbone the indirect-commit walk rides (each
            # leader's full edge set includes the previous usable leader).
            vertices = self._sparse_select(round_, vertices, leader)
        return tuple(v.ref() for v in sorted(vertices, key=lambda v: v.source))

    def _sparse_select(
        self, round_: Round, vertices: list[Vertex], leader: NodeId | None
    ) -> list[Vertex]:
        """Pick ``edge_fanout`` strong targets deterministically.

        The preference order is a per-(round, proposer) permutation drawn
        from the shared leader-schedule RNG stream, so any replica can
        recompute (and audit) the choice; the usable leader vertex is always
        kept — dropping it would drop this proposer's vote.
        """
        rng = make_rng(
            self.schedule.seed, "sparse-edges", round_, self.node_id, shared=True
        )
        order = list(range(self.cfg.n))
        rng.shuffle(order)
        rank = {source: i for i, source in enumerate(order)}
        keep = sorted(vertices, key=lambda v: rank[v.source])[: self._fanout]
        if leader is not None and all(v.source != leader for v in keep):
            for v in vertices:
                if v.source == leader:
                    keep[-1] = v
                    break
        return keep

    def _leader_vertex_valid(self, round_: Round) -> bool:
        """Is the attached round-``round_`` leader vertex vote-eligible?

        A leader vertex must either strong-reference the previous leader
        vertex or carry a verifiable NVC for the previous round (§5/Fig. 4).
        Returns False when the leader vertex is not attached yet.
        """
        cached = self._leader_valid.get(round_)
        if cached is not None:
            return cached
        vertex = self.store.get(round_, self.schedule.leader(round_))
        if vertex is None:
            return False
        valid = self._validate_leader_vertex(vertex)
        self._leader_valid[round_] = valid
        return valid

    def _validate_leader_vertex(self, vertex: Vertex) -> bool:
        if vertex.round <= 1:
            return True
        prev = vertex.round - 1
        prev_leader = self.schedule.leader(prev)
        if any(ref.source == prev_leader for ref in vertex.strong_edges):
            return True
        nvc = vertex.nvc
        if not isinstance(nvc, NoVoteCertificate) or nvc.round != prev:
            return False
        if not self.params.verify_signatures:
            return len(nvc.signers) >= self.cfg.quorum
        return (
            nvc.cert.message_digest == no_vote_statement(prev)
            and verify_certificate(self.pki, nvc.cert, self.cfg.quorum)
        )

    def _leader_nvc(
        self, round_: Round, strong: tuple[VertexRef, ...]
    ) -> NoVoteCertificate | None:
        """The NVC a leader must embed when skipping the previous leader."""
        if round_ < 2 or self.schedule.leader(round_) != self.node_id:
            return None
        prev = round_ - 1
        prev_leader = self.schedule.leader(prev)
        if any(ref.source == prev_leader for ref in strong):
            return None
        sigs = list(self.no_votes[prev].values())
        if len(sigs) < self.cfg.quorum:
            raise ConsensusError(
                f"leader {self.node_id} lacks NVC for round {prev}"
            )
        return NoVoteCertificate(prev, build_certificate(sigs[: self.cfg.quorum]))

    # -- message handling -----------------------------------------------------------

    def _on_message(self, src: NodeId, msg: object) -> None:
        if self.rbc.on_message(src, msg):
            return
        if isinstance(msg, NoVoteMsg):
            self._on_no_vote(src, msg)
        elif isinstance(msg, SyncRequestMsg):
            self.sync.on_request(src, msg)
        elif isinstance(msg, SyncResponseMsg):
            self.sync.on_response(src, msg)

    def _on_no_vote(self, src: NodeId, msg: NoVoteMsg) -> None:
        if msg.signature.signer != src:
            return
        if self.params.verify_signatures:
            if msg.signature.message_digest != no_vote_statement(msg.round):
                return
            if not self.pki.verify(msg.signature):
                return
        self.no_votes[msg.round][src] = msg.signature
        self._try_advance()

    # -- voting and commit -------------------------------------------------------------

    def _on_first_val(self, vertex: Vertex) -> None:
        """Count Sailfish votes from the first dissemination message."""
        self._count_vote(vertex)
        # Every VAL reports its proposer's round: the cheapest lag signal.
        self.sync.observe(vertex.round)

    def _count_vote(self, vertex: Vertex) -> None:
        prev = vertex.round - 1
        if prev < 1:
            return
        leader = self.schedule.leader(prev)
        # Plain loop rather than any(<genexpr>): this runs for every vertex
        # from every peer, and the generator frame is measurable there.
        for ref in vertex.strong_edges:
            if ref.source == leader and ref.round == prev:
                break
        else:
            return
        voters = self.votes[prev]
        if vertex.source not in voters:
            voters.add(vertex.source)
            if len(voters) >= self.cfg.quorum:
                self._try_commit(prev)

    def _on_vertex_delivered(self, vertex: Vertex) -> None:
        attached = self.store.add(vertex)
        if self.tracer.enabled and attached:
            tr = self.tracer
            now = self.sim.now
            for v in attached:
                # Child of this node's RBC delivery span when the vertex was
                # sampled (falling back to the trace root for vertices that
                # attached from the buffer, whose delivery predates binding).
                ctx = tr.ctx(("vdeliv", v.round, v.source, self.node_id))
                if ctx is None:
                    ctx = tr.ctx(("vertex", v.round, v.source))
                if ctx is not None:
                    tr.ctx_span(
                        "dag.attach", start=now, ctx=ctx, end=now,
                        node=self.node_id, round=v.round, source=v.source,
                    )
        for v in attached:
            self._count_vote(v)
            if v.round >= 1 and self.schedule.leader(v.round) == v.source:
                # A leader vertex arriving can complete a pending commit.
                if len(self.votes[v.round]) >= self.cfg.quorum:
                    self._try_commit(v.round)
        self._try_advance()

    def _try_commit(self, round_: Round) -> None:
        if round_ <= self.last_committed_round:
            return
        leader = self.schedule.leader(round_)
        leader_vertex = self.store.get(round_, leader)
        if leader_vertex is None:
            return  # commit completes when the leader vertex attaches
        if not self._leader_vertex_valid(round_):
            return
        if len(self.votes[round_]) < self.cfg.quorum:
            return
        self._commit_chain(leader_vertex)

    def _commit_chain(self, anchor: Vertex) -> None:
        """Direct-commit ``anchor``; indirect-commit reachable skipped leaders."""
        chain = [anchor]
        current = anchor
        # Compensating commit rule for sparse edges: strong paths alone no
        # longer guarantee a later anchor reaches an earlier direct-committed
        # leader (the fan-out breaks quorum intersection), so the indirect
        # walk accepts any-edge routes — still a pure property of the
        # anchor's frozen ancestry, hence identical on every honest replica.
        reaches = (
            self.store.path_exists if self._sparse else self.store.strong_path_exists
        )
        for round_ in range(anchor.round - 1, self.last_committed_round, -1):
            candidate = self.store.get(round_, self.schedule.leader(round_))
            if (
                candidate is not None
                and self._leader_vertex_valid(round_)
                and reaches(current, candidate)
            ):
                chain.append(candidate)
                current = candidate
        now = self.sim.now
        ordered = 0
        first_new = len(self.ordered_log)
        for leader_vertex in reversed(chain):
            newly = self.ordering.order_leader(leader_vertex)
            self.committed_leaders.append(leader_vertex)
            ordered += len(newly)
            for vertex in newly:
                self.ordered_log.append((vertex, now))
                if self.on_ordered is not None:
                    self.on_ordered(self, vertex, now)
                if self._prefix:
                    self._prefix_track(vertex)
        if self.tracer.enabled:
            verbose = self.tracer.verbose
            if verbose:
                self.tracer.counter(
                    "consensus.commit", node=self.node_id, time=now,
                    anchor_round=anchor.round, depth=len(chain), ordered=ordered,
                )
            # Per-block ordering events feed the forensics critical path:
            # when did *this node* place each block into the total order?
            # Sampled mode keeps them only for vertices on a sampled trace.
            for vertex, _ in self.ordered_log[first_new:]:
                ctx = self.tracer.ctx(
                    ("vdeliv", vertex.round, vertex.source, self.node_id)
                )
                if ctx is None:
                    ctx = self.tracer.ctx(("vertex", vertex.round, vertex.source))
                if ctx is not None:
                    self.tracer.ctx_span(
                        "consensus.order", start=now, ctx=ctx, end=now,
                        node=self.node_id, round=vertex.round,
                        source=vertex.source, anchor_round=anchor.round,
                    )
                if vertex.block_digest is not None and (
                    verbose or ctx is not None
                ):
                    self.tracer.counter(
                        "consensus.ordered", node=self.node_id, time=now,
                        round=vertex.round, source=vertex.source,
                        digest=vertex.block_digest.hex(),
                    )
        self.last_committed_round = anchor.round
        if self.params.gc_depth:
            # Retrieval/sync bookkeeping for rounds far behind the commit
            # frontier is dead weight (the margin keeps off-critical-path
            # block pulls for recently committed rounds alive).
            floor = anchor.round - self.params.gc_depth
            if floor > 0:
                self.rbc.gc_below(floor)
                self.sync.gc_below(floor)
                self.store.prune_reach_below(floor)

    # -- round advancement ----------------------------------------------------------------

    def _on_timeout(self) -> None:
        if self._crashed_local or self.sync.catching_up:
            return  # defensive: these states cancel the timer on entry
        round_ = self.round
        self.timeout_fired.add(round_)
        if not self._leader_vertex_valid(round_) and round_ not in self.no_voted:
            # No usable leader vertex (missing or invalid): complain.
            self.no_voted.add(round_)
            signature = self.pki.key(self.node_id).sign(no_vote_statement(round_))
            self.network.broadcast(self.node_id, NoVoteMsg(round_, signature))
        self._try_advance()

    def _try_advance(self) -> None:
        if not self.started or self._crashed_local or self.sync.catching_up:
            return
        round_ = self.round
        if self.params.max_rounds and round_ >= self.params.max_rounds:
            return
        delivered = self.store.round_vertices(round_)
        leader = self.schedule.leader(round_)
        next_round = round_ + 1
        i_lead_next = self.schedule.leader(next_round) == self.node_id
        have_leader = any(v.source == leader for v in delivered)
        leader_usable = have_leader and self._leader_vertex_valid(round_)
        if leader_usable and round_ in self.no_voted and not i_lead_next:
            leader_usable = False  # no-vote promise: we will not reference it
        usable = len(delivered)
        if have_leader and not leader_usable:
            usable -= 1  # our next vertex will not reference the leader
        if usable < self.cfg.quorum:
            return
        if not leader_usable and round_ not in self.timeout_fired:
            return  # wait for the (valid) leader vertex or the timeout
        if i_lead_next and not leader_usable:
            if len(self.no_votes[round_]) < self.cfg.quorum:
                return  # the next leader needs the leader edge or an NVC
        self._timer.cancel()
        self._enter_round(next_round)

    # -- crash/recovery -----------------------------------------------------------------

    def _on_crash(self) -> None:
        """Fail-stop: freeze every node-local timer.

        Without this, leader timers and pull retries keep firing while the
        node is 'down', mutating its no-vote and round state so that on
        recovery it acts on rounds it never legitimately observed."""
        self._crashed_local = True
        self._timer.cancel()
        self.rbc.suspend_timers()
        self.sync.suspend()

    def _on_recover(self) -> None:
        """Rejoin with persisted (stale) state; catch-up closes the gap."""
        self._crashed_local = False
        if not self.started:
            return
        self.rbc.resume_timers()
        self.sync.on_recover()
        if self.sync.catching_up:
            return  # rejoin() restarts the timer once caught up
        if not (self.params.max_rounds and self.round > self.params.max_rounds):
            self._timer.start(self.params.leader_timeout)
        self._try_advance()

    def ingest_synced_vertex(self, vertex: Vertex) -> None:
        """Replay a pulled vertex through the ordinary delivery path, so vote
        counting, commits, and ordering are identical to a live delivery."""
        self._on_vertex_delivered(vertex)

    def rejoin(self, frontier: Round) -> None:
        """Fast-forward into live rounds after catch-up.

        Jumps straight to ``frontier + 1`` without proposing for any skipped
        round (stale-round vertices would only bloat peers' DAGs)."""
        next_round = frontier + 1
        if next_round <= self.round:
            # The gap closed behind our current round: resume in place.
            if not (self.params.max_rounds and self.round > self.params.max_rounds):
                self._timer.start(self.params.leader_timeout)
            self._try_advance()
            return
        propose = True
        if self.schedule.leader(next_round) == self.node_id:
            # A leader vertex needs the previous leader edge or an NVC; a
            # freshly recovered leader may hold neither — skip proposing
            # rather than emit an invalid vertex (the tribe no-votes us).
            prev_leader = self.schedule.leader(frontier)
            strong = self._strong_edges(next_round)
            if (
                not any(ref.source == prev_leader for ref in strong)
                and len(self.no_votes[frontier]) < self.cfg.quorum
            ):
                propose = False
        self._enter_round(next_round, propose=propose)
        self._try_advance()

    # -- prefix commits (rbc_mode="prefix") ----------------------------------------------
    #
    # Certified-prefix ordering: a chunked vertex certifies only metadata;
    # round-(r+1) clan members attest (via ``prefix_votes``) how much of the
    # block they hold, and the commit rule orders the longest prefix that a
    # clan quorum of attesters provably holds.  Every decision input is read
    # from the ordered log, which is identical on all honest nodes — so the
    # decided prefix length k is identical everywhere without extra messages.

    def _prefix_votes(self, edges: tuple[VertexRef, ...]) -> tuple[tuple[NodeId, int], ...]:
        """Attestations for partially-held chunked edge targets.

        Covers strong AND weak edges: an orphaned chunked vertex (ordered
        only through weak references) still needs attesters.  An omitted
        entry means "I hold the full block", so the common case (everything
        arrived) costs zero bytes."""
        votes = []
        for ref in edges:
            target = self.store.get(ref.round, ref.source)
            if target is None or not target.block_chunks:
                continue
            round_cfg = self.clan_schedule.cfg_at(ref.round)
            clan = round_cfg.clan(round_cfg.block_clan_of(target.source))
            if self.node_id not in clan:
                continue  # chunks go to the clan; outsiders cannot attest
            held = self.rbc.held_prefix(ref.source, ref.round)
            if held < target.block_chunks:
                votes.append((ref.source, held))
        return tuple(votes)

    def _prefix_track(self, vertex: Vertex) -> None:
        """Feed one newly ordered vertex through the prefix state machine."""
        # 1. Accumulate attestations from every edge (strong edges carry the
        #    common r+1 votes; weak edges attest orphaned vertices that were
        #    skipped by the next round and ordered late).
        if self._prefix_pending:
            pv = dict(vertex.prefix_votes)
            for ref in vertex.parents():
                entry = self._prefix_pending.get((ref.round, ref.source))
                if entry is None:
                    continue
                target = entry["vertex"]
                round_cfg = self.clan_schedule.cfg_at(ref.round)
                clan = round_cfg.clan(round_cfg.block_clan_of(target.source))
                if vertex.source not in clan:
                    continue
                held = min(pv.get(ref.source, target.block_chunks), target.block_chunks)
                entry["votes"].setdefault(vertex.source, held)
        # 2. Decide: the first ordered vertex two rounds past a chunked
        #    vertex closes its attestation window (after its own votes above
        #    were counted — a weak edge from the sentinel itself may be an
        #    orphan's only attestation).  The trigger is a position in the
        #    ordered log (not a local commit batch), so all honest nodes
        #    decide with the same attester set.
        if self._prefix_pending:
            due = sorted(
                k for k in self._prefix_pending if vertex.round >= k[0] + 2
            )
            for key in due:
                self._prefix_decide(key, self._prefix_pending.pop(key))
        # 3. Register chunked vertices for a future decision (a vertex never
        #    references itself, so registration goes last).
        if vertex.block_chunks:
            self._prefix_pending[(vertex.round, vertex.source)] = {
                "vertex": vertex,
                "votes": {},
            }

    def _prefix_decide(self, key: tuple[Round, NodeId], entry: dict) -> None:
        """Close the attestation window: order the certified prefix."""
        round_, source = key
        vertex: Vertex = entry["vertex"]
        votes: dict[NodeId, int] = entry["votes"]
        if votes:
            round_cfg = self.clan_schedule.cfg_at(round_)
            quorum = round_cfg.clan_echo_quorum(round_cfg.block_clan_of(source))
            # The t-th largest attested value with t = f_c+1: at least one
            # honest attester holds >= k chunks, so [0, k) is retrievable.
            t = min(quorum, len(votes))
            k = sorted(votes.values(), reverse=True)[t - 1]
        else:
            k = 0
        self.prefix_chunks_committed += k
        self.prefix_chunks_dropped += vertex.block_chunks - k
        if k > 0:
            self.prefix_commits += 1
        if k < vertex.block_chunks:
            self.prefix_truncated += 1
        if self.tracer.verbose:
            self.tracer.counter(
                "consensus.prefix", node=self.node_id, time=self.sim.now,
                round=round_, source=source, chunks=vertex.block_chunks,
                committed=k,
            )
        if self.on_prefix is not None:
            self.on_prefix(self, vertex, k)
        # Always deliver — the empty (k=0) prefix included: the executor
        # drains blocks in total order and would stall forever on a gap.
        holders = sorted(v for v, held in votes.items() if held >= k)
        self._prefix_deliver(vertex, k, holders)

    def _prefix_deliver(self, vertex: Vertex, k: int, holders: list[NodeId]) -> None:
        """Hand the decided prefix to execution (clan duty), pulling missing
        chunks from attesters who claimed to hold at least k."""
        if self.on_commit_block is None:
            return
        if not self.rbc._serves_block(vertex.source, vertex.round):
            return
        manifest, chunks = self.rbc.prefix_parts(vertex.source, vertex.round)
        if manifest is not None and all(i in chunks for i in range(k)):
            block = assemble_prefix(manifest, chunks, k)
            self.on_commit_block(self, vertex.block_digest, block)
            return
        # Clan members are fallback holders: chunk responses also carry the
        # manifest, so a member that pulled the bare vertex still recovers.
        round_cfg = self.clan_schedule.cfg_at(vertex.round)
        clan = round_cfg.clan(round_cfg.block_clan_of(vertex.source))
        pool = holders + sorted(p for p in clan if p not in holders)
        self._awaiting_chunks[vertex.key] = (vertex, k)
        self.rbc.fetch_chunks(
            vertex.source, vertex.round, k,
            [h for h in pool if h != self.node_id],
        )

    def _on_chunks_progress(self, origin: NodeId, round_: Round) -> None:
        """RBC chunk-holdings callback: complete a stalled prefix delivery."""
        entry = self._awaiting_chunks.get((round_, origin))
        if entry is None:
            return
        vertex, k = entry
        manifest, chunks = self.rbc.prefix_parts(origin, round_)
        if manifest is None or not all(i in chunks for i in range(k)):
            return
        del self._awaiting_chunks[(round_, origin)]
        if self.on_commit_block is not None:
            self.on_commit_block(
                self, vertex.block_digest, assemble_prefix(manifest, chunks, k)
            )

    # -- block handling ------------------------------------------------------------------

    def _on_block_delivered(self, block: Block) -> None:
        self.blocks[block.payload_digest()] = block
        if self.on_block_ready is not None:
            self.on_block_ready(self, block)

    # -- inspection --------------------------------------------------------------------

    @property
    def ordered_vertices(self) -> list[Vertex]:
        return [v for v, _ in self.ordered_log]

    def ordered_keys(self) -> list[tuple[Round, NodeId]]:
        return [v.key for v, _ in self.ordered_log]
