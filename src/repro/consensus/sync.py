"""Crash-recovery and lagging-node DAG catch-up.

A recovered node rejoins with a stale DAG: the tribe moved on while it was
down, and the RBC instances it missed will never re-run.  The synchronizer
closes the gap with the same pull pattern the RBC layer uses for missing
payloads (:mod:`repro.rbc.retrieval`):

1. **Detection** — every VAL observed by the node reports the proposer's
   round; when the observed frontier runs more than ``sync_gap_threshold``
   rounds ahead of the node's own round, the node enters catch-up mode (and
   stops proposing/voting for stale rounds).
2. **Pull** — batched ``SyncRequestMsg(from_round, to_round)`` requests go to
   one peer at a time, rotating deterministically with capped exponential
   backoff.  Responders answer from their *attached* DAG (vertices whose full
   causal history they hold) and attach block bodies for vertices whose clan
   the requester serves; responses are rate-limited per requester.
3. **Re-validation + replay** — pulled vertices are structurally validated
   (well-formed strong-edge quorum) and replayed through the node's ordinary
   delivery path, so vote counting, commit rules, and total ordering run
   exactly as they would have live; the committed prefix is therefore
   byte-identical to every other honest node's.
4. **Rejoin** — once the gap shrinks below the threshold the node
   fast-forwards to the frontier and resumes proposing in live rounds,
   without proposing for any skipped round.

Safety note: a vertex accepted here was RBC-delivered by the responder, not
by us.  Honest responders only serve non-equivocating, certified vertices,
and the store raises on digest conflicts; a production deployment would
additionally ship the RBC certificates (two-round mode has transferable ones)
— see ``docs/FAULTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..dag.block import Block
from ..dag.vertex import Vertex
from ..errors import ConsensusError
from ..net import sizes
from ..net.message import Message
from ..types import NodeId, Round

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import SailfishNode


@dataclass(slots=True)
class SyncRequestMsg(Message):
    """Pull request for all attached vertices in ``[from_round, to_round]``."""

    from_round: Round
    to_round: Round

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE


@dataclass(slots=True)
class SyncResponseMsg(Message):
    """Batch of attached vertices (+ blocks the requester's clan serves)."""

    from_round: Round
    to_round: Round
    vertices: tuple[Vertex, ...]
    blocks: tuple[Block, ...]

    def wire_size(self) -> int:
        size = sizes.HEADER_SIZE
        for vertex in self.vertices:
            size += vertex.wire_size()
        for block in self.blocks:
            size += block.wire_size()
        return size


class DagSynchronizer:
    """Per-node catch-up client and server."""

    #: Retry interval cap (matches the payload retriever's cap).
    MAX_RETRY_TIMEOUT = 30.0
    #: Responses served per (requester, from_round) — allows one retry to hit
    #: the same responder without letting Byzantine requesters amplify.
    MAX_RESPONSES_PER_REQUEST = 2

    def __init__(
        self,
        node: "SailfishNode",
        gap_threshold: int = 5,
        batch_rounds: int = 20,
        retry_timeout: float = 0.5,
        enabled: bool = True,
    ) -> None:
        if gap_threshold < 1:
            raise ConsensusError("sync gap threshold must be at least 1")
        if batch_rounds < 1:
            raise ConsensusError("sync batch must cover at least one round")
        if retry_timeout <= 0:
            raise ConsensusError("sync retry timeout must be positive")
        self.node = node
        self.gap_threshold = gap_threshold
        self.batch_rounds = batch_rounds
        self.retry_timeout = retry_timeout
        self.enabled = enabled
        #: Highest vertex round observed in incoming dissemination traffic.
        self.highest_seen: Round = 0
        self.catching_up = False
        #: Monotone cache of the attached-quorum frontier (see _frontier).
        self._frontier_cache: Round = 0
        self._timer = None
        self._timeout = retry_timeout
        self._next_peer = 0
        #: Rate-limit state for the responder side.
        self._served: dict[tuple[NodeId, Round], int] = {}
        # Stats (inspection + chaos reports).
        self.syncs_started = 0
        self.vertices_pulled = 0
        self.blocks_pulled = 0

    # -- detection ----------------------------------------------------------------

    def observe(self, round_: Round) -> None:
        """Feed the round of an incoming vertex; may trigger catch-up."""
        if round_ > self.highest_seen:
            self.highest_seen = round_
        if not self.enabled or self.catching_up:
            return
        if self.highest_seen > self.node.round + self.gap_threshold:
            self._begin()

    def _begin(self) -> None:
        self.catching_up = True
        self.syncs_started += 1
        node = self.node
        node._timer.cancel()  # no stale-round no-votes while catching up
        if node.tracer.enabled:
            node.tracer.counter(
                "sync.begin", node=node.node_id, round=node.round,
                target=self.highest_seen,
            )
        self._timeout = self.retry_timeout
        self._request_batch()

    # -- frontier -----------------------------------------------------------------

    def _frontier(self) -> Round:
        """Highest round with a quorum of *attached* vertices.

        Monotone scan: a round-r vertex attaches only after its ≥ quorum
        round-(r-1) strong parents attached, so quorum-completeness can only
        break once — scan upward from the cached value."""
        store = self.node.store
        quorum = self.node.cfg.quorum
        r = self._frontier_cache
        while store.num_in_round(r + 1) >= quorum:
            r += 1
        self._frontier_cache = r
        return r

    # -- pull client --------------------------------------------------------------

    def _request_batch(self) -> None:
        node = self.node
        if node.network.is_crashed(node.node_id):
            return  # suspended; on_recover re-issues
        frontier = self._frontier()
        from_round = frontier + 1
        to_round = min(from_round + self.batch_rounds - 1, self.highest_seen)
        peer = self._pick_peer()
        node.network.send(
            node.node_id, peer, SyncRequestMsg(from_round, to_round)
        )
        self._timer = node.sim.schedule(self._timeout, self._on_retry)
        self._timeout = min(self._timeout * 2.0, self.MAX_RETRY_TIMEOUT)

    def _pick_peer(self) -> NodeId:
        node = self.node
        n = node.cfg.n
        peer = self._next_peer % n
        if peer == node.node_id:
            peer = (peer + 1) % n
        self._next_peer = peer + 1
        return peer

    def _on_retry(self) -> None:
        self._timer = None
        if self.catching_up:
            self._request_batch()

    def on_response(self, src: NodeId, msg: SyncResponseMsg) -> None:
        node = self.node
        applied = 0
        for vertex in msg.vertices:
            if not self._valid(vertex):
                continue
            if node.store.contains_key(vertex.round, vertex.source):
                continue
            node.ingest_synced_vertex(vertex)
            applied += 1
        self.vertices_pulled += applied
        for block in msg.blocks:
            digest = block.payload_digest()
            if digest not in node.blocks:
                node.blocks[digest] = block
                self.blocks_pulled += 1
                if node.on_block_ready is not None:
                    node.on_block_ready(node, block)
        if not self.catching_up:
            return  # late response after rejoin: vertices absorbed, that's all
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if node.tracer.enabled:
            node.tracer.counter(
                "sync.batch", node=node.node_id, src=src, applied=applied,
                frontier=self._frontier(),
            )
        if self.highest_seen - self._frontier() <= self.gap_threshold:
            self._finish()
        else:
            # Progress resets the backoff; a dry batch keeps backing off so a
            # Byzantine or stale responder cannot pin us to one peer.
            if applied:
                self._timeout = self.retry_timeout
            self._request_batch()

    def _valid(self, vertex: Vertex) -> bool:
        """Structural re-validation of a pulled vertex."""
        if vertex.round < 1:
            return False
        if not 0 <= vertex.source < self.node.cfg.n:
            return False
        if vertex.round > 1 and len(vertex.strong_edges) < self.node.cfg.quorum:
            return False
        return True

    def _finish(self) -> None:
        self.catching_up = False
        node = self.node
        if node.tracer.enabled:
            node.tracer.counter(
                "sync.done", node=node.node_id, frontier=self._frontier(),
                pulled=self.vertices_pulled,
            )
        node.rejoin(self._frontier())

    # -- pull server --------------------------------------------------------------

    def on_request(self, src: NodeId, msg: SyncRequestMsg) -> None:
        node = self.node
        if src == node.node_id:
            return
        from_round = max(1, msg.from_round)
        # Clamp the span so a Byzantine requester cannot demand the world.
        to_round = min(msg.to_round, from_round + self.batch_rounds - 1)
        if to_round < from_round:
            return
        key = (src, from_round)
        served = self._served.get(key, 0)
        if served >= self.MAX_RESPONSES_PER_REQUEST:
            return
        vertices: list[Vertex] = []
        blocks: list[Block] = []
        cfg_of = node.clan_schedule.cfg_at
        for round_ in range(from_round, to_round + 1):
            for vertex in sorted(
                node.store.round_vertices(round_), key=lambda v: v.source
            ):
                vertices.append(vertex)
                if vertex.block_digest is None:
                    continue
                cfg = cfg_of(vertex.round)
                proposer_clan = cfg.clan_index_of(vertex.source)
                if proposer_clan is None or cfg.clan_index_of(src) != proposer_clan:
                    continue  # the requester does not serve this clan's blocks
                block = node.blocks.get(vertex.block_digest)
                if block is not None:
                    blocks.append(block)
        if not vertices:
            return
        self._served[key] = served + 1
        node.network.send(
            node.node_id,
            src,
            SyncResponseMsg(from_round, to_round, tuple(vertices), tuple(blocks)),
        )

    # -- lifecycle ----------------------------------------------------------------

    def suspend(self) -> None:
        """Crash: stop the retry timer; catch-up state persists."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def on_recover(self) -> None:
        """Recovery: resume an interrupted catch-up, if any.

        A *new* gap (rounds missed while down) is detected organically from
        the first live VALs that arrive after recovery."""
        if self.catching_up:
            self._timeout = self.retry_timeout
            self._request_batch()

    def gc_below(self, round_: Round) -> None:
        """Drop responder rate-limit records for old request windows."""
        stale = [key for key in self._served if key[1] < round_]
        for key in stale:
            del self._served[key]
