"""Sailfish-style DAG BFT consensus with clan-based dissemination.

One consensus core (:class:`~repro.consensus.node.SailfishNode`) implements
the paper's three protocols; the :class:`~repro.committees.ClanConfig` passed
to it selects baseline Sailfish, single-clan, or multi-clan behaviour.
:class:`~repro.consensus.deployment.Deployment` wires a whole tribe together
over one simulated network.
"""

from .deployment import Deployment
from .leader import LeaderSchedule
from .node import SailfishNode
from .params import ProtocolParams
from .sync import DagSynchronizer, SyncRequestMsg, SyncResponseMsg

__all__ = [
    "ProtocolParams",
    "LeaderSchedule",
    "SailfishNode",
    "Deployment",
    "DagSynchronizer",
    "SyncRequestMsg",
    "SyncResponseMsg",
]
