"""Leader schedules.

Each round has one (or, with ``leaders_per_round > 1``, several) leaders
whose vertices anchor the commit rule.  The schedule is a seeded permutation
re-drawn every ``n`` rounds, so leadership rotates fairly and unpredictably
but identically at every honest party.
"""

from __future__ import annotations

from ..errors import ConsensusError
from ..sim.rng import make_rng
from ..types import NodeId, Round


class LeaderSchedule:
    """Deterministic rotating leader schedule over ``n`` parties."""

    def __init__(self, n: int, seed: int = 0, leaders_per_round: int = 1) -> None:
        if n < 1:
            raise ConsensusError(f"need at least one party, got {n}")
        if not 1 <= leaders_per_round <= n:
            raise ConsensusError(
                f"leaders_per_round {leaders_per_round} out of range for n={n}"
            )
        self.n = n
        self.seed = seed
        self.leaders_per_round = leaders_per_round
        self._epochs: dict[int, list[NodeId]] = {}
        # Per-round memo: consensus asks for the same round's leaders many
        # times per message (vote counting, NVC checks, commit rule).
        self._rounds: dict[Round, tuple[NodeId, ...]] = {}

    def _epoch_order(self, epoch: int) -> list[NodeId]:
        order = self._epochs.get(epoch)
        if order is None:
            order = list(range(self.n))
            # shared=True: the schedule is common knowledge — every node
            # re-derives this exact stream so all parties agree on leaders.
            make_rng(self.seed, "leader-schedule", epoch, shared=True).shuffle(order)
            self._epochs[epoch] = order
        return order

    def leader(self, round_: Round) -> NodeId:
        """The primary leader of ``round_``."""
        return self.leaders(round_)[0]

    def leaders(self, round_: Round) -> tuple[NodeId, ...]:
        """All leaders of ``round_`` (multi-leader extension)."""
        picked = self._rounds.get(round_)
        if picked is None:
            if round_ < 1:
                raise ConsensusError(f"rounds start at 1, got {round_}")
            epoch, slot = divmod(round_ - 1, self.n)
            order = self._epoch_order(epoch)
            picked = tuple(
                order[(slot + k) % self.n] for k in range(self.leaders_per_round)
            )
            self._rounds[round_] = picked
        return picked

    def is_leader(self, round_: Round, node_id: NodeId) -> bool:
        return node_id in self.leaders(round_)
