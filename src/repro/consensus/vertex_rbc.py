"""Merged vertex+block reliable broadcast (§5).

One RBC instance per (proposer, round) carries the vertex to the whole tribe
and the block only to the proposer's clan:

* VAL to a clan member of the proposer's clan = vertex + block; VAL to
  everyone else = vertex alone (it embeds the block digest).
* A clan member ECHOes only after holding *both* vertex and block; everyone
  else after holding the vertex.
* Completion needs 2f+1 ECHOes and — when the vertex carries a block —
  at least f_c+1 of them from the proposer's clan, so an honest clan member
  provably holds the block.
* Vertex delivery never waits for the block: consensus progresses and commits
  on vertices; missing blocks are pulled off the critical path and delivered
  to clan members when they arrive.

Four completion modes:

* ``"two-round"`` — signed ECHOes aggregated into a multicast certificate
  (Fig. 3).
* ``"bracha"`` — unsigned ECHO/READY phases (Fig. 2).
* ``"optimistic"`` — unsigned fast path: deliver when *all n* parties ECHO
  one digest (2δ), falling back to the Bracha READY path when a conflicting
  digest shows up, the per-instance fallback timer fires, or any READY
  arrives (someone else already fell back).
* ``"prefix"`` — Bracha-style vertex certification, but the block travels
  as per-chunk messages bound to the vertex via a manifest digest
  (``vertex.chunk_root``); voters attest the prefix they hold and the
  commit rule orders the certified prefix (see ``consensus/node.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..committees.config import ClanConfig
from ..crypto.certificates import build_certificate, verify_certificate
from ..obs.ctx import TraceCtx, block_trace_key
from ..crypto.evidence import EvidencePool
from ..crypto.signatures import Pki
from ..dag.block import Block
from ..dag.vertex import Vertex
from ..errors import ConsensusError
from ..net.network import Network
from ..rbc.messages import PayloadRequest, PayloadResponse
from ..rbc.prefix import (
    BlockChunk,
    BlockChunkMsg,
    ChunkManifest,
    ChunkRequestMsg,
    ChunkResponseMsg,
    split_block,
)
from ..rbc.retrieval import Responder, Retriever
from ..sim.scheduler import Simulator
from ..types import NodeId, Round, clan_response_quorum
from .messages import (
    VertexCertMsg,
    VertexEchoMsg,
    VertexReadyMsg,
    VertexValMsg,
    vertex_echo_statement,
    vertex_val_statement,
)

Key = tuple[NodeId, Round]


@dataclass
class VertexInstance:
    """Per-(proposer, round) dissemination state."""

    vertex: Vertex | None = None
    block: Block | None = None
    first_digest: bytes | None = None
    echoed: bool = False
    ready_digest: bytes | None = None
    cert_sent: bool = False
    vertex_delivered: bool = False
    block_delivered: bool = False
    quorum_digest: bytes | None = None
    #: The clan whose ECHOes gate this instance (None: no clan condition).
    clan: frozenset[NodeId] | None = None
    echoes: dict[bytes, set[NodeId]] = field(default_factory=dict)
    #: Incremental clan-supporter tallies per digest (hot-path counter).
    clan_echo_counts: dict[bytes, int] = field(default_factory=dict)
    echo_sigs: dict[bytes, dict[NodeId, object]] = field(default_factory=dict)
    readies: dict[bytes, set[NodeId]] = field(default_factory=dict)
    conflicting: set[bytes] = field(default_factory=set)
    # Optimistic mode: has this instance abandoned the fast path, and the
    # armed fallback timer (scalar defaults — zero cost for other modes).
    pessimistic: bool = False
    fallback_timer: object | None = None
    # Prefix mode: the verified manifest, verified chunks by index, and
    # chunks buffered before the manifest arrived (lazily allocated).
    manifest: ChunkManifest | None = None
    chunks: dict[int, BlockChunk] | None = None
    chunk_buffer: dict[int, BlockChunk] | None = None
    # Phase timestamps, populated only when tracing is enabled.
    val_at: float | None = None
    echo_at: float | None = None
    #: Causal trace context of this vertex's dissemination (None when the
    #: instance is unsampled or tracing is off); inherited from the VAL
    #: message and stamped onto every ECHO/READY/CERT/chunk this node sends
    #: for the instance.
    ctx: object | None = None


class VertexRbc:
    """Per-node merged dissemination module.

    Callbacks:
        on_first_val(vertex): the first time this node learns the vertex
            content (VAL arrival or pull) — drives Sailfish's 1-RBC+1δ votes.
        on_vertex(vertex): RBC delivery of the vertex (non-equivocation +
            eventual delivery certified).
        on_block(block): the block is available locally *and* its vertex has
            been delivered; fired only on members of the proposer's clan.
    """

    def __init__(
        self,
        node_id: NodeId,
        clan_cfg: ClanConfig,
        network: Network,
        sim: Simulator,
        pki: Pki,
        on_first_val: Callable[[Vertex], None],
        on_vertex: Callable[[Vertex], None],
        on_block: Callable[[Block], None],
        mode: str = "two-round",
        verify_signatures: bool = True,
        retry_timeout: float = 0.25,
        fallback_timeout: float = 0.5,
        schedule=None,
        tracer=None,
        edge_mode: str = "full",
    ) -> None:
        if mode not in ("two-round", "bracha", "optimistic", "prefix"):
            raise ConsensusError(f"unknown RBC mode {mode!r}")
        self.node_id = node_id
        self.cfg = clan_cfg
        #: Round -> ClanConfig (epoch rotation); static wrapper by default.
        if schedule is None:
            from ..committees.rotation import StaticSchedule

            schedule = StaticSchedule(clan_cfg)
        self.schedule = schedule
        self.network = network
        self.sim = sim
        self.tracer = tracer if tracer is not None else network.tracer
        self.pki = pki
        self._key = pki.key(node_id)
        self.on_first_val = on_first_val
        self.on_vertex = on_vertex
        self.on_block = on_block
        self.mode = mode
        self._optimistic = mode == "optimistic"
        self._prefix = mode == "prefix"
        #: Edge policy of the vertices this node broadcasts ("full"/"sparse");
        #: informational here, but the per-broadcast edge counters below are
        #: what the sparse-edge benchmarks read to report realized fan-out.
        self.edge_mode = edge_mode
        #: Realized fan-out stats over this node's own broadcasts.
        self.vertices_broadcast = 0
        self.strong_refs_sent = 0
        self.weak_refs_sent = 0
        self.fallback_timeout = fallback_timeout
        self.retry_timeout = retry_timeout
        self.verify = verify_signatures
        self.instances: dict[Key, VertexInstance] = {}
        # Optimistic-mode statistics: deliveries through each path and
        # fallback-trigger counts by reason ("conflict"/"timeout"/"ready").
        self.fast_deliveries = 0
        self.fallback_deliveries = 0
        self.fallbacks: dict[str, int] = {}
        # Prefix-mode chunk-pull state: per-instance fetch entries (rotating
        # holders, capped backoff) and the serve-once rate-limit marks.
        self._chunk_fetch: dict[Key, dict] = {}
        self._chunk_served: set[tuple[NodeId, Round, int, NodeId]] = set()
        #: Prefix-mode hook: fired as (origin, round) whenever this node's
        #: verified chunk holdings for an instance grow (node completion).
        self.on_chunk = None
        self._quorum = clan_cfg.quorum
        self._amplify = clan_cfg.ready_amplify
        self._block_retriever = Retriever(
            node_id, network, sim, self._on_pulled_block, retry_timeout, channel="block"
        )
        self._block_responder = Responder(
            node_id, network, self._lookup_block, channel="block"
        )
        self._vertex_retriever = Retriever(
            node_id, network, sim, self._on_pulled_vertex, retry_timeout, channel="vertex"
        )
        self._vertex_responder = Responder(
            node_id, network, self._lookup_vertex, channel="vertex"
        )
        # ECHO/READY are the n²-per-round fan-out messages and their handlers
        # retain only field values (signer sets, signatures, digests), never
        # the message object — so both classes satisfy the arena's pooling
        # contract.  CERT does not: _on_cert rebroadcasts the same object.
        self._arena = getattr(network, "arena", None)
        if self._arena is not None:
            self._arena.register(VertexEchoMsg)
            self._arena.register(VertexReadyMsg)
        #: Accountability: transferable equivocation proofs from signed VALs.
        self.evidence = EvidencePool()
        #: Forensics hook fired when a conflicting digest for an (origin,
        #: round) instance is first observed: (origin, round, n_conflicting).
        self.on_equivocation = None

    # -- helpers ---------------------------------------------------------------

    def instance(self, origin: NodeId, round_: Round) -> VertexInstance:
        key = (origin, round_)
        state = self.instances.get(key)
        if state is None:
            state = self.instances[key] = VertexInstance()
            # The clan condition is conservative: it applies whenever the
            # origin *may* attach a block (checked without the vertex, which
            # may not have arrived yet).  f_c+1 honest clan ECHOes always
            # arrive for block-less vertices too, so this never blocks.
            cfg = self.schedule.cfg_at(round_)
            if cfg.is_block_proposer(origin):
                state.clan = cfg.clan(cfg.block_clan_of(origin))
        return state

    def _make_echo(
        self, origin: NodeId, round_: Round, digest_: bytes, signature
    ) -> VertexEchoMsg:
        arena = self._arena
        if arena is not None:
            msg = arena.acquire(VertexEchoMsg)
            if msg is not None:
                msg.origin = origin
                msg.round = round_
                msg.vertex_digest = digest_
                msg.signature = signature
                return msg
        return VertexEchoMsg(origin, round_, digest_, signature)

    def _make_ready(self, origin: NodeId, round_: Round, digest_: bytes) -> VertexReadyMsg:
        arena = self._arena
        if arena is not None:
            msg = arena.acquire(VertexReadyMsg)
            if msg is not None:
                msg.origin = origin
                msg.round = round_
                msg.vertex_digest = digest_
                return msg
        return VertexReadyMsg(origin, round_, digest_)

    def _serves_block(self, origin: NodeId, round_: Round) -> bool:
        """Is this node in the proposer's clan (receives/executes its blocks)?"""
        cfg = self.schedule.cfg_at(round_)
        idx = cfg.clan_index_of(origin)
        return idx is not None and idx == cfg.clan_index_of(self.node_id)

    # -- sending -----------------------------------------------------------------

    def broadcast(self, vertex: Vertex, block: Block | None) -> None:
        """Disseminate this node's vertex (and block, if it proposes blocks)."""
        if vertex.source != self.node_id:
            raise ConsensusError("can only broadcast own vertices")
        ctx = None
        if self.tracer.enabled:
            ctx = self._broadcast_ctx(vertex)
            if self.tracer.verbose or ctx is not None:
                self.tracer.counter(
                    "consensus.propose", node=self.node_id, round=vertex.round,
                    has_block=block is not None, time=self.sim.now,
                )
        if (block is None) != (vertex.block_digest is None):
            raise ConsensusError("vertex.block_digest must match block presence")
        if block is not None and block.payload_digest() != vertex.block_digest:
            raise ConsensusError("vertex.block_digest does not match block")
        self.vertices_broadcast += 1
        self.strong_refs_sent += len(vertex.strong_edges)
        self.weak_refs_sent += len(vertex.weak_edges)
        vdigest = vertex.vertex_digest()
        signature = None
        if self.mode == "two-round":
            signature = self._key.sign(
                vertex_val_statement(self.node_id, vertex.round, vdigest)
            )
        if block is None:
            val = VertexValMsg(vertex, None, signature)
            if ctx is not None:
                val.trace_ctx = ctx
            self.network.broadcast(self.node_id, val)
            return
        cfg = self.schedule.cfg_at(vertex.round)
        clan = cfg.clan(cfg.block_clan_of(self.node_id))
        in_clan = [p for p in range(self.cfg.n) if p in clan]
        outside = [p for p in range(self.cfg.n) if p not in clan]
        if self._prefix:
            # The block travels as chunks; clan members get the manifest
            # (bound to the vertex via chunk_root) alongside the vertex.
            manifest, chunks = split_block(block, vertex.block_chunks)
            if manifest.manifest_digest() != vertex.chunk_root:
                raise ConsensusError("vertex.chunk_root does not match manifest")
            val = VertexValMsg(vertex, None, signature, manifest)
            bare = VertexValMsg(vertex, None, signature)
            if ctx is not None:
                val.trace_ctx = ctx
                bare.trace_ctx = ctx
            self.network.multicast(self.node_id, in_clan, val)
            if outside:
                self.network.multicast(self.node_id, outside, bare)
            for chunk in chunks:
                cmsg = BlockChunkMsg(self.node_id, vertex.round, chunk)
                if ctx is not None:
                    cmsg.trace_ctx = ctx
                self.network.multicast(self.node_id, in_clan, cmsg)
            return
        with_block = VertexValMsg(vertex, block, signature)
        without_block = VertexValMsg(vertex, None, signature)
        if ctx is not None:
            with_block.trace_ctx = ctx
            without_block.trace_ctx = ctx
        self.network.multicast(self.node_id, in_clan, with_block)
        if outside:
            self.network.multicast(self.node_id, outside, without_block)

    def _broadcast_ctx(self, vertex: Vertex) -> TraceCtx | None:
        """Open (and register) the causal trace for a sampled vertex.

        The trace id derives from the block digest when the vertex carries a
        block (so offline tools can rejoin it from a manifest digest alone),
        else from the (round, source) vertex identity.  A block whose
        transactions include a head-sampled txn is force-sampled via the
        ``("blkforce", digest)`` binding the SMR runtime registers at block
        creation — txn trees stay complete at any sample rate.
        """
        tr = self.tracer
        if vertex.block_digest is not None:
            key = block_trace_key(vertex.block_digest)
            forced = tr.ctx(("blkforce", vertex.block_digest)) is not None
        else:
            key = f"vtx:{vertex.round}:{vertex.source}"
            forced = False
        if not forced and not tr.sampled(key):
            return None
        ctx = TraceCtx(tr.trace_id(key), tr.next_span_id())
        tr.bind(("vertex", vertex.round, vertex.source), ctx)
        if vertex.block_digest is not None:
            tr.bind(("block", vertex.block_digest), ctx)
        # The trace's root span: the proposal event itself.  Children (hops,
        # per-node RBC phases, attach/order/execute) hang off ctx.span_id.
        now = self.sim.now
        tr.span(
            "rbc.broadcast", start=now, end=now, node=self.node_id,
            round=vertex.round, trace=ctx.trace_id, span=ctx.span_id,
        )
        return ctx

    # -- receiving ----------------------------------------------------------------

    def on_message(self, src: NodeId, msg: object) -> bool:
        """Dispatch a network message; returns False if it isn't ours.

        ECHO and CERT dominate traffic (n² per round), so they are tested
        first.
        """
        if isinstance(msg, VertexEchoMsg):
            self._on_echo(src, msg)
        elif isinstance(msg, VertexCertMsg):
            self._on_cert(src, msg)
        elif isinstance(msg, VertexValMsg):
            self._on_val(src, msg)
        elif isinstance(msg, VertexReadyMsg):
            self._on_ready(src, msg)
        elif isinstance(msg, PayloadRequest):
            self._on_payload_request(src, msg)
        elif isinstance(msg, PayloadResponse):
            self._on_payload_response(src, msg)
        elif isinstance(msg, BlockChunkMsg):
            self._on_chunk(src, msg)
        elif isinstance(msg, ChunkRequestMsg):
            self._on_chunk_request(src, msg)
        elif isinstance(msg, ChunkResponseMsg):
            self._on_chunk_response(src, msg)
        else:
            return False
        return True

    def _on_payload_request(self, src: NodeId, msg: PayloadRequest) -> None:
        self._block_responder.on_request(src, msg)
        self._vertex_responder.on_request(src, msg)

    def _on_payload_response(self, src: NodeId, msg: PayloadResponse) -> None:
        self._block_retriever.on_response(src, msg)
        self._vertex_retriever.on_response(src, msg)

    def dispatch_table(self) -> dict:
        """Exact-class handler table for :meth:`Network.set_dispatch`.

        Covers the same vocabulary as :meth:`on_message`; the owning node
        extends it with its own message types before installing it.
        """
        return {
            VertexEchoMsg: self._on_echo,
            VertexCertMsg: self._on_cert,
            VertexValMsg: self._on_val,
            VertexReadyMsg: self._on_ready,
            PayloadRequest: self._on_payload_request,
            PayloadResponse: self._on_payload_response,
            BlockChunkMsg: self._on_chunk,
            ChunkRequestMsg: self._on_chunk_request,
            ChunkResponseMsg: self._on_chunk_response,
        }

    def _on_val(self, src: NodeId, msg: VertexValMsg) -> None:
        vertex = msg.vertex
        origin = vertex.source
        if src != origin:
            return  # authenticated channels
        if vertex.round < 1:
            return
        if vertex.block_digest is not None and not self.schedule.cfg_at(
            vertex.round
        ).is_block_proposer(origin):
            return  # §5: only clan members may propose blocks
        vdigest = vertex.vertex_digest()
        if self.mode == "two-round":
            if msg.signature is None:
                return
            if self.verify:
                if msg.signature.signer != origin or not self.pki.verify(msg.signature):
                    return
                expected = vertex_val_statement(origin, vertex.round, vdigest)
                if msg.signature.message_digest != expected:
                    return
        state = self.instance(origin, vertex.round)
        if self.tracer.enabled:
            if state.val_at is None:
                state.val_at = self.sim.now
            if state.ctx is None:
                state.ctx = getattr(msg, "trace_ctx", None)
        if self._optimistic and not state.pessimistic and not state.vertex_delivered:
            self._arm_fallback(origin, vertex.round, state)
        if self.mode == "two-round" and msg.signature is not None:
            # Signed VALs are accountability material: two conflicting ones
            # from the same (origin, round) yield a transferable fraud proof.
            self.evidence.record(origin, vertex.round, vdigest, msg.signature)
        if state.first_digest is None:
            state.first_digest = vdigest
            state.vertex = vertex
            self.on_first_val(vertex)
        elif state.first_digest != vdigest:
            state.conflicting.add(vdigest)
            if self.on_equivocation is not None:
                self.on_equivocation(origin, vertex.round, len(state.conflicting))
            if self._optimistic and not state.pessimistic:
                self._fall_back(origin, vertex.round, state, "conflict")
            return
        if self._prefix and msg.manifest is not None and state.manifest is None:
            self._try_accept_manifest(origin, vertex.round, state, msg.manifest)
        if msg.block is not None and state.block is None:
            block = msg.block
            if (
                block.proposer == origin
                and block.round == vertex.round
                and vertex.block_digest is not None
                and block.payload_digest() == vertex.block_digest
            ):
                state.block = block
        self._maybe_echo(origin, vertex.round, state)
        self._maybe_finish(origin, vertex.round, state)

    def _maybe_echo(self, origin: NodeId, round_: Round, state: VertexInstance) -> None:
        if state.echoed or state.vertex is None:
            return
        # Prefix mode: clan members echo on the vertex+manifest alone — the
        # whole point is that certification must not wait for the block tail.
        if self._prefix:
            if (
                state.vertex.block_chunks
                and self._serves_block(origin, round_)
                and state.manifest is None
            ):
                return
        else:
            needs_block = (
                state.vertex.block_digest is not None
                and self._serves_block(origin, round_)
            )
            if needs_block and state.block is None:
                return
        state.echoed = True
        if self.tracer.enabled:
            now = self.sim.now
            state.echo_at = now
            start = state.val_at if state.val_at is not None else now
            if state.ctx is not None:
                self.tracer.ctx_span(
                    "rbc.val_to_echo", start=start, ctx=state.ctx,
                    end=now, node=self.node_id, origin=origin, round=round_,
                )
            elif self.tracer.verbose:
                self.tracer.span(
                    "rbc.val_to_echo", start=start,
                    end=now, node=self.node_id, origin=origin, round=round_,
                )
        vdigest = state.first_digest
        signature = None
        if self.mode == "two-round":
            signature = self._key.sign(vertex_echo_statement(origin, round_, vdigest))
        echo = self._make_echo(origin, round_, vdigest, signature)
        # Quorum-phase broadcasts are stamped only at sample=1.0: in sampled
        # mode each stamp would route an n-wide broadcast down the traced
        # slow path per sampled vertex, and the causal tree is already
        # complete via the VAL/chunk propagation plus local phase spans.
        if state.ctx is not None and self.tracer.verbose:
            echo.trace_ctx = state.ctx
        self.network.broadcast(self.node_id, echo)

    def _on_echo(self, src: NodeId, msg: VertexEchoMsg) -> None:
        if self.mode == "two-round":
            if msg.signature is None or msg.signature.signer != src:
                return
            if self.verify:
                expected = vertex_echo_statement(msg.origin, msg.round, msg.vertex_digest)
                if msg.signature.message_digest != expected:
                    return
                if not self.pki.verify(msg.signature):
                    return
        # Inlined instance() hit path: ECHOes are the n²-per-round traffic,
        # and after the first one the instance always exists.
        state = self.instances.get((msg.origin, msg.round))
        if state is None:
            state = self.instance(msg.origin, msg.round)
        supporters = state.echoes.setdefault(msg.vertex_digest, set())
        if src in supporters:
            return
        supporters.add(src)
        if state.clan is not None and src in state.clan:
            state.clan_echo_counts[msg.vertex_digest] = (
                state.clan_echo_counts.get(msg.vertex_digest, 0) + 1
            )
        if self.mode == "two-round":
            state.echo_sigs.setdefault(msg.vertex_digest, {})[src] = msg.signature
            if state.cert_sent:
                return  # tally maintained, but the quorum already acted
        elif self._optimistic and not state.pessimistic:
            if not state.vertex_delivered and state.fallback_timer is None:
                self._arm_fallback(msg.origin, msg.round, state)
            if len(state.echoes) > 1 or state.conflicting:
                self._fall_back(msg.origin, msg.round, state, "conflict")
                return  # _fall_back replayed the quorum check per digest
        self._check_echo_quorum(msg.origin, msg.round, msg.vertex_digest, state)

    def _echo_quorum_met(
        self, origin: NodeId, state: VertexInstance, digest_: bytes
    ) -> bool:
        supporters = state.echoes.get(digest_)
        if not supporters or len(supporters) < self._quorum:
            return False
        clan = state.clan
        if clan is not None:
            clan_quorum = clan_response_quorum(len(clan))  # f_c + 1
            if state.clan_echo_counts.get(digest_, 0) < clan_quorum:
                return False
        return True

    def _check_echo_quorum(
        self, origin: NodeId, round_: Round, digest_: bytes, state: VertexInstance
    ) -> None:
        if self._optimistic and not state.pessimistic:
            # Fast path: all n parties echoed one digest with no conflict.
            # Every clan member echoed only after holding the block, and the
            # all-n set includes this node, so delivery needs no pull.
            if (
                not state.vertex_delivered
                and not state.conflicting
                and len(state.echoes) == 1
                and len(state.echoes.get(digest_, ())) == self.cfg.n
            ):
                self._complete(origin, round_, digest_, state)
            return
        if not self._echo_quorum_met(origin, state, digest_):
            return
        if self.mode == "two-round":
            if state.cert_sent:
                return
            state.cert_sent = True
            cert = build_certificate(list(state.echo_sigs[digest_].values()))
            cert_msg = VertexCertMsg(origin, round_, digest_, cert, self.cfg.n)
            if state.ctx is not None and self.tracer.verbose:
                cert_msg.trace_ctx = state.ctx
            self.network.broadcast(self.node_id, cert_msg)
            self._complete(origin, round_, digest_, state)
        else:
            if state.ready_digest is None:
                state.ready_digest = digest_
                ready = self._make_ready(origin, round_, digest_)
                if state.ctx is not None and self.tracer.verbose:
                    ready.trace_ctx = state.ctx
                self.network.broadcast(self.node_id, ready)
            # §5 optimization: clan members can start the block download at
            # ECHO-quorum time, before the READY quorum completes.
            self._prefetch_block(origin, round_, digest_, state)

    def _on_cert(self, src: NodeId, msg: VertexCertMsg) -> None:
        state = self.instances.get((msg.origin, msg.round))
        if state is None:
            state = self.instance(msg.origin, msg.round)
        if state.quorum_digest is not None:
            return
        if self.verify:
            clan = state.clan
            clan_quorum = clan_response_quorum(len(clan)) if clan is not None else 0
            if not verify_certificate(
                self.pki, msg.cert, self._quorum, clan, clan_quorum
            ):
                return
            expected = vertex_echo_statement(msg.origin, msg.round, msg.vertex_digest)
            if msg.cert.message_digest != expected:
                return
        if not state.cert_sent:
            state.cert_sent = True
            self.network.broadcast(self.node_id, msg)
        self._complete(msg.origin, msg.round, msg.vertex_digest, state)

    def _on_ready(self, src: NodeId, msg: VertexReadyMsg) -> None:
        if self.mode == "two-round":
            return
        state = self.instance(msg.origin, msg.round)
        if self._optimistic and not state.pessimistic and not state.vertex_delivered:
            # Someone already fell back; join its pessimistic quorum now
            # instead of waiting out the local fallback timer.
            self._fall_back(msg.origin, msg.round, state, "ready")
        if (
            self._optimistic
            and state.vertex_delivered
            and state.ready_digest is None
            and state.quorum_digest is not None
        ):
            # Totality: this node delivered on the fast path (no READY phase)
            # but a peer fell back and needs 2f+1 READYs.  Answer with the
            # delivered digest — every fast-path deliverer does, so the
            # laggard completes even if it was the only one to fall back.
            state.ready_digest = state.quorum_digest
            ready = self._make_ready(msg.origin, msg.round, state.quorum_digest)
            if state.ctx is not None and self.tracer.verbose:
                ready.trace_ctx = state.ctx
            self.network.broadcast(self.node_id, ready)
        supporters = state.readies.setdefault(msg.vertex_digest, set())
        if src in supporters:
            return
        supporters.add(src)
        count = len(supporters)
        if count >= self._amplify and state.ready_digest is None:
            state.ready_digest = msg.vertex_digest
            ready = self._make_ready(msg.origin, msg.round, msg.vertex_digest)
            if state.ctx is not None and self.tracer.verbose:
                ready.trace_ctx = state.ctx
            self.network.broadcast(self.node_id, ready)
        if count >= self._quorum:
            self._complete(msg.origin, msg.round, msg.vertex_digest, state)

    # -- completion -----------------------------------------------------------------

    def _complete(
        self, origin: NodeId, round_: Round, digest_: bytes, state: VertexInstance
    ) -> None:
        """The RBC quorum certified ``digest_``: deliver vertex, then block."""
        if state.quorum_digest is None:
            state.quorum_digest = digest_
        if state.vertex is None or state.vertex.vertex_digest() != digest_:
            # VAL still in flight (or equivocation shadow): pull the vertex
            # from any echoing party, off the critical path.
            holders = [p for p in state.echoes.get(digest_, ()) if p != self.node_id]
            if self.mode == "two-round" and not holders:
                holders = [origin]
            if holders:
                self._vertex_retriever.fetch(origin, round_, digest_, holders)
            return
        self._maybe_finish(origin, round_, state)

    def _maybe_finish(self, origin: NodeId, round_: Round, state: VertexInstance) -> None:
        if state.quorum_digest is None or state.vertex is None:
            return
        if state.vertex.vertex_digest() != state.quorum_digest:
            return
        if not state.vertex_delivered:
            state.vertex_delivered = True
            if self._optimistic:
                self._cancel_fallback(state)
                if state.pessimistic:
                    self.fallback_deliveries += 1
                else:
                    self.fast_deliveries += 1
            if self.tracer.enabled:
                now = self.sim.now
                tr = self.tracer
                start = state.echo_at
                if start is None:
                    start = state.val_at if state.val_at is not None else now
                e2e_start = state.val_at if state.val_at is not None else now
                if state.ctx is not None:
                    tr.ctx_span("rbc.echo_to_deliver", start=start, ctx=state.ctx,
                                end=now, node=self.node_id, origin=origin,
                                round=round_)
                    delivered = tr.ctx_span(
                        "rbc.e2e", start=e2e_start, ctx=state.ctx, end=now,
                        node=self.node_id, origin=origin, round=round_,
                    )
                    # Downstream stages on this node (DAG attach, ordering)
                    # parent under the local delivery span, giving the trace
                    # a per-node causal chain rather than a flat fan-out.
                    tr.bind(("vdeliv", round_, origin, self.node_id), delivered)
                elif tr.verbose:
                    tr.span("rbc.echo_to_deliver", start=start, end=now,
                            node=self.node_id, origin=origin, round=round_)
                    tr.span("rbc.e2e", start=e2e_start,
                            end=now, node=self.node_id, origin=origin, round=round_)
            self.on_vertex(state.vertex)
        if self._prefix:
            # Prefix mode: blocks reach the node through the certified-prefix
            # commit path (node.on_commit_block), never through on_block.
            return
        if state.vertex.block_digest is None or not self._serves_block(
            origin, round_
        ):
            return
        if state.block_delivered:
            return
        if state.block is not None:
            state.block_delivered = True
            if self.tracer.enabled:
                now = self.sim.now
                start = state.val_at if state.val_at is not None else now
                if state.ctx is not None:
                    self.tracer.ctx_span(
                        "rbc.block_e2e", start=start, ctx=state.ctx,
                        end=now, node=self.node_id, origin=origin, round=round_,
                    )
                elif self.tracer.verbose:
                    self.tracer.span(
                        "rbc.block_e2e", start=start,
                        end=now, node=self.node_id, origin=origin, round=round_,
                    )
            self.on_block(state.block)
        else:
            self._prefetch_block(origin, round_, state.quorum_digest, state)

    def _prefetch_block(
        self, origin: NodeId, round_: Round, digest_: bytes, state: VertexInstance
    ) -> None:
        """Pull the missing block from echoing clan members."""
        if self._prefix:
            return  # chunk pulls replace the whole-block plane
        if state.block is not None or state.block_delivered:
            return
        if state.vertex is None or state.vertex.block_digest is None:
            return
        if not self._serves_block(origin, round_):
            return
        cfg = self.schedule.cfg_at(round_)
        clan = cfg.clan(cfg.block_clan_of(origin))
        holders = [
            p
            for p in state.echoes.get(digest_, ())
            if p in clan and p != self.node_id
        ]
        if holders:
            self._block_retriever.fetch(
                origin, round_, state.vertex.block_digest, holders
            )

    def _on_pulled_block(self, origin: NodeId, round_: Round, block: Block) -> None:
        state = self.instance(origin, round_)
        if state.block is None:
            state.block = block
        self._maybe_echo(origin, round_, state)
        self._maybe_finish(origin, round_, state)

    def _on_pulled_vertex(self, origin: NodeId, round_: Round, vertex: Vertex) -> None:
        state = self.instance(origin, round_)
        vdigest = vertex.vertex_digest()
        if state.vertex is None:
            state.vertex = vertex
            state.first_digest = vdigest
            self.on_first_val(vertex)
        elif (
            state.quorum_digest == vdigest
            and state.vertex.vertex_digest() != vdigest
        ):
            # Equivocating proposer: the quorum certified a different vertex
            # than the VAL we saw first; the certified one is authoritative.
            state.conflicting.add(state.vertex.vertex_digest())
            if self.on_equivocation is not None:
                self.on_equivocation(origin, round_, len(state.conflicting))
            state.vertex = vertex
        self._maybe_finish(origin, round_, state)

    # -- optimistic fallback ----------------------------------------------------------

    def _arm_fallback(self, origin: NodeId, round_: Round, state: VertexInstance) -> None:
        if state.fallback_timer is not None:
            return
        state.fallback_timer = self.sim.schedule(
            self.fallback_timeout, self._on_fallback_timeout, origin, round_
        )

    def _cancel_fallback(self, state: VertexInstance) -> None:
        handle = state.fallback_timer
        if handle is not None:
            handle.cancel()
            state.fallback_timer = None

    def _on_fallback_timeout(self, origin: NodeId, round_: Round) -> None:
        state = self.instances.get((origin, round_))
        if state is None:
            return
        state.fallback_timer = None
        if state.vertex_delivered or state.pessimistic:
            return
        self._fall_back(origin, round_, state, "timeout")

    def _fall_back(
        self, origin: NodeId, round_: Round, state: VertexInstance, reason: str
    ) -> None:
        """Abandon the fast path for one instance; finish via READY quorum."""
        if state.pessimistic or state.vertex_delivered:
            return
        state.pessimistic = True
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1
        self._cancel_fallback(state)
        if self.tracer.enabled:
            self.tracer.counter(
                "rbc.fallback", node=self.node_id, origin=origin,
                round=round_, reason=reason, time=self.sim.now,
            )
        # Replay the quorum check per digest: 2f+1 may long be met while the
        # fast path was holding out for all n.
        for digest_ in sorted(state.echoes):
            self._check_echo_quorum(origin, round_, digest_, state)

    # -- prefix chunks ----------------------------------------------------------------

    def _try_accept_manifest(
        self, origin: NodeId, round_: Round, state: VertexInstance,
        manifest: ChunkManifest,
    ) -> bool:
        """Accept a manifest iff it matches the certified vertex's chunk root."""
        accepted = state.vertex
        if (
            accepted is None
            or not accepted.block_chunks
            or manifest.num_chunks != accepted.block_chunks
            or manifest.block_digest != accepted.block_digest
            or manifest.manifest_digest() != accepted.chunk_root
        ):
            return False
        state.manifest = manifest
        self._drain_chunk_buffer(origin, round_, state)
        return True

    def _on_chunk(self, src: NodeId, msg: BlockChunkMsg) -> None:
        if not self._prefix or src != msg.origin:
            return
        chunk = msg.chunk
        if chunk.proposer != msg.origin or chunk.round != msg.round:
            return
        if self.tracer.enabled:
            # Chunks may outrun the VAL; adopt the context either way.
            state = self.instance(msg.origin, msg.round)
            if state.ctx is None:
                state.ctx = getattr(msg, "trace_ctx", None)
        self._accept_chunk(msg.origin, msg.round, chunk)

    def _accept_chunk(self, origin: NodeId, round_: Round, chunk: BlockChunk) -> None:
        state = self.instance(origin, round_)
        if state.manifest is None:
            # Can't verify yet: buffer first-seen chunks until the manifest
            # (bound to the certified vertex) arrives.
            buf = state.chunk_buffer
            if buf is None:
                buf = state.chunk_buffer = {}
            buf.setdefault(chunk.index, chunk)
            return
        if not state.manifest.verify_chunk(chunk):
            return
        chunks = state.chunks
        if chunks is None:
            chunks = state.chunks = {}
        if chunk.index in chunks:
            return
        chunks[chunk.index] = chunk
        self._notify_chunks(origin, round_, state)

    def _drain_chunk_buffer(
        self, origin: NodeId, round_: Round, state: VertexInstance
    ) -> None:
        """Manifest just arrived: verify buffered chunks, then notify."""
        buf = state.chunk_buffer
        state.chunk_buffer = None
        if buf:
            chunks = state.chunks
            if chunks is None:
                chunks = state.chunks = {}
            for index in sorted(buf):
                chunk = buf[index]
                if index not in chunks and state.manifest.verify_chunk(chunk):
                    chunks[index] = chunk
        self._notify_chunks(origin, round_, state)

    def _notify_chunks(self, origin: NodeId, round_: Round, state: VertexInstance) -> None:
        key = (origin, round_)
        entry = self._chunk_fetch.get(key)
        if entry is not None and self._fetch_satisfied(state, entry["k"]):
            timer = entry["timer"]
            if timer is not None:
                timer.cancel()
            del self._chunk_fetch[key]
        if self.on_chunk is not None:
            self.on_chunk(origin, round_)

    def held_prefix(self, origin: NodeId, round_: Round) -> int:
        """Contiguous verified chunks held from index 0 (0 without manifest)."""
        state = self.instances.get((origin, round_))
        if state is None or state.manifest is None:
            return 0
        chunks = state.chunks
        if not chunks:
            return 0
        held = 0
        total = state.manifest.num_chunks
        while held < total and held in chunks:
            held += 1
        return held

    def prefix_parts(
        self, origin: NodeId, round_: Round
    ) -> tuple[ChunkManifest | None, dict[int, BlockChunk]]:
        """The manifest and verified chunks this node holds for an instance."""
        state = self.instances.get((origin, round_))
        if state is None:
            return None, {}
        return state.manifest, dict(state.chunks) if state.chunks else {}

    def _fetch_satisfied(self, state: VertexInstance, k: int) -> bool:
        if state.manifest is None:
            return False
        chunks = state.chunks
        if k and not chunks:
            return False
        return all(i in chunks for i in range(k)) if k else True

    def fetch_chunks(
        self, origin: NodeId, round_: Round, k: int, holders: list[NodeId]
    ) -> None:
        """Pull chunks [0, k) from ``holders`` (attesters of at least k)."""
        key = (origin, round_)
        state = self.instance(origin, round_)
        if self._fetch_satisfied(state, k):
            return
        entry = self._chunk_fetch.get(key)
        if entry is None:
            self._chunk_fetch[key] = {
                "k": k, "holders": list(holders), "next": 0,
                "timeout": self.retry_timeout, "timer": None,
            }
            self._request_chunks(key)
            return
        entry["k"] = max(entry["k"], k)
        for holder in holders:
            if holder not in entry["holders"]:
                entry["holders"].append(holder)

    def _request_chunks(self, key: Key) -> None:
        entry = self._chunk_fetch.get(key)
        if entry is None:
            return
        origin, round_ = key
        state = self.instance(origin, round_)
        if self._fetch_satisfied(state, entry["k"]) or not entry["holders"]:
            del self._chunk_fetch[key]
            return
        holders = entry["holders"]
        target = holders[entry["next"] % len(holders)]
        entry["next"] += 1
        chunks = state.chunks
        requested = False
        for index in range(entry["k"]):
            if chunks is None or index not in chunks:
                requested = True
                req = ChunkRequestMsg(origin, round_, index)
                if state.ctx is not None:
                    req.trace_ctx = state.ctx
                self.network.send(self.node_id, target, req)
        if not requested:
            # All k chunks held but the manifest is missing (bare-vertex
            # pull, or k=0): probe index 0 — responses carry the manifest.
            req = ChunkRequestMsg(origin, round_, 0)
            if state.ctx is not None:
                req.trace_ctx = state.ctx
            self.network.send(self.node_id, target, req)
        entry["timer"] = self.sim.schedule(entry["timeout"], self._request_chunks, key)
        entry["timeout"] = min(entry["timeout"] * 1.5, 30.0)

    def _on_chunk_request(self, src: NodeId, msg: ChunkRequestMsg) -> None:
        if not self._prefix:
            return
        mark = (msg.origin, msg.round, msg.index, src)
        if mark in self._chunk_served:
            return  # serve-once per (instance, index, requester)
        state = self.instances.get((msg.origin, msg.round))
        if state is None or state.manifest is None:
            return
        chunk = state.chunks.get(msg.index) if state.chunks else None
        if chunk is None and msg.index != 0:
            return  # manifest-only answers only for the index-0 probe
        self._chunk_served.add(mark)
        resp = ChunkResponseMsg(msg.origin, msg.round, chunk, state.manifest)
        if state.ctx is not None:
            resp.trace_ctx = state.ctx
        self.network.send(self.node_id, src, resp)

    def _on_chunk_response(self, src: NodeId, msg: ChunkResponseMsg) -> None:
        if not self._prefix:
            return
        state = self.instances.get((msg.origin, msg.round))
        if state is None:
            return
        if msg.manifest is not None and state.manifest is None:
            if self._try_accept_manifest(msg.origin, msg.round, state, msg.manifest):
                # A late manifest can unblock this clan member's ECHO.
                self._maybe_echo(msg.origin, msg.round, state)
        chunk = msg.chunk
        if chunk is None:
            return
        if chunk.proposer != msg.origin or chunk.round != msg.round:
            return
        self._accept_chunk(msg.origin, msg.round, chunk)

    # -- housekeeping ---------------------------------------------------------------

    def gc_below(self, round_: Round) -> None:
        """Garbage-collect retrieval state for instances with round < ``round_``.

        Called by the node as its commit frontier advances; pull-client
        entries (with their retry timers) and pull-server rate-limit records
        for long-committed rounds would otherwise accumulate forever."""
        self._block_retriever.gc_below(round_)
        self._vertex_retriever.gc_below(round_)
        self._block_responder.gc_below(round_)
        self._vertex_responder.gc_below(round_)
        for key in [k for k in self._chunk_fetch if k[1] < round_]:
            timer = self._chunk_fetch.pop(key)["timer"]
            if timer is not None:
                timer.cancel()
        self._chunk_served = {m for m in self._chunk_served if m[1] >= round_}

    def suspend_timers(self) -> None:
        """Crash: stop all local retry timers (no requests from the grave)."""
        self._block_retriever.suspend()
        self._vertex_retriever.suspend()
        if self._optimistic:
            for state in self.instances.values():
                self._cancel_fallback(state)
        for entry in self._chunk_fetch.values():
            if entry["timer"] is not None:
                entry["timer"].cancel()
                entry["timer"] = None

    def resume_timers(self) -> None:
        """Recovery: restart suspended pulls."""
        self._block_retriever.resume()
        self._vertex_retriever.resume()
        if self._optimistic:
            # A recovering node has no idea how long it was down; give up on
            # the fast path for every instance that was in flight.
            for key in sorted(self.instances):
                state = self.instances[key]
                if state.vertex_delivered or state.pessimistic:
                    continue
                if state.vertex is not None or state.echoes:
                    self._fall_back(key[0], key[1], state, "timeout")
        for key in sorted(self._chunk_fetch):
            if key in self._chunk_fetch:
                self._request_chunks(key)

    def _lookup_block(self, origin: NodeId, round_: Round) -> Block | None:
        state = self.instances.get((origin, round_))
        return state.block if state else None

    def _lookup_vertex(self, origin: NodeId, round_: Round) -> Vertex | None:
        state = self.instances.get((origin, round_))
        return state.vertex if state else None
