"""Merged vertex+block reliable broadcast (§5).

One RBC instance per (proposer, round) carries the vertex to the whole tribe
and the block only to the proposer's clan:

* VAL to a clan member of the proposer's clan = vertex + block; VAL to
  everyone else = vertex alone (it embeds the block digest).
* A clan member ECHOes only after holding *both* vertex and block; everyone
  else after holding the vertex.
* Completion needs 2f+1 ECHOes and — when the vertex carries a block —
  at least f_c+1 of them from the proposer's clan, so an honest clan member
  provably holds the block.
* Vertex delivery never waits for the block: consensus progresses and commits
  on vertices; missing blocks are pulled off the critical path and delivered
  to clan members when they arrive.

Two completion modes mirror the two tribe-assisted RBC constructions:
``"two-round"`` (signed ECHOes aggregated into a multicast certificate,
Fig. 3) and ``"bracha"`` (unsigned ECHO/READY phases, Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..committees.config import ClanConfig
from ..crypto.certificates import build_certificate, verify_certificate
from ..crypto.evidence import EvidencePool
from ..crypto.signatures import Pki
from ..dag.block import Block
from ..dag.vertex import Vertex
from ..errors import ConsensusError
from ..net.network import Network
from ..rbc.messages import PayloadRequest, PayloadResponse
from ..rbc.retrieval import Responder, Retriever
from ..sim.scheduler import Simulator
from ..types import NodeId, Round
from .messages import (
    VertexCertMsg,
    VertexEchoMsg,
    VertexReadyMsg,
    VertexValMsg,
    vertex_echo_statement,
    vertex_val_statement,
)

Key = tuple[NodeId, Round]


@dataclass
class VertexInstance:
    """Per-(proposer, round) dissemination state."""

    vertex: Vertex | None = None
    block: Block | None = None
    first_digest: bytes | None = None
    echoed: bool = False
    ready_digest: bytes | None = None
    cert_sent: bool = False
    vertex_delivered: bool = False
    block_delivered: bool = False
    quorum_digest: bytes | None = None
    #: The clan whose ECHOes gate this instance (None: no clan condition).
    clan: frozenset[NodeId] | None = None
    echoes: dict[bytes, set[NodeId]] = field(default_factory=dict)
    #: Incremental clan-supporter tallies per digest (hot-path counter).
    clan_echo_counts: dict[bytes, int] = field(default_factory=dict)
    echo_sigs: dict[bytes, dict[NodeId, object]] = field(default_factory=dict)
    readies: dict[bytes, set[NodeId]] = field(default_factory=dict)
    conflicting: set[bytes] = field(default_factory=set)
    # Phase timestamps, populated only when tracing is enabled.
    val_at: float | None = None
    echo_at: float | None = None


class VertexRbc:
    """Per-node merged dissemination module.

    Callbacks:
        on_first_val(vertex): the first time this node learns the vertex
            content (VAL arrival or pull) — drives Sailfish's 1-RBC+1δ votes.
        on_vertex(vertex): RBC delivery of the vertex (non-equivocation +
            eventual delivery certified).
        on_block(block): the block is available locally *and* its vertex has
            been delivered; fired only on members of the proposer's clan.
    """

    def __init__(
        self,
        node_id: NodeId,
        clan_cfg: ClanConfig,
        network: Network,
        sim: Simulator,
        pki: Pki,
        on_first_val: Callable[[Vertex], None],
        on_vertex: Callable[[Vertex], None],
        on_block: Callable[[Block], None],
        mode: str = "two-round",
        verify_signatures: bool = True,
        retry_timeout: float = 0.25,
        schedule=None,
        tracer=None,
    ) -> None:
        if mode not in ("two-round", "bracha"):
            raise ConsensusError(f"unknown RBC mode {mode!r}")
        self.node_id = node_id
        self.cfg = clan_cfg
        #: Round -> ClanConfig (epoch rotation); static wrapper by default.
        if schedule is None:
            from ..committees.rotation import StaticSchedule

            schedule = StaticSchedule(clan_cfg)
        self.schedule = schedule
        self.network = network
        self.sim = sim
        self.tracer = tracer if tracer is not None else network.tracer
        self.pki = pki
        self._key = pki.key(node_id)
        self.on_first_val = on_first_val
        self.on_vertex = on_vertex
        self.on_block = on_block
        self.mode = mode
        self.verify = verify_signatures
        self.instances: dict[Key, VertexInstance] = {}
        self._quorum = clan_cfg.quorum
        self._amplify = clan_cfg.f + 1
        self._block_retriever = Retriever(
            node_id, network, sim, self._on_pulled_block, retry_timeout, channel="block"
        )
        self._block_responder = Responder(
            node_id, network, self._lookup_block, channel="block"
        )
        self._vertex_retriever = Retriever(
            node_id, network, sim, self._on_pulled_vertex, retry_timeout, channel="vertex"
        )
        self._vertex_responder = Responder(
            node_id, network, self._lookup_vertex, channel="vertex"
        )
        # ECHO/READY are the n²-per-round fan-out messages and their handlers
        # retain only field values (signer sets, signatures, digests), never
        # the message object — so both classes satisfy the arena's pooling
        # contract.  CERT does not: _on_cert rebroadcasts the same object.
        self._arena = getattr(network, "arena", None)
        if self._arena is not None:
            self._arena.register(VertexEchoMsg)
            self._arena.register(VertexReadyMsg)
        #: Accountability: transferable equivocation proofs from signed VALs.
        self.evidence = EvidencePool()
        #: Forensics hook fired when a conflicting digest for an (origin,
        #: round) instance is first observed: (origin, round, n_conflicting).
        self.on_equivocation = None

    # -- helpers ---------------------------------------------------------------

    def instance(self, origin: NodeId, round_: Round) -> VertexInstance:
        key = (origin, round_)
        state = self.instances.get(key)
        if state is None:
            state = self.instances[key] = VertexInstance()
            # The clan condition is conservative: it applies whenever the
            # origin *may* attach a block (checked without the vertex, which
            # may not have arrived yet).  f_c+1 honest clan ECHOes always
            # arrive for block-less vertices too, so this never blocks.
            cfg = self.schedule.cfg_at(round_)
            if cfg.is_block_proposer(origin):
                state.clan = cfg.clan(cfg.block_clan_of(origin))
        return state

    def _make_echo(
        self, origin: NodeId, round_: Round, digest_: bytes, signature
    ) -> VertexEchoMsg:
        arena = self._arena
        if arena is not None:
            msg = arena.acquire(VertexEchoMsg)
            if msg is not None:
                msg.origin = origin
                msg.round = round_
                msg.vertex_digest = digest_
                msg.signature = signature
                return msg
        return VertexEchoMsg(origin, round_, digest_, signature)

    def _make_ready(self, origin: NodeId, round_: Round, digest_: bytes) -> VertexReadyMsg:
        arena = self._arena
        if arena is not None:
            msg = arena.acquire(VertexReadyMsg)
            if msg is not None:
                msg.origin = origin
                msg.round = round_
                msg.vertex_digest = digest_
                return msg
        return VertexReadyMsg(origin, round_, digest_)

    def _serves_block(self, origin: NodeId, round_: Round) -> bool:
        """Is this node in the proposer's clan (receives/executes its blocks)?"""
        cfg = self.schedule.cfg_at(round_)
        idx = cfg.clan_index_of(origin)
        return idx is not None and idx == cfg.clan_index_of(self.node_id)

    # -- sending -----------------------------------------------------------------

    def broadcast(self, vertex: Vertex, block: Block | None) -> None:
        """Disseminate this node's vertex (and block, if it proposes blocks)."""
        if vertex.source != self.node_id:
            raise ConsensusError("can only broadcast own vertices")
        if self.tracer.enabled:
            self.tracer.counter(
                "consensus.propose", node=self.node_id, round=vertex.round,
                has_block=block is not None, time=self.sim.now,
            )
        if (block is None) != (vertex.block_digest is None):
            raise ConsensusError("vertex.block_digest must match block presence")
        if block is not None and block.payload_digest() != vertex.block_digest:
            raise ConsensusError("vertex.block_digest does not match block")
        vdigest = vertex.vertex_digest()
        signature = None
        if self.mode == "two-round":
            signature = self._key.sign(
                vertex_val_statement(self.node_id, vertex.round, vdigest)
            )
        if block is None:
            self.network.broadcast(self.node_id, VertexValMsg(vertex, None, signature))
            return
        cfg = self.schedule.cfg_at(vertex.round)
        clan = cfg.clan(cfg.block_clan_of(self.node_id))
        with_block = VertexValMsg(vertex, block, signature)
        without_block = VertexValMsg(vertex, None, signature)
        in_clan = [p for p in range(self.cfg.n) if p in clan]
        outside = [p for p in range(self.cfg.n) if p not in clan]
        self.network.multicast(self.node_id, in_clan, with_block)
        if outside:
            self.network.multicast(self.node_id, outside, without_block)

    # -- receiving ----------------------------------------------------------------

    def on_message(self, src: NodeId, msg: object) -> bool:
        """Dispatch a network message; returns False if it isn't ours.

        ECHO and CERT dominate traffic (n² per round), so they are tested
        first.
        """
        if isinstance(msg, VertexEchoMsg):
            self._on_echo(src, msg)
        elif isinstance(msg, VertexCertMsg):
            self._on_cert(src, msg)
        elif isinstance(msg, VertexValMsg):
            self._on_val(src, msg)
        elif isinstance(msg, VertexReadyMsg):
            self._on_ready(src, msg)
        elif isinstance(msg, PayloadRequest):
            self._on_payload_request(src, msg)
        elif isinstance(msg, PayloadResponse):
            self._on_payload_response(src, msg)
        else:
            return False
        return True

    def _on_payload_request(self, src: NodeId, msg: PayloadRequest) -> None:
        self._block_responder.on_request(src, msg)
        self._vertex_responder.on_request(src, msg)

    def _on_payload_response(self, src: NodeId, msg: PayloadResponse) -> None:
        self._block_retriever.on_response(src, msg)
        self._vertex_retriever.on_response(src, msg)

    def dispatch_table(self) -> dict:
        """Exact-class handler table for :meth:`Network.set_dispatch`.

        Covers the same vocabulary as :meth:`on_message`; the owning node
        extends it with its own message types before installing it.
        """
        return {
            VertexEchoMsg: self._on_echo,
            VertexCertMsg: self._on_cert,
            VertexValMsg: self._on_val,
            VertexReadyMsg: self._on_ready,
            PayloadRequest: self._on_payload_request,
            PayloadResponse: self._on_payload_response,
        }

    def _on_val(self, src: NodeId, msg: VertexValMsg) -> None:
        vertex = msg.vertex
        origin = vertex.source
        if src != origin:
            return  # authenticated channels
        if vertex.round < 1:
            return
        if vertex.block_digest is not None and not self.schedule.cfg_at(
            vertex.round
        ).is_block_proposer(origin):
            return  # §5: only clan members may propose blocks
        vdigest = vertex.vertex_digest()
        if self.mode == "two-round":
            if msg.signature is None:
                return
            if self.verify:
                if msg.signature.signer != origin or not self.pki.verify(msg.signature):
                    return
                expected = vertex_val_statement(origin, vertex.round, vdigest)
                if msg.signature.message_digest != expected:
                    return
        state = self.instance(origin, vertex.round)
        if self.tracer.enabled and state.val_at is None:
            state.val_at = self.sim.now
        if self.mode == "two-round" and msg.signature is not None:
            # Signed VALs are accountability material: two conflicting ones
            # from the same (origin, round) yield a transferable fraud proof.
            self.evidence.record(origin, vertex.round, vdigest, msg.signature)
        if state.first_digest is None:
            state.first_digest = vdigest
            state.vertex = vertex
            self.on_first_val(vertex)
        elif state.first_digest != vdigest:
            state.conflicting.add(vdigest)
            if self.on_equivocation is not None:
                self.on_equivocation(origin, vertex.round, len(state.conflicting))
            return
        if msg.block is not None and state.block is None:
            block = msg.block
            if (
                block.proposer == origin
                and block.round == vertex.round
                and vertex.block_digest is not None
                and block.payload_digest() == vertex.block_digest
            ):
                state.block = block
        self._maybe_echo(origin, vertex.round, state)
        self._maybe_finish(origin, vertex.round, state)

    def _maybe_echo(self, origin: NodeId, round_: Round, state: VertexInstance) -> None:
        if state.echoed or state.vertex is None:
            return
        needs_block = (
            state.vertex.block_digest is not None
            and self._serves_block(origin, round_)
        )
        if needs_block and state.block is None:
            return
        state.echoed = True
        if self.tracer.enabled:
            now = self.sim.now
            state.echo_at = now
            self.tracer.span(
                "rbc.val_to_echo",
                start=state.val_at if state.val_at is not None else now,
                end=now, node=self.node_id, origin=origin, round=round_,
            )
        vdigest = state.first_digest
        signature = None
        if self.mode == "two-round":
            signature = self._key.sign(vertex_echo_statement(origin, round_, vdigest))
        self.network.broadcast(
            self.node_id, self._make_echo(origin, round_, vdigest, signature)
        )

    def _on_echo(self, src: NodeId, msg: VertexEchoMsg) -> None:
        if self.mode == "two-round":
            if msg.signature is None or msg.signature.signer != src:
                return
            if self.verify:
                expected = vertex_echo_statement(msg.origin, msg.round, msg.vertex_digest)
                if msg.signature.message_digest != expected:
                    return
                if not self.pki.verify(msg.signature):
                    return
        # Inlined instance() hit path: ECHOes are the n²-per-round traffic,
        # and after the first one the instance always exists.
        state = self.instances.get((msg.origin, msg.round))
        if state is None:
            state = self.instance(msg.origin, msg.round)
        supporters = state.echoes.setdefault(msg.vertex_digest, set())
        if src in supporters:
            return
        supporters.add(src)
        if state.clan is not None and src in state.clan:
            state.clan_echo_counts[msg.vertex_digest] = (
                state.clan_echo_counts.get(msg.vertex_digest, 0) + 1
            )
        if self.mode == "two-round":
            state.echo_sigs.setdefault(msg.vertex_digest, {})[src] = msg.signature
            if state.cert_sent:
                return  # tally maintained, but the quorum already acted
        self._check_echo_quorum(msg.origin, msg.round, msg.vertex_digest, state)

    def _echo_quorum_met(
        self, origin: NodeId, state: VertexInstance, digest_: bytes
    ) -> bool:
        supporters = state.echoes.get(digest_)
        if not supporters or len(supporters) < self._quorum:
            return False
        clan = state.clan
        if clan is not None:
            clan_quorum = (len(clan) + 1) // 2  # f_c + 1
            if state.clan_echo_counts.get(digest_, 0) < clan_quorum:
                return False
        return True

    def _check_echo_quorum(
        self, origin: NodeId, round_: Round, digest_: bytes, state: VertexInstance
    ) -> None:
        if not self._echo_quorum_met(origin, state, digest_):
            return
        if self.mode == "two-round":
            if state.cert_sent:
                return
            state.cert_sent = True
            cert = build_certificate(list(state.echo_sigs[digest_].values()))
            self.network.broadcast(
                self.node_id, VertexCertMsg(origin, round_, digest_, cert, self.cfg.n)
            )
            self._complete(origin, round_, digest_, state)
        else:
            if state.ready_digest is None:
                state.ready_digest = digest_
                self.network.broadcast(
                    self.node_id, self._make_ready(origin, round_, digest_)
                )
            # §5 optimization: clan members can start the block download at
            # ECHO-quorum time, before the READY quorum completes.
            self._prefetch_block(origin, round_, digest_, state)

    def _on_cert(self, src: NodeId, msg: VertexCertMsg) -> None:
        state = self.instances.get((msg.origin, msg.round))
        if state is None:
            state = self.instance(msg.origin, msg.round)
        if state.quorum_digest is not None:
            return
        if self.verify:
            clan = state.clan
            clan_quorum = (len(clan) + 1) // 2 if clan is not None else 0
            if not verify_certificate(
                self.pki, msg.cert, self._quorum, clan, clan_quorum
            ):
                return
            expected = vertex_echo_statement(msg.origin, msg.round, msg.vertex_digest)
            if msg.cert.message_digest != expected:
                return
        if not state.cert_sent:
            state.cert_sent = True
            self.network.broadcast(self.node_id, msg)
        self._complete(msg.origin, msg.round, msg.vertex_digest, state)

    def _on_ready(self, src: NodeId, msg: VertexReadyMsg) -> None:
        if self.mode != "bracha":
            return
        state = self.instance(msg.origin, msg.round)
        supporters = state.readies.setdefault(msg.vertex_digest, set())
        if src in supporters:
            return
        supporters.add(src)
        count = len(supporters)
        if count >= self._amplify and state.ready_digest is None:
            state.ready_digest = msg.vertex_digest
            self.network.broadcast(
                self.node_id,
                self._make_ready(msg.origin, msg.round, msg.vertex_digest),
            )
        if count >= self._quorum:
            self._complete(msg.origin, msg.round, msg.vertex_digest, state)

    # -- completion -----------------------------------------------------------------

    def _complete(
        self, origin: NodeId, round_: Round, digest_: bytes, state: VertexInstance
    ) -> None:
        """The RBC quorum certified ``digest_``: deliver vertex, then block."""
        if state.quorum_digest is None:
            state.quorum_digest = digest_
        if state.vertex is None or state.vertex.vertex_digest() != digest_:
            # VAL still in flight (or equivocation shadow): pull the vertex
            # from any echoing party, off the critical path.
            holders = [p for p in state.echoes.get(digest_, ()) if p != self.node_id]
            if self.mode == "two-round" and not holders:
                holders = [origin]
            if holders:
                self._vertex_retriever.fetch(origin, round_, digest_, holders)
            return
        self._maybe_finish(origin, round_, state)

    def _maybe_finish(self, origin: NodeId, round_: Round, state: VertexInstance) -> None:
        if state.quorum_digest is None or state.vertex is None:
            return
        if state.vertex.vertex_digest() != state.quorum_digest:
            return
        if not state.vertex_delivered:
            state.vertex_delivered = True
            if self.tracer.enabled:
                now = self.sim.now
                tr = self.tracer
                start = state.echo_at
                if start is None:
                    start = state.val_at if state.val_at is not None else now
                tr.span("rbc.echo_to_deliver", start=start, end=now,
                        node=self.node_id, origin=origin, round=round_)
                tr.span("rbc.e2e",
                        start=state.val_at if state.val_at is not None else now,
                        end=now, node=self.node_id, origin=origin, round=round_)
            self.on_vertex(state.vertex)
        if state.vertex.block_digest is None or not self._serves_block(
            origin, round_
        ):
            return
        if state.block_delivered:
            return
        if state.block is not None:
            state.block_delivered = True
            if self.tracer.enabled:
                now = self.sim.now
                self.tracer.span(
                    "rbc.block_e2e",
                    start=state.val_at if state.val_at is not None else now,
                    end=now, node=self.node_id, origin=origin, round=round_,
                )
            self.on_block(state.block)
        else:
            self._prefetch_block(origin, round_, state.quorum_digest, state)

    def _prefetch_block(
        self, origin: NodeId, round_: Round, digest_: bytes, state: VertexInstance
    ) -> None:
        """Pull the missing block from echoing clan members."""
        if state.block is not None or state.block_delivered:
            return
        if state.vertex is None or state.vertex.block_digest is None:
            return
        if not self._serves_block(origin, round_):
            return
        cfg = self.schedule.cfg_at(round_)
        clan = cfg.clan(cfg.block_clan_of(origin))
        holders = [
            p
            for p in state.echoes.get(digest_, ())
            if p in clan and p != self.node_id
        ]
        if holders:
            self._block_retriever.fetch(
                origin, round_, state.vertex.block_digest, holders
            )

    def _on_pulled_block(self, origin: NodeId, round_: Round, block: Block) -> None:
        state = self.instance(origin, round_)
        if state.block is None:
            state.block = block
        self._maybe_echo(origin, round_, state)
        self._maybe_finish(origin, round_, state)

    def _on_pulled_vertex(self, origin: NodeId, round_: Round, vertex: Vertex) -> None:
        state = self.instance(origin, round_)
        vdigest = vertex.vertex_digest()
        if state.vertex is None:
            state.vertex = vertex
            state.first_digest = vdigest
            self.on_first_val(vertex)
        elif (
            state.quorum_digest == vdigest
            and state.vertex.vertex_digest() != vdigest
        ):
            # Equivocating proposer: the quorum certified a different vertex
            # than the VAL we saw first; the certified one is authoritative.
            state.conflicting.add(state.vertex.vertex_digest())
            if self.on_equivocation is not None:
                self.on_equivocation(origin, round_, len(state.conflicting))
            state.vertex = vertex
        self._maybe_finish(origin, round_, state)

    # -- housekeeping ---------------------------------------------------------------

    def gc_below(self, round_: Round) -> None:
        """Garbage-collect retrieval state for instances with round < ``round_``.

        Called by the node as its commit frontier advances; pull-client
        entries (with their retry timers) and pull-server rate-limit records
        for long-committed rounds would otherwise accumulate forever."""
        self._block_retriever.gc_below(round_)
        self._vertex_retriever.gc_below(round_)
        self._block_responder.gc_below(round_)
        self._vertex_responder.gc_below(round_)

    def suspend_timers(self) -> None:
        """Crash: stop all local retry timers (no requests from the grave)."""
        self._block_retriever.suspend()
        self._vertex_retriever.suspend()

    def resume_timers(self) -> None:
        """Recovery: restart suspended pulls."""
        self._block_retriever.resume()
        self._vertex_retriever.resume()

    def _lookup_block(self, origin: NodeId, round_: Round) -> Block | None:
        state = self.instances.get((origin, round_))
        return state.block if state else None

    def _lookup_vertex(self, origin: NodeId, round_: Round) -> Vertex | None:
        state = self.instances.get((origin, round_))
        return state.vertex if state else None
