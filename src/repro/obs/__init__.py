"""Zero-dependency observability: structured tracing and metrics.

The layer has two halves:

* :class:`~repro.obs.tracer.Tracer` — an event bus collecting typed
  span/counter/gauge records into a bounded ring buffer, exportable as JSONL.
* :class:`~repro.obs.tracer.NullTracer` — the disabled implementation; every
  instrumented hot path pays exactly one ``tracer.enabled`` attribute check.

Every layer of the stack (simulator, network, RBC, consensus, SMR) accepts an
optional tracer; ``python -m repro trace <experiment>`` runs one experiment
with tracing on and :mod:`repro.bench.trace_report` summarizes the result.
"""

from .records import (
    ANOMALY_CLASSES,
    AnomalyRecord,
    CounterRecord,
    GaugeRecord,
    SpanRecord,
    TraceRecord,
    record_from_dict,
)
from .tracer import NULL_TRACER, NullTracer, TraceFile, Tracer, ensure_tracer

__all__ = [
    "ANOMALY_CLASSES",
    "AnomalyRecord",
    "CounterRecord",
    "GaugeRecord",
    "SpanRecord",
    "TraceRecord",
    "record_from_dict",
    "NULL_TRACER",
    "NullTracer",
    "TraceFile",
    "Tracer",
    "ensure_tracer",
]
