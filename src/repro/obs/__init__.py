"""Zero-dependency observability: structured tracing and metrics.

The layer has two halves:

* :class:`~repro.obs.tracer.Tracer` — an event bus collecting typed
  span/counter/gauge records into a bounded ring buffer, exportable as JSONL.
* :class:`~repro.obs.tracer.NullTracer` — the disabled implementation; every
  instrumented hot path pays exactly one ``tracer.enabled`` attribute check.

Every layer of the stack (simulator, network, RBC, consensus, SMR) accepts an
optional tracer; ``python -m repro trace <experiment>`` runs one experiment
with tracing on and :mod:`repro.bench.trace_report` summarizes the result.
"""

from .ctx import (
    TraceCtx,
    block_trace_key,
    derive_trace_id,
    sample_hit,
    txn_trace_key,
)
from .export import export_perfetto, perfetto_trace, prometheus_text
from .metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from .records import (
    ANOMALY_CLASSES,
    AnomalyRecord,
    CounterRecord,
    GaugeRecord,
    SpanRecord,
    TraceRecord,
    record_from_dict,
)
from .regression import diff_summaries, load_summary, save_summary, summarize_trace
from .spantree import span_trees, txn_completeness
from .tracer import NULL_TRACER, NullTracer, TraceFile, Tracer, ensure_tracer

__all__ = [
    "ANOMALY_CLASSES",
    "AnomalyRecord",
    "CounterRecord",
    "GaugeRecord",
    "SpanRecord",
    "TraceRecord",
    "record_from_dict",
    "NULL_TRACER",
    "NullTracer",
    "TraceFile",
    "Tracer",
    "ensure_tracer",
    "TraceCtx",
    "derive_trace_id",
    "sample_hit",
    "txn_trace_key",
    "block_trace_key",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "export_perfetto",
    "perfetto_trace",
    "prometheus_text",
    "summarize_trace",
    "diff_summaries",
    "load_summary",
    "save_summary",
    "span_trees",
    "txn_completeness",
]
