"""Span-tree reconstruction and root-to-commit completeness checks.

Causal context turns the flat record stream into trees; this module rebuilds
them offline and answers the acceptance question for a traced run: *what
fraction of committed transactions have a complete root-to-commit span tree*
(client submit → RBC delivery → DAG attach → ordering → execution)?

The join works without any run-specific state:

* ``smr.txn`` spans are per-transaction roots (their ``txn`` attr is the id);
* ``smr.block`` counters are block manifests mapping a block digest to the
  transaction ids it carries;
* block-trace spans (``rbc.e2e``, ``dag.attach``, ``consensus.order``,
  ``smr.execute``) share one trace id per block, and ``smr.execute`` carries
  the block digest, linking digest → trace id.
"""

from __future__ import annotations

from typing import Any, Iterable

#: Span names that must appear in a block's trace for the commit path to be
#: considered complete, in pipeline order.
COMMIT_STAGES = ("rbc.e2e", "dag.attach", "consensus.order", "smr.execute")


def _as_dicts(source: Any) -> Iterable[dict[str, Any]]:
    if hasattr(source, "to_dicts"):
        return source.to_dicts()
    if hasattr(source, "records") and callable(source.records):
        return [r.to_dict() for r in source.records()]
    return (r if isinstance(r, dict) else r.to_dict() for r in source)


def span_trees(source: Any) -> dict[int, list[dict[str, Any]]]:
    """Group context-carrying spans into trees, one per trace id.

    Returns ``{trace_id: [root_node, ...]}`` where each node is
    ``{"span": record_dict, "children": [node, ...]}``.  Spans whose parent
    id is not present in the same trace become roots (the registry makes no
    completeness promise — that is :func:`txn_completeness`'s job).
    """
    by_trace: dict[int, list[dict[str, Any]]] = {}
    for rec in _as_dicts(source):
        if rec.get("type") != "span":
            continue
        attrs = rec.get("attrs") or {}
        trace = attrs.get("trace")
        if trace is None:
            continue
        by_trace.setdefault(int(trace), []).append(rec)

    trees: dict[int, list[dict[str, Any]]] = {}
    for trace, spans in by_trace.items():
        nodes = {
            attrs["span"]: {"span": rec, "children": []}
            for rec in spans
            if (attrs := rec.get("attrs") or {}).get("span") is not None
        }
        roots = []
        for rec in spans:
            attrs = rec.get("attrs") or {}
            sid = attrs.get("span")
            node = nodes.get(sid) if sid is not None else {"span": rec, "children": []}
            parent = nodes.get(attrs.get("parent"))
            if parent is not None and parent["span"] is not rec:
                parent["children"].append(node)
            else:
                roots.append(node)
        trees[trace] = roots
    return trees


def txn_completeness(source: Any, max_examples: int = 10) -> dict[str, Any]:
    """Fraction of committed txns with a complete root-to-commit tree.

    A transaction counts as *committed* when it appears in the manifest of a
    block that was executed; it counts as *complete* when its own trace has
    an ``smr.txn`` root span **and** its block's trace contains every stage
    in :data:`COMMIT_STAGES`.
    """
    txn_roots: set[str] = set()
    manifests: dict[str, list[str]] = {}   # block digest -> txn ids
    executed: set[str] = set()             # executed block digests
    digest_trace: dict[str, int] = {}      # block digest -> trace id
    stages_by_trace: dict[int, set[str]] = {}

    for rec in _as_dicts(source):
        rtype = rec.get("type")
        name = rec.get("name")
        attrs = rec.get("attrs") or {}
        if rtype == "span":
            trace = attrs.get("trace")
            if name == "smr.txn" and attrs.get("txn") is not None:
                txn_roots.add(attrs["txn"])
            elif trace is not None and name in COMMIT_STAGES:
                stages_by_trace.setdefault(int(trace), set()).add(name)
                if name == "smr.execute" and attrs.get("digest") is not None:
                    digest_trace[attrs["digest"]] = int(trace)
                    executed.add(attrs["digest"])
        elif rtype == "counter":
            if name == "smr.block" and attrs.get("digest") is not None:
                manifests[attrs["digest"]] = list(attrs.get("txns") or ())
            elif name == "smr.execute" and attrs.get("digest") is not None:
                executed.add(attrs["digest"])

    committed = 0
    complete = 0
    missing: dict[str, list[str]] = {}
    for digest in sorted(executed):
        trace = digest_trace.get(digest)
        stages = stages_by_trace.get(trace, set()) if trace is not None else set()
        absent = [s for s in COMMIT_STAGES if s not in stages]
        for txn in manifests.get(digest, ()):
            committed += 1
            gaps = list(absent)
            if txn not in txn_roots:
                gaps.insert(0, "smr.txn")
            if gaps:
                if len(missing) < max_examples:
                    missing[txn] = gaps
            else:
                complete += 1

    return {
        "committed": committed,
        "complete": complete,
        "ratio": complete / committed if committed else 0.0,
        "missing": missing,
    }
