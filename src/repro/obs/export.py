"""Trace exporters: Chrome-trace/Perfetto JSON and Prometheus text.

The Perfetto exporter maps the tracer's record stream onto the Chrome Trace
Event JSON format (the ``traceEvents`` array form), which both
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* spans become complete duration events (``ph: "X"``) with microsecond
  timestamps, placed on a per-node *process* track;
* spans carrying trace-context attrs (``trace``/``span``/``parent``) are
  grouped on a per-trace *thread* so one transaction's causal tree reads as
  one lane, with the parent/child ids preserved in ``args``;
* anomalies become instant events (``ph: "i"``, global scope) — the flight
  recorder's findings show up as pins on the timeline;
* counters and gauges become counter events (``ph: "C"``).

Timestamps are simulated seconds scaled to integer-friendly microseconds, so
a deterministic run exports a byte-identical file.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .metrics import prometheus_text  # re-exported for CLI convenience

__all__ = ["perfetto_events", "perfetto_trace", "export_perfetto", "prometheus_text"]


def _as_dicts(source: Any) -> Iterable[dict[str, Any]]:
    """Normalize a Tracer / TraceFile / record list / dict list to dicts."""
    if hasattr(source, "to_dicts"):
        return source.to_dicts()
    if hasattr(source, "records") and callable(source.records):
        return [r.to_dict() for r in source.records()]
    out = []
    for item in source:
        if isinstance(item, dict):
            out.append(item)
        elif hasattr(item, "to_dict"):  # typed TraceRecord instances
            out.append(item.to_dict())
        else:
            raise TypeError(f"cannot export record of type {type(item)!r}")
    return out


def _us(t: float) -> int:
    """Simulated seconds to integer microseconds (Perfetto's unit)."""
    return int(round(t * 1e6))


def perfetto_events(source: Any) -> list[dict[str, Any]]:
    """Map trace records to Chrome Trace Event dicts (``traceEvents``)."""
    events: list[dict[str, Any]] = []
    seen_pids: set[int] = set()
    #: (pid, tid) -> thread label, emitted as metadata at the end.
    tracks: dict[tuple[int, int], str] = {}
    #: span-name -> small stable tid for context-free spans.
    name_tids: dict[str, int] = {}

    def pid_of(node: Any) -> int:
        # pid 0 is the "global" process for records with no node attribution.
        pid = int(node) + 1 if node is not None else 0
        seen_pids.add(pid)
        return pid

    for rec in _as_dicts(source):
        rtype = rec.get("type")
        attrs = rec.get("attrs") or {}
        pid = pid_of(rec.get("node"))
        if rtype == "span":
            trace = attrs.get("trace")
            if trace is not None:
                # One thread lane per causal trace: the whole txn tree reads
                # as a single row, regardless of which node emitted the span.
                tid = int(trace) % (2**31 - 1) + 1
                tracks.setdefault((pid, tid), f"trace {int(trace):016x}"[:32])
            else:
                tid = name_tids.setdefault(rec["name"], len(name_tids) + 1)
                tracks.setdefault((pid, tid), rec["name"])
            start, end = rec["start"], rec["end"]
            events.append({
                "ph": "X",
                "name": rec["name"],
                "cat": "span",
                "ts": _us(start),
                "dur": max(_us(end) - _us(start), 1),
                "pid": pid,
                "tid": tid,
                "args": attrs,
            })
        elif rtype == "anomaly":
            events.append({
                "ph": "i",
                "s": "g",  # global scope: drawn across every track
                "name": rec["name"],
                "cat": rec.get("kind", "info"),
                "ts": _us(rec["time"]),
                "pid": pid,
                "tid": 0,
                "args": attrs,
            })
        elif rtype in ("counter", "gauge"):
            events.append({
                "ph": "C",
                "name": rec["name"],
                "ts": _us(rec["time"]),
                "pid": pid,
                "tid": 0,
                "args": {"value": rec.get("value", 1.0)},
            })
        # meta / unknown types are skipped: the exporter is forward-tolerant.

    meta: list[dict[str, Any]] = []
    for pid in sorted(seen_pids):
        meta.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": f"node {pid - 1}" if pid else "global"},
        })
    for (pid, tid), label in sorted(tracks.items()):
        meta.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": label},
        })
    return meta + events


def perfetto_trace(source: Any) -> dict[str, Any]:
    """The full Chrome-trace JSON object for ``source``."""
    return {"traceEvents": perfetto_events(source), "displayTimeUnit": "ms"}


def export_perfetto(source: Any, path: str) -> int:
    """Write the Perfetto JSON for ``source``; returns the event count."""
    trace = perfetto_trace(source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, separators=(",", ":"), default=str)
    return len(trace["traceEvents"])
