"""Cross-run regression observatory over archived trace summaries.

Pipeline: a traced run's JSONL is folded into a constant-size summary
(counter totals + 64-bucket histogram summaries per span name) by
:func:`summarize_trace`; :func:`diff_summaries` compares two summaries with
noise-aware thresholds; ``repro obs diff`` and ``scripts/obs_regress.py``
wrap both for interactive and CI use.

Threshold design, tuned to what the simulator guarantees:

* the sim is deterministic given a seed, so *exact* aggregates (counter
  totals, histogram counts/sums — hence means) get a tight relative
  tolerance (default 10%): any drift is a real code-behaviour change;
* histogram quantiles are bucketed estimates — adjacent 64-bucket edges are
  ~1.4x apart — so a tiny true shift can jump a whole bucket.  Quantiles get
  a coarse tolerance (default 50%) and exist to catch order-of-magnitude
  tail blowups, not percent-level drift (the means catch those).
* low-count histograms (fewer than ``min_count`` samples) are skipped:
  single-sample "tails" are pure noise.
"""

from __future__ import annotations

import json
from typing import Any

from .metrics import MetricsRegistry
from .tracer import TraceFile

#: Counters whose per-event values are latency samples worth a histogram.
_VALUE_HISTOGRAM_COUNTERS = frozenset({"smr.client_latency"})


def summarize_trace(source: Any) -> dict[str, Any]:
    """Fold a trace (Tracer / TraceFile / record dicts) into a summary.

    Span durations go to one histogram per span name; counters accumulate
    (events, total); client-latency counter values additionally feed a
    latency histogram.  Output shape is :meth:`MetricsRegistry.to_dict` —
    the archival unit the observatory diffs.
    """
    if hasattr(source, "to_dicts"):
        records = source.to_dicts()
    elif hasattr(source, "records") and callable(source.records):
        records = [r.to_dict() for r in source.records()]
    else:
        records = source
    reg = MetricsRegistry()
    for rec in records:
        if not isinstance(rec, dict):
            rec = rec.to_dict()
        rtype = rec.get("type")
        if rtype == "span":
            reg.observe(rec["name"], rec["end"] - rec["start"])
        elif rtype == "counter":
            name = rec["name"]
            value = rec.get("value", 1.0)
            reg.counter(name, value)
            if name in _VALUE_HISTOGRAM_COUNTERS:
                reg.observe(name, value)
        elif rtype == "gauge":
            reg.gauge(rec["name"], rec.get("time", 0.0), rec["value"])
        elif rtype == "anomaly":
            reg.counter("anomaly." + rec.get("kind", "info"))
    return reg.to_dict()


def load_summary(path: str) -> dict[str, Any]:
    """Load a summary from disk, accepting either format.

    A JSON file shaped like a summary loads directly; anything else is
    treated as a JSONL trace and summarized on the fly — so ``repro obs
    diff`` works on raw traces and archived summaries interchangeably.
    """
    with open(path, "r", encoding="utf-8") as fh:
        head = fh.read(1)
    if head == "{":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if isinstance(data, dict) and "counters" in data:
                return data
        except json.JSONDecodeError:
            pass  # multi-line JSONL: fall through to the trace reader
    return summarize_trace(TraceFile(path))


def save_summary(summary: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _rel_delta(base: float, cur: float) -> float:
    if base == cur:
        return 0.0
    if base == 0.0:
        return float("inf")
    return (cur - base) / abs(base)


def diff_summaries(
    base: dict[str, Any],
    cur: dict[str, Any],
    rel_tol: float = 0.10,
    quantile_tol: float = 0.50,
    min_count: int = 20,
) -> list[dict[str, Any]]:
    """Findings where ``cur`` drifted beyond tolerance from ``base``.

    Each finding: ``{"metric", "kind", "field", "base", "cur", "delta_pct"}``.
    Metrics present in only one summary are reported as ``missing``/``new``
    (new ones are informational — ``severity: "info"`` — so adding
    instrumentation does not fail the gate).
    """
    findings: list[dict[str, Any]] = []

    def flag(metric: str, kind: str, field: str, b: float, c: float, tol: float) -> None:
        delta = _rel_delta(b, c)
        if abs(delta) > tol:
            findings.append({
                "metric": metric, "kind": kind, "field": field,
                "base": b, "cur": c,
                "delta_pct": round(delta * 100.0, 2) if delta != float("inf") else None,
                "severity": "regression",
            })

    base_counters = base.get("counters") or {}
    cur_counters = cur.get("counters") or {}
    for name, slot in sorted(base_counters.items()):
        if name not in cur_counters:
            findings.append({"metric": name, "kind": "counter", "field": "total",
                             "base": slot["total"], "cur": None,
                             "delta_pct": None, "severity": "missing"})
            continue
        flag(name, "counter", "total", slot["total"],
             cur_counters[name]["total"], rel_tol)
        flag(name, "counter", "events", slot["events"],
             cur_counters[name]["events"], rel_tol)
    for name in sorted(set(cur_counters) - set(base_counters)):
        findings.append({"metric": name, "kind": "counter", "field": "total",
                         "base": None, "cur": cur_counters[name]["total"],
                         "delta_pct": None, "severity": "info"})

    base_hists = base.get("histograms") or {}
    cur_hists = cur.get("histograms") or {}
    for name, b in sorted(base_hists.items()):
        c = cur_hists.get(name)
        if c is None:
            findings.append({"metric": name, "kind": "histogram", "field": "count",
                             "base": b["count"], "cur": None,
                             "delta_pct": None, "severity": "missing"})
            continue
        if b["count"] < min_count or c["count"] < min_count:
            continue
        flag(name, "histogram", "count", b["count"], c["count"], rel_tol)
        flag(name, "histogram", "mean", b["mean"], c["mean"], rel_tol)
        for q in ("p50", "p99"):
            flag(name, "histogram", q, b[q], c[q], quantile_tol)
    for name in sorted(set(cur_hists) - set(base_hists)):
        findings.append({"metric": name, "kind": "histogram", "field": "count",
                         "base": None, "cur": cur_hists[name]["count"],
                         "delta_pct": None, "severity": "info"})

    return findings


def format_findings(findings: list[dict[str, Any]]) -> str:
    """Human-readable rendering of :func:`diff_summaries` output."""
    if not findings:
        return "no drift beyond thresholds"
    lines = []
    for f in findings:
        delta = f" ({f['delta_pct']:+.1f}%)" if f.get("delta_pct") is not None else ""
        lines.append(
            f"[{f['severity']}] {f['kind']} {f['metric']}.{f['field']}: "
            f"{f['base']} -> {f['cur']}{delta}"
        )
    return "\n".join(lines)


def has_regressions(findings: list[dict[str, Any]]) -> bool:
    """Whether any finding should fail a gate (info-level ones do not)."""
    return any(f["severity"] in ("regression", "missing") for f in findings)
