"""Typed trace records and their JSONL wire format.

Four record kinds cover the instrumentation needs of the stack:

* :class:`SpanRecord` — a named interval ``[start, end]`` in simulated time
  (an RBC phase, a consensus round, one network hop).
* :class:`CounterRecord` — a named point event with a value (a commit, a
  client-observed latency sample).
* :class:`GaugeRecord` — a named sampled level (queue depth, events/s).
* :class:`AnomalyRecord` — a typed protocol-health finding from an online
  monitor (stalled round, prefix divergence, equivocation evidence).

Records serialize to one JSON object per line; ``attrs`` carries free-form
per-record annotations (message kind, node ids, per-hop decomposition).  The
schema is documented in ``docs/OBSERVABILITY.md`` and ``docs/FORENSICS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Union


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """A completed interval in simulated time."""

    TYPE: ClassVar[str] = "span"

    name: str
    start: float
    end: float
    node: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": self.TYPE,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "node": self.node,
            "attrs": self.attrs,
        }


@dataclass(frozen=True, slots=True)
class CounterRecord:
    """A point event carrying an additive value."""

    TYPE: ClassVar[str] = "counter"

    name: str
    time: float
    value: float = 1.0
    node: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": self.TYPE,
            "name": self.name,
            "time": self.time,
            "value": self.value,
            "node": self.node,
            "attrs": self.attrs,
        }


@dataclass(frozen=True, slots=True)
class GaugeRecord:
    """A sampled level (last-value-wins semantics)."""

    TYPE: ClassVar[str] = "gauge"

    name: str
    time: float
    value: float
    node: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": self.TYPE,
            "name": self.name,
            "time": self.time,
            "value": self.value,
            "node": self.node,
            "attrs": self.attrs,
        }


#: Anomaly classes, from most to least alarming.  ``safety`` anomalies mean a
#: protocol invariant was violated (divergent commit prefixes, divergent clan
#: execution); the chaos runner fails a scenario on any of them.  ``byzantine``
#: marks collected evidence of faulty-node behaviour (equivocation, duplicate
#: vertices) — expected under Byzantine scenarios.  ``liveness`` marks stalls
#: and degraded quorum margins; ``info`` is advisory.
ANOMALY_CLASSES = ("safety", "byzantine", "liveness", "info")


@dataclass(frozen=True, slots=True)
class AnomalyRecord:
    """A protocol-health finding raised by an online monitor."""

    TYPE: ClassVar[str] = "anomaly"

    name: str
    time: float
    kind: str = "info"  # one of ANOMALY_CLASSES
    node: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": self.TYPE,
            "name": self.name,
            "time": self.time,
            "kind": self.kind,
            "node": self.node,
            "attrs": self.attrs,
        }


TraceRecord = Union[SpanRecord, CounterRecord, GaugeRecord, AnomalyRecord]

_DECODERS = {
    "span": lambda d: SpanRecord(
        name=d["name"],
        start=d["start"],
        end=d["end"],
        node=d.get("node"),
        attrs=d.get("attrs") or {},
    ),
    "counter": lambda d: CounterRecord(
        name=d["name"],
        time=d["time"],
        value=d.get("value", 1.0),
        node=d.get("node"),
        attrs=d.get("attrs") or {},
    ),
    "gauge": lambda d: GaugeRecord(
        name=d["name"],
        time=d["time"],
        value=d["value"],
        node=d.get("node"),
        attrs=d.get("attrs") or {},
    ),
    "anomaly": lambda d: AnomalyRecord(
        name=d["name"],
        time=d["time"],
        kind=d.get("kind", "info"),
        node=d.get("node"),
        attrs=d.get("attrs") or {},
    ),
}


def record_from_dict(data: dict[str, Any]) -> TraceRecord:
    """Decode one JSONL object back into its typed record."""
    decoder = _DECODERS.get(data.get("type"))
    if decoder is None:
        raise ValueError(f"unknown trace record type {data.get('type')!r}")
    return decoder(data)
