"""The tracer event bus and its disabled twin.

Design constraints (from the benchmark harness):

* **Disabled cost**: instrumented code guards every emission site with
  ``if tracer.enabled:`` — a single attribute check against a class-level
  ``False`` on :class:`NullTracer`.  No record objects, no dict churn.
* **Bounded memory**: records land in a ring buffer (``collections.deque``
  with ``maxlen``); a multi-minute simulated run cannot OOM the process.
  ``dropped`` reports how many old records were evicted.
* **Deterministic time**: the tracer reads *simulated* time from a bound
  clock (``sim.now``), so traces of the same seeded run are reproducible
  except for explicit wall-clock attributes.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Iterable, Iterator

from .ctx import TraceCtx, derive_trace_id, sample_hit
from .records import (
    AnomalyRecord,
    CounterRecord,
    GaugeRecord,
    SpanRecord,
    TraceRecord,
    record_from_dict,
)

#: ``type`` of the optional JSONL header line carrying ring-buffer accounting
#: (``emitted``/``dropped``/``capacity``).  Not a trace record: the typed
#: readers skip it, the report layer uses it to warn about evictions.
META_TYPE = "meta"


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Hot paths test ``tracer.enabled`` (class attribute, always ``False``)
    before building any record arguments, so the disabled overhead is one
    attribute check per instrumented site.
    """

    enabled = False
    #: Disabled tracers sample nothing: ``sampled()`` is always False and the
    #: network's trace-all fast-path predicate stays off.
    sample = 0.0
    #: Non-causal (aggregate) instrumentation is off too.
    verbose = False
    __slots__ = ()

    def set_clock(self, clock: Callable[[], float]) -> None:
        pass

    def now(self) -> float:
        return 0.0

    # -- trace context (all no-ops; see Tracer for semantics) ----------------

    def trace_id(self, key: str) -> int:
        return 0

    def sampled(self, key: str) -> bool:
        return False

    def next_span_id(self) -> int:
        return 0

    def root_ctx(self, key: str) -> TraceCtx | None:
        return None

    def ctx_span(self, name: str, start: float, ctx: TraceCtx,
                 end: float | None = None, node: int | None = None,
                 **attrs: Any) -> TraceCtx | None:
        return None

    def bind(self, key: Any, ctx: TraceCtx) -> None:
        pass

    def ctx(self, key: Any) -> TraceCtx | None:
        return None

    def unbind(self, key: Any) -> None:
        pass

    def counter(self, name: str, value: float = 1.0, node: int | None = None,
                time: float | None = None, **attrs: Any) -> None:
        pass

    def gauge(self, name: str, value: float, node: int | None = None,
              time: float | None = None, **attrs: Any) -> None:
        pass

    def span(self, name: str, start: float, end: float | None = None,
             node: int | None = None, **attrs: Any) -> None:
        pass

    def begin(self, name: str, key: Any = None, node: int | None = None) -> None:
        pass

    def end(self, name: str, key: Any = None, node: int | None = None,
            **attrs: Any) -> None:
        pass

    def anomaly(self, name: str, kind: str = "info", node: int | None = None,
                time: float | None = None, **attrs: Any) -> None:
        pass

    def records(self) -> list[TraceRecord]:
        return []

    def __len__(self) -> int:
        return 0


#: Shared disabled tracer; components store this when no tracer is supplied.
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Normalize an optional tracer argument to a usable instance."""
    return tracer if tracer is not None else NULL_TRACER


class Tracer:
    """Collects typed trace records into a bounded ring buffer.

    Args:
        clock: zero-argument callable returning the current (simulated)
            time; bound late via :meth:`set_clock` when the simulator is
            created after the tracer (the CLI path).
        capacity: ring-buffer size; oldest records are evicted beyond it.
        sample: head-sampling rate for causal traces, 0..1.  ``1.0`` (the
            default) traces everything — the pre-sampling behaviour; at
            ``1/k`` only txns/blocks whose identity hash lands under the rate
            get a trace context, and un-sampled traffic stays on the
            network's untraced fast path.  Sampling decisions are a pure
            function of protocol identity (:func:`~repro.obs.ctx.sample_hit`),
            never of run interleaving.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        capacity: int = 1_000_000,
        sample: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        if not 0.0 <= sample <= 1.0:
            raise ValueError("trace sample rate must be within [0, 1]")
        self._clock = clock
        self._buffer: deque[TraceRecord] = deque(maxlen=capacity)
        self._emitted = 0
        #: Open begin()/end() span bookkeeping: (name, key, node) -> start.
        self._open: dict[tuple, float] = {}
        self.sample = sample
        #: Sampled mode (sample < 1.0) is *causal-only*: sites that emit
        #: high-volume per-vertex/per-hop records with no trace context gate
        #: on ``verbose`` so the ≤5 % tracing-overhead budget holds at 1/k
        #: rates.  At sample=1.0 every record is emitted, as before.
        self.verbose = sample >= 1.0
        #: Monotonic span-id source; deterministic given deterministic
        #: emission order (which the seeded simulator guarantees).
        self._span_ids = 0
        #: Context registry: protocol identity key -> TraceCtx, so layers
        #: that only know a txn id / vertex key / block digest can rejoin a
        #: trace without new plumbing through every constructor.
        self._ctx: dict[Any, TraceCtx] = {}

    # -- time ----------------------------------------------------------------

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Bind (or rebind) the time source; deployments bind ``sim.now``."""
        self._clock = clock

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # -- emission ------------------------------------------------------------

    def counter(self, name: str, value: float = 1.0, node: int | None = None,
                time: float | None = None, **attrs: Any) -> None:
        self._emit(CounterRecord(
            name=name,
            time=self.now() if time is None else time,
            value=value,
            node=node,
            attrs=attrs,
        ))

    def gauge(self, name: str, value: float, node: int | None = None,
              time: float | None = None, **attrs: Any) -> None:
        self._emit(GaugeRecord(
            name=name,
            time=self.now() if time is None else time,
            value=value,
            node=node,
            attrs=attrs,
        ))

    def span(self, name: str, start: float, end: float | None = None,
             node: int | None = None, **attrs: Any) -> None:
        self._emit(SpanRecord(
            name=name,
            start=start,
            end=self.now() if end is None else end,
            node=node,
            attrs=attrs,
        ))

    def begin(self, name: str, key: Any = None, node: int | None = None) -> None:
        """Open a keyed span at the current time (idempotent per key)."""
        self._open.setdefault((name, key, node), self.now())

    def end(self, name: str, key: Any = None, node: int | None = None,
            **attrs: Any) -> None:
        """Close a keyed span; silently ignored if it was never opened."""
        start = self._open.pop((name, key, node), None)
        if start is not None:
            self.span(name, start, node=node, **attrs)

    def anomaly(self, name: str, kind: str = "info", node: int | None = None,
                time: float | None = None, **attrs: Any) -> None:
        """Record a protocol-health finding (see :data:`ANOMALY_CLASSES`)."""
        self._emit(AnomalyRecord(
            name=name,
            time=self.now() if time is None else time,
            kind=kind,
            node=node,
            attrs=attrs,
        ))

    def _emit(self, record: TraceRecord) -> None:
        self._emitted += 1
        self._buffer.append(record)

    # -- trace context -------------------------------------------------------

    def trace_id(self, key: str) -> int:
        """Deterministic 64-bit trace id for a protocol identity string."""
        return derive_trace_id(key)

    def sampled(self, key: str) -> bool:
        """Whether the trace named by ``key`` is head-sampled at this rate."""
        return sample_hit(key, self.sample)

    def next_span_id(self) -> int:
        """A fresh span id (monotonic, deterministic per emission order)."""
        self._span_ids += 1
        return self._span_ids

    def root_ctx(self, key: str) -> TraceCtx | None:
        """Open a root context for ``key`` if it is sampled, else ``None``.

        The returned ``span_id`` names the trace's root span; the caller is
        expected to emit that span itself (with ``trace=/span=`` attrs and no
        ``parent``) once the root interval's end is known.
        """
        if not sample_hit(key, self.sample):
            return None
        return TraceCtx(derive_trace_id(key), self.next_span_id())

    def ctx_span(self, name: str, start: float, ctx: TraceCtx,
                 end: float | None = None, node: int | None = None,
                 **attrs: Any) -> TraceCtx | None:
        """Emit a span as a child of ``ctx``; returns the child's context.

        The emitted record carries ``trace``/``span``/``parent`` attrs (in
        the ordinary free-form ``attrs`` dict — no schema change), and the
        returned :class:`TraceCtx` lets the caller chain grandchildren.
        """
        span_id = self.next_span_id()
        self.span(name, start, end=end, node=node,
                  trace=ctx.trace_id, span=span_id, parent=ctx.span_id, **attrs)
        return TraceCtx(ctx.trace_id, span_id)

    def bind(self, key: Any, ctx: TraceCtx) -> None:
        """Associate a protocol identity key with a context for later lookup."""
        self._ctx[key] = ctx

    def ctx(self, key: Any) -> TraceCtx | None:
        """The context bound to ``key``, or ``None``."""
        return self._ctx.get(key)

    def unbind(self, key: Any) -> None:
        """Drop a binding (no-op when absent); keeps long runs bounded."""
        self._ctx.pop(key, None)

    # -- inspection ----------------------------------------------------------

    def records(self) -> list[TraceRecord]:
        return list(self._buffer)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [r.to_dict() for r in self._buffer]

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def emitted(self) -> int:
        """Total records emitted (including any evicted from the ring)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Records evicted from the ring buffer because it was full."""
        return self._emitted - len(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()
        self._open.clear()
        self._ctx.clear()
        self._emitted = 0
        self._span_ids = 0

    # -- JSONL ---------------------------------------------------------------

    def write_jsonl(self, fh) -> int:
        """Write buffered records as JSON lines; returns record count.

        The first line is a ``type: "meta"`` header carrying ring-buffer
        accounting so file-based reports can warn when evictions skewed the
        aggregates.  Readers skip it; older traces without it still load.
        """
        fh.write(json.dumps(self.meta(), separators=(",", ":")))
        fh.write("\n")
        count = 0
        for record in self._buffer:
            fh.write(json.dumps(record.to_dict(), separators=(",", ":")))
            fh.write("\n")
            count += 1
        return count

    def meta(self) -> dict[str, Any]:
        """The JSONL header object (ring-buffer accounting)."""
        return {
            "type": META_TYPE,
            "emitted": self._emitted,
            "dropped": self.dropped,
            "capacity": self._buffer.maxlen,
        }

    def export_jsonl(self, path: str) -> int:
        """Write the trace to ``path``; returns the number of records."""
        with open(path, "w", encoding="utf-8") as fh:
            return self.write_jsonl(fh)

    @staticmethod
    def read_jsonl(path: str) -> list[TraceRecord]:
        """Load a JSONL trace back into typed records (small files)."""
        return list(Tracer.iter_jsonl(path))

    @staticmethod
    def iter_jsonl(path: str) -> "Iterator[TraceRecord]":
        """Stream a JSONL trace as typed records in constant memory.

        The generator skips the ``meta`` header line; use :class:`TraceFile`
        when the header (dropped-record accounting) is needed too.
        """
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                if data.get("type") == META_TYPE:
                    continue
                yield record_from_dict(data)

    @staticmethod
    def read_jsonl_dicts(path: str) -> list[dict[str, Any]]:
        """Load a JSONL trace as raw record dicts (small files, no meta)."""
        rows: list[dict[str, Any]] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                if data.get("type") != META_TYPE:
                    rows.append(data)
        return rows


class TraceFile:
    """A re-iterable, constant-memory view of a JSONL trace file.

    Each iteration re-opens the file and yields raw record dicts (the meta
    header excluded), so report code can make several aggregation passes over
    a multi-GB trace without ever materializing it.  :attr:`meta` exposes the
    header (or ``None`` for traces written before the header existed).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.meta: dict[str, Any] | None = None
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                if data.get("type") == META_TYPE:
                    self.meta = data
                break

    @property
    def dropped(self) -> int:
        return int(self.meta.get("dropped", 0)) if self.meta else 0

    def __iter__(self) -> "Iterator[dict[str, Any]]":
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                if data.get("type") == META_TYPE:
                    continue
                yield data


def iter_spans(records: Iterable[TraceRecord], name: str | None = None):
    """Yield span records, optionally filtered by name (test/report helper)."""
    for record in records:
        if isinstance(record, SpanRecord) and (name is None or record.name == name):
            yield record
