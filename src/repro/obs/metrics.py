"""Constant-memory metrics: log-bucketed histograms and a registry.

:class:`Histogram` replaces the "append every sample to a list, sort it at
the end" pattern used by the report/forensics layers: 64 fixed buckets with
logarithmically spaced edges give p50/p90/p99/p999 estimates with bounded
relative error at **O(1)** memory per metric, regardless of run length.
Exact ``count``/``sum``/``min``/``max`` are tracked alongside the buckets, so
means are exact and quantile estimates are clamped into the observed range.

:class:`MetricsRegistry` is the aggregation container used by the trace
report, the regression observatory, and the Prometheus exporter: named
counters (monotonic totals), named histograms, and named time-series gauges.
It follows the tracer's zero-cost-when-disabled idiom — :class:`NullMetrics`
exposes the same API with ``enabled = False`` as a class attribute, so
instrumented sites pay one attribute check when metrics are off.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

#: Fixed bucket count per histogram (the memory budget of the design).
BUCKET_COUNT = 64

#: Default value range for latency-shaped metrics, in seconds: one microsecond
#: to about 17 minutes.  Values outside the range land in the edge buckets and
#: are still counted exactly in count/sum/min/max.
DEFAULT_LO = 1e-6
DEFAULT_HI = 1e3

#: The quantiles every summary reports.
SUMMARY_QUANTILES = (0.50, 0.90, 0.99, 0.999)


class Histogram:
    """A fixed-size log-bucketed histogram with exact count/sum/min/max.

    Bucket ``i`` covers ``[lo * ratio**i, lo * ratio**(i+1))`` where
    ``ratio = (hi / lo) ** (1 / BUCKET_COUNT)``; values below ``lo`` fall in
    bucket 0 and values at or above ``hi`` in the last bucket.  Quantiles
    interpolate geometrically inside the selected bucket and are clamped to
    the exact observed ``[min, max]``.
    """

    __slots__ = ("lo", "hi", "_log_lo", "_inv_log_ratio", "_log_ratio",
                 "counts", "count", "sum", "min", "max")

    def __init__(self, lo: float = DEFAULT_LO, hi: float = DEFAULT_HI) -> None:
        if not (0.0 < lo < hi):
            raise ValueError(f"histogram bounds must satisfy 0 < lo < hi, got {lo}, {hi}")
        self.lo = lo
        self.hi = hi
        self._log_lo = math.log(lo)
        self._log_ratio = (math.log(hi) - self._log_lo) / BUCKET_COUNT
        self._inv_log_ratio = 1.0 / self._log_ratio
        self.counts = [0] * BUCKET_COUNT
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        """Add one sample (non-positive values land in the lowest bucket)."""
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self.lo:
            idx = 0
        else:
            idx = int((math.log(value) - self._log_lo) * self._inv_log_ratio)
            if idx >= BUCKET_COUNT:
                idx = BUCKET_COUNT - 1
        self.counts[idx] += 1

    def record_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.record(v)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` (0..1), clamped to [min, max]."""
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = q * self.count
        seen = 0
        for idx, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= rank:
                # Geometric interpolation within the bucket by rank fraction.
                frac = (rank - seen) / c
                log_edge = self._log_lo + idx * self._log_ratio
                value = math.exp(log_edge + frac * self._log_ratio)
                return min(max(value, self.min), self.max)
            seen += c
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical bounds into this one."""
        if (other.lo, other.hi) != (self.lo, self.hi):
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def summary(self) -> dict[str, float]:
        """Fixed-shape summary dict (the regression observatory's unit)."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0, "p999": 0.0}
        out = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        for q, label in zip(SUMMARY_QUANTILES, ("p50", "p90", "p99", "p999")):
            out[label] = self.quantile(q)
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready encoding; buckets stored sparsely as {index: count}."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(i): c for i, c in enumerate(self.counts) if c},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Histogram":
        h = cls(lo=data["lo"], hi=data["hi"])
        h.count = data["count"]
        h.sum = data["sum"]
        if h.count:
            h.min = data["min"]
            h.max = data["max"]
        for idx, c in (data.get("buckets") or {}).items():
            h.counts[int(idx)] = c
        return h


class NullMetrics:
    """Disabled registry: one ``enabled`` attribute check per call site."""

    enabled = False
    __slots__ = ()

    def counter(self, name: str, value: float = 1.0) -> None:
        pass

    def observe(self, name: str, value: float,
                lo: float = DEFAULT_LO, hi: float = DEFAULT_HI) -> None:
        pass

    def gauge(self, name: str, time: float, value: float) -> None:
        pass


#: Shared disabled registry, mirroring ``NULL_TRACER``.
NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """Named counters, histograms, and time-series gauges.

    The container behind the regression observatory: :meth:`to_dict` is the
    archival format compared by ``repro obs diff``, and
    :func:`prometheus_text` renders it for scrape-style consumption.
    """

    enabled = True

    def __init__(self) -> None:
        #: name -> [events, total]
        self._counters: dict[str, list[float]] = {}
        self._hists: dict[str, Histogram] = {}
        #: name -> [(time, value), ...] in emission order
        self._gauges: dict[str, list[tuple[float, float]]] = {}

    def counter(self, name: str, value: float = 1.0) -> None:
        slot = self._counters.get(name)
        if slot is None:
            self._counters[name] = [1, value]
        else:
            slot[0] += 1
            slot[1] += value

    def observe(self, name: str, value: float,
                lo: float = DEFAULT_LO, hi: float = DEFAULT_HI) -> None:
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = Histogram(lo=lo, hi=hi)
        hist.record(value)

    def gauge(self, name: str, time: float, value: float) -> None:
        self._gauges.setdefault(name, []).append((time, value))

    def histogram(self, name: str) -> Histogram | None:
        return self._hists.get(name)

    @property
    def counters(self) -> dict[str, dict[str, float]]:
        return {
            name: {"events": int(events), "total": total}
            for name, (events, total) in sorted(self._counters.items())
        }

    @property
    def gauges(self) -> dict[str, list[tuple[float, float]]]:
        return dict(self._gauges)

    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": self.counters,
            "histograms": {
                name: hist.summary() for name, hist in sorted(self._hists.items())
            },
            "gauges": {
                name: {"points": len(series),
                       "last": series[-1][1] if series else None}
                for name, series in sorted(self._gauges.items())
            },
        }


def _prom_name(name: str) -> str:
    """Map a dotted metric name to the Prometheus character set."""
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


def prometheus_text(summary: dict[str, Any], prefix: str = "repro") -> str:
    """Render a :meth:`MetricsRegistry.to_dict`-shaped summary as text.

    The Prometheus exposition format: HELP/TYPE comments, one sample per
    line, quantiles as labelled summary samples.  Used by ``repro obs`` for
    dumping archived runs; the future socket cluster can serve it verbatim.
    """
    lines: list[str] = []
    for name, slot in (summary.get("counters") or {}).items():
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric}_total counter")
        lines.append(f"{metric}_total {slot['total']:g}")
        lines.append(f"{metric}_events {slot['events']}")
    for name, s in (summary.get("histograms") or {}).items():
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} summary")
        for label in ("p50", "p90", "p99", "p999"):
            q = {"p50": "0.5", "p90": "0.9", "p99": "0.99", "p999": "0.999"}[label]
            lines.append(f'{metric}{{quantile="{q}"}} {s[label]:g}')
        lines.append(f"{metric}_sum {s['sum']:g}")
        lines.append(f"{metric}_count {s['count']}")
    for name, s in (summary.get("gauges") or {}).items():
        metric = f"{prefix}_{_prom_name(name)}"
        if s.get("last") is not None:
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {s['last']:g}")
    return "\n".join(lines) + "\n"
