"""Causal trace context: deterministic trace ids and parent/child span links.

A :class:`TraceCtx` is the compact token that rides along with a transaction
or vertex as it crosses layer boundaries (client → mempool → RBC → network →
DAG → ordering → executor).  It carries exactly two integers:

* ``trace_id`` — derived **deterministically** from protocol identity (a
  transaction id, a block digest) via :func:`derive_trace_id`, so two runs of
  the same seeded simulation produce byte-identical trace ids, and an offline
  tool can recompute the id for any txn/block without having seen the run.
* ``span_id`` — the id of the *current* span; children emitted under this
  context record it as their ``parent`` attribute, which is what turns the
  flat record stream into a tree.

Context fields travel inside the free-form ``attrs`` dict of ordinary trace
records (``trace``/``span``/``parent`` keys) — the record schema and its JSONL
wire format are unchanged, so traces written before this module existed still
load.

Sampling is *head-based* and deterministic: :func:`sample_hit` hashes the
same identity string used for the trace id, so whether a transaction is
traced is a pure function of (identity, sample rate) — independent of run
interleaving, and bit-identical across repeated runs.
"""

from __future__ import annotations

import hashlib

#: Denominator of the deterministic sampling fraction (64-bit hash space).
_HASH_SPACE = float(2**64)


def derive_trace_id(key: str) -> int:
    """A stable 64-bit trace id from a protocol identity string.

    Uses BLAKE2b (not Python's randomized ``hash``) so ids are stable across
    processes and runs — required both for determinism and for offline
    joins (a report can recompute the trace id of ``txn:c1:7`` at any time).
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def sample_hit(key: str, rate: float) -> bool:
    """Deterministic head-sampling decision for ``key`` at ``rate``.

    ``rate >= 1`` always hits, ``rate <= 0`` never hits; in between, the
    decision is a pure function of the identity hash, so the *same* txns are
    traced on every run of a seeded simulation.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return derive_trace_id(key) / _HASH_SPACE < rate


def txn_trace_key(txn_id: str) -> str:
    """The identity string whose hash names a transaction's trace."""
    return "txn:" + txn_id


def block_trace_key(block_digest: bytes) -> str:
    """The identity string whose hash names a block/vertex trace."""
    return "blk:" + block_digest.hex()


class TraceCtx:
    """An immutable-by-convention (trace_id, span_id) pair.

    Plain slotted class rather than a dataclass: contexts are created on the
    sampled hot path (one per child span) and never mutated after creation.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceCtx(trace_id={self.trace_id:#x}, span_id={self.span_id})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceCtx)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))
