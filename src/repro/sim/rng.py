"""Named, independent random streams derived from one master seed.

Every source of randomness in a simulation (clan election, latency jitter,
workload generation, Byzantine behaviour) draws from its own stream so that
changing how one component consumes randomness never perturbs another.  A
stream is identified by the master seed plus any number of string/int labels;
the stream seed is the SHA-256 of the labels, so streams are reproducible and
statistically independent.

Under ``REPRO_SANITIZE=1`` every derivation is registered with the
stream-collision sanitizer: two components deriving the same labels in one
run is an error unless the stream is declared ``shared=True`` (deterministic
common knowledge, e.g. the leader-schedule beacon every node re-derives).
"""

from __future__ import annotations

import hashlib
import random

from ..analysis import sanitizers as _sanitizers


def stream_seed(master_seed: int, *labels: object) -> int:
    """Derive a 64-bit sub-seed from ``master_seed`` and ``labels``.

    >>> stream_seed(42, "latency") != stream_seed(42, "election")
    True
    >>> stream_seed(42, "latency") == stream_seed(42, "latency")
    True
    """
    h = hashlib.sha256()
    h.update(str(master_seed).encode())
    for label in labels:
        h.update(b"\x00")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "big")


def make_rng(master_seed: int, *labels: object, shared: bool = False) -> random.Random:
    """Create a :class:`random.Random` seeded for the named stream.

    Args:
        shared: declare the stream as intentionally common knowledge —
            several components may re-derive it (each gets an independent
            generator over the same sequence).  Exempts the derivation from
            the ``REPRO_SANITIZE=1`` collision check.
    """
    if _sanitizers.enabled():
        _sanitizers.note_stream(master_seed, labels, shared=shared)
    return random.Random(stream_seed(master_seed, *labels))
