"""Restartable one-shot timers on top of the simulator.

Consensus nodes use these for round/leader timeouts: set when entering a
round, cancelled when the leader vertex arrives, restarted on round change.
"""

from __future__ import annotations

from typing import Any, Callable

from .scheduler import EventHandle, Simulator

#: Simulated-time instants closer than this are the same instant.  Event
#: times are sums of float delays well below 10⁴ seconds, so a nanosecond
#: of slack absorbs accumulated ulp error without ever merging two events
#: the latency model meant to separate (its minimum delay is ≥ 1 µs).
TIME_TOLERANCE = 1e-9


def times_close(a: float, b: float, tol: float = TIME_TOLERANCE) -> bool:
    """Whether two simulated-time values denote the same instant.

    Two paths to "the same" time differ in the last ulp (float addition is
    not associative), so ``==``/``!=`` on event times encodes a coincidence
    of rounding.  This is the comparison SIM001 points at.
    """
    return abs(a - b) <= tol


class Timer:
    """A one-shot timer that can be (re)started and cancelled.

    >>> sim = Simulator()
    >>> fired = []
    >>> t = Timer(sim, 2.0, lambda: fired.append(sim.now))
    >>> t.start()
    >>> sim.run()
    >>> fired
    [2.0]
    """

    __slots__ = ("_sim", "_duration", "_fn", "_args", "_handle")

    def __init__(
        self,
        sim: Simulator,
        duration: float,
        fn: Callable[..., Any],
        *args: Any,
    ) -> None:
        self._sim = sim
        self._duration = duration
        self._fn = fn
        self._args = args
        self._handle: EventHandle | None = None

    @property
    def duration(self) -> float:
        return self._duration

    @property
    def running(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def start(self, duration: float | None = None) -> None:
        """Start (or restart) the timer; a running instance is cancelled first."""
        self.cancel()
        if duration is not None:
            self._duration = duration
        self._handle = self._sim.schedule(self._duration, self._fire)

    def cancel(self) -> None:
        """Stop the timer without firing.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._fn(*self._args)
