"""Deterministic discrete-event simulation substrate.

The simulator is the clock every other subsystem runs on: the network
schedules message deliveries, protocol nodes schedule timers, and the
benchmark harness advances simulated time until a run completes.

Public API:

* :class:`~repro.sim.scheduler.Simulator` — the event loop.
* :class:`~repro.sim.timers.Timer` — restartable one-shot timer.
* :func:`~repro.sim.rng.make_rng` — independent, named, seeded RNG streams.
"""

from .rng import make_rng, stream_seed
from .scheduler import EventHandle, Simulator
from .timers import Timer, times_close

__all__ = [
    "Simulator",
    "EventHandle",
    "Timer",
    "make_rng",
    "stream_seed",
    "times_close",
]
