"""Deterministic discrete-event scheduler.

Events are ``(time, seq, callback, args)`` entries in a binary heap.  The
monotonically increasing sequence number breaks ties between events scheduled
for the same instant, which makes every run fully deterministic: two runs with
the same seeds schedule the same events in the same order.

The hot path (``schedule`` + ``run``) is deliberately lean — benchmark runs
push millions of message-delivery events through it.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..errors import SimulationError


class EventHandle:
    """Handle to a scheduled event; allows cancellation.

    Cancellation is O(1): the entry stays in the heap but its callback is
    cleared, and the run loop skips it.
    """

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        """Simulated time at which the event fires (or would have fired)."""
        return self._entry[0]

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._entry[2] = None
        self._entry[3] = ()


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    __slots__ = ("_now", "_queue", "_seq", "_stopped", "_processed")

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[list] = []
        self._seq = 0
        self._stopped = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        self._seq += 1
        entry = [when, self._seq, fn, args]
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    def post(self, when: float, fn: Callable[..., Any], args: tuple) -> None:
        """Hot-path variant of :meth:`schedule_at`: no handle, no cancellation.

        Used by the network for message deliveries (millions per run); the
        EventHandle allocation of :meth:`schedule_at` is measurable there.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        self._seq += 1
        heapq.heappush(self._queue, [when, self._seq, fn, args])

    def stop(self) -> None:
        """Make :meth:`run` return after the current event finishes."""
        self._stopped = True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in time order.

        Args:
            until: stop once simulated time would exceed this instant; the
                clock is advanced to ``until`` exactly.  Events at ``until``
                itself are executed.
            max_events: safety valve — raise :class:`SimulationError` if more
                than this many events execute (runaway-protocol guard).
        """
        self._stopped = False
        queue = self._queue
        pop = heapq.heappop
        executed = 0
        while queue and not self._stopped:
            if until is not None and queue[0][0] > until:
                self._now = until
                return
            when, _seq, fn, args = pop(queue)
            if fn is None:
                continue
            self._now = when
            fn(*args)
            executed += 1
            self._processed += 1
            if max_events is not None and executed > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        if until is not None and not self._stopped and self._now < until:
            self._now = until

    def run_until_idle(self, max_events: int | None = None) -> None:
        """Run until no events remain (alias of ``run()`` with a guard)."""
        self.run(until=None, max_events=max_events)
