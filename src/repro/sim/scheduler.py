"""Deterministic discrete-event scheduler (calendar-bucket queue).

Events live in per-timestamp *buckets*: a dict maps each distinct simulated
time to the list of events scheduled for that instant, and a binary heap of
plain floats orders the timestamps themselves.  Two effects make this faster
than the classic one-entry-per-heap-item design:

* the heap compares raw floats instead of ``[time, seq, ...]`` lists, which
  is several times cheaper per sift step in CPython, and
* all events sharing a timestamp are dispatched in one batch — a single
  heap pop + dict pop — so multicast bursts that land together (loopback
  deliveries, jitter-free links) bypass the heap entirely.

Determinism is preserved without a sequence counter: within a bucket events
run in insertion order, which is exactly the order the old monotonically
increasing tie-breaker produced.  Events scheduled *at the current instant*
from inside a callback go into a fresh bucket that is drained immediately
after the active one — again matching the old heap's behaviour, where such
events carried higher sequence numbers than everything already queued.

The hot path (``post`` + ``run``) is deliberately lean — benchmark runs push
millions of message-delivery events through it.  Tracing adds no per-event
work: the run loop is wrapped (not instrumented inside), and the per-run
``sim.run`` span carries event counts and wall-clock per simulated second.

Cancelled events stay in their bucket (O(1) cancellation) but are *compacted*
away once they dominate: timer-heavy workloads (one leader timer per node per
round, almost always cancelled) would otherwise pay a per-dead-entry skip in
the run loop and hold the dead args alive.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Any, Callable

from ..analysis import sanitizers as _sanitizers
from ..errors import SimulationError
from ..obs.tracer import NULL_TRACER


class EventHandle:
    """Handle to a scheduled event; allows cancellation.

    Cancellation is O(1): the entry stays in its bucket but its callback is
    cleared, and the run loop skips it.  The owning simulator counts
    cancellations so it can compact the calendar when dead entries dominate.
    """

    __slots__ = ("_when", "_entry", "_sim")

    def __init__(self, when: float, entry: list, sim: "Simulator | None" = None) -> None:
        self._when = when
        self._entry = entry
        self._sim = sim

    @property
    def time(self) -> float:
        """Simulated time at which the event fires (or would have fired)."""
        return self._when

    @property
    def cancelled(self) -> bool:
        return self._entry[0] is None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._entry[0] is None:
            return
        self._entry[0] = None
        self._entry[1] = ()
        if self._sim is not None:
            self._sim._note_cancelled()


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        tracer: optional :class:`repro.obs.Tracer`; when enabled, each
            ``run()`` call emits a ``sim.run`` span with event counts and
            wall-clock attribution.  Disabled cost: one attribute check per
            ``run()`` call (never per event).
        compact_threshold: once at least this many cancelled entries are
            pending *and* they make up half the calendar, the buckets are
            rebuilt without them.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    __slots__ = (
        "_now",
        "_times",
        "_buckets",
        "_compact_check",
        "_stopped",
        "_processed",
        "_cancelled",
        "_compact_threshold",
        "_compactions",
        "_tracer",
        "_audit",
    )

    def __init__(self, tracer=None, compact_threshold: int = 1024) -> None:
        self._now = 0.0
        #: Min-heap of distinct timestamps; exactly one heap entry per bucket.
        self._times: list[float] = []
        #: timestamp -> list of events at that instant, in insertion order.
        #: ``schedule_at`` inserts cancellable ``[fn, args]`` lists; ``post``
        #: inserts bare ``(fn, args)`` tuples (no handle, no cancellation).
        self._buckets: dict[float, list] = {}
        self._stopped = False
        self._processed = 0
        self._cancelled = 0
        self._compact_threshold = compact_threshold
        # Next _cancelled value at which the compaction heuristic re-checks;
        # doubled on every failed check so counting pending entries (an
        # O(buckets) sum — there is deliberately no per-insert counter on the
        # hot path) stays amortized O(1) per cancellation.
        self._compact_check = compact_threshold
        self._compactions = 0
        self._tracer = tracer if tracer is not None else NULL_TRACER
        # One simulator = one run: creating it is the sanitizer run boundary.
        # Off (the default), _audit is None and scheduling pays one None
        # check; on, every (time, callback) insertion feeds the tie auditor.
        if _sanitizers.enabled():
            _sanitizers.begin_run()
            self._audit = _sanitizers.TieAudit()
        else:
            self._audit = None

    @property
    def tie_audit(self):
        """The ``REPRO_SANITIZE=1`` tie-order auditor (None when off)."""
        return self._audit

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def tracer(self):
        return self._tracer

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events.

        Computed on demand: the insertion path deliberately maintains no
        counter (millions of inserts per run, rare reads of this property).
        """
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def cancelled_pending(self) -> int:
        """Cancelled entries still occupying their buckets."""
        return self._cancelled

    @property
    def compactions(self) -> int:
        """Times the calendar was rebuilt to shed cancelled entries."""
        return self._compactions

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        entry = [fn, args]
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [entry]
            heapq.heappush(self._times, when)
        else:
            bucket.append(entry)
        if self._audit is not None:
            self._audit.note(when, fn)
        return EventHandle(when, entry, self)

    def post(self, when: float, fn: Callable[..., Any], args: tuple) -> None:
        """Hot-path variant of :meth:`schedule_at`: no handle, no cancellation.

        Used by the network for message deliveries (millions per run); the
        EventHandle and entry-list allocations of :meth:`schedule_at` are
        measurable there.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [(fn, args)]
            heapq.heappush(self._times, when)
        else:
            bucket.append((fn, args))
        if self._audit is not None:
            self._audit.note(when, fn)

    def stop(self) -> None:
        """Make :meth:`run` return after the current event finishes."""
        self._stopped = True

    def _note_cancelled(self) -> None:
        """Called by :class:`EventHandle` when an entry is cancelled."""
        self._cancelled += 1
        if self._cancelled < self._compact_check:
            return
        # Compact once dead entries make up at least half the calendar;
        # otherwise double the re-check point so the pending count (an
        # O(buckets) sum) is amortized O(1) per cancellation.
        if self._cancelled * 2 >= self.pending_events:
            self._compact()
        else:
            self._compact_check = self._cancelled * 2

    def _compact(self) -> None:
        """Drop cancelled entries from every queued bucket (O(live) instead
        of O(dead) skips in the run loop).

        Mutates ``_times`` in place (slice assignment) on purpose: the run
        loop holds a local alias, and cancellations — hence compactions —
        can happen inside an event callback while the loop is mid-iteration.
        The bucket currently being drained is *not* in the dict (the loop
        pops it first), so it is never touched here; its dead entries are
        skipped by the loop itself.
        """
        buckets = self._buckets
        emptied = []
        for when, bucket in buckets.items():
            live = [entry for entry in bucket if entry[0] is not None]
            if len(live) != len(bucket):
                if live:
                    bucket[:] = live
                else:
                    emptied.append(when)
        for when in emptied:
            del buckets[when]
        if emptied:
            self._times[:] = list(buckets)
            heapq.heapify(self._times)
        self._cancelled = 0
        self._compact_check = self._compact_threshold
        self._compactions += 1

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in time order.

        Args:
            until: stop once simulated time would exceed this instant; the
                clock is advanced to ``until`` exactly.  Events at ``until``
                itself are executed.
            max_events: safety valve — raise :class:`SimulationError` if more
                than this many events execute (runaway-protocol guard).
        """
        tracer = self._tracer
        if not tracer.enabled:
            self._run_loop(until, max_events)
            return
        wall_start = _time.perf_counter()
        sim_start = self._now
        processed_before = self._processed
        try:
            self._run_loop(until, max_events)
        finally:
            wall = _time.perf_counter() - wall_start
            executed = self._processed - processed_before
            advanced = self._now - sim_start
            tracer.span(
                "sim.run",
                start=sim_start,
                end=self._now,
                events=executed,
                wall_s=round(wall, 6),
                wall_per_sim_s=round(wall / advanced, 6) if advanced > 0 else None,
                events_per_wall_s=round(executed / wall) if wall > 0 else None,
                pending=self.pending_events,
            )

    def _requeue(self, when: float, rest: list) -> None:
        """Return the unexecuted tail of the active bucket to the calendar.

        Called when :meth:`stop` or the ``max_events`` valve interrupts a
        bucket mid-drain.  Events the callbacks scheduled at ``when`` while
        the bucket was being drained live in a *newer* bucket (the active one
        was popped from the dict first); the tail is prepended so the overall
        order — old entries before new — survives the interruption.
        """
        if not rest:
            return
        newer = self._buckets.get(when)
        if newer is None:
            self._buckets[when] = rest
            heapq.heappush(self._times, when)
        else:
            self._buckets[when] = rest + newer

    def _run_loop(self, until: float | None, max_events: int | None) -> None:
        # The loop bodies below are deliberately duplicated per (until,
        # max_events) combination: benchmark runs execute millions of events,
        # and hoisting the two `is not None` checks out of the loop is a
        # measurable fraction of per-event overhead.  Entries are indexed
        # rather than unpacked so cancelled entries (timer-heavy workloads)
        # skip without touching their dead args.  The active bucket is popped
        # from the dict before draining, so same-instant events scheduled by
        # its callbacks land in a fresh bucket drained right after — keeping
        # insertion order global.
        self._stopped = False
        times = self._times
        buckets = self._buckets
        pop = heapq.heappop
        executed = 0
        try:
            if until is None and max_events is None:
                while times:
                    when = pop(times)
                    bucket = buckets.pop(when)
                    self._now = when
                    if len(bucket) == 1:
                        # Most timestamps hold a single event (jittered links
                        # spread arrivals); skip the iterator machinery.
                        entry = bucket[0]
                        fn = entry[0]
                        if fn is None:
                            if self._cancelled > 0:
                                self._cancelled -= 1
                            continue
                        fn(*entry[1])
                        executed += 1
                        if self._stopped:
                            return
                        continue
                    tail = iter(bucket)
                    for entry in tail:
                        fn = entry[0]
                        if fn is None:
                            if self._cancelled > 0:
                                self._cancelled -= 1
                            continue
                        fn(*entry[1])
                        executed += 1
                        if self._stopped:
                            self._requeue(when, list(tail))
                            return
            elif max_events is None:
                while times:
                    when = times[0]
                    if when > until:
                        self._now = until
                        return
                    pop(times)
                    bucket = buckets.pop(when)
                    self._now = when
                    if len(bucket) == 1:
                        entry = bucket[0]
                        fn = entry[0]
                        if fn is None:
                            if self._cancelled > 0:
                                self._cancelled -= 1
                            continue
                        fn(*entry[1])
                        executed += 1
                        if self._stopped:
                            return
                        continue
                    tail = iter(bucket)
                    for entry in tail:
                        fn = entry[0]
                        if fn is None:
                            if self._cancelled > 0:
                                self._cancelled -= 1
                            continue
                        fn(*entry[1])
                        executed += 1
                        if self._stopped:
                            self._requeue(when, list(tail))
                            return
            else:
                while times:
                    when = times[0]
                    if until is not None and when > until:
                        self._now = until
                        return
                    pop(times)
                    tail = iter(buckets.pop(when))
                    self._now = when
                    for entry in tail:
                        fn = entry[0]
                        if fn is None:
                            if self._cancelled > 0:
                                self._cancelled -= 1
                            continue
                        fn(*entry[1])
                        executed += 1
                        if self._stopped or executed > max_events:
                            self._requeue(when, list(tail))
                            if self._stopped:
                                return
                            raise SimulationError(f"exceeded max_events={max_events}")
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            # Batched: per-event `self._processed += 1` is measurable, and no
            # caller observes the counter while an event callback is running.
            self._processed += executed

    def run_until_idle(self, max_events: int | None = None) -> None:
        """Run until no events remain (alias of ``run()`` with a guard)."""
        self.run(until=None, max_events=max_events)
