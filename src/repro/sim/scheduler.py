"""Deterministic discrete-event scheduler.

Events are ``(time, seq, callback, args)`` entries in a binary heap.  The
monotonically increasing sequence number breaks ties between events scheduled
for the same instant, which makes every run fully deterministic: two runs with
the same seeds schedule the same events in the same order.

The hot path (``schedule`` + ``run``) is deliberately lean — benchmark runs
push millions of message-delivery events through it.  Tracing adds no
per-event work: the run loop is wrapped (not instrumented inside), and the
per-run ``sim.run`` span carries event counts and wall-clock per simulated
second.

Cancelled events stay in the heap (O(1) cancellation) but are *compacted*
away once they dominate: timer-heavy workloads (one leader timer per node per
round, almost always cancelled) would otherwise pay a heap-pop per dead entry.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Any, Callable

from ..analysis import sanitizers as _sanitizers
from ..errors import SimulationError
from ..obs.tracer import NULL_TRACER


class EventHandle:
    """Handle to a scheduled event; allows cancellation.

    Cancellation is O(1): the entry stays in the heap but its callback is
    cleared, and the run loop skips it.  The owning simulator counts
    cancellations so it can compact the heap when dead entries dominate.
    """

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: list, sim: "Simulator | None" = None) -> None:
        self._entry = entry
        self._sim = sim

    @property
    def time(self) -> float:
        """Simulated time at which the event fires (or would have fired)."""
        return self._entry[0]

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._entry[2] is None:
            return
        self._entry[2] = None
        self._entry[3] = ()
        if self._sim is not None:
            self._sim._note_cancelled()


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        tracer: optional :class:`repro.obs.Tracer`; when enabled, each
            ``run()`` call emits a ``sim.run`` span with event counts and
            wall-clock attribution.  Disabled cost: one attribute check per
            ``run()`` call (never per event).
        compact_threshold: once at least this many cancelled entries are
            pending *and* they make up half the heap, the heap is rebuilt
            without them.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_stopped",
        "_processed",
        "_cancelled",
        "_compact_threshold",
        "_compactions",
        "_tracer",
        "_audit",
    )

    def __init__(self, tracer=None, compact_threshold: int = 1024) -> None:
        self._now = 0.0
        self._queue: list[list] = []
        self._seq = 0
        self._stopped = False
        self._processed = 0
        self._cancelled = 0
        self._compact_threshold = compact_threshold
        self._compactions = 0
        self._tracer = tracer if tracer is not None else NULL_TRACER
        # One simulator = one run: creating it is the sanitizer run boundary.
        # Off (the default), _audit is None and scheduling pays one None
        # check; on, every (time, callback) insertion feeds the tie auditor.
        if _sanitizers.enabled():
            _sanitizers.begin_run()
            self._audit = _sanitizers.TieAudit()
        else:
            self._audit = None

    @property
    def tie_audit(self):
        """The ``REPRO_SANITIZE=1`` tie-order auditor (None when off)."""
        return self._audit

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def tracer(self):
        return self._tracer

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled entries still occupying the heap."""
        return self._cancelled

    @property
    def compactions(self) -> int:
        """Times the heap was rebuilt to shed cancelled entries."""
        return self._compactions

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        self._seq += 1
        entry = [when, self._seq, fn, args]
        heapq.heappush(self._queue, entry)
        if self._audit is not None:
            self._audit.note(when, fn)
        return EventHandle(entry, self)

    def post(self, when: float, fn: Callable[..., Any], args: tuple) -> None:
        """Hot-path variant of :meth:`schedule_at`: no handle, no cancellation.

        Used by the network for message deliveries (millions per run); the
        EventHandle allocation of :meth:`schedule_at` is measurable there.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        self._seq += 1
        heapq.heappush(self._queue, [when, self._seq, fn, args])
        if self._audit is not None:
            self._audit.note(when, fn)

    def stop(self) -> None:
        """Make :meth:`run` return after the current event finishes."""
        self._stopped = True

    def _note_cancelled(self) -> None:
        """Called by :class:`EventHandle` when an entry is cancelled."""
        self._cancelled += 1
        if (
            self._cancelled >= self._compact_threshold
            and self._cancelled * 2 >= len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (O(live) instead of
        O(dead · log n) pops in the run loop).

        In-place (slice assignment) on purpose: the run loop holds a local
        alias to the queue list, and cancellations — hence compactions — can
        happen inside an event callback while the loop is mid-iteration.
        """
        live = [entry for entry in self._queue if entry[2] is not None]
        self._queue[:] = live
        heapq.heapify(self._queue)
        self._cancelled = 0
        self._compactions += 1

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in time order.

        Args:
            until: stop once simulated time would exceed this instant; the
                clock is advanced to ``until`` exactly.  Events at ``until``
                itself are executed.
            max_events: safety valve — raise :class:`SimulationError` if more
                than this many events execute (runaway-protocol guard).
        """
        tracer = self._tracer
        if not tracer.enabled:
            self._run_loop(until, max_events)
            return
        wall_start = _time.perf_counter()
        sim_start = self._now
        processed_before = self._processed
        try:
            self._run_loop(until, max_events)
        finally:
            wall = _time.perf_counter() - wall_start
            executed = self._processed - processed_before
            advanced = self._now - sim_start
            tracer.span(
                "sim.run",
                start=sim_start,
                end=self._now,
                events=executed,
                wall_s=round(wall, 6),
                wall_per_sim_s=round(wall / advanced, 6) if advanced > 0 else None,
                events_per_wall_s=round(executed / wall) if wall > 0 else None,
                pending=len(self._queue),
            )

    def _run_loop(self, until: float | None, max_events: int | None) -> None:
        # The loop bodies below are deliberately duplicated per (until,
        # max_events) combination: benchmark runs execute millions of events,
        # and hoisting the two `is not None` checks out of the loop is a
        # measurable fraction of per-event overhead.  Entries are indexed
        # rather than unpacked so cancelled entries (timer-heavy workloads)
        # skip without touching their dead args.
        self._stopped = False
        queue = self._queue
        pop = heapq.heappop
        executed = 0
        try:
            if until is None and max_events is None:
                while queue and not self._stopped:
                    entry = pop(queue)
                    fn = entry[2]
                    if fn is None:
                        if self._cancelled > 0:
                            self._cancelled -= 1
                        continue
                    self._now = entry[0]
                    fn(*entry[3])
                    executed += 1
            elif max_events is None:
                while queue and not self._stopped:
                    if queue[0][0] > until:
                        self._now = until
                        return
                    entry = pop(queue)
                    fn = entry[2]
                    if fn is None:
                        if self._cancelled > 0:
                            self._cancelled -= 1
                        continue
                    self._now = entry[0]
                    fn(*entry[3])
                    executed += 1
            else:
                while queue and not self._stopped:
                    if until is not None and queue[0][0] > until:
                        self._now = until
                        return
                    entry = pop(queue)
                    fn = entry[2]
                    if fn is None:
                        if self._cancelled > 0:
                            self._cancelled -= 1
                        continue
                    self._now = entry[0]
                    fn(*entry[3])
                    executed += 1
                    if executed > max_events:
                        raise SimulationError(f"exceeded max_events={max_events}")
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            # Batched: per-event `self._processed += 1` is measurable, and no
            # caller observes the counter while an event callback is running.
            self._processed += executed

    def run_until_idle(self, max_events: int | None = None) -> None:
        """Run until no events remain (alias of ``run()`` with a guard)."""
        self.run(until=None, max_events=max_events)
