"""repro — clan-based DAG BFT SMR (EuroSys'26 reproduction).

A from-scratch implementation of *Towards Improving Throughput and
Scalability of DAG-based BFT SMR* (Shrestha & Kate): tribe-assisted reliable
broadcast, single-clan and multi-clan Sailfish, the committee statistics
behind them, and a benchmark harness regenerating every table and figure.

Quick start::

    from repro.committees import ClanConfig
    from repro.smr import SmrRuntime

    runtime = SmrRuntime(ClanConfig.single_clan(n=100, n_c=60, seed=1))
    client = runtime.new_client("alice")
    runtime.start()
    txn = runtime.submit(client, ("set", "x", 42))
    runtime.run(until=5.0)
    assert client.result_of(txn.txn_id) == 42

See README.md for the architecture map and DESIGN.md / EXPERIMENTS.md for
the reproduction record.
"""

__version__ = "1.0.0"

__all__ = [
    "bench",
    "committees",
    "consensus",
    "crypto",
    "dag",
    "net",
    "rbc",
    "sim",
    "smr",
    "strawman",
]
