"""Clan configuration: the one object that selects the protocol variant.

The consensus core (DAG construction, commit and ordering rules) is identical
across the paper's three protocols; they differ only in *who proposes blocks*
and *where blocks are disseminated*:

* **baseline Sailfish** — one clan containing the whole tribe; every party
  proposes blocks; blocks go to everyone (standard RBC behaviour).
* **single-clan** — one elected clan with honest majority whp; only clan
  members propose blocks; blocks go only to the clan.
* **multi-clan** — the tribe partitioned into ``q`` clans; every party
  proposes blocks; each block goes only to the proposer's clan.

:class:`ClanConfig` captures exactly that and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CommitteeError
from ..types import (
    NodeId,
    clan_max_faults,
    clan_response_quorum,
    max_faults,
    quorum_size,
)
from .election import elect_clan, partition_clans


@dataclass(frozen=True)
class ClanConfig:
    """Immutable description of the clan structure of a run."""

    n: int
    mode: str
    clans: tuple[frozenset[NodeId], ...]
    block_proposers: frozenset[NodeId]
    _clan_of: dict[NodeId, int] = field(repr=False, compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise CommitteeError(f"tribe size must be positive, got {self.n}")
        seen: set[NodeId] = set()
        for clan in self.clans:
            if not clan:
                raise CommitteeError("clans must be non-empty")
            overlap = seen & clan
            if overlap:
                raise CommitteeError(f"clans overlap on parties {sorted(overlap)}")
            if any(not 0 <= p < self.n for p in clan):
                raise CommitteeError("clan member out of tribe range")
            seen |= clan
        if not self.block_proposers:
            raise CommitteeError("need at least one block proposer")
        object.__setattr__(self, "_clan_of", self._build_clan_of())
        # Every block proposer must be able to validate/execute, i.e. belong
        # to the clan its blocks go to (§5: only clan members propose blocks).
        for proposer in self.block_proposers:
            if self.clan_index_of(proposer) is None:
                raise CommitteeError(f"block proposer {proposer} belongs to no clan")

    def _build_clan_of(self) -> dict[NodeId, int]:
        mapping: dict[NodeId, int] = {}
        for idx, clan in enumerate(self.clans):
            for party in clan:
                mapping[party] = idx
        return mapping

    # -- structure queries -------------------------------------------------

    @property
    def f(self) -> int:
        """Tribe-level fault bound f = floor((n-1)/3)."""
        return max_faults(self.n)

    @property
    def quorum(self) -> int:
        """Tribe-level Byzantine quorum (see types.quorum_size)."""
        return quorum_size(self.n)

    @property
    def ready_amplify(self) -> int:
        """READYs that prove one honest sender at tribe level: f + 1."""
        return self.f + 1

    @property
    def num_clans(self) -> int:
        return len(self.clans)

    def clan(self, idx: int) -> frozenset[NodeId]:
        return self.clans[idx]

    def clan_index_of(self, party: NodeId) -> int | None:
        """Index of the clan ``party`` belongs to, or ``None`` if outside all."""
        if self._clan_of:
            return self._clan_of.get(party)
        for idx, clan in enumerate(self.clans):
            if party in clan:
                return idx
        return None

    def clan_faults(self, idx: int) -> int:
        """f_c for clan ``idx``: honest majority tolerates ceil(n_c/2)-1 faults."""
        return clan_max_faults(len(self.clans[idx]))

    def clan_echo_quorum(self, idx: int) -> int:
        """ECHOs required *from the clan* in tribe-assisted RBC: f_c + 1."""
        return self.clan_faults(idx) + 1

    def clan_client_quorum(self, idx: int) -> int:
        """Matching replies a client needs from clan ``idx``: f_c + 1."""
        return clan_response_quorum(len(self.clans[idx]))

    def is_block_proposer(self, party: NodeId) -> bool:
        return party in self.block_proposers

    def block_clan_of(self, proposer: NodeId) -> int:
        """Which clan receives the blocks proposed by ``proposer``."""
        idx = self.clan_index_of(proposer)
        if idx is None:
            raise CommitteeError(
                f"party {proposer} proposes no blocks (outside every clan)"
            )
        return idx

    def executes(self, party: NodeId) -> bool:
        """Whether ``party`` executes transactions (i.e. is in some clan)."""
        return self.clan_index_of(party) is not None

    # -- constructors --------------------------------------------------------

    @staticmethod
    def baseline(n: int) -> "ClanConfig":
        """Plain Sailfish: everyone is in the (single) clan, everyone proposes."""
        everyone = frozenset(range(n))
        return ClanConfig(n=n, mode="baseline", clans=(everyone,), block_proposers=everyone)

    @staticmethod
    def single_clan(n: int, n_c: int, seed: int = 0) -> "ClanConfig":
        """One elected clan; only clan members propose blocks (§5)."""
        clan = elect_clan(n, n_c, seed)
        return ClanConfig(n=n, mode="single-clan", clans=(clan,), block_proposers=clan)

    @staticmethod
    def multi_clan(n: int, q: int, seed: int = 0) -> "ClanConfig":
        """Tribe partitioned into ``q`` clans; every party proposes (§6)."""
        clans = tuple(partition_clans(n, q, seed))
        return ClanConfig(
            n=n, mode="multi-clan", clans=clans, block_proposers=frozenset(range(n))
        )
