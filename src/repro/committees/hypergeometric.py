"""Exact single-clan security statistics (paper §5, Eq. 1–2; Fig. 1).

When a clan of ``n_c`` parties is sampled uniformly without replacement from a
tribe of ``n`` parties containing ``f`` Byzantine ones, the number of
Byzantine clan members is hypergeometric.  The clan loses its honest majority
when Byzantine members reach ``ceil(n_c / 2)`` (i.e. ``f_c < n_c/2`` fails),
so the failure probability is the upper hypergeometric tail of Eq. 1.

All computations are exact (big-integer binomials via :func:`math.comb`,
converted to float only at the end), because the probabilities of interest
(1e-6 .. 1e-9) are far below where naive floating summation is trustworthy.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb

from ..errors import CommitteeError
from ..types import max_faults


def _validate(n: int, f: int, n_c: int) -> None:
    if n < 1:
        raise CommitteeError(f"tribe size must be positive, got {n}")
    if not 0 <= f <= n:
        raise CommitteeError(f"fault count f={f} out of range for n={n}")
    if not 1 <= n_c <= n:
        raise CommitteeError(f"clan size n_c={n_c} out of range for n={n}")


def dishonest_majority_prob(n: int, f: int, n_c: int) -> float:
    """Exact probability that a sampled clan of ``n_c`` lacks an honest majority.

    Implements Eq. 1: ``sum_{k=ceil(n_c/2)}^{n_c} C(f,k) C(n-f, n_c-k) / C(n, n_c)``.

    >>> dishonest_majority_prob(4, 1, 4)
    0.0
    >>> dishonest_majority_prob(4, 2, 4)
    1.0
    """
    _validate(n, f, n_c)
    threshold = (n_c + 1) // 2  # ceil(n_c / 2): smallest dishonest-majority count
    honest = n - f
    numerator = 0
    upper = min(f, n_c)
    for k in range(threshold, upper + 1):
        remaining = n_c - k
        if remaining > honest:
            continue
        numerator += comb(f, k) * comb(honest, remaining)
    if numerator == 0:
        return 0.0
    return float(Fraction(numerator, comb(n, n_c)))


def min_clan_size(n: int, f: int | None = None, failure_prob: float = 1e-9) -> int:
    """Smallest clan size whose dishonest-majority probability is ≤ ``failure_prob``.

    This is the quantity plotted in the paper's Fig. 1 (with
    ``failure_prob = 1e-9``) and used in §7 to pick clans of 32/60/80 for
    n = 50/100/150 at ``failure_prob ≈ 1e-6``.

    The tail probability is not strictly monotone in ``n_c`` step-by-step
    (parity of the majority threshold matters), so we scan upward and return
    the first size that satisfies the bound for itself; callers who need
    robustness to off-by-one parity effects get the first adequate size.
    """
    if not 0.0 < failure_prob < 1.0:
        raise CommitteeError(f"failure probability must be in (0,1), got {failure_prob}")
    f = max_faults(n) if f is None else f
    _validate(n, f, max(1, min(n, 1)))
    for n_c in range(1, n + 1):
        if dishonest_majority_prob(n, f, n_c) <= failure_prob:
            return n_c
    raise CommitteeError(
        f"no clan size up to n={n} meets failure probability {failure_prob}"
    )


def clan_size_curve(
    tribe_sizes: list[int], failure_prob: float = 1e-9
) -> list[tuple[int, int]]:
    """(n, minimal n_c) pairs — the data series behind Fig. 1."""
    return [(n, min_clan_size(n, failure_prob=failure_prob)) for n in tribe_sizes]
