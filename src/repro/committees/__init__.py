"""Clan statistics, sizing, and election.

* :mod:`repro.committees.hypergeometric` — exact single-clan dishonest-majority
  probability (paper Eq. 1–2) and minimal clan-size search (Fig. 1).
* :mod:`repro.committees.multiclan` — exact partition counting for multiple
  disjoint clans (paper §6.2, Eqs. 3–7).
* :mod:`repro.committees.election` — seeded random clan election/partition.
* :mod:`repro.committees.config` — :class:`ClanConfig`, the single object that
  turns the shared consensus core into baseline / single-clan / multi-clan.
"""

from .config import ClanConfig
from .election import elect_clan, partition_clans
from .hypergeometric import dishonest_majority_prob, min_clan_size
from .rotation import ClanSchedule, StaticSchedule
from .multiclan import max_equal_clans, multi_clan_dishonest_prob

__all__ = [
    "dishonest_majority_prob",
    "min_clan_size",
    "multi_clan_dishonest_prob",
    "max_equal_clans",
    "elect_clan",
    "partition_clans",
    "ClanConfig",
    "ClanSchedule",
    "StaticSchedule",
]
