"""Epoch-based clan rotation.

The paper samples clans uniformly at random; in a long-running deployment the
natural hardening is to *re-sample* periodically so no fixed clan stays a
target.  A :class:`ClanSchedule` partitions rounds into epochs of ``E``
rounds and derives each epoch's :class:`~repro.committees.config.ClanConfig`
from a seeded randomness beacon — every honest party computes the same
schedule locally.

The statistical guarantee composes over epochs by a union bound: with
per-epoch failure probability p, a run of ``k`` epochs fails with probability
≤ k·p (choose the per-epoch budget accordingly).
"""

from __future__ import annotations

from ..errors import CommitteeError
from ..sim.rng import stream_seed
from ..types import Round
from .config import ClanConfig


class ClanSchedule:
    """Derives the clan configuration in force for any round.

    Args:
        mode: "baseline" | "single-clan" | "multi-clan".
        n: tribe size.
        epoch_length: rounds per epoch (0 disables rotation — one epoch
            forever, equivalent to a static config).
        clan_size: single-clan size.
        clans: number of clans (multi-clan).
        seed: beacon seed; epoch e uses ``stream_seed(seed, "epoch", e)``.
    """

    def __init__(
        self,
        mode: str,
        n: int,
        epoch_length: int = 0,
        clan_size: int | None = None,
        clans: int = 2,
        seed: int = 0,
    ) -> None:
        if mode not in ("baseline", "single-clan", "multi-clan"):
            raise CommitteeError(f"unknown mode {mode!r}")
        if epoch_length < 0:
            raise CommitteeError("epoch length cannot be negative")
        if mode == "single-clan" and clan_size is None:
            raise CommitteeError("single-clan schedule needs clan_size")
        self.mode = mode
        self.n = n
        self.epoch_length = epoch_length
        self.clan_size = clan_size
        self.clans = clans
        self.seed = seed
        self._cache: dict[int, ClanConfig] = {}

    def epoch_of(self, round_: Round) -> int:
        """The epoch a round belongs to (round 1 starts epoch 0)."""
        if self.epoch_length == 0:
            return 0
        return max(0, (round_ - 1)) // self.epoch_length

    def cfg_at(self, round_: Round) -> ClanConfig:
        """The clan configuration in force for ``round_``."""
        return self.cfg_of_epoch(self.epoch_of(round_))

    def cfg_of_epoch(self, epoch: int) -> ClanConfig:
        cfg = self._cache.get(epoch)
        if cfg is None:
            epoch_seed = stream_seed(self.seed, "epoch", epoch)
            if self.mode == "baseline":
                cfg = ClanConfig.baseline(self.n)
            elif self.mode == "single-clan":
                cfg = ClanConfig.single_clan(self.n, self.clan_size, seed=epoch_seed)
            else:
                cfg = ClanConfig.multi_clan(self.n, self.clans, seed=epoch_seed)
            self._cache[epoch] = cfg
        return cfg

    @staticmethod
    def static(cfg: ClanConfig) -> "StaticSchedule":
        return StaticSchedule(cfg)


class StaticSchedule:
    """A schedule that never rotates (wraps one fixed config)."""

    def __init__(self, cfg: ClanConfig) -> None:
        self.cfg = cfg
        self.epoch_length = 0

    def epoch_of(self, round_: Round) -> int:
        return 0

    def cfg_at(self, round_: Round) -> ClanConfig:
        return self.cfg

    def cfg_of_epoch(self, epoch: int) -> ClanConfig:
        return self.cfg
