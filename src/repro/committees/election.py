"""Seeded random clan election and tribe partitioning.

The paper samples clans uniformly at random (so the hypergeometric analysis
applies) and, for multi-clan, partitions the whole tribe.  Both operations are
driven by a named RNG stream so every simulation run is reproducible.
"""

from __future__ import annotations

from ..errors import CommitteeError
from ..sim.rng import make_rng
from ..types import NodeId


def elect_clan(n: int, n_c: int, seed: int = 0) -> frozenset[NodeId]:
    """Sample a clan of ``n_c`` parties uniformly from a tribe of ``n``.

    >>> clan = elect_clan(10, 4, seed=1)
    >>> len(clan), all(0 <= p < 10 for p in clan)
    (4, True)
    """
    if not 1 <= n_c <= n:
        raise CommitteeError(f"clan size {n_c} out of range for tribe of {n}")
    rng = make_rng(seed, "clan-election", n, n_c)
    return frozenset(rng.sample(range(n), n_c))


def partition_clans(n: int, q: int, seed: int = 0) -> list[frozenset[NodeId]]:
    """Partition the tribe into ``q`` disjoint clans of near-equal size.

    When ``q`` does not divide ``n`` the first ``n % q`` clans get one extra
    member.  The partition is a uniformly random shuffle chunked in order,
    matching the counting model of §6.2.
    """
    if not 1 <= q <= n:
        raise CommitteeError(f"clan count {q} out of range for tribe of {n}")
    rng = make_rng(seed, "clan-partition", n, q)
    order = list(range(n))
    rng.shuffle(order)
    base, extra = divmod(n, q)
    clans: list[frozenset[NodeId]] = []
    index = 0
    for clan_idx in range(q):
        size = base + (1 if clan_idx < extra else 0)
        clans.append(frozenset(order[index : index + size]))
        index += size
    return clans
