"""Exact multi-clan security statistics (paper §6.2, Eqs. 3–7).

When the tribe is *partitioned* into disjoint clans, the clans' Byzantine
counts are dependent, so the single-clan hypergeometric tail (Eq. 1) does not
apply — the paper makes exactly this point against Arete.  Instead we count
partitions: of all ways to deal the ``n`` parties into clans of the given
sizes, how many give *every* clan an honest majority?

The count generalizes the paper's 2-clan (Eq. 3–5) and 3-clan (Eq. 6–7)
derivations to any number of clans with a dynamic program over clans, carrying
the number of Byzantine parties still to be placed.  All arithmetic is exact.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb

from ..errors import CommitteeError
from ..types import clan_max_faults, max_faults


def _validate_partition(n: int, f: int, clan_sizes: list[int]) -> None:
    if n < 1:
        raise CommitteeError(f"tribe size must be positive, got {n}")
    if not 0 <= f <= n:
        raise CommitteeError(f"fault count f={f} out of range for n={n}")
    if not clan_sizes:
        raise CommitteeError("need at least one clan")
    if any(size < 1 for size in clan_sizes):
        raise CommitteeError(f"clan sizes must be positive, got {clan_sizes}")
    if sum(clan_sizes) != n:
        raise CommitteeError(
            f"clan sizes {clan_sizes} must partition the tribe of {n} parties"
        )


def multi_clan_dishonest_prob(n: int, f: int, clan_sizes: list[int]) -> float:
    """Exact probability that *some* clan of the partition lacks honest majority.

    Args:
        n: tribe size; ``clan_sizes`` must sum to ``n``.
        f: number of Byzantine parties in the tribe.
        clan_sizes: sizes of the disjoint clans.

    Returns ``1 - s/N`` per Eq. 5, where ``s`` counts partitions in which every
    clan has at most ``f_c = ceil(n_c/2) - 1`` Byzantine members and ``N`` is
    the total number of partitions into the given (labelled) clan sizes.
    """
    _validate_partition(n, f, clan_sizes)
    honest = n - f

    # Total labelled partitions: choose each clan from the remainder; the last
    # clan is determined, matching the paper's N for 2 and 3 clans.
    total = 1
    remaining = n
    for size in clan_sizes[:-1]:
        total *= comb(remaining, size)
        remaining -= size

    valid = _count_valid(f, honest, clan_sizes)
    if valid == total:
        return 0.0
    return float(1 - Fraction(valid, total))


def _count_valid(f: int, honest: int, clan_sizes: list[int]) -> int:
    """Count partitions where every clan has ≤ f_c Byzantine members.

    DP state: Byzantine parties left to place (honest-left is implied by how
    many parties have been placed so far).
    """
    ways: dict[int, int] = {f: 1}
    placed = 0
    for idx, size in enumerate(clan_sizes):
        last = idx == len(clan_sizes) - 1
        f_c = clan_max_faults(size)
        new_ways: dict[int, int] = {}
        for byz_left, count in ways.items():
            honest_left = honest - (placed - (f - byz_left))
            low = max(0, size - honest_left)
            high = min(f_c, byz_left, size)
            for w in range(low, high + 1):
                if last and byz_left != w:
                    continue
                contrib = count * comb(byz_left, w) * comb(honest_left, size - w)
                if contrib:
                    key = byz_left - w
                    new_ways[key] = new_ways.get(key, 0) + contrib
        ways = new_ways
        placed += size
        if not ways:
            return 0
    return ways.get(0, 0)


def equal_partition_prob(n: int, q: int, f: int | None = None) -> float:
    """Dishonest-majority probability for a partition into ``q`` equal clans.

    Requires ``q`` to divide ``n``; matches the paper's n=150/q=2 and
    n=387/q=3 concrete numbers.
    """
    if q < 1:
        raise CommitteeError(f"clan count must be positive, got {q}")
    if n % q != 0:
        raise CommitteeError(f"q={q} does not divide n={n}")
    f = max_faults(n) if f is None else f
    return multi_clan_dishonest_prob(n, f, [n // q] * q)


def max_equal_clans(n: int, failure_prob: float, f: int | None = None) -> int:
    """Largest ``q`` (dividing ``n``) with partition failure ≤ ``failure_prob``.

    Returns 1 when no multi-clan partition meets the bound (a single clan of
    the whole tribe trivially has an honest majority since f < n/3).
    """
    if not 0.0 < failure_prob < 1.0:
        raise CommitteeError(f"failure probability must be in (0,1), got {failure_prob}")
    best = 1
    for q in range(2, n + 1):
        if n % q != 0:
            continue
        if n // q < 3:
            break
        if equal_partition_prob(n, q, f) <= failure_prob:
            best = q
    return best
