"""Experiment runner: one simulated configuration → one metrics row."""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..committees.config import ClanConfig
from ..consensus.deployment import Deployment
from ..consensus.params import ProtocolParams
from ..errors import ConfigError
from ..net.cpu import CpuModel
from ..net.faults import LossyLink
from ..net.latency import gcp_latency_model
from ..smr.mempool import SyntheticWorkload
from .metrics import RunMetrics, measure_run


@dataclass(frozen=True)
class ExperimentConfig:
    """One simulated data point of a figure.

    Args:
        protocol: "sailfish" | "single-clan" | "multi-clan".
        n: tribe size.
        txns_per_proposal: the paper's load knob.
        clan_size: single-clan size (required for single-clan).
        clans: number of clans (multi-clan).
        bandwidth_bps: per-node NIC bandwidth.
        duration: simulated seconds.
        warmup: measurement starts here.
        leader_timeout: the stability knob (rounds outlasting it thrash).
        cpu_per_message: receive-side per-message processing cost; models the
            crypto/storage latency growth with n reported in §7.
        track_kinds: collect per-message-kind traffic stats (surfaced on
            :class:`~repro.bench.metrics.RunMetrics`).
        drop_rate / duplicate_rate: seeded wire-level loss/duplication
            (:class:`~repro.net.faults.LossyLink`); chaos-flavoured grid
            points stay plain configs, so they shard and cache like any other.
        reliable: run over the retransmitting reliable transport (required
            for liveness whenever ``drop_rate`` > 0).
        rbc_mode: RBC variant for vertex dissemination (see
            :class:`~repro.consensus.params.ProtocolParams`); lets sweeps
            compare the optimistic fast path and the certified-prefix rule
            against the signed two-round baseline.
        edge_mode: "full" (paper baseline) or "sparse" (Clownfish-style
            reduced strong-edge fan-out with the compensating any-edge
            commit rule; see :class:`~repro.consensus.params.ProtocolParams`).
        edge_fanout: strong edges per non-leader vertex in sparse mode
            (0 = auto ~log2 n).
    """

    protocol: str
    n: int
    txns_per_proposal: int
    clan_size: int | None = None
    clans: int = 2
    bandwidth_bps: float = 1.6e9
    duration: float = 8.0
    warmup: float = 2.0
    leader_timeout: float = 4.0
    cpu_per_message: float = 0.0
    seed: int = 7
    jitter: float = 0.05
    track_kinds: bool = False
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reliable: bool = False
    rbc_mode: str = "two-round"
    edge_mode: str = "full"
    edge_fanout: int = 0

    def clan_config(self) -> ClanConfig:
        if self.protocol == "sailfish":
            return ClanConfig.baseline(self.n)
        if self.protocol == "single-clan":
            if self.clan_size is None:
                raise ConfigError("single-clan needs clan_size")
            return ClanConfig.single_clan(self.n, self.clan_size, seed=self.seed)
        if self.protocol == "multi-clan":
            return ClanConfig.multi_clan(self.n, self.clans, seed=self.seed)
        raise ConfigError(f"unknown protocol {self.protocol!r}")


def run_experiment(
    config: ExperimentConfig,
    max_events: int | None = None,
    tracer=None,
    monitors: bool = False,
) -> RunMetrics:
    """Run one configuration end to end and measure it.

    Signature verification is disabled (all-honest measurement runs, as in
    the paper's throughput experiments); the CPU model still charges
    processing time in *simulated* time.

    Args:
        tracer: optional :class:`repro.obs.Tracer`; threads through the whole
            stack, so any benchmark gains per-stage breakdowns by passing one.
        monitors: attach the forensics monitor suite
            (:class:`repro.forensics.monitors.MonitorSuite`) for the run.
            Purely observational — the returned metrics (including
            ``sim_events``) are bit-identical either way, which
            ``tests/forensics/test_monitors.py`` enforces.

    When ``REPRO_CACHE=1`` is set (and neither a tracer nor monitors are
    attached), results are served from / stored into the content-addressed
    cache of :mod:`repro.bench.parallel`; grid sweeps get caching by default
    through :func:`repro.bench.parallel.run_grid` instead.
    """
    if tracer is None and not monitors and os.environ.get("REPRO_CACHE") == "1":
        from .parallel import run_grid

        return run_grid([config], jobs=1, cache=True, max_events=max_events)[0]
    return _simulate(config, max_events=max_events, tracer=tracer, monitors=monitors)


def _simulate(
    config: ExperimentConfig,
    max_events: int | None = None,
    tracer=None,
    monitors: bool = False,
) -> RunMetrics:
    """The uncached simulation path behind :func:`run_experiment`."""
    workload = SyntheticWorkload(txns_per_proposal=config.txns_per_proposal)
    params = ProtocolParams(
        rbc_mode=config.rbc_mode,
        verify_signatures=False,
        leader_timeout=config.leader_timeout,
        edge_mode=config.edge_mode,
        edge_fanout=config.edge_fanout,
    )
    cpu = CpuModel(per_message=config.cpu_per_message) if config.cpu_per_message else None
    faults = None
    if config.drop_rate or config.duplicate_rate:
        faults = LossyLink(
            config.drop_rate, duplicate_prob=config.duplicate_rate, seed=config.seed
        )
    deployment = Deployment(
        config.clan_config(),
        params,
        latency=gcp_latency_model(config.n, jitter=config.jitter, seed=config.seed),
        bandwidth_bps=config.bandwidth_bps,
        cpu=cpu,
        make_block=workload.make_block,
        seed=config.seed,
        tracer=tracer,
        track_kinds=config.track_kinds,
        faults=faults,
        reliable=config.reliable,
    )
    suite = None
    if monitors:
        from ..forensics.monitors import MonitorSuite

        suite = MonitorSuite(tracer=tracer).attach(deployment)
    deployment.start()
    deployment.run(until=config.duration, max_events=max_events)
    if suite is not None:
        suite.finish()
    return measure_run(deployment, workload, config.warmup, config.duration)


def sim_scale() -> float:
    """Benchmark scale factor from the environment.

    ``REPRO_SCALE=1.0`` runs paper-sized simulations (n = 50/100/150 — hours
    of CPU); the default 0.3 scales tribe and clan sizes down proportionally
    (n = 15/30/45), which preserves the clan/tribe ratios that drive every
    result shape.
    """
    return float(os.environ.get("REPRO_SCALE", "0.3"))


def scaled(value: int, minimum: int = 4) -> int:
    return max(minimum, round(value * sim_scale()))
