"""Throughput and latency metrics from a simulated run.

Follows the paper's methodology (§7):

* **Latency** — average time between the *creation* of a transaction (when
  the proposer packed it into a block) and its *commit by all non-faulty
  nodes* (the max over honest nodes' ordering times of that block's vertex).
* **Throughput** — committed transactions per second, measured over the
  steady-state window (after a warm-up, before the tail).

Block sizes and creation times come from the
:class:`~repro.smr.mempool.SyntheticWorkload` oracle, because in the clan
protocols most nodes never see block bodies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..consensus.deployment import Deployment
from ..errors import ConfigError
from ..smr.mempool import SyntheticWorkload


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate results of one simulated configuration."""

    throughput_tps: float
    avg_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    committed_txns: int
    committed_blocks: int
    rounds: int
    window_s: float
    total_bytes: int
    total_messages: int
    #: Simulator events executed during the run — the deterministic
    #: denominator of the events/sec core-speed metric (scripts/bench_smoke).
    sim_events: int = 0
    #: Per-message-kind traffic; empty unless the run tracked kinds
    #: (``Network(track_kinds=True)`` / ``ExperimentConfig.track_kinds``).
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    messages_by_kind: dict[str, int] = field(default_factory=dict)

    def row(self) -> dict:
        return {
            "throughput_ktps": round(self.throughput_tps / 1000.0, 2),
            "avg_latency_s": round(self.avg_latency_s, 3),
            "p95_latency_s": round(self.p95_latency_s, 3),
            "rounds": self.rounds,
            "committed_txns": self.committed_txns,
        }


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def measure_run(
    deployment: Deployment,
    workload: SyntheticWorkload,
    warmup: float,
    end: float,
) -> RunMetrics:
    """Compute metrics from a finished run.

    Args:
        warmup: ignore blocks committed before this simulated time.
        end: end of the measurement window (usually the run duration).
    """
    if end <= warmup:
        raise ConfigError("measurement window must have positive length")
    honest = deployment.honest_ids
    # Commit time of a block at *all* honest nodes = max over nodes.
    commit_at: dict[bytes, float] = {}
    seen_by: dict[bytes, int] = {}
    for node_id in honest:
        for vertex, when in deployment.nodes[node_id].ordered_log:
            digest = vertex.block_digest
            if digest is None:
                continue
            seen_by[digest] = seen_by.get(digest, 0) + 1
            previous = commit_at.get(digest)
            if previous is None or when > previous:
                commit_at[digest] = when
    needed = len(honest)
    committed_txns = 0
    committed_blocks = 0
    latencies: list[float] = []
    for digest, count in seen_by.items():
        if count < needed:
            continue  # not yet committed by all non-faulty nodes
        when = commit_at[digest]
        if not warmup <= when <= end:
            continue
        txn_count, created_at = workload.blocks[digest]
        committed_blocks += 1
        committed_txns += txn_count
        latencies.append(when - created_at)
    latencies.sort()
    window = end - warmup
    avg = sum(latencies) / len(latencies) if latencies else float("nan")
    network = deployment.network
    # Per-kind counters are only populated when the network tracks kinds;
    # guard the read so un-tracked runs report empty dicts, not stale
    # defaultdict state.
    if network.track_kinds:
        bytes_by_kind = dict(network.stats.bytes_by_kind)
        messages_by_kind = dict(network.stats.messages_by_kind)
    else:
        bytes_by_kind = {}
        messages_by_kind = {}
    return RunMetrics(
        throughput_tps=committed_txns / window,
        avg_latency_s=avg,
        p50_latency_s=_percentile(latencies, 0.50),
        p95_latency_s=_percentile(latencies, 0.95),
        committed_txns=committed_txns,
        committed_blocks=committed_blocks,
        rounds=min(deployment.nodes[i].round for i in honest),
        window_s=window,
        total_bytes=deployment.network.stats.total_bytes,
        total_messages=deployment.network.stats.total_messages,
        sim_events=deployment.sim.processed_events,
        bytes_by_kind=bytes_by_kind,
        messages_by_kind=messages_by_kind,
    )
