"""Plain-text table and CSV reporting for experiment results.

Benchmarks write their rows to ``results/`` (CSV) and return formatted
tables; EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import csv
import os


def format_table(rows: list[dict], title: str = "") -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(row.get(c, ""))) for row in rows))
        for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def write_csv(rows: list[dict], path: str) -> str:
    """Write rows to CSV, creating parent directories; returns the path."""
    if not rows:
        raise ValueError("no rows to write")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path


def results_path(name: str) -> str:
    """Canonical results location: ``<repo>/results/<name>``."""
    root = os.environ.get("REPRO_RESULTS_DIR", "results")
    return os.path.join(root, name)
