"""Profile-guided optimization tooling: cProfile wrapper + hot-function report.

``python -m repro profile <target>`` runs one deterministic experiment under
:mod:`cProfile` and prints

* the top-N hot functions (sorted by ``tottime`` — where the interpreter
  actually spends its cycles), and
* the run's core-speed number (simulator events per wall second), the same
  metric ``scripts/bench_smoke.py`` gates in CI.

With ``--trace`` the run also carries a :class:`~repro.obs.Tracer`, so the
report correlates the wall-clock hot spots with the *simulated-time* per-hop
decomposition (NIC wait → tx → propagation → CPU wait → CPU) of
:mod:`repro.bench.trace_report`: the first table says where the *simulator*
burns host CPU, the second where the *modelled network* spends simulated
seconds.  Optimizations driven from here must leave the second table (and all
simulated metrics) bit-identical — only the first is allowed to change.

The hot-path inventory and before/after numbers live in docs/PERFORMANCE.md.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from .metrics import RunMetrics
from .reporting import format_table
from .runner import ExperimentConfig, _simulate

#: The canonical perf-smoke configuration (also the default profile target):
#: small enough for <60 s wall anywhere, big enough to exercise RBC, commit,
#: and the NIC queueing model.  ``scripts/bench_smoke.py`` runs exactly this.
SMOKE_CONFIG = ExperimentConfig(
    protocol="single-clan",
    n=12,
    clan_size=6,
    txns_per_proposal=250,
    bandwidth_bps=400e6,
    duration=6.0,
    warmup=2.0,
)

#: Named profile targets: name → (description, config).
PROFILE_TARGETS: dict[str, tuple[str, ExperimentConfig]] = {
    "smoke": ("the CI perf-smoke run (single-clan n=12/6, load 250)", SMOKE_CONFIG),
    "sailfish": (
        "baseline Sailfish at the smoke geometry (all-to-all traffic)",
        ExperimentConfig(
            protocol="sailfish",
            n=12,
            txns_per_proposal=250,
            bandwidth_bps=400e6,
            duration=6.0,
            warmup=2.0,
        ),
    ),
    "fig5a": (
        "one scaled fig5a point (single-clan, load 1000)",
        ExperimentConfig(
            protocol="single-clan",
            n=15,
            clan_size=10,
            txns_per_proposal=1000,
            bandwidth_bps=400e6,
            duration=8.0,
            warmup=2.0,
        ),
    ),
}


@dataclass
class ProfileReport:
    """One profiled run: wall-clock, core speed, and the hot-function table."""

    target: str
    wall_s: float
    sim_events: int
    metrics: RunMetrics
    hot: list[dict[str, Any]] = field(default_factory=list)
    #: Per-hop simulated-time decomposition (only when traced).
    hop_stages: list[dict[str, Any]] = field(default_factory=list)

    @property
    def events_per_sec(self) -> float:
        return self.sim_events / self.wall_s if self.wall_s > 0 else 0.0


def profile_call(fn: Callable, *args: Any, **kwargs: Any):
    """Run ``fn`` under cProfile; returns ``(value, profiler, wall_s)``."""
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    try:
        value = fn(*args, **kwargs)
    finally:
        profiler.disable()
    return value, profiler, time.perf_counter() - start


def _where(filename: str, lineno: int, name: str) -> str:
    if filename.startswith("~") or filename.startswith("<"):
        return f"{{{name}}}"  # builtins / C calls
    parts = filename.replace(os.sep, "/").rsplit("/", 2)
    short = "/".join(parts[-2:])
    return f"{short}:{lineno}({name})"


def hot_functions(profiler: cProfile.Profile, top: int = 20) -> list[dict[str, Any]]:
    """The ``top`` functions by own-time, as table rows."""
    stats = pstats.Stats(profiler)
    entries = sorted(
        stats.stats.items(), key=lambda item: item[1][2], reverse=True  # tottime
    )
    rows = []
    for (filename, lineno, name), (_cc, ncalls, tottime, cumtime, _callers) in entries[
        :top
    ]:
        rows.append(
            {
                "function": _where(filename, lineno, name),
                "calls": ncalls,
                "tottime_s": round(tottime, 3),
                "cumtime_s": round(cumtime, 3),
                "us/call": round(1e6 * tottime / ncalls, 2) if ncalls else 0.0,
            }
        )
    return rows


def profile_experiment(
    config: ExperimentConfig,
    target: str = "custom",
    max_events: int | None = None,
    top: int = 20,
    trace: bool = False,
) -> tuple[ProfileReport, cProfile.Profile]:
    """Profile one (uncached, in-process) experiment run.

    Always simulates — the result cache is bypassed on purpose; a cache hit
    would profile JSON parsing, not the simulator.
    """
    tracer = None
    if trace:
        from ..obs import Tracer

        tracer = Tracer()
    metrics, profiler, wall = profile_call(
        _simulate, config, max_events=max_events, tracer=tracer
    )
    report = ProfileReport(
        target=target,
        wall_s=wall,
        sim_events=metrics.sim_events,
        metrics=metrics,
        hot=hot_functions(profiler, top=top),
    )
    if tracer is not None:
        from .trace_report import hop_stage_table

        report.hop_stages = hop_stage_table(tracer)
    return report, profiler


def format_profile_report(report: ProfileReport) -> str:
    """Render a :class:`ProfileReport` as aligned text tables."""
    sections = [
        format_table(
            [
                {
                    "target": report.target,
                    "wall_s": round(report.wall_s, 3),
                    "sim_events": report.sim_events,
                    "events/sec": f"{report.events_per_sec:,.0f}",
                    "throughput_ktps": round(report.metrics.throughput_tps / 1e3, 2),
                    "rounds": report.metrics.rounds,
                }
            ],
            "Profiled run (events/sec = host core speed; simulated metrics must "
            "not move under optimization)",
        ),
        format_table(report.hot, f"Hot functions (top {len(report.hot)} by own time)"),
    ]
    if report.hop_stages:
        sections.append(
            format_table(
                report.hop_stages,
                "Per-hop decomposition, simulated time (tracer correlation — "
                "optimizations must leave this table unchanged)",
            )
        )
    return "\n\n".join(sections)
