"""Text-mode scatter plots for figure curves.

The benches and CLI render the Fig. 5 throughput-vs-latency curves as ASCII
scatter plots so the reproduction's shapes are inspectable without any
plotting dependency.  One character glyph per protocol; points that collide
show the later series' glyph.
"""

from __future__ import annotations

from ..errors import ConfigError

#: Default glyph per protocol series.
GLYPHS = {"sailfish": "s", "single-clan": "c", "multi-clan": "m"}


def ascii_plot(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render named (x, y) series as an ASCII scatter plot.

    >>> out = ascii_plot({"a": [(0, 0), (10, 10)]}, width=12, height=4)
    >>> "a" in out
    True
    """
    if width < 8 or height < 3:
        raise ConfigError("plot must be at least 8x3")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        glyph = GLYPHS.get(name, str(idx + 1))
        for x, y in pts:
            col = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = top_label.rjust(pad)
        elif row_idx == height - 1:
            label = bottom_label.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(
        " " * pad + f"  {x_min:.3g}{' ' * max(1, width - 12)}{x_max:.3g}"
    )
    lines.append(" " * pad + f"  x: {x_label}   y: {y_label}")
    legend = "   ".join(
        f"{GLYPHS.get(name, str(i + 1))}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)


def plot_throughput_latency(rows: list[dict], title: str = "") -> str:
    """Fig. 5-style plot from experiment rows (throughput_ktps, latency)."""
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        latency = row.get("avg_latency_s", row.get("latency_s"))
        series.setdefault(row["protocol"], []).append(
            (float(row["throughput_ktps"]), float(latency))
        )
    return ascii_plot(
        series,
        x_label="throughput (kTPS)",
        y_label="latency (s)",
        title=title,
    )


def plot_load_throughput(rows: list[dict], title: str = "") -> str:
    """Fig. 6-style plot from experiment rows (load, throughput)."""
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        series.setdefault(row["protocol"], []).append(
            (float(row["txns/proposal"]), float(row["throughput_ktps"]))
        )
    return ascii_plot(
        series,
        x_label="txns/proposal",
        y_label="throughput (kTPS)",
        title=title,
    )
