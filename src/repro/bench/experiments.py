"""Per-figure experiment definitions (the reproduction index of DESIGN.md §4).

Each function regenerates the rows/series of one paper artifact:

* :func:`fig1_clan_sizes` — Fig. 1 clan-size curve (exact statistics).
* :func:`table1_latency_matrix` — Table 1 as configured + measured in-sim.
* :func:`fig5_curve` — Fig. 5a/b/c throughput-vs-latency via message-level
  simulation at a configurable scale (``REPRO_SCALE``; 1.0 = paper size).
* :func:`fig5_model_curve` — the same figure from the analytical model at
  exact paper scale.
* :func:`fig6_load_sweep` — Fig. 6 throughput vs txns/proposal at the
  largest scale, all three protocols.
* :func:`sec62_numbers` — §6.2 concrete multi-clan failure probabilities.

Simulated scales preserve the paper's clan/tribe ratios (32/50, 60/100,
80/150 and 2×75/150); EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..committees.hypergeometric import clan_size_curve, dishonest_majority_prob
from ..committees.multiclan import equal_partition_prob
from ..net.latency import GCP_REGIONS, GCP_RTT_MS
from ..types import max_faults
from .model import AnalyticalModel, PAPER_LOADS, ModelPoint
from .parallel import run_grid
from .runner import ExperimentConfig, run_experiment, scaled

#: Paper figure geometries: figure -> (n, single clan size, multi-clan count).
FIGURE_SCALES = {
    "fig5a": (50, 32, None),
    "fig5b": (100, 60, None),
    "fig5c": (150, 80, 2),
}

#: Load sweeps used by the simulation benches (a subset of the paper's 13
#: points, spanning the pre-saturation and post-saturation regimes).
SIM_LOADS = {
    "fig5a": [32, 250, 1000, 3000, 6000],
    "fig5b": [32, 250, 1000, 3000],
    "fig5c": [250, 1000, 2000],
    "fig6": [250, 500, 1000, 1500],
}


def fig1_clan_sizes(failure_prob: float = 1e-9, step: int = 100) -> list[dict]:
    """Fig. 1: minimal clan size for n = 100..1000, failure < 1e-9."""
    tribe_sizes = list(range(step, 1001, step))
    rows = []
    for n, n_c in clan_size_curve(tribe_sizes, failure_prob=failure_prob):
        rows.append(
            {
                "n": n,
                "clan_size": n_c,
                "clan_fraction": round(n_c / n, 3),
                "failure_prob": f"{dishonest_majority_prob(n, max_faults(n), n_c):.2e}",
            }
        )
    return rows


def sec7_clan_sizes() -> list[dict]:
    """§7: clan sizes at the evaluation's relaxed failure probability 1e-6."""
    rows = []
    for n, paper_clan in ((50, 32), (100, 60), (150, 80)):
        from ..committees.hypergeometric import min_clan_size

        ours = min_clan_size(n, failure_prob=1e-6)
        rows.append(
            {
                "n": n,
                "paper_clan": paper_clan,
                "exact_min_clan": ours,
                "paper_clan_failure_prob": f"{dishonest_majority_prob(n, max_faults(n), paper_clan):.2e}",
            }
        )
    return rows


def table1_latency_matrix() -> list[dict]:
    """Table 1: the GCP inter-region RTT matrix the simulation runs on."""
    rows = []
    for src in GCP_REGIONS:
        row = {"source": src}
        for dst in GCP_REGIONS:
            row[dst.split("-")[0] + "-" + dst.split("-")[1][:2]] = GCP_RTT_MS[(src, dst)]
        rows.append(row)
    return rows


def sec62_numbers() -> list[dict]:
    """§6.2: exact multi-clan dishonest-majority probabilities."""
    return [
        {
            "n": 150,
            "clans": 2,
            "clan_size": 75,
            "prob": f"{equal_partition_prob(150, 2):.3e}",
            "paper": "4.015e-06",
        },
        {
            "n": 387,
            "clans": 3,
            "clan_size": 129,
            "prob": f"{equal_partition_prob(387, 3):.3e}",
            "paper": "1.11e-06",
        },
    ]


# -- Fig. 5 / Fig. 6 simulation experiments ------------------------------------


@dataclass(frozen=True)
class FigureGeometry:
    """Simulated geometry of one figure at the current scale."""

    figure: str
    n: int
    clan_size: int
    clans: int | None


def figure_geometry(figure: str) -> FigureGeometry:
    paper_n, paper_clan, clans = FIGURE_SCALES[figure]
    return FigureGeometry(
        figure=figure,
        n=scaled(paper_n, minimum=7),
        clan_size=scaled(paper_clan, minimum=4),
        clans=clans,
    )


def _protocols_for(figure: str) -> list[str]:
    if figure == "fig5c" or figure == "fig6":
        return ["sailfish", "single-clan", "multi-clan"]
    return ["sailfish", "single-clan"]


def _estimate_round(
    n: int, protocol: str, clan_size: int, clans: int | None, load: int,
    bandwidth_bps: float,
) -> float:
    """Predicted round duration, used to size each run adaptively."""
    model = AnalyticalModel(n=n, bandwidth_bps=bandwidth_bps, flow_contention=0.0)
    point = model.evaluate(
        protocol, load, clan_size=clan_size, clans=clans or 2
    )
    return point.round_duration_s


def point_config(
    protocol: str,
    geom: FigureGeometry,
    load: int,
    bandwidth_bps: float,
    cpu_per_message: float,
    warmup_rounds: int = 3,
    measure_rounds: int = 6,
) -> ExperimentConfig:
    """The adaptively sized config of one (protocol, load) grid point."""
    round_est = _estimate_round(
        geom.n, protocol, geom.clan_size, geom.clans, load, bandwidth_bps
    )
    warmup = warmup_rounds * round_est + 0.5
    duration = min(120.0, warmup + measure_rounds * round_est + 0.5)
    return ExperimentConfig(
        protocol=protocol,
        n=geom.n,
        txns_per_proposal=load,
        clan_size=geom.clan_size,
        clans=geom.clans or 2,
        bandwidth_bps=bandwidth_bps,
        duration=duration,
        warmup=warmup,
        cpu_per_message=cpu_per_message,
    )


def run_point(
    figure: str,
    protocol: str,
    geom: FigureGeometry,
    load: int,
    bandwidth_bps: float,
    cpu_per_message: float,
    warmup_rounds: int = 3,
    measure_rounds: int = 6,
) -> dict:
    """Simulate one (protocol, load) point with an adaptively sized run."""
    config = point_config(
        protocol, geom, load, bandwidth_bps, cpu_per_message,
        warmup_rounds, measure_rounds,
    )
    metrics = run_grid([config])[0]
    return {
        "figure": figure,
        "protocol": protocol,
        "n": geom.n,
        "txns/proposal": load,
        **metrics.row(),
    }


def fig5_curve(
    figure: str,
    loads: list[int] | None = None,
    bandwidth_bps: float = 400e6,
    cpu_per_message: float = 4e-6,
    jobs: int | None = None,
    cache=None,
) -> list[dict]:
    """Simulated throughput-vs-latency curve for one Fig. 5 panel.

    The default bandwidth positions the saturation knee inside the load
    sweep at the scaled n, mirroring where the paper's knees fall.

    The (protocol × load) grid runs through the parallel engine
    (:func:`repro.bench.parallel.run_grid`): ``jobs``/``cache`` default to
    the ``REPRO_JOBS``/``REPRO_CACHE`` environment knobs, and rows come back
    in grid order, so the output is identical at any worker count.
    """
    geom = figure_geometry(figure)
    loads = loads if loads is not None else SIM_LOADS[figure]
    points = [
        (protocol, load)
        for protocol in _protocols_for(figure)
        for load in loads
    ]
    configs = [
        point_config(protocol, geom, load, bandwidth_bps, cpu_per_message)
        for protocol, load in points
    ]
    metrics_list = run_grid(configs, jobs=jobs, cache=cache)
    return [
        {
            "figure": figure,
            "protocol": protocol,
            "n": geom.n,
            "txns/proposal": load,
            **metrics.row(),
        }
        for (protocol, load), metrics in zip(points, metrics_list)
    ]


def fig5_model_curve(figure: str, loads: list[int] | None = None) -> list[dict]:
    """Fig. 5 panel from the analytical model at exact paper scale."""
    paper_n, paper_clan, clans = FIGURE_SCALES[figure]
    loads = loads if loads is not None else PAPER_LOADS
    model = AnalyticalModel(n=paper_n)
    rows: list[ModelPoint] = []
    rows += model.curve("sailfish", loads)
    rows += model.curve("single-clan", loads, clan_size=paper_clan)
    if clans:
        rows += model.curve("multi-clan", loads, clans=clans)
    return [{"figure": figure, "n": paper_n, **p.row()} for p in rows]


def fig6_load_sweep(
    loads: list[int] | None = None,
    bandwidth_bps: float = 400e6,
    jobs: int | None = None,
    cache=None,
) -> list[dict]:
    """Fig. 6: throughput vs txns/proposal at the fig5c geometry."""
    return fig5_curve(
        "fig5c",
        loads=loads if loads is not None else SIM_LOADS["fig6"],
        bandwidth_bps=bandwidth_bps,
        jobs=jobs,
        cache=cache,
    )


def sweep_attribution(
    figure: str,
    bandwidth_bps: float = 400e6,
    cpu_per_message: float = 4e-6,
) -> list[dict]:
    """Critical-path attribution for one representative point per protocol.

    Re-runs the sweep's mid-load grid point per protocol with the tracer
    attached (serial — traced runs bypass the result cache) and attributes
    commit latency across the forensics segments.  This is where a fig5/fig6
    throughput gap turns into an explanation: which pipeline stage moved.
    """
    from ..forensics.provenance import attribution_rows, build_provenance
    from ..obs.tracer import Tracer

    base = "fig5c" if figure == "fig6" else figure
    geom = figure_geometry(base)
    loads = SIM_LOADS[figure]
    load = loads[len(loads) // 2]
    rows: list[dict] = []
    for protocol in _protocols_for(base):
        config = point_config(
            protocol, geom, load, bandwidth_bps, cpu_per_message
        )
        tracer = Tracer()
        run_experiment(config, tracer=tracer)
        index = build_provenance(tracer.to_dicts())
        for row in attribution_rows(index):
            rows.append(
                {
                    "figure": figure,
                    "protocol": protocol,
                    "n": geom.n,
                    "txns/proposal": load,
                    "segment": row["segment"],
                    "samples": row["count"],
                    "mean_ms": round(row["mean"] * 1e3, 3),
                    "p50_ms": round(row["p50"] * 1e3, 3),
                    "p99_ms": round(row["p99"] * 1e3, 3),
                    "share": round(row["share"], 4),
                }
            )
    return rows
