"""Benchmark harness: workloads, runners, metrics, and the analytical model.

Every table and figure of the paper's evaluation has a corresponding
experiment here (see DESIGN.md §4 for the index):

* Fig. 1 / §7 clan sizes — :func:`repro.bench.experiments.fig1_clan_sizes`.
* Table 1 — :func:`repro.bench.experiments.table1_latency_matrix`.
* Fig. 5a–c — :func:`repro.bench.experiments.fig5_curve` (message-level
  simulation at configurable scale) and
  :func:`repro.bench.model.model_curve` (analytical, paper scale).
* Fig. 6 — :func:`repro.bench.experiments.fig6_load_sweep`.
* §6.2 concrete probabilities — :func:`repro.bench.experiments.sec62_numbers`.
"""

from .metrics import RunMetrics, measure_run
from .model import AnalyticalModel, ModelPoint
from .parallel import ResultCache, run_grid, run_tasks
from .runner import ExperimentConfig, run_experiment

__all__ = [
    "RunMetrics",
    "measure_run",
    "ExperimentConfig",
    "run_experiment",
    "ResultCache",
    "run_grid",
    "run_tasks",
    "AnalyticalModel",
    "ModelPoint",
]
