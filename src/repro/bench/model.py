"""Analytical throughput/latency model at paper scale.

A full message-level Python simulation of n = 150 parties is hours of CPU per
data point, so the paper-scale curves (Fig. 5a–c, Fig. 6) are also produced
by a closed-form model derived from the *same* resource accounting the
simulator implements; `benchmarks/bench_model_validation.py` checks the model
against the simulator at small n.

Resource accounting per round (closed-loop workload, T txns per proposal):

* block size           ℓ  = T·txn_size + header
* vertex size          Sv ≈ header + κ + n·ref
* proposer outbound    R_b·ℓ + (n−1)·Sv + control            (NIC serialization)
* clan-member inbound  P_c·ℓ + n·Sv + control                (receive path)
* control              2n² messages of ~κ+header bytes per node per round
* round duration       D  = max(2δ, outbound/B_eff, inbound/B_eff)
* throughput           P·T / D
* latency              ≈ 2·D + δ + cpu(n)  (leader 3δ / non-leader 5δ average
  when D = 2δ, plus crypto/storage cost growing with n — §7 reports 380 ms at
  n=50 rising to 1392 ms at n=150 for minimal payloads)

``flow_contention`` models the real-system per-stream degradation (TCP
incast, per-flow buffers and syscalls at high fan-in) that the paper's
measured gap between Sailfish and single-clan reflects:
``B_eff = B / (1 + γ·(streams − 1))``.  With γ = 0 the model is the pure
bandwidth account (in which closed-loop saturation throughput is provably
≈ B/txn_size for *any* committee whose proposers equal its receivers — see
EXPERIMENTS.md for the derivation and discussion).

A configuration is *unstable* once D exceeds ``stability_budget`` (the leader
timeout in deployed systems): rounds outlast timers, no-vote storms begin,
and measured throughput collapses — this is where the paper stops measuring
Sailfish (Fig. 5c has no Sailfish point past 1000 txns/proposal).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..net import sizes

#: Control messages per node per round: one ECHO + one CERT per instance,
#: broadcast to everyone (n instances × 2 messages).
_CTRL_MSGS_PER_ROUND = 2


@dataclass(frozen=True)
class ModelPoint:
    """One (load, protocol) evaluation of the model."""

    protocol: str
    n: int
    txns_per_proposal: int
    round_duration_s: float
    throughput_tps: float
    latency_s: float
    stable: bool

    def row(self) -> dict:
        return {
            "protocol": self.protocol,
            "txns/proposal": self.txns_per_proposal,
            "throughput_ktps": round(self.throughput_tps / 1000.0, 1),
            "latency_s": round(self.latency_s, 3),
            "stable": self.stable,
        }


@dataclass(frozen=True)
class AnalyticalModel:
    """Bandwidth/latency model of one deployment scale.

    Args:
        n: tribe size.
        bandwidth_bps: effective per-node bandwidth (calibrated; WAN egress
            is far below NIC line rate).
        delta_s: mean one-way network delay (GCP matrix mean ≈ 86 ms).
        txn_size: transaction size (paper: 512 B).
        cpu_coeff: crypto/storage latency term, seconds per n² (calibrated to
            §7's 380 ms → 1392 ms latency floors).
        flow_contention: per-concurrent-stream bandwidth degradation γ.
        stability_budget: maximum round duration before the configuration is
            declared saturated/unstable (the leader-timeout analogue).
    """

    n: int
    bandwidth_bps: float = 1.6e9
    delta_s: float = 0.086
    txn_size: int = sizes.DEFAULT_TXN_SIZE
    cpu_coeff: float = 4.8e-5
    flow_contention: float = 0.018
    stability_budget: float = 4.0

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ConfigError("model needs n >= 4")
        if self.bandwidth_bps <= 0 or self.delta_s <= 0:
            raise ConfigError("bandwidth and delta must be positive")

    # -- protocol geometries --------------------------------------------------

    def _geometry(self, protocol: str, clan_size: int | None, clans: int) -> tuple:
        """(proposers, block recipients per proposer, block streams into a
        clan member)."""
        n = self.n
        if protocol == "sailfish":
            return n, n - 1, n - 1
        if protocol == "single-clan":
            if clan_size is None:
                raise ConfigError("single-clan model needs clan_size")
            return clan_size, clan_size - 1, clan_size - 1
        if protocol == "multi-clan":
            per_clan = n // clans
            return n, per_clan - 1, per_clan - 1
        raise ConfigError(f"unknown protocol {protocol!r}")

    # -- evaluation -------------------------------------------------------------

    def evaluate(
        self,
        protocol: str,
        txns_per_proposal: int,
        clan_size: int | None = None,
        clans: int = 2,
    ) -> ModelPoint:
        """Evaluate one (protocol, load) point."""
        n = self.n
        proposers, block_fanout, block_fanin = self._geometry(
            protocol, clan_size, clans
        )
        bytes_per_sec = self.bandwidth_bps / 8.0

        block = sizes.HEADER_SIZE + txns_per_proposal * self.txn_size
        vertex = (
            sizes.HEADER_SIZE + sizes.HASH_SIZE + n * sizes.VERTEX_REF_SIZE
            + sizes.SIGNATURE_SIZE
        )
        ctrl_msg = sizes.HEADER_SIZE + sizes.HASH_SIZE + sizes.SIGNATURE_SIZE
        control_out = _CTRL_MSGS_PER_ROUND * n * ctrl_msg * n  # 2n msgs to n peers

        # Effective bandwidth under fan-in contention: a clan member receives
        # block streams from `block_fanin` concurrent senders.
        streams = max(1, block_fanin)
        b_eff = bytes_per_sec / (1.0 + self.flow_contention * (streams - 1))

        outbound = block_fanout * block + (n - 1) * vertex + control_out
        inbound = block_fanin * block + n * vertex + control_out
        t_out = outbound / b_eff
        t_in = inbound / b_eff
        rbc_floor = 2.0 * self.delta_s
        duration = max(rbc_floor, t_out, t_in)

        throughput = proposers * txns_per_proposal / duration
        cpu_latency = self.cpu_coeff * n * n
        # Average commit latency: leaders take 3δ, non-leaders 5δ (≈ 4δ mean)
        # at the floor; every second of round elongation adds ~2 s (commits
        # span two rounds); plus the crypto/storage term.
        latency = 4.0 * self.delta_s + 2.0 * (duration - rbc_floor) + cpu_latency
        return ModelPoint(
            protocol=protocol,
            n=n,
            txns_per_proposal=txns_per_proposal,
            round_duration_s=duration,
            throughput_tps=throughput,
            latency_s=latency,
            stable=duration <= self.stability_budget,
        )

    def curve(
        self,
        protocol: str,
        loads: list[int],
        clan_size: int | None = None,
        clans: int = 2,
    ) -> list[ModelPoint]:
        """Model points for a load sweep; unstable points are kept and
        flagged (the paper's plots simply stop there)."""
        return [
            self.evaluate(protocol, load, clan_size=clan_size, clans=clans)
            for load in loads
        ]

    def peak_stable_throughput(
        self,
        protocol: str,
        loads: list[int],
        clan_size: int | None = None,
        clans: int = 2,
    ) -> float:
        points = self.curve(protocol, loads, clan_size=clan_size, clans=clans)
        stable = [p.throughput_tps for p in points if p.stable]
        return max(stable) if stable else 0.0


#: The paper's load sweep (§7 methodology).
PAPER_LOADS = [1, 32, 63, 125, 250, 500, 1000, 1500, 2000, 3000, 4000, 5000, 6000]

#: Paper configurations: (n, single-clan size, multi-clan count or None).
PAPER_SCALES = {"fig5a": (50, 32, None), "fig5b": (100, 60, None), "fig5c": (150, 80, 2)}
